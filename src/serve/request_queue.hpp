// Lock-guarded FIFO of pending inference jobs + the micro-batching
// policy.
//
// Workers drain the queue through pop_batch(), which implements the
// coalescing scheduler: take the oldest job, then pull up to
// max_batch - 1 *later* jobs sharing its batch key — (engine name, mask
// pointer) — into one chunk, preserving arrival order inside the chunk.
// A batch therefore always runs on one engine instance with one bound
// mask, which is what lets the worker execute it evaluate_batch-style
// (tight loop over images, engine state hot in cache, no per-request
// pool lookups).
//
// Fairness: only the *head* job's key is ever coalesced, so a flood of
// one configuration cannot starve others — the oldest job always leaves
// with the next batch, and foreign-key jobs keep their queue position.
//
// Streaming sessions: a job carrying a `session` pointer is one frame
// of a long-lived StreamSession. Frames must execute in push order and
// never concurrently (they advance shared cross-frame state), so the
// queue keeps a busy set: while one worker holds a session's frames,
// that session's later frames are ineligible and the head scan skips
// over them to the first eligible job. Session frames coalesce only
// with later frames of the *same* session (order preserved); one-shots
// never ride a session batch. Fairness is unchanged in both directions:
// a session pumping frames still surrenders the head slot like any
// other key, and one-shots parked behind a busy session's frames are
// picked immediately (pinned by tests/test_streaming.cpp).
//
// Shutdown: close() stops admissions but lets queued jobs drain;
// cancel_pending() additionally strips the still-queued jobs and hands
// them back so the owner can resolve their futures as cancelled.
#pragma once

#include <chrono>
#include <deque>
#include <mutex>
#include <set>
#include <vector>

#include "src/serve/request.hpp"

#include <condition_variable>
#include <cstdint>
#include <memory>

namespace ataman::serve {

class StreamSession;

struct QueuedJob {
  uint64_t id = 0;  // submission order, unique per server
  InferRequest request;
  std::shared_ptr<detail::FutureState> state;
  std::chrono::steady_clock::time_point enqueued{};
  // Non-null: this job is one frame of a streaming session and
  // request.image holds the frame's new columns, not a full window.
  std::shared_ptr<StreamSession> session;
};

class RequestQueue {
 public:
  explicit RequestQueue(int max_batch);

  // Enqueue one job; false (job untouched) once the queue is closed.
  bool push(QueuedJob job);

  // Blocks until an eligible job is available or the queue is closed and
  // drained; extracts one micro-batch into `out` (cleared first). A
  // popped session batch marks the session busy — the worker MUST call
  // session_done() after executing it, or the session's later frames
  // deadlock. False means closed-and-empty: the calling worker should
  // exit. (Frames of a busy session left behind at close() still drain:
  // the worker holding the session wakes the queue via session_done.)
  bool pop_batch(std::vector<QueuedJob>& out);

  // Releases a session's exclusive-execution slot after a popped session
  // batch finished (success or failure), making its queued frames
  // eligible again.
  void session_done(uint64_t session_id);

  // Stop accepting jobs; queued ones still drain through pop_batch.
  void close();

  // close() plus: remove every still-queued job and return them (the
  // server resolves their futures as cancelled). In-flight jobs already
  // popped by workers are unaffected.
  std::vector<QueuedJob> cancel_pending();

  int size() const;
  bool closed() const;

  // Batching key equality: same backend name and same SkipMask object.
  // Mask identity (not content) is deliberate: the mask is a non-owning
  // pointer the caller keeps alive, so pointer equality is the only
  // comparison that is both cheap and lifetime-safe.
  static bool same_key(const InferRequest& a, const InferRequest& b);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedJob> jobs_;
  std::set<uint64_t> busy_sessions_;  // sessions with an in-flight batch
  const int max_batch_;
  bool closed_ = false;
};

}  // namespace ataman::serve
