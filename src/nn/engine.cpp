#include "src/nn/engine.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/parallel.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

RefEngine::RefEngine(const QModel* model) : model_(model) {
  check(model != nullptr, "engine needs a model");
  check(!model->layers.empty(), "model has no layers");
}

std::vector<int8_t> RefEngine::quantize_input(
    std::span<const uint8_t> image) const {
  const int64_t expected =
      static_cast<int64_t>(model_->in_h) * model_->in_w * model_->in_c;
  check(static_cast<int64_t>(image.size()) == expected,
        "input image size mismatch");
  std::vector<int8_t> q(image.size());
  for (size_t i = 0; i < image.size(); ++i) {
    // input scale is 1/255 with zero_point -128: q = pixel - 128 exactly.
    const float real = static_cast<float>(image[i]) / 255.0f;
    q[i] = model_->input.quantize(real);
  }
  return q;
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  if (mask != nullptr) mask->validate(*model_);
  std::vector<int8_t> cur = quantize_input(image);
  std::vector<int8_t> next;

  int conv_ordinal = 0;
  for (const QLayer& layer : model_->layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      if (tap) tap(conv_ordinal, *conv, cur);
      const uint8_t* skip = nullptr;
      if (mask != nullptr &&
          conv_ordinal < static_cast<int>(mask->conv_masks.size()) &&
          !mask->conv_masks[static_cast<size_t>(conv_ordinal)].empty()) {
        skip = mask->conv_masks[static_cast<size_t>(conv_ordinal)].data();
      }
      next.assign(static_cast<size_t>(conv->geom.positions()) *
                      conv->geom.out_c,
                  0);
      conv2d_ref(*conv, cur, next, skip);
      ++conv_ordinal;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      next.assign(static_cast<size_t>(pool->out_h()) * pool->out_w() *
                      pool->channels,
                  0);
      maxpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      next.assign(static_cast<size_t>(fc->out_dim), 0);
      dense_ref(*fc, cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  const std::vector<int8_t> logits = run(image, mask);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  const int n = limit < 0 ? ds.size() : std::min(limit, ds.size());
  check(n > 0, "no images to evaluate");
  RefEngine engine(&model);
  std::atomic<int> correct{0};
  parallel_for(0, n, [&](int64_t i) {
    const int pred = engine.classify(ds.image(static_cast<int>(i)), mask);
    if (pred == ds.label(static_cast<int>(i)))
      correct.fetch_add(1, std::memory_order_relaxed);
  });
  return static_cast<double>(correct.load()) / static_cast<double>(n);
}

}  // namespace ataman
