// Streaming sessions with temporal activation reuse: the splice-plan
// geometry (hand-computed bands + invariants), RefEngine::run_incremental
// bitwise parity with from-scratch execution, the uniform
// capability-decline error, session execution through the serve runtime
// (parity, stats, queue fairness next to one-shot traffic), and the
// steady-state cost-model / DeployReport / DSE-selector row.
//
// This suite carries the `serve-smoke` ctest label: the TSan CI job
// race-checks session workers sharing the queue with one-shot jobs.
#include <gtest/gtest.h>

#include <vector>

#include "src/data/frame_stream.hpp"
#include "src/dse/dse_io.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/dse/evaluator.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/stream_plan.hpp"
#include "src/serve/server.hpp"
#include "src/sig/act_stats.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::ServeOptions;
using serve::StreamSessionOptions;
using testing::make_tiny_qmodel;
using testing::make_tiny_scored_qmodel;

// Full window of frame `index` assembled on the host — the reuse-off
// reference every streaming path must match bitwise.
std::vector<uint8_t> window_of(const FrameStream& stream, int index) {
  return stream.frame(index);
}

// --- frame stream --------------------------------------------------------

TEST(FrameStream, OverlapAndDeterminism) {
  FrameStreamSpec spec;
  spec.shape = {6, 10, 2};
  spec.frames = 5;
  spec.stride_cols = 3;
  const FrameStream a(spec);
  const FrameStream b(spec);
  EXPECT_EQ(a.total_cols(), 10 + 4 * 3);

  for (int i = 0; i < spec.frames; ++i) {
    EXPECT_EQ(a.frame(i), b.frame(i)) << "frame " << i;
    EXPECT_EQ(a.new_columns(i), b.new_columns(i)) << "frame " << i;
  }
  // new_columns(0) is the whole first window.
  EXPECT_EQ(a.new_columns(0), a.frame(0));

  // Window i shares its first w - s columns with window i-1's tail, and
  // its last s columns are exactly new_columns(i).
  const int h = spec.shape.height, w = spec.shape.width;
  const int c = spec.shape.channels, s = spec.stride_cols;
  for (int i = 1; i < spec.frames; ++i) {
    const auto prev = a.frame(i - 1);
    const auto cur = a.frame(i);
    const auto cols = a.new_columns(i);
    EXPECT_EQ(static_cast<int>(cols.size()), h * s * c);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w - s; ++x) {
        for (int ch = 0; ch < c; ++ch) {
          EXPECT_EQ(cur[(static_cast<size_t>(y) * w + x) * c + ch],
                    prev[(static_cast<size_t>(y) * w + x + s) * c + ch]);
        }
      }
      for (int x = 0; x < s; ++x) {
        for (int ch = 0; ch < c; ++ch) {
          EXPECT_EQ(cur[(static_cast<size_t>(y) * w + (w - s + x)) * c + ch],
                    cols[(static_cast<size_t>(y) * s + x) * c + ch]);
        }
      }
    }
  }
}

TEST(FrameStream, RejectsDegenerateSpecs) {
  FrameStreamSpec spec;
  spec.frames = 0;
  EXPECT_THROW(FrameStream{spec}, Error);
  spec.frames = 2;
  spec.stride_cols = spec.shape.width + 1;  // stride beyond the window
  EXPECT_THROW(FrameStream{spec}, Error);
}

// --- splice-plan geometry ------------------------------------------------

// Hand-computed bands for the tiny model (conv 12x12 k3 s1 p1 -> maxpool
// k2 s2 -> conv 6x6 k3 s1 p1 -> fc) at 2 columns per frame, lookback 1:
//   input band:  [0, 10), shift 2
//   conv1:  lo = ceil((0+1)/1) = 1, hi = min(floor((10+1-3)/1)+1, 12-2)
//           = min(9, 10) = 9 -> splice [1, 9), recompute 4 of 12 columns
//   pool:   propagates with p=0: lo = ceil(1/2) = 1,
//           hi = min(floor((9-2)/2)+1, 6-1) = 4 -> band [1, 4) shift 1,
//           but pools always recompute
//   conv2:  lo = ceil((1+1)/1) = 2, hi = min(floor((4+1-3)/1)+1, 6-1)
//           = 3 -> splice [2, 3), recompute 5 of 6 columns
//   fc:     full recompute, band dies
TEST(StreamPlanTest, HandComputedBandsOnTinyModel) {
  const QModel m = make_tiny_qmodel(7);
  const StreamPlan plan = plan_stream_steady(m, 2);
  ASSERT_EQ(plan.layers.size(), 4u);

  const StreamLayerPlan& c1 = plan.layers[0];
  EXPECT_TRUE(c1.spliced);
  EXPECT_EQ(c1.lookback, 1);
  EXPECT_EQ(c1.splice_lo, 1);
  EXPECT_EQ(c1.splice_hi, 9);
  EXPECT_EQ(c1.splice_shift, 2);
  EXPECT_EQ(c1.recomputed_cols, 4);
  EXPECT_EQ(c1.recomputed_positions, 4 * 12);

  const StreamLayerPlan& pool = plan.layers[1];
  EXPECT_FALSE(pool.spliced);
  EXPECT_EQ(pool.recomputed_cols, pool.out_cols);

  const StreamLayerPlan& c2 = plan.layers[2];
  EXPECT_TRUE(c2.spliced);
  EXPECT_EQ(c2.splice_lo, 2);
  EXPECT_EQ(c2.splice_hi, 3);
  EXPECT_EQ(c2.splice_shift, 1);
  EXPECT_EQ(c2.recomputed_cols, 5);

  const StreamLayerPlan& fc = plan.layers[3];
  EXPECT_FALSE(fc.spliced);
  EXPECT_EQ(fc.recomputed_macs, describe_layer(m.layers[3]).macs);

  EXPECT_GT(plan.reuse_ratio(), 1.0);
  EXPECT_EQ(plan.full_macs, m.mac_count());
  EXPECT_LT(plan.frame_macs, plan.full_macs);
}

// Shift 1 into a stride-2 pool misaligns at lookback 1 but realigns at
// lookback 2 (shift 2 over two frames) — the multi-frame ring is what
// keeps layers behind strided reductions spliceable.
TEST(StreamPlanTest, StridedPoolRealignsAtDeeperLookback) {
  const QModel m = make_tiny_qmodel(7);
  const StreamPlan plan = plan_stream_steady(m, 1);
  EXPECT_TRUE(plan.layers[0].spliced);
  EXPECT_EQ(plan.layers[0].lookback, 1);
  ASSERT_TRUE(plan.layers[2].spliced);
  EXPECT_EQ(plan.layers[2].lookback, 2);
  EXPECT_EQ(plan.layers[2].splice_shift, 1);

  // With only one retained frame the deeper lookback is unavailable and
  // conv2 must recompute in full.
  const std::vector<int> strides = {1, 1, 1, 1};
  const StreamPlan shallow = plan_stream(m, strides, /*available_lookback=*/1);
  EXPECT_TRUE(shallow.layers[0].spliced);
  EXPECT_FALSE(shallow.layers[2].spliced);
  EXPECT_GE(shallow.frame_macs, plan.frame_macs);
}

TEST(StreamPlanTest, AccountingInvariantsAcrossStrides) {
  const QModel m = make_tiny_qmodel(11);
  for (int stride = 1; stride <= m.in_w; ++stride) {
    const StreamPlan plan = plan_stream_steady(m, stride);
    int64_t macs = 0;
    for (size_t l = 0; l < plan.layers.size(); ++l) {
      const StreamLayerPlan& lp = plan.layers[l];
      EXPECT_EQ(lp.total_positions,
                static_cast<int64_t>(lp.out_rows) * lp.out_cols)
          << "stride " << stride << " layer " << l;
      EXPECT_EQ(lp.recomputed_positions,
                static_cast<int64_t>(lp.recomputed_cols) * lp.out_rows);
      if (lp.spliced) {
        EXPECT_LT(lp.splice_lo, lp.splice_hi);
        EXPECT_EQ(lp.recomputed_cols,
                  lp.out_cols - (lp.splice_hi - lp.splice_lo));
        // The splice source column must exist in the previous tensor.
        EXPECT_LE(lp.splice_hi + lp.splice_shift, lp.out_cols);
      } else {
        EXPECT_EQ(lp.recomputed_cols, lp.out_cols);
      }
      macs += lp.recomputed_macs;
    }
    EXPECT_EQ(plan.frame_macs, macs);
    EXPECT_LE(plan.frame_macs, plan.full_macs);
  }
  // A stride of the whole window leaves no overlap: nothing splices.
  const StreamPlan fresh = plan_stream_steady(m, m.in_w);
  EXPECT_EQ(fresh.frame_macs, fresh.full_macs);
  for (const StreamLayerPlan& lp : fresh.layers) EXPECT_FALSE(lp.spliced);
}

// --- run_incremental: bitwise parity -------------------------------------

TEST(RunIncremental, BitwiseParityWithFromScratchAcrossStrides) {
  const QModel m = make_tiny_qmodel(23);
  EngineConfig cfg;
  cfg.model = &m;
  const auto engine = EngineRegistry::instance().create("ref", cfg);
  ASSERT_TRUE(engine->supports_run_incremental());

  for (int stride : {1, 2, 3, 5}) {
    FrameStreamSpec spec;
    spec.shape = {m.in_h, m.in_w, m.in_c};
    spec.frames = 8;
    spec.stride_cols = stride;
    spec.seed = 100 + static_cast<uint64_t>(stride);
    const FrameStream stream(spec);

    StreamState state;
    for (int i = 0; i < spec.frames; ++i) {
      const auto logits = engine->run_incremental(state, stream.new_columns(i));
      EXPECT_EQ(logits, engine->run(window_of(stream, i)))
          << "stride " << stride << " frame " << i;
    }
    EXPECT_EQ(state.frames, spec.frames);
  }
}

TEST(RunIncremental, BitwiseParityUnderSkipMask) {
  const QModel m = make_tiny_qmodel(29);
  SkipMask mask;
  mask.masks.push_back(testing::make_random_skip(
      std::get<QConv2D>(m.layers[0]).geom, 0.4, 31));
  mask.masks.push_back(testing::make_random_skip(
      std::get<QConv2D>(m.layers[2]).geom, 0.4, 32));
  EngineConfig cfg;
  cfg.model = &m;
  cfg.mask = &mask;
  const auto engine = EngineRegistry::instance().create("ref", cfg);

  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  spec.frames = 6;
  spec.stride_cols = 2;
  const FrameStream stream(spec);

  StreamState state;
  for (int i = 0; i < spec.frames; ++i) {
    const auto logits = engine->run_incremental(state, stream.new_columns(i));
    EXPECT_EQ(logits, engine->run(window_of(stream, i))) << "frame " << i;
  }
}

TEST(RunIncremental, SteadyStateCounterMatchesSplicePlan) {
  const QModel m = make_tiny_qmodel(37);
  EngineConfig cfg;
  cfg.model = &m;
  const auto engine = EngineRegistry::instance().create("ref", cfg);

  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  spec.frames = 8;  // past the kMaxStreamLookback warmup ramp
  spec.stride_cols = 2;
  const FrameStream stream(spec);

  StreamState state;
  for (int i = 0; i < spec.frames; ++i)
    engine->run_incremental(state, stream.new_columns(i));

  const StreamPlan plan = plan_stream_steady(m, spec.stride_cols);
  EXPECT_EQ(state.last_recomputed_macs, plan.frame_macs);
  EXPECT_EQ(state.last_spliced_elems, plan.spliced_elems);
  // First frame has no history: it recomputed everything.
  EXPECT_EQ(state.total_full_macs, spec.frames * m.mac_count());
  EXPECT_GT(state.total_full_macs, state.total_recomputed_macs);
}

TEST(RunIncremental, RejectsMalformedPushes) {
  const QModel m = make_tiny_qmodel(41);
  EngineConfig cfg;
  cfg.model = &m;
  const auto engine = EngineRegistry::instance().create("ref", cfg);
  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  const FrameStream stream(spec);

  StreamState state;
  // First frame must be a full window.
  EXPECT_THROW(engine->run_incremental(state, stream.new_columns(1)), Error);
  ASSERT_EQ(state.frames, 0);
  engine->run_incremental(state, stream.new_columns(0));
  // Partial columns are rejected.
  std::vector<uint8_t> ragged(static_cast<size_t>(m.in_h * m.in_c) + 1);
  EXPECT_THROW(engine->run_incremental(state, ragged), Error);
}

// --- capability declines: one uniform message ----------------------------

TEST(CapabilityDecline, DeclinedSeamsShareTheBaseClassError) {
  const QModel m = make_tiny_qmodel(43);
  EngineConfig cfg;
  cfg.model = &m;
  // The CMSIS-style packed backend overrides none of the optional seams.
  const auto engine = EngineRegistry::instance().create("cmsis", cfg);
  ASSERT_FALSE(engine->supports_run_incremental());
  ASSERT_FALSE(engine->supports_run_from());

  StreamState state;
  const auto expect_decline = [&](auto&& call, const std::string& api) {
    try {
      call();
      FAIL() << api << " should have been declined";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("does not support " + api), std::string::npos)
          << what;
      EXPECT_NE(what.find("supports_" + api + "()"), std::string::npos)
          << what;
    }
  };
  const auto input =
      testing::make_random_image(m.in_h * m.in_w * m.in_c, 44);
  expect_decline(
      [&] { (void)engine->run_incremental(state, input); },
      "run_incremental");
  expect_decline([&] { (void)engine->run_from(0, {}); }, "run_from");
}

// --- streaming sessions through the serve runtime ------------------------

TEST(StreamSessionServe, IncrementalParityAndStats) {
  const QModel m = make_tiny_qmodel(53);
  EngineConfig cfg;
  cfg.model = &m;
  const auto oracle = EngineRegistry::instance().create("ref", cfg);

  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  spec.frames = 10;
  spec.stride_cols = 2;
  const FrameStream stream(spec);

  ServeOptions options;
  options.workers = 2;
  InferenceServer server(&m, options);
  const auto session = server.open_session();

  std::vector<InferFuture> futures;
  for (int i = 0; i < spec.frames; ++i)
    futures.push_back(server.push_frame(session, stream.new_columns(i)));
  server.drain();

  for (int i = 0; i < spec.frames; ++i) {
    const auto result = futures[static_cast<size_t>(i)].get();
    const auto expected = oracle->run(window_of(stream, i));
    EXPECT_EQ(result.logits, expected) << "frame " << i;
    EXPECT_EQ(result.top1, argmax_lowest_index(expected));
  }

  const auto session_stats = session->stats();
  EXPECT_EQ(session_stats.frames, spec.frames);
  EXPECT_EQ(session_stats.incremental_frames, spec.frames);
  EXPECT_EQ(session_stats.fallback_frames, 0);
  EXPECT_GT(session_stats.reuse_ratio(), 1.0);
  EXPECT_EQ(session_stats.full_macs, spec.frames * m.mac_count());

  const auto stats = server.stats();
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_EQ(stats.session_frames, spec.frames);
  EXPECT_EQ(stats.incremental_frames, spec.frames);
}

TEST(StreamSessionServe, FallbackBackendKeepsParityWithoutReuse) {
  const QModel m = make_tiny_qmodel(59);
  EngineConfig cfg;
  cfg.model = &m;
  const auto oracle = EngineRegistry::instance().create("cmsis", cfg);

  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  spec.frames = 6;
  spec.stride_cols = 3;
  const FrameStream stream(spec);

  InferenceServer server(&m, {});
  StreamSessionOptions session_options;
  session_options.engine = "cmsis";  // declines run_incremental
  const auto session = server.open_session(session_options);

  std::vector<InferFuture> futures;
  for (int i = 0; i < spec.frames; ++i)
    futures.push_back(server.push_frame(session, stream.new_columns(i)));
  server.drain();

  for (int i = 0; i < spec.frames; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get().logits,
              oracle->run(window_of(stream, i)))
        << "frame " << i;
  }
  const auto session_stats = session->stats();
  EXPECT_EQ(session_stats.fallback_frames, spec.frames);
  EXPECT_EQ(session_stats.incremental_frames, 0);
  EXPECT_DOUBLE_EQ(session_stats.reuse_ratio(), 1.0);
}

// A long-lived session sharing the queue with one-shot traffic: neither
// starves. Frames execute in push order (parity would break otherwise —
// each frame's expected logits depend on its exact window position) and
// every one-shot completes even while the session keeps pushing.
TEST(StreamSessionServe, SessionAndOneShotsShareTheQueueFairly) {
  const QModel m = make_tiny_qmodel(61);
  EngineConfig cfg;
  cfg.model = &m;
  const auto oracle = EngineRegistry::instance().create("ref", cfg);

  FrameStreamSpec spec;
  spec.shape = {m.in_h, m.in_w, m.in_c};
  spec.frames = 16;
  spec.stride_cols = 1;
  const FrameStream stream(spec);

  for (const int workers : {1, 3}) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch = 4;
    InferenceServer server(&m, options);
    const auto session = server.open_session();

    std::vector<InferFuture> frames;
    std::vector<InferFuture> one_shots;
    std::vector<std::vector<uint8_t>> images;
    for (int i = 0; i < spec.frames; ++i) {
      frames.push_back(server.push_frame(session, stream.new_columns(i)));
      InferRequest r;
      r.image = testing::make_random_image(m.in_h * m.in_w * m.in_c,
                                           600 + static_cast<uint64_t>(i));
      images.push_back(r.image);
      one_shots.push_back(server.submit(std::move(r)));
    }
    server.drain();

    for (int i = 0; i < spec.frames; ++i) {
      EXPECT_EQ(frames[static_cast<size_t>(i)].get().logits,
                oracle->run(window_of(stream, i)))
          << workers << " workers, frame " << i;
      EXPECT_EQ(one_shots[static_cast<size_t>(i)].get().logits,
                oracle->run(images[static_cast<size_t>(i)]))
          << workers << " workers, one-shot " << i;
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.completed, 2 * spec.frames);
    EXPECT_EQ(stats.session_frames, spec.frames);
  }
}

TEST(StreamSessionServe, RejectsScoredHeadsAndMalformedPushes) {
  const QModel scored = make_tiny_scored_qmodel(67);
  {
    InferenceServer server(&scored, {});
    EXPECT_THROW(server.open_session(), Error);
  }

  const QModel m = make_tiny_qmodel(71);
  InferenceServer server(&m, {});
  const auto session = server.open_session();
  // First frame must be a full window; ragged pushes never enqueue.
  EXPECT_THROW(server.push_frame(session, std::vector<uint8_t>(
                   static_cast<size_t>(m.in_h * m.in_c))),
               Error);
  StreamSessionOptions bad;
  bad.engine = "no-such-backend";
  EXPECT_THROW(server.open_session(bad), Error);

  FrameStreamSpec tiny_spec;
  tiny_spec.shape = {m.in_h, m.in_w, m.in_c};
  server.push_frame(session, FrameStream(tiny_spec).frame(0));
  server.drain();
  EXPECT_EQ(session->stats().frames, 1);
}

// --- steady-state cost model / report / selector row ---------------------

TEST(StreamingCost, SteadyStateRowIsConsistentWithThePlan) {
  const QModel m = make_tiny_qmodel(73);
  const StreamingCostRow row = steady_state_stream_cost(m, 2);
  const StreamPlan plan = plan_stream_steady(m, 2);
  EXPECT_EQ(row.stride_cols, 2);
  EXPECT_EQ(row.macs_per_frame, plan.frame_macs);
  EXPECT_EQ(row.full_macs, plan.full_macs);
  EXPECT_EQ(row.spliced_elems, plan.spliced_elems);
  EXPECT_EQ(row.full_cycles, packed_model_cycles(m, {}));
  EXPECT_GT(row.cycles_per_frame, 0);
  EXPECT_LT(row.cycles_per_frame, row.full_cycles);
  EXPECT_DOUBLE_EQ(row.reuse_ratio, plan.reuse_ratio());

  // No overlap -> the streaming frame converges to the full frame plus
  // zero splice copies.
  const StreamingCostRow fresh = steady_state_stream_cost(m, m.in_w);
  EXPECT_EQ(fresh.cycles_per_frame, fresh.full_cycles);
  EXPECT_EQ(fresh.spliced_elems, 0);
}

TEST(StreamingCost, AttachStreamingRowFillsTheDeployReport) {
  const QModel m = make_tiny_qmodel(79);
  const BoardSpec board;
  DeployReport report;
  report.cycles = packed_model_cycles(m, {});
  attach_streaming_row(report, m, 2, board);
  report.finalize(board);

  EXPECT_EQ(report.stream_stride_cols, 2);
  const StreamingCostRow row = steady_state_stream_cost(m, 2);
  EXPECT_EQ(report.steady_state_cycles_per_frame, row.cycles_per_frame);
  EXPECT_DOUBLE_EQ(report.steady_state_latency_ms_per_frame,
                   board.cycles_to_ms(row.cycles_per_frame));
  // Energy follows the paper's constant-power model: ms x W == mJ.
  EXPECT_DOUBLE_EQ(report.steady_state_energy_mj_per_frame,
                   report.steady_state_latency_ms_per_frame *
                       board.active_power_w);
  EXPECT_LT(report.steady_state_energy_mj_per_frame, report.energy_mj);
  EXPECT_GT(report.stream_reuse_ratio, 1.0);
}

TEST(StreamingCost, UnpackedStreamCyclesScalePositionTermsOnly) {
  const QModel m = make_tiny_qmodel(83);
  const auto& conv = std::get<QConv2D>(m.layers[0]);
  const int64_t positions = describe_layer(m.layers[0]).positions;
  const int64_t pairs = 40, singles = 3;
  // All positions recomputed == the non-streaming unpacked kernel.
  EXPECT_EQ(unpacked_conv_stream_cycles(conv, pairs, singles, positions),
            unpacked_conv_cycles(conv, pairs, singles));
  // Zero recomputed positions still pays the per-layer setup.
  const int64_t setup_only = unpacked_conv_stream_cycles(conv, pairs, singles, 0);
  EXPECT_GT(setup_only, 0);
  EXPECT_LT(setup_only, unpacked_conv_cycles(conv, pairs, singles));
  EXPECT_THROW(
      unpacked_conv_stream_cycles(conv, pairs, singles, positions + 1), Error);
}

TEST(StreamingDse, EvaluatorRowAndSelectorConstraint) {
  const QModel m = make_tiny_qmodel(89);
  Dataset eval(ImageShape{m.in_h, m.in_w, m.in_c}, 10);
  Rng rng(90);
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> img(
        static_cast<size_t>(m.in_h) * m.in_w * m.in_c);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    eval.add(img, rng.next_int(0, 9));
  }
  const auto stats = capture_activation_stats(m, eval, 16);
  const auto sig = compute_model_significance(m, stats);

  ConfigEvaluator ev(&m, &sig, &eval, -1);
  const ApproxConfig exact = ApproxConfig::uniform(2, 0.0);

  // No stride set: the streaming row stays unmodeled.
  DseResult off = ev.evaluate_static(exact);
  EXPECT_EQ(off.stream_cycles_per_frame, 0);
  EXPECT_DOUBLE_EQ(off.stream_energy_mj_per_frame, 0.0);

  ev.set_stream_stride(2);
  DseResult on = ev.evaluate_static(exact);
  EXPECT_GT(on.stream_cycles_per_frame, 0);
  EXPECT_LT(on.stream_cycles_per_frame, on.cycles);
  EXPECT_DOUBLE_EQ(on.stream_energy_mj_per_frame,
                   BoardSpec{}.energy_mj(on.stream_cycles_per_frame));
  // The non-streaming metrics are untouched by enabling the row.
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.flash_bytes, off.flash_bytes);

  // Selector: the streaming-energy cap skips unmodeled rows and rows
  // over budget, and leaves selection unchanged when disabled.
  DseOutcome outcome;
  outcome.exact_accuracy = 0.9;
  DseResult unmodeled;  // fastest, but no streaming row
  unmodeled.accuracy = 0.9;
  unmodeled.cycles = 100;
  DseResult over;  // modeled, over the cap
  over.accuracy = 0.9;
  over.cycles = 200;
  over.stream_cycles_per_frame = 150;
  over.stream_energy_mj_per_frame = 5.0;
  DseResult within;  // modeled, within the cap
  within.accuracy = 0.9;
  within.cycles = 300;
  within.stream_cycles_per_frame = 80;
  within.stream_energy_mj_per_frame = 2.0;
  outcome.results = {unmodeled, over, within};

  EXPECT_EQ(select_design(outcome, 0.05), 0);
  EXPECT_EQ(select_design(outcome, 0.05, 0, 3.0), 2);
  EXPECT_EQ(select_design(outcome, 0.05, 0, 1.0), -1);
}

TEST(StreamingDse, IoVersion3RoundTripsTheStreamingRow) {
  DseOutcome outcome;
  outcome.exact_accuracy = 0.8;
  outcome.baseline_cycles = 1000;
  DseResult modeled;
  modeled.config = ApproxConfig::uniform(2, 0.01);
  modeled.accuracy = 0.8;
  modeled.cycles = 900;
  modeled.stream_cycles_per_frame = 400;
  modeled.stream_energy_mj_per_frame = 1.5;
  DseResult unmodeled;
  unmodeled.config = ApproxConfig::uniform(2, 0.0);
  unmodeled.accuracy = 0.8;
  unmodeled.cycles = 1000;
  outcome.results = {unmodeled, modeled};
  outcome.pareto = {0};

  const DseOutcome loaded =
      dse_outcome_from_json(dse_outcome_to_json(outcome));
  ASSERT_EQ(loaded.results.size(), 2u);
  // Absent fields (unmodeled row, and every pre-version-3 file) load 0.
  EXPECT_EQ(loaded.results[0].stream_cycles_per_frame, 0);
  EXPECT_DOUBLE_EQ(loaded.results[0].stream_energy_mj_per_frame, 0.0);
  EXPECT_EQ(loaded.results[1].stream_cycles_per_frame, 400);
  EXPECT_DOUBLE_EQ(loaded.results[1].stream_energy_mj_per_frame, 1.5);
}

}  // namespace
}  // namespace ataman
