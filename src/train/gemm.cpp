#include "src/train/gemm.hpp"

#include <cstring>

namespace ataman {

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<size_t>(m) * n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace ataman
