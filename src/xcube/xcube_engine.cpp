#include "src/xcube/xcube_engine.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/mcu/cost_model.hpp"

namespace ataman {

XCubeEngine::XCubeEngine(const QModel* model, XCubeCostTable costs)
    : InferenceEngine(model, "x-cube-ai"), ref_(model), costs_(costs) {
  double cycles = 0.0;
  int out_dim = 0;
  for (const QLayer& layer : this->model().layers) {
    cycles += costs_.layer_dispatch;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      const ConvGeom& g = conv->geom;
      cycles += costs_.im2col_per_elem *
                static_cast<double>(g.positions()) * g.patch_size();
      if (packed_conv_uses_fast_path(*conv)) {
        cycles += costs_.fast_per_pair *
                  static_cast<double>(g.positions()) * g.out_c *
                  (g.patch_size() / 2);
        cycles += costs_.basic_per_mac *
                  static_cast<double>(g.positions()) * g.out_c *
                  (g.patch_size() % 2);
      } else {
        cycles += costs_.basic_per_mac * static_cast<double>(g.macs());
      }
      cycles += costs_.chan_epilogue *
                static_cast<double>(g.positions()) * g.out_c;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      // Depthwise stays on the non-SIMD path (per-channel filters cannot
      // feed the fused dual-MAC kernel), with the fused epilogue.
      cycles += costs_.basic_per_mac * static_cast<double>(dw->macs());
      cycles += costs_.chan_epilogue *
                static_cast<double>(dw->positions()) * dw->channels;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      cycles += costs_.pool_per_output_elem_per_tap *
                static_cast<double>(pool->out_h()) * pool->out_w() *
                pool->channels * pool->kernel * pool->kernel;
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      cycles += costs_.pool_per_output_elem_per_tap *
                static_cast<double>(pool->out_h()) * pool->out_w() *
                pool->channels * (pool->kernel * pool->kernel + 2);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      cycles += costs_.fc_per_pair *
                static_cast<double>(fc->out_dim) * (fc->in_dim / 2);
      cycles += costs_.fc_out_epilogue * static_cast<double>(fc->out_dim);
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      cycles += costs_.qadd_per_elem * static_cast<double>(add->elems());
    }
  }
  cycles += costs_.softmax_per_logit * out_dim;
  total_cycles_ = static_cast<int64_t>(std::llround(cycles));
}

std::vector<int8_t> XCubeEngine::run(std::span<const uint8_t> image) const {
  return ref_.run(image);
}

int64_t XCubeEngine::flash_bytes() const {
  return costs_.runtime_code +
         static_cast<int64_t>(std::llround(
             costs_.weight_compression *
             static_cast<double>(model().weight_bytes())));
}

int64_t XCubeEngine::ram_bytes() const {
  MemoryCostTable t;
  t.runtime_reserve = costs_.ram_runtime_reserve;
  return model_ram_bytes(model(), /*packed_engine=*/true, t);
}

}  // namespace ataman
