// Batched asynchronous inference server — the throughput-oriented
// runtime layer above the InferenceEngine seam.
//
//   submit() ──> RequestQueue ──> N worker threads ──> InferFuture
//                (micro-batch         (EnginePool:
//                 coalescing by        one engine per
//                 (engine, mask))      worker per key)
//
// Callers enqueue (image, engine-name, skip-mask) jobs and immediately
// get a future; workers pull coalesced same-configuration micro-batches
// and run them back-to-back on their own engine instance, so the packed
// weight streams / unpacked programs stay hot across a batch and no
// engine is ever shared between threads.
//
// Determinism contract (pinned by tests/test_serve.cpp): each request's
// logits/top1 are bitwise identical to serially running the same
// (engine, mask, image) through the registry engine — for ANY worker
// count, batch composition or arrival order. This holds because requests
// are data-independent, every engine run() is a pure function of
// (model, mask, image), and workers never share engine instances.
// Timing/scheduling fields of InferResult are diagnostics, not part of
// the contract.
//
// Threading: workers are plain std::threads, each holding a
// SerialRegionScope so library parallel_for loops issued during a
// request run serially on that worker (no OpenMP team per worker).
// docs/SERVING.md is the handbook.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "src/serve/engine_pool.hpp"
#include "src/serve/request.hpp"
#include "src/serve/request_queue.hpp"
#include "src/serve/stream_session.hpp"

namespace ataman::serve {

struct ServeOptions {
  int workers = 4;    // executor threads (>= 1)
  int max_batch = 8;  // micro-batch coalescing cap (>= 1; 1 = no batching)
  // Cost/memory tables forwarded to EngineConfig for every engine the
  // pool builds (same defaults as the rest of the repo).
  CortexM33CostTable costs{};
  MemoryCostTable memory{};
  XCubeCostTable xcube{};
};

// Counter snapshot; all values monotone over the server's life.
struct ServeStats {
  int64_t submitted = 0;       // accepted requests
  int64_t completed = 0;       // futures resolved by execution (ok or error)
  int64_t cancelled = 0;       // futures resolved by shutdown cancellation
  int64_t batches = 0;         // micro-batches executed
  int64_t coalesced = 0;       // requests that rode a batch of size > 1
  int64_t max_batch_seen = 0;  // largest micro-batch executed
  int64_t sessions = 0;            // streaming sessions opened
  int64_t session_frames = 0;      // frames executed across all sessions
  int64_t incremental_frames = 0;  // of those, via run_incremental
  EnginePoolStats pool{};
  std::vector<int64_t> per_worker;  // requests executed per worker
};

class InferenceServer {
 public:
  // `model` must outlive the server. Workers start immediately.
  explicit InferenceServer(const QModel* model, ServeOptions options = {});
  ~InferenceServer();  // stop(Shutdown::kDrain)

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Validates and enqueues one request (image shape, known backend,
  // mask/model consistency — failures throw on the calling thread before
  // anything is queued). Throws once the server has been stopped.
  InferFuture submit(InferRequest request);

  // Convenience fan-in: submit in order, futures in the same order.
  std::vector<InferFuture> submit_all(std::vector<InferRequest> requests);

  // Open a long-lived streaming session pinned to one (engine, mask)
  // configuration. Throws on unknown backends, bad masks, or scored
  // heads. The session outlives the server gracefully: frames pushed
  // after stop() just fail like one-shot submits.
  std::shared_ptr<StreamSession> open_session(StreamSessionOptions options = {});

  // Enqueue the next frame of `session`. `columns` is the s newest
  // [h][s][c] u8 time columns of the sliding window (the session's
  // first frame must be a full window, s == in_w). Frames of one
  // session execute in push order, never concurrently, interleaved
  // fairly with one-shot jobs; the resulting logits/top1 are bitwise
  // identical to running the full assembled window through the engine.
  InferFuture push_frame(const std::shared_ptr<StreamSession>& session,
                         std::vector<uint8_t> columns);

  // Block until every accepted request has been resolved. The server
  // keeps accepting; drain() is a barrier, not a shutdown.
  void drain();

  enum class Shutdown {
    kDrain,          // stop admissions, run everything already queued
    kCancelPending,  // stop admissions, cancel still-queued requests
  };

  // Idempotent; joins the workers. After stop(), submit() throws.
  // kCancelPending resolves still-queued futures as cancelled (their
  // get() throws, cancelled() is true); in-flight batches always finish.
  void stop(Shutdown mode = Shutdown::kDrain);

  ServeStats stats() const;
  int workers() const { return options_.workers; }
  const QModel& model() const { return *model_; }

 private:
  void worker_main(int worker_id);

  const QModel* model_;
  ServeOptions options_;
  RequestQueue queue_;
  EnginePool pool_;
  std::vector<std::thread> threads_;

  mutable std::mutex stats_mutex_;  // guards the fields below
  std::condition_variable drain_cv_;
  uint64_t next_id_ = 0;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t cancelled_ = 0;
  int64_t batches_ = 0;
  int64_t coalesced_ = 0;
  int64_t max_batch_seen_ = 0;
  int64_t sessions_ = 0;
  int64_t session_frames_ = 0;
  int64_t incremental_frames_ = 0;
  uint64_t next_session_id_ = 0;
  std::vector<int64_t> per_worker_done_;

  std::mutex stop_mutex_;  // serializes stop(); protects joined_
  bool joined_ = false;
};

}  // namespace ataman::serve
