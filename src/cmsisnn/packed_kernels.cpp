#include "src/cmsisnn/packed_kernels.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"
#include "src/cmsisnn/im2col_q15.hpp"
#include "src/cmsisnn/smlad.hpp"

namespace ataman {

PackedWeights PackedWeights::pack(std::span<const int8_t> weights, int out_c,
                                  int patch) {
  check(static_cast<int64_t>(weights.size()) ==
            static_cast<int64_t>(out_c) * patch,
        "weight tensor size mismatch");
  PackedWeights p;
  p.patch = patch;
  p.out_c = out_c;
  p.pairs_per_chan = patch / 2;
  p.has_single = (patch % 2) != 0;
  p.pair_constants.resize(static_cast<size_t>(out_c) * p.pairs_per_chan);
  if (p.has_single) p.single_weights.resize(static_cast<size_t>(out_c));

  for (int oc = 0; oc < out_c; ++oc) {
    const int8_t* w = weights.data() + static_cast<size_t>(oc) * patch;
    for (int i = 0; i < p.pairs_per_chan; ++i) {
      // Even operand in the low lane, odd operand in the high lane; the
      // activation packer uses the same convention.
      p.pair_constants[static_cast<size_t>(oc) * p.pairs_per_chan + i] =
          pack_weight_pair(/*hi=*/w[2 * i + 1], /*lo=*/w[2 * i]);
    }
    if (p.has_single)
      p.single_weights[static_cast<size_t>(oc)] = w[patch - 1];
  }
  return p;
}

namespace {

// Dual-MAC dot product over one q15 column; identical accumulation order
// to the reference kernel (int32 addition is exact, so order is moot).
int32_t packed_dot(const PackedWeights& packed, int oc, const int16_t* col,
                   int32_t acc) {
  const uint32_t* wp = packed.pair_constants.data() +
                       static_cast<size_t>(oc) * packed.pairs_per_chan;
  for (int i = 0; i < packed.pairs_per_chan; ++i) {
    const uint32_t apair = pack_q15_pair(col[2 * i + 1], col[2 * i]);
    acc = smlad(wp[i], apair, acc);
  }
  if (packed.has_single) {
    const uint32_t wlast = pack_q15_pair(
        0, packed.single_weights[static_cast<size_t>(oc)]);
    const uint32_t alast = pack_q15_pair(0, col[packed.patch - 1]);
    acc = smlabb(wlast, alast, acc);
  }
  return acc;
}

}  // namespace

void packed_conv2d(const QConv2D& layer, const PackedWeights& packed,
                   std::span<const int8_t> in, std::span<int8_t> out) {
  const ConvGeom& g = layer.geom;
  check(packed.patch == g.patch_size() && packed.out_c == g.out_c,
        "packed weights do not match layer");
  const int oh = g.out_h(), ow = g.out_w();
  std::vector<int16_t> col(static_cast<size_t>(g.patch_size()));

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      im2col_patch_q15(layer, in, oy, ox, col.data());
      int8_t* orow =
          out.data() + (static_cast<size_t>(oy) * ow + ox) * g.out_c;
      for (int oc = 0; oc < g.out_c; ++oc) {
        const int32_t acc = packed_dot(
            packed, oc, col.data(), layer.bias[static_cast<size_t>(oc)]);
        const int32_t scaled =
            multiply_by_quantized_multiplier(acc, layer.requant) +
            layer.out.zero_point;
        orow[oc] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void packed_depthwise_conv2d(const QDepthwiseConv2D& layer,
                             std::span<const int8_t> in,
                             std::span<int8_t> out) {
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * layer.channels,
        "depthwise input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(layer.positions()) * layer.channels,
        "depthwise output size mismatch");
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  const int patch = layer.patch_size();
  const int32_t zp = layer.in.zero_point;

  // One q15 expansion of the receptive field per position, shared by all
  // channels: col[tap * c + ch], matching the [k][k][c] weight order.
  std::vector<int16_t> col(static_cast<size_t>(patch) * c);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int p = 0;
      for (int ky = 0; ky < layer.kernel; ++ky) {
        const int iy = oy * layer.stride - layer.pad + ky;
        for (int kx = 0; kx < layer.kernel; ++kx, ++p) {
          const int ix = ox * layer.stride - layer.pad + kx;
          const bool inside =
              iy >= 0 && iy < layer.in_h && ix >= 0 && ix < layer.in_w;
          const int8_t* src =
              inside ? in.data() +
                           (static_cast<size_t>(iy) * layer.in_w + ix) * c
                     : nullptr;
          int16_t* dst = col.data() + static_cast<size_t>(p) * c;
          for (int ch = 0; ch < c; ++ch)
            dst[ch] = static_cast<int16_t>((inside ? src[ch] : zp) - zp);
        }
      }

      int8_t* orow = out.data() + (static_cast<size_t>(oy) * ow + ox) * c;
      for (int ch = 0; ch < c; ++ch) {
        int32_t acc = layer.bias[static_cast<size_t>(ch)];
        for (int t = 0; t < patch; ++t) {
          acc += static_cast<int32_t>(col[static_cast<size_t>(t) * c + ch]) *
                 static_cast<int32_t>(
                     layer.weights[static_cast<size_t>(t) * c + ch]);
        }
        const int32_t scaled =
            multiply_by_quantized_multiplier(acc, layer.requant) +
            layer.out.zero_point;
        orow[ch] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void packed_dense(const QDense& layer, const PackedWeights& packed,
                  std::span<const int8_t> in, std::span<int8_t> out) {
  check(packed.patch == layer.in_dim && packed.out_c == layer.out_dim,
        "packed weights do not match layer");
  // Expand the input once to zero-point-corrected q15 (CMSIS expands the
  // activation vector for its q7 FC kernels the same way).
  std::vector<int16_t> col(static_cast<size_t>(layer.in_dim));
  for (int i = 0; i < layer.in_dim; ++i) {
    col[static_cast<size_t>(i)] = static_cast<int16_t>(
        static_cast<int32_t>(in[static_cast<size_t>(i)]) -
        layer.in.zero_point);
  }
  for (int oc = 0; oc < layer.out_dim; ++oc) {
    const int32_t acc =
        packed_dot(packed, oc, col.data(), layer.bias[static_cast<size_t>(oc)]);
    const int32_t scaled =
        multiply_by_quantized_multiplier(acc, layer.requant) +
        layer.out.zero_point;
    out[static_cast<size_t>(oc)] = static_cast<int8_t>(
        std::clamp(scaled, layer.act_min, layer.act_max));
  }
}

}  // namespace ataman
