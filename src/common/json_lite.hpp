// Minimal JSON value model, parser and printer.
//
// Used to serialize approximation configs and DSE results (the paper's
// framework exports "configs" that the code generator consumes — see
// Fig. 1 step 4/5). Supports the JSON subset the library emits: objects,
// arrays, finite numbers, strings, booleans and null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ataman {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic for golden-file tests.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(int64_t v) : value_(static_cast<double>(v)) {}
  Json(size_t v) : value_(static_cast<double>(v)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const;
  double as_number() const;
  int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  // Object field access; throws if not an object / key missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  // Compact single-line serialization.
  std::string dump() const;
  // Pretty-printed with 2-space indent.
  std::string dump_pretty() const;

  static Json parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace ataman
