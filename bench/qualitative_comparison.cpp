// §III qualitative comparison — reproduces the paper's last-paragraph
// claims against CMix-NN [9] and μTVM [10] using their published
// operating points (neither tool is executed in the paper either).
#include "bench/bench_common.hpp"
#include "src/baselines/qualitative.hpp"
#include "src/core/engine_iface.hpp"

int main(int argc, char** argv) {
  using namespace ataman;
  using namespace ataman::bench;
  const Scale scale = parse_scale(argc, argv);
  print_header("Qualitative comparison: CMix-NN and uTVM (paper SIII)",
               scale);

  const BoardSpec board = stm32u575_board();
  CsvWriter csv(results_dir() + "/qualitative_comparison.csv",
                {"comparison", "baseline_ms", "ours_ms", "reduction_pct"});

  // --- CMix-NN: paper compares "a model with 13.8M MACs" running at
  // 124 ms under our framework vs CMix-NN's published point (~326 ms).
  // Our AlexNet design at a ~5% budget executes a similar MAC volume.
  const BenchModel alexnet = load_alexnet();
  PipelineOptions opts;
  opts.dse = dse_options_for("alexnet", scale);
  AtamanPipeline pipe(&alexnet.qmodel, &alexnet.data.train,
                      &alexnet.data.test, opts);
  const DseOutcome outcome = pipe.explore();
  const int idx5 = pipe.select(outcome, 0.05);
  check(idx5 >= 0, "no 5% design found");
  const DseResult& ours = outcome.results[static_cast<size_t>(idx5)];
  const double ours_ms = board.cycles_to_ms(ours.cycles);

  const CMixNNModel cmix;
  // Model of comparable total MAC volume to the paper's 13.8M reference.
  const int64_t cmix_macs = 13'800'000;
  const double cmix_ms = cmix.latency_ms(cmix_macs, board);
  const double cmix_red = 100.0 * (1.0 - ours_ms / cmix_ms);
  std::printf("CMix-NN @ %.1fM MACs : %6.1f ms\n", cmix_macs / 1e6, cmix_ms);
  std::printf("ours (AlexNet, 5%%)  : %6.1f ms  -> %.0f%% latency reduction"
              "  (paper: ours 124 ms, 62%% reduction)\n",
              ours_ms, cmix_red);
  csv.row({"cmix-nn", CsvWriter::num(cmix_ms), CsvWriter::num(ours_ms),
           CsvWriter::num(cmix_red)});

  // --- uTVM: publishes a 13% latency overhead vs CMSIS on a LeNet-class
  // model; our LeNet design at <5% loss must beat it by ~32%.
  const BenchModel lenet = load_lenet();
  PipelineOptions lopts;
  lopts.dse = dse_options_for("lenet", scale);
  AtamanPipeline lpipe(&lenet.qmodel, &lenet.data.train, &lenet.data.test,
                       lopts);
  const DseOutcome loutcome = lpipe.explore();
  const int lidx = lpipe.select(loutcome, 0.05);
  check(lidx >= 0, "no 5% design found");
  const double ours_lenet_ms =
      board.cycles_to_ms(loutcome.results[static_cast<size_t>(lidx)].cycles);

  EngineConfig cmsis_cfg;
  cmsis_cfg.model = &lenet.qmodel;
  const auto cmsis = EngineRegistry::instance().create("cmsis", cmsis_cfg);
  const MicroTvmModel utvm;
  const double utvm_ms =
      board.cycles_to_ms(utvm.cycles(cmsis->total_cycles()));
  const double utvm_red = 100.0 * (1.0 - ours_lenet_ms / utvm_ms);
  std::printf("uTVM (LeNet)        : %6.1f ms (1.13x CMSIS)\n", utvm_ms);
  std::printf("ours (LeNet, <5%%)   : %6.1f ms  -> %.0f%% speedup vs uTVM"
              "  (paper: +32%% at <5%% loss)\n",
              ours_lenet_ms, utvm_red);
  csv.row({"utvm", CsvWriter::num(utvm_ms), CsvWriter::num(ours_lenet_ms),
           CsvWriter::num(utvm_red)});

  std::printf("CSV: %s/qualitative_comparison.csv\n", results_dir().c_str());
  return 0;
}
