#include "src/nn/skip_mask.hpp"

#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

bool SkipMask::empty() const {
  for (const auto& m : conv_masks)
    for (const uint8_t v : m)
      if (v) return false;
  return true;
}

int64_t SkipMask::skipped_static_operands() const {
  int64_t total = 0;
  for (const auto& m : conv_masks)
    total += std::accumulate(m.begin(), m.end(), int64_t{0});
  return total;
}

int64_t SkipMask::skipped_macs(const QModel& model) const {
  validate(model);
  int64_t total = 0;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    if (ordinal < static_cast<int>(conv_masks.size())) {
      const auto& m = conv_masks[static_cast<size_t>(ordinal)];
      const int64_t skipped =
          std::accumulate(m.begin(), m.end(), int64_t{0});
      total += skipped * conv->geom.positions();
    }
    ++ordinal;
  }
  return total;
}

void SkipMask::validate(const QModel& model) const {
  const int conv_count = model.conv_layer_count();
  check(static_cast<int>(conv_masks.size()) <= conv_count,
        "skip mask has more layers than the model has convs");
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    if (ordinal < static_cast<int>(conv_masks.size())) {
      const auto& m = conv_masks[static_cast<size_t>(ordinal)];
      check(m.empty() ||
                static_cast<int64_t>(m.size()) == conv->geom.weight_count(),
            "skip mask size mismatch on conv layer " + std::to_string(ordinal));
    }
    ++ordinal;
  }
}

SkipMask SkipMask::none(const QModel& model) {
  SkipMask mask;
  for (const QLayer& layer : model.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer))
      mask.conv_masks.emplace_back(
          static_cast<size_t>(conv->geom.weight_count()), 0);
  }
  return mask;
}

QModel apply_skip_mask(const QModel& model, const SkipMask& mask) {
  mask.validate(model);
  QModel masked = model;
  int ordinal = 0;
  for (QLayer& layer : masked.layers) {
    auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    if (ordinal < static_cast<int>(mask.conv_masks.size()) &&
        !mask.conv_masks[static_cast<size_t>(ordinal)].empty()) {
      const auto& m = mask.conv_masks[static_cast<size_t>(ordinal)];
      for (size_t i = 0; i < conv->weights.size(); ++i)
        if (m[i]) conv->weights[i] = 0;
    }
    ++ordinal;
  }
  return masked;
}

}  // namespace ataman
