#include "src/train/model_zoo.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "src/common/serialize.hpp"

namespace ataman {

namespace {
constexpr const char* kModelMagic = "ATAMAN.FLOATMODEL";

using Kind = LayerSpec::Kind;

// Stable textual fingerprint of everything that affects trained weights;
// hashed into the cache filename so spec changes invalidate old artifacts.
std::string spec_fingerprint(const ZooSpec& spec) {
  std::ostringstream os;
  os << spec.arch.name << '|' << spec.arch.topology << '|';
  for (const LayerSpec& l : spec.arch.layers) {
    os << static_cast<int>(l.kind) << ',' << l.out_c << ',' << l.kernel << ','
       << l.stride << ',' << l.pad << ',' << l.units << ',' << l.from << ';';
  }
  os << '|' << spec.data.train_images << ',' << spec.data.test_images << ','
     << spec.data.seed << ',' << spec.data.noise_sigma << ','
     << spec.data.palette_jitter << ',' << spec.data.distractor_alpha << ','
     << spec.data.label_noise << ',' << static_cast<int>(spec.data.task);
  os << '|' << spec.train.epochs << ',' << spec.train.batch_size << ','
     << spec.train.sgd.learning_rate << ',' << spec.train.sgd.momentum << ','
     << spec.train.sgd.weight_decay << ',' << spec.train.seed << ','
     << spec.train.lr_decay << ',' << static_cast<int>(spec.train.loss);
  for (const int e : spec.train.lr_decay_at) os << ',' << e;
  os << '|' << spec.init_seed;
  return os.str();
}

std::string cache_path(const ZooSpec& spec, const std::string& cache_dir) {
  const size_t h = std::hash<std::string>{}(spec_fingerprint(spec));
  std::ostringstream os;
  os << cache_dir << '/' << spec.arch.name << '_' << std::hex << h << ".atm";
  return os.str();
}
}  // namespace

ModelArch lenet_arch() {
  // 3 conv (5x5, pad 2) - 2 maxpool - 2 FC. MACs:
  //   conv1  3->16 @32x32 : 1.229 M      conv2 16->20 @16x16 : 2.048 M
  //   conv3 20->32 @ 8x8  : 1.024 M      fc1 2048->64 : 0.131 M, fc2: 640
  //   total ≈ 4.43 M (paper: 4.5 M)
  ModelArch arch;
  arch.name = "lenet";
  arch.topology = "3-2-2";
  arch.layers = {
      LayerSpec::conv(16, 5, 1, 2), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(20, 5, 1, 2), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(32, 5, 1, 2), LayerSpec::relu(),
      LayerSpec::dense(64),         LayerSpec::relu(),
      LayerSpec::dense(10),
  };
  return arch;
}

ModelArch alexnet_arch() {
  // 5 conv (3x3, pad 1) - 2 maxpool - 2 FC. MACs:
  //   conv1  3->32 @32x32 : 0.884 M      conv2 32->56 @16x16 : 4.129 M
  //   conv3 56->96 @ 8x8  : 3.097 M      conv4 96->96 @ 8x8  : 5.308 M
  //   conv5 96->32 @ 8x8  : 1.769 M      fc1 2048->32 : 0.066 M, fc2: 320
  //   total ≈ 15.25 M (paper: 16.1 M)
  ModelArch arch;
  arch.name = "alexnet";
  arch.topology = "5-2-2";
  arch.layers = {
      LayerSpec::conv(32, 3, 1, 1), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(56, 3, 1, 1), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(96, 3, 1, 1), LayerSpec::relu(),
      LayerSpec::conv(96, 3, 1, 1), LayerSpec::relu(),
      LayerSpec::conv(32, 3, 1, 1), LayerSpec::relu(),
      LayerSpec::dense(32),         LayerSpec::relu(),
      LayerSpec::dense(10),
  };
  return arch;
}

ModelArch micronet_arch() {
  ModelArch arch;
  arch.name = "micronet";
  arch.topology = "2-1-1";
  arch.layers = {
      LayerSpec::conv(8, 3, 1, 1),  LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(12, 3, 1, 1), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::dense(10),
  };
  return arch;
}

ModelArch dscnn_arch() {
  // MLPerf-Tiny-keyword-spotting-shaped DS-CNN (MicroNets/Hello Edge
  // lineage), scaled to the 32x32x3 synthetic dataset: a strided conv
  // stem, then 4 depthwise-separable blocks (3x3 depthwise + 1x1
  // pointwise conv), global average pooling and the class head. MACs:
  //   stem   3->16 @16x16 s2 : 0.111 M
  //   ds1 dw 16 @16x16: 0.037 M   pw 16->24: 0.098 M
  //   ds2 dw 24 @ 8x8 s2: 0.014 M pw 24->32: 0.049 M
  //   ds3 dw 32 @ 8x8: 0.018 M    pw 32->32: 0.066 M
  //   ds4 dw 32 @ 8x8: 0.018 M    pw 32->32: 0.066 M
  //   global avgpool 8x8, fc 32->10
  //   total ≈ 0.48 M
  ModelArch arch;
  arch.name = "dscnn";
  arch.topology = "1+4ds-1";
  arch.layers = {
      LayerSpec::conv(16, 3, 2, 1),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1),   LayerSpec::relu(),
      LayerSpec::conv(24, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 2, 1),   LayerSpec::relu(),
      LayerSpec::conv(32, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1),   LayerSpec::relu(),
      LayerSpec::conv(32, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1),   LayerSpec::relu(),
      LayerSpec::conv(32, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::avgpool(8, 8),
      LayerSpec::dense(10),
  };
  return arch;
}

ModelArch mobilenetv2_arch() {
  // MobileNetV2-style inverted-residual net scaled to 32x32x3: a strided
  // conv stem, three inverted bottlenecks (1x1 expand + relu, 3x3
  // depthwise + relu, linear 1x1 project; residual add when the block
  // keeps shape), a 1x1 head conv, global average pooling and the class
  // head. Blocks 1 and 3 carry residual QAdd edges; block 2 strides and
  // changes width, so it has none. MACs:
  //   stem    3->16 @16x16 s2 : 0.111 M
  //   ir1 exp 16->32: 0.131 M  dw 32 @16x16: 0.074 M  proj 32->16: 0.131 M
  //   ir2 exp 16->48: 0.197 M  dw 48 s2    : 0.028 M  proj 48->24: 0.074 M
  //   ir3 exp 24->48: 0.074 M  dw 48 @ 8x8 : 0.028 M  proj 48->24: 0.074 M
  //   head 24->48 @8x8: 0.074 M, global avgpool 8x8, fc 48->10
  //   total ≈ 1.0 M
  ModelArch arch;
  arch.name = "mobilenetv2";
  arch.topology = "1-[r1]-1-[r1]-1-1";
  arch.layers = {
      // stem: spec 0..1; tapped output at spec 1 (16x16x16)
      LayerSpec::conv(16, 3, 2, 1),  LayerSpec::relu(),
      // inverted residual 1 (stride 1, shape kept): spec 2..7
      LayerSpec::conv(32, 1, 1, 0),  LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1), LayerSpec::relu(),
      LayerSpec::conv(16, 1, 1, 0),  // linear bottleneck
      LayerSpec::add(1),
      // inverted residual 2 (stride 2, width change -> no residual):
      // spec 8..12
      LayerSpec::conv(48, 1, 1, 0),  LayerSpec::relu(),
      LayerSpec::depthwise(3, 2, 1), LayerSpec::relu(),
      LayerSpec::conv(24, 1, 1, 0),  // linear bottleneck
      // inverted residual 3 (stride 1, shape kept): spec 13..18
      LayerSpec::conv(48, 1, 1, 0),  LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1), LayerSpec::relu(),
      LayerSpec::conv(24, 1, 1, 0),  // linear bottleneck
      LayerSpec::add(12),
      // head: spec 19..22
      LayerSpec::conv(48, 1, 1, 0),  LayerSpec::relu(),
      LayerSpec::avgpool(8, 8),
      LayerSpec::dense(10),
  };
  return arch;
}

ModelArch vww_arch() {
  // Visual-wakeword model in the MobileNet-class shape MLPerf-Tiny uses
  // for person detection, scaled to the 32x32x3 substrate: a strided conv
  // stem, 3 depthwise-separable blocks, global average pooling and a
  // 2-logit head. MACs:
  //   stem   3->16 @16x16 s2 : 0.111 M
  //   ds1 dw 16 @16x16: 0.037 M   pw 16->24: 0.098 M
  //   ds2 dw 24 @ 8x8 s2: 0.014 M pw 24->32: 0.049 M
  //   ds3 dw 32 @ 8x8: 0.018 M    pw 32->32: 0.066 M
  //   global avgpool 8x8, fc 32->2
  //   total ≈ 0.39 M
  ModelArch arch;
  arch.name = "vww";
  arch.topology = "1+3ds-1";
  arch.layers = {
      LayerSpec::conv(16, 3, 2, 1),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1),   LayerSpec::relu(),
      LayerSpec::conv(24, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 2, 1),   LayerSpec::relu(),
      LayerSpec::conv(32, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::depthwise(3, 1, 1),   LayerSpec::relu(),
      LayerSpec::conv(32, 1, 1, 0),    LayerSpec::relu(),
      LayerSpec::avgpool(8, 8),
      LayerSpec::dense(2),
  };
  return arch;
}

ModelArch ae_anomaly_arch() {
  // Dense bottleneck autoencoder in the MLPerf-Tiny anomaly-detection
  // lineage (ToyADMOS / DCASE): 3072 -> 64 -> 3072, fully connected and
  // deliberately ReLU-free. With plain SGD and no batch norm, deep ReLU
  // autoencoders on this all-positive input domain collapse into dead
  // hidden layers (the constant-predictor minimum), which leaves
  // zero-width activation ranges that int8 quantization cannot price.
  // The linear bottleneck (PCA-style) trains stably and keeps every
  // quantized tensor's range alive. The zoo's first scored (non-argmax)
  // head: the "logits" are the int8 reconstruction, reduced to a
  // mean-squared-error anomaly score by the engines.
  // MACs: 3072*64 + 64*3072 ≈ 0.39 M
  ModelArch arch;
  arch.name = "ae_anomaly";
  arch.topology = "d64-d3072";
  arch.layers = {
      LayerSpec::dense(64),    // linear encoder (no relu: see above)
      LayerSpec::dense(3072),  // linear reconstruction
  };
  return arch;
}

ZooSpec lenet_spec() {
  ZooSpec spec;
  spec.arch = lenet_arch();
  spec.train.epochs = 14;
  spec.train.lr_decay_at = {9, 12};
  spec.train.sgd.learning_rate = 0.012f;
  return spec;
}

ZooSpec alexnet_spec() {
  ZooSpec spec;
  spec.arch = alexnet_arch();
  spec.train.epochs = 12;
  spec.train.lr_decay_at = {8, 11};
  spec.train.sgd.learning_rate = 0.01f;
  return spec;
}

ZooSpec micronet_spec() {
  ZooSpec spec;
  spec.arch = micronet_arch();
  spec.data.train_images = 1500;
  spec.data.test_images = 500;
  spec.train.epochs = 6;
  spec.train.lr_decay_at = {4};
  return spec;
}

ZooSpec dscnn_spec() {
  ZooSpec spec;
  spec.arch = dscnn_arch();
  spec.data.train_images = 4000;
  spec.data.test_images = 1000;
  spec.train.epochs = 10;
  spec.train.lr_decay_at = {7, 9};
  spec.train.sgd.learning_rate = 0.015f;
  return spec;
}

ZooSpec mobilenetv2_spec() {
  ZooSpec spec;
  spec.arch = mobilenetv2_arch();
  spec.data.train_images = 4000;
  spec.data.test_images = 1000;
  spec.train.epochs = 10;
  spec.train.lr_decay_at = {7, 9};
  spec.train.sgd.learning_rate = 0.015f;
  return spec;
}

ZooSpec vww_spec() {
  ZooSpec spec;
  spec.arch = vww_arch();
  spec.data.task = SynthTask::kVww;
  spec.data.train_images = 3000;
  spec.data.test_images = 800;
  spec.train.epochs = 8;
  spec.train.lr_decay_at = {6};
  spec.train.sgd.learning_rate = 0.015f;
  return spec;
}

ZooSpec ae_anomaly_spec() {
  ZooSpec spec;
  spec.arch = ae_anomaly_arch();
  spec.data.task = SynthTask::kAnomaly;
  spec.data.train_images = 3000;
  spec.data.test_images = 800;
  spec.train.loss = TrainLoss::kMseReconstruction;
  // Linear-stack SGD converges slowly (the composite decoder*encoder map
  // is ill-conditioned), so the autoencoder gets more epochs than the
  // conv nets; each one is ~1 s. lr 0.05 is the stable knee: the
  // per-element MSE gradient carries a /3072 reconstruction-width factor
  // (wanting a larger step than the conv nets' 0.015), but the 3072-wide
  // decoder amplifies steps back — 0.1 and up diverge to inf.
  spec.train.epochs = 20;
  spec.train.lr_decay_at = {16};
  spec.train.sgd.learning_rate = 0.05f;
  spec.train.sgd.weight_decay = 1e-5f;
  return spec;
}

std::string artifact_cache_dir() {
  if (const char* env = std::getenv("ATAMAN_CACHE_DIR");
      env != nullptr && env[0] != '\0')
    return env;
  return "artifacts";
}

TrainedModel train_from_scratch(const ZooSpec& spec, bool verbose) {
  const SynthCifar data = make_synth_cifar(spec.data);
  Rng init_rng(spec.init_seed);
  TrainedModel model{spec.arch,
                     Network(spec.arch, data.train.shape(), init_rng)};
  TrainConfig cfg = spec.train;
  cfg.verbose = verbose;
  if (verbose) {
    std::printf("[zoo] training %s (%s): %lld params, %lld MACs\n",
                spec.arch.name.c_str(), spec.arch.topology.c_str(),
                static_cast<long long>(model.net.param_count()),
                static_cast<long long>(model.net.mac_count()));
    std::fflush(stdout);
  }
  const TrainResult result =
      train_network(model.net, data.train, data.test, cfg);
  model.train_accuracy = result.final_train_accuracy;
  model.test_accuracy = result.test_accuracy;
  if (verbose) {
    std::printf("[zoo] %s: float test accuracy %.4f\n", spec.arch.name.c_str(),
                model.test_accuracy);
    std::fflush(stdout);
  }
  return model;
}

void save_trained_model(const TrainedModel& model, const std::string& path) {
  BinaryWriter w(path, kModelMagic);
  w.str(model.arch.name);
  w.f64(model.test_accuracy);
  w.f64(model.train_accuracy);
  uint32_t param_tensors = 0;
  for (const auto& layer : model.net.layers()) {
    std::vector<ParamRef> refs;
    layer->collect_params(refs);
    param_tensors += static_cast<uint32_t>(refs.size());
  }
  w.u32(param_tensors);
  for (const auto& layer : model.net.layers()) {
    std::vector<ParamRef> refs;
    layer->collect_params(refs);
    for (const ParamRef& p : refs) w.vec(*p.value);
  }
  w.close();
}

TrainedModel load_trained_model(const ZooSpec& spec, const std::string& path) {
  BinaryReader r(path, kModelMagic);
  const std::string name = r.str();
  check(name == spec.arch.name,
        "cached model " + path + " is for architecture " + name);
  TrainedModel model;
  model.arch = spec.arch;
  Rng init_rng(spec.init_seed);
  // Rebuild the graph (needs dataset image shape: fixed 32x32x3).
  model.net = Network(spec.arch, ImageShape{}, init_rng);
  model.test_accuracy = r.f64();
  model.train_accuracy = r.f64();
  const uint32_t param_tensors = r.u32();
  std::vector<ParamRef> refs = model.net.params();
  check(param_tensors == refs.size(), "parameter count mismatch in " + path);
  for (ParamRef& p : refs) {
    std::vector<float> v = r.vec<float>();
    check(v.size() == p.value->size(), "parameter size mismatch in " + path);
    *p.value = std::move(v);
  }
  return model;
}

TrainedModel get_or_train(const ZooSpec& spec, const std::string& cache_dir) {
  ensure_directory(cache_dir);
  const std::string path = cache_path(spec, cache_dir);
  if (file_exists(path)) {
    return load_trained_model(spec, path);
  }
  TrainedModel model = train_from_scratch(spec, /*verbose=*/true);
  save_trained_model(model, path);
  return model;
}

}  // namespace ataman
