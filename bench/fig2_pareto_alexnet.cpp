// Fig. 2(a) — Pareto space between accuracy and normalized MAC reduction
// for AlexNet, all conv layers approximated (tau in [0, 0.1], paper step
// 0.01).
#include "bench/fig2_common.hpp"

int main(int argc, char** argv) {
  const auto scale = ataman::bench::parse_scale(argc, argv);
  return ataman::bench::run_fig2(ataman::bench::load_alexnet(), scale);
}
