// Reference int8 inference engine.
//
// Runs a QModel image-by-image with the golden kernels. Supports
//   * skip masks (the DSE evaluates approximate configs through here —
//     masking a product is numerically identical to omitting its
//     instruction from unpacked code, which tests/test_unpack.cpp asserts)
//   * conv-input taps (the significance analysis captures activation
//     statistics through these).
//
// As an InferenceEngine it is the numerical oracle: every other backend
// must match its logits bit-exactly on exact configs. It models no MCU
// deployment, so its cycle/flash/RAM columns are zero ("not modeled").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/data/dataset.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

// Called before each approximable (conv/depthwise) layer executes:
// (approx_ordinal, layer, input). The layer is passed as the QLayer
// variant so statistics capture handles every approximable kind through
// one hook.
using ConvTap =
    std::function<void(int, const QLayer&, std::span<const int8_t>)>;

class RefEngine : public InferenceEngine {
 public:
  explicit RefEngine(const QModel* model);

  // Mask applied by the virtual run/classify when none is passed
  // explicitly (how the registry binds a mask to a "ref" engine).
  // `mask` must outlive the engine; nullptr unbinds.
  void bind_mask(const SkipMask* mask) { default_mask_ = mask; }

  // The mask lives in run-time state only, so one instance serves any
  // number of approximate configs (serve pools rebind per micro-batch).
  bool supports_mask_rebind() const override { return true; }
  void rebind_mask(const SkipMask* mask) override { bind_mask(mask); }

  // Trivially cheap: the engine is a model pointer plus a mask pointer.
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<RefEngine>(*this);
  }

  // InferenceEngine: exact (or bound-mask) inference.
  std::vector<int8_t> run(std::span<const uint8_t> image) const override;
  int classify(std::span<const uint8_t> image) const override;

  // Layer-major batched walk under the bound mask: each layer runs over
  // the whole batch before the next one starts, so its weights stay hot
  // across all images instead of being re-streamed per image.
  bool supports_run_batch() const override { return true; }
  void run_batch(std::span<const std::span<const uint8_t>> images,
                 std::vector<std::vector<int8_t>>& logits_out) const override;

  int64_t total_cycles() const override { return 0; }  // not modeled
  int64_t mac_ops() const override;  // executed MACs under the bound mask
  int64_t flash_bytes() const override { return 0; }
  int64_t ram_bytes() const override { return 0; }

  // Layer-boundary resume (the DSE's prefix cache enters here): run
  // layers [layer_begin, end) on the given int8 activations under the
  // bound mask. See InferenceEngine::run_from for the contract.
  bool supports_run_from() const override { return true; }
  std::vector<int8_t> run_from(
      int layer_begin, std::span<const int8_t> activations) const override;

  // Streaming-frame execution with temporal column reuse (the temporal
  // analogue of run_from's cross-config prefix reuse). Splices the
  // per-layer output columns that src/mcu/stream_plan.hpp proves
  // bitwise-equal to a retained past frame, recomputes the rest through
  // the column-restricted reference kernels, and advances the ring in
  // `state`. Runs under the bound mask; the mask identity is pinned by
  // the session's first frame. See InferenceEngine::run_incremental.
  bool supports_run_incremental() const override { return true; }
  std::vector<int8_t> run_incremental(
      StreamState& state,
      std::span<const uint8_t> new_columns) const override;

  // Full inference with an explicit mask and optional conv-input tap.
  std::vector<int8_t> run(std::span<const uint8_t> image,
                          const SkipMask* mask,
                          const ConvTap& tap = nullptr) const;

  // run_from with an explicit mask/tap (the override above forwards here
  // with the bound mask).
  std::vector<int8_t> run_from(int layer_begin,
                               std::span<const int8_t> activations,
                               const SkipMask* mask,
                               const ConvTap& tap = nullptr) const;

  int classify(std::span<const uint8_t> image, const SkipMask* mask) const;

 private:
  // Shared DAG walker: executes layers [layer_begin, end) in topological
  // (stored) order over slot buffers from the liveness plan. `act` is
  // tensor `layer_begin`, so layer_begin must be a linear boundary
  // (QModel::linear_boundary) — trivially true everywhere on chains.
  std::vector<int8_t> run_layers(int layer_begin, std::vector<int8_t> act,
                                 const SkipMask* mask,
                                 const ConvTap& tap) const;

  // Liveness-based activation-buffer plan (src/mcu/memory_model),
  // computed once per model: slot assignment degenerates to the old
  // ping-pong pair on chains.
  ActivationPlan plan_;
  const SkipMask* default_mask_ = nullptr;
};

// Top-1 accuracy of `model` on up to `limit` images of `ds` (all if
// limit < 0; limit == 0 throws). Thin wrapper over the shared batched
// evaluator in src/core/eval — parallel over images, deterministic, and
// serial when called from inside an enclosing parallel region.
double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask = nullptr,
                                   int limit = -1);

}  // namespace ataman
