// Code unpacking: bit-exactness (exact and skipped), offline re-pairing,
// static instruction counts, flash/cycle monotonicity.
#include <gtest/gtest.h>

#include "src/cmsisnn/smlad.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "src/unpack/unpacked_layer.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_input;
using testing::make_random_qconv;
using testing::make_random_skip;
using testing::make_tiny_qmodel;

struct UnpackCase {
  int in_h, in_w, in_c, out_c, kernel, stride, pad;
  double skip_density;
};

class UnpackShapes : public ::testing::TestWithParam<UnpackCase> {};

TEST_P(UnpackShapes, BitExactVsMaskedReference) {
  const UnpackCase& c = GetParam();
  ConvGeom g;
  g.in_h = c.in_h; g.in_w = c.in_w; g.in_c = c.in_c;
  g.out_c = c.out_c; g.kernel = c.kernel; g.stride = c.stride; g.pad = c.pad;
  const QConv2D conv = make_random_qconv(g, 17 * c.out_c + c.kernel);
  const auto skip = make_random_skip(g, c.skip_density, 600);
  const uint8_t* skip_ptr = c.skip_density > 0.0 ? skip.data() : nullptr;

  const UnpackedConv u = UnpackedConv::build(conv, skip_ptr);
  const auto in = make_random_input(
      static_cast<int64_t>(g.in_h) * g.in_w * g.in_c, 601);

  std::vector<int8_t> want(static_cast<size_t>(g.positions()) * g.out_c);
  std::vector<int8_t> got(want.size());
  conv2d_ref(conv, in, want, skip_ptr);
  u.run(in, got);
  EXPECT_EQ(want, got);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, UnpackShapes,
    ::testing::Values(UnpackCase{8, 8, 3, 4, 3, 1, 1, 0.0},
                      UnpackCase{8, 8, 3, 4, 3, 1, 1, 0.3},
                      UnpackCase{8, 8, 4, 6, 3, 1, 1, 0.5},
                      UnpackCase{10, 10, 2, 3, 5, 1, 2, 0.7},
                      UnpackCase{9, 7, 5, 4, 3, 2, 0, 0.25},
                      UnpackCase{6, 6, 1, 8, 1, 1, 0, 0.9},
                      UnpackCase{6, 6, 2, 2, 3, 1, 1, 1.0}));

TEST(UnpackedConv, ExactBuildCountsEveryWeight) {
  ConvGeom g;
  g.in_h = 6; g.in_w = 6; g.in_c = 3;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 1;  // patch 27 (odd)
  const QConv2D conv = make_random_qconv(g, 5);
  const UnpackedConv u = UnpackedConv::build(conv);
  EXPECT_EQ(u.static_pairs(), 4 * 13);
  EXPECT_EQ(u.static_singles(), 4);
  EXPECT_EQ(u.retained_macs(), g.macs());
}

TEST(UnpackedConv, RepairingAfterSkipping) {
  // Skip 3 of 27 operands in channel 0: retained 24 -> 12 pairs, 0 single.
  ConvGeom g;
  g.in_h = 4; g.in_w = 4; g.in_c = 3;
  g.out_c = 2; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 6);
  std::vector<uint8_t> skip(static_cast<size_t>(g.weight_count()), 0);
  skip[2] = skip[10] = skip[20] = 1;  // channel 0
  const UnpackedConv u = UnpackedConv::build(conv, skip.data());
  EXPECT_EQ(u.channels[0].pairs.size(), 12u);
  EXPECT_FALSE(u.channels[0].has_single);
  EXPECT_EQ(u.channels[1].pairs.size(), 13u);
  EXPECT_TRUE(u.channels[1].has_single);
  // Skipped operand indices never appear in the program.
  for (const MacPairOp& op : u.channels[0].pairs) {
    EXPECT_NE(op.operand_a, 2u);
    EXPECT_NE(op.operand_b, 10u);
    EXPECT_NE(op.operand_a, 20u);
  }
}

TEST(UnpackedConv, PackedConstantsMatchWeights) {
  ConvGeom g;
  g.in_h = 3; g.in_w = 3; g.in_c = 2;
  g.out_c = 1; g.kernel = 1; g.stride = 1; g.pad = 0;  // patch 2
  QConv2D conv = make_random_qconv(g, 7);
  conv.weights = {64, 20};  // the paper's example pair
  const UnpackedConv u = UnpackedConv::build(conv);
  ASSERT_EQ(u.channels[0].pairs.size(), 1u);
  // low lane = first operand (20 is hi? no: lo=w[0]=64? check convention)
  // pack_weight_pair(hi=w[1]=20, lo=w[0]=64).
  EXPECT_EQ(u.channels[0].pairs[0].weight_const,
            pack_weight_pair(20, 64));
}

TEST(UnpackedConv, FullSkipYieldsBiasOnly) {
  ConvGeom g;
  g.in_h = 4; g.in_w = 4; g.in_c = 2;
  g.out_c = 3; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 8);
  std::vector<uint8_t> skip(static_cast<size_t>(g.weight_count()), 1);
  const UnpackedConv u = UnpackedConv::build(conv, skip.data());
  EXPECT_EQ(u.static_pairs(), 0);
  EXPECT_EQ(u.static_singles(), 0);
  EXPECT_EQ(u.retained_macs(), 0);

  const auto in = make_random_input(4 * 4 * 2, 9);
  std::vector<int8_t> out(static_cast<size_t>(g.positions()) * g.out_c);
  u.run(in, out);
  // Every position of a channel outputs requant(bias).
  for (int oc = 0; oc < g.out_c; ++oc)
    for (int pos = 1; pos < g.positions(); ++pos)
      EXPECT_EQ(out[static_cast<size_t>(pos) * g.out_c + oc],
                out[static_cast<size_t>(oc)]);
}

TEST(UnpackedEngine, ExactUnpackingBitExactVsReference) {
  const QModel m = make_tiny_qmodel(12);
  RefEngine ref(&m);
  UnpackedEngine up(&m);
  for (int i = 0; i < 30; ++i) {
    const auto img = testing::make_random_image(12 * 12 * 3, 700 + i);
    ASSERT_EQ(ref.run(img), up.run(img)) << "image " << i;
  }
}

TEST(UnpackedEngine, SkippedEngineMatchesMaskedReference) {
  const QModel m = make_tiny_qmodel(13);
  SkipMask mask = SkipMask::none(m);
  Rng rng(14);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.35) ? 1 : 0;

  RefEngine ref(&m);
  UnpackedEngine up(&m, &mask);
  for (int i = 0; i < 30; ++i) {
    const auto img = testing::make_random_image(12 * 12 * 3, 800 + i);
    ASSERT_EQ(ref.run(img, &mask), up.run(img)) << "image " << i;
  }
}

TEST(UnpackedEngine, SkippingReducesCyclesAndMacs) {
  const QModel m = make_tiny_qmodel(15);
  UnpackedEngine exact(&m);
  SkipMask mask = SkipMask::none(m);
  Rng rng(16);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.5) ? 1 : 0;
  UnpackedEngine skipped(&m, &mask);

  EXPECT_LT(skipped.total_cycles(), exact.total_cycles());
  EXPECT_LT(skipped.executed_macs(), exact.executed_macs());
  EXPECT_EQ(exact.executed_macs(), m.mac_count());
}

TEST(UnpackedEngine, FlashShrinksWithSkipping) {
  const QModel m = make_tiny_qmodel(17);
  UnpackedEngine exact(&m);
  SkipMask mask = SkipMask::none(m);
  Rng rng(18);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.6) ? 1 : 0;
  UnpackedEngine skipped(&m, &mask);
  EXPECT_LT(skipped.flash().unpacked_code_bytes,
            exact.flash().unpacked_code_bytes);
  EXPECT_LT(skipped.flash().total_bytes, exact.flash().total_bytes);
}

TEST(CostModel, UnpackedCyclesMonotoneInRetainedOps) {
  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 4;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 19);
  const int64_t full = unpacked_conv_cycles(conv, 72, 0);
  const int64_t half = unpacked_conv_cycles(conv, 36, 0);
  const int64_t none = unpacked_conv_cycles(conv, 0, 0);
  EXPECT_GT(full, half);
  EXPECT_GT(half, none);
  EXPECT_GT(none, 0);  // epilogues remain
}

}  // namespace
}  // namespace ataman
