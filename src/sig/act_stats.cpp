#include "src/sig/act_stats.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/nn/engine.hpp"

namespace ataman {

namespace {

// Receptive-field geometry of one approximable layer, with `taps_c` the
// innermost (channel) extent of a patch row: in_c for conv, channels for
// depthwise. The (ky, kx, c)-flattened accumulation index then matches
// the conv patch order and the depthwise [k][k][c] weight layout alike.
struct PatchGeom {
  int in_h, in_w, taps_c, kernel, stride, pad;
  int out_h, out_w;
  int32_t zp;
};

PatchGeom patch_geom(const QLayer& layer) {
  if (const auto* conv = std::get_if<QConv2D>(&layer)) {
    const ConvGeom& g = conv->geom;
    return {g.in_h,    g.in_w,    g.in_c, g.kernel, g.stride, g.pad,
            g.out_h(), g.out_w(), conv->in.zero_point};
  }
  const auto& dw = std::get<QDepthwiseConv2D>(layer);
  return {dw.in_h,    dw.in_w,    dw.channels, dw.kernel, dw.stride, dw.pad,
          dw.out_h(), dw.out_w(), dw.in.zero_point};
}

// Accumulate per-operand sums of (x - zp) over all output positions of
// one input feature map.
void accumulate_patch_sums(const PatchGeom& g, std::span<const int8_t> in,
                           std::vector<double>& sums, int64_t& positions) {
  for (int oy = 0; oy < g.out_h; ++oy) {
    for (int ox = 0; ox < g.out_w; ++ox) {
      int idx = 0;
      for (int ky = 0; ky < g.kernel; ++ky) {
        const int iy = oy * g.stride - g.pad + ky;
        for (int kx = 0; kx < g.kernel; ++kx) {
          const int ix = ox * g.stride - g.pad + kx;
          const bool inside =
              iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
          const int8_t* src =
              inside ? in.data() +
                           (static_cast<size_t>(iy) * g.in_w + ix) * g.taps_c
                     : nullptr;
          for (int c = 0; c < g.taps_c; ++c, ++idx) {
            // Padding taps contribute (zp - zp) == 0.
            if (inside)
              sums[static_cast<size_t>(idx)] +=
                  static_cast<double>(src[c] - g.zp);
          }
        }
      }
    }
  }
  positions += static_cast<int64_t>(g.out_h) * g.out_w;
}

}  // namespace

int64_t stats_len(const QLayer& layer) {
  const PatchGeom g = patch_geom(layer);
  return static_cast<int64_t>(g.kernel) * g.kernel * g.taps_c;
}

std::vector<ConvInputStats> capture_activation_stats(const QModel& model,
                                                     const Dataset& calib,
                                                     int limit) {
  const int n = limit < 0 ? calib.size() : std::min(limit, calib.size());
  check(n > 0, "calibration subset is empty");
  const int approx_count = model.approx_layer_count();
  // Nothing to capture on models with no approximable layers (dense-only
  // autoencoders): the legitimate answer is an empty stats vector.
  if (approx_count == 0) return {};

  RefEngine engine(&model);

  // Per-worker accumulators, reduced in worker order for determinism.
  struct Acc {
    std::vector<std::vector<double>> sums;   // [approx ordinal][patch]
    std::vector<int64_t> positions;          // [approx ordinal]
  };
  const int max_workers = num_threads();
  std::vector<Acc> accs(static_cast<size_t>(max_workers));
  for (Acc& acc : accs) {
    acc.sums.resize(static_cast<size_t>(approx_count));
    acc.positions.assign(static_cast<size_t>(approx_count), 0);
    int ordinal = 0;
    for (const QLayer& layer : model.layers) {
      if (!describe_layer(layer).skippable) continue;
      acc.sums[static_cast<size_t>(ordinal)].assign(
          static_cast<size_t>(stats_len(layer)), 0.0);
      ++ordinal;
    }
  }

  const int workers = parallel_for_indexed(0, n, [&](int w, int64_t i) {
    Acc& acc = accs[static_cast<size_t>(w)];
    const ConvTap tap = [&](int ordinal, const QLayer& layer,
                            std::span<const int8_t> in) {
      accumulate_patch_sums(patch_geom(layer), in,
                            acc.sums[static_cast<size_t>(ordinal)],
                            acc.positions[static_cast<size_t>(ordinal)]);
    };
    (void)engine.run(calib.image(static_cast<int>(i)), nullptr, tap);
  });

  std::vector<ConvInputStats> stats(static_cast<size_t>(approx_count));
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    if (!describe_layer(layer).skippable) continue;
    ConvInputStats& s = stats[static_cast<size_t>(ordinal)];
    s.mean_corrected.assign(static_cast<size_t>(stats_len(layer)), 0.0);
    for (int w = 0; w < workers; ++w) {
      const Acc& acc = accs[static_cast<size_t>(w)];
      for (size_t i = 0; i < s.mean_corrected.size(); ++i)
        s.mean_corrected[i] += acc.sums[static_cast<size_t>(ordinal)][i];
      s.samples += acc.positions[static_cast<size_t>(ordinal)];
    }
    check(s.samples > 0, "no positions captured");
    for (double& v : s.mean_corrected)
      v /= static_cast<double>(s.samples);
    ++ordinal;
  }
  return stats;
}

}  // namespace ataman
