#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "src/common/error.hpp"

namespace ataman {

namespace {
constexpr uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr uint64_t rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(uint64_t stream_id) const {
  // Mix the base seed with the stream id through splitmix so forked
  // streams are decorrelated even for consecutive ids.
  uint64_t mix = seed_ ^ (0xA0761D6478BD642FULL * (stream_id + 1));
  return Rng(splitmix64(mix));
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  check(bound > 0, "Rng::next_below requires bound > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  check(lo <= hi, "Rng::next_int requires lo <= hi");
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::to_float01(double d) {
  // static_cast rounds to nearest: any d >= 1 - 2^-25 lands on exactly
  // 1.0f, violating the [0, 1) contract (and letting next_uniform(lo, hi)
  // return hi). Clamp to the largest float below 1. Clamping (rather than
  // rederiving from 24 high bits) keeps every non-pathological draw
  // bit-identical to the historical stream, so seeded datasets and weight
  // init reproduce unchanged.
  const float f = static_cast<float>(d);
  return f < 1.0f ? f : 0x1.fffffep-1f;
}

float Rng::next_float() { return to_float01(next_double()); }

float Rng::next_uniform(float lo, float hi) {
  return lo + (hi - lo) * next_float();
}

float Rng::next_normal() {
  // Box-Muller; draws two uniforms per call (second value discarded to
  // keep the generator stateless w.r.t. call sites).
  const double u1 = 1.0 - next_double();  // (0, 1]
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * std::numbers::pi * u2));
}

float Rng::next_normal(float mean, float stddev) {
  return mean + stddev * next_normal();
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

}  // namespace ataman
