#include "src/serve/request_queue.hpp"

#include "src/common/error.hpp"

namespace ataman::serve {

RequestQueue::RequestQueue(int max_batch) : max_batch_(max_batch) {
  check(max_batch >= 1, "RequestQueue max_batch must be >= 1");
}

bool RequestQueue::same_key(const InferRequest& a, const InferRequest& b) {
  return a.mask == b.mask && a.engine == b.engine;
}

bool RequestQueue::push(QueuedJob job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::pop_batch(std::vector<QueuedJob>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained

  out.push_back(std::move(jobs_.front()));
  jobs_.pop_front();
  // Coalesce later same-key arrivals (arrival order preserved — we scan
  // front to back and never reorder survivors).
  for (auto it = jobs_.begin();
       it != jobs_.end() && static_cast<int>(out.size()) < max_batch_;) {
    if (same_key(out.front().request, it->request)) {
      out.push_back(std::move(*it));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<QueuedJob> RequestQueue::cancel_pending() {
  std::vector<QueuedJob> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cancelled.reserve(jobs_.size());
    while (!jobs_.empty()) {
      cancelled.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
    }
  }
  cv_.notify_all();
  return cancelled;
}

int RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(jobs_.size());
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace ataman::serve
