#include "src/dse/prefix_cache.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

PrefixCache::PrefixCache(const QModel* model,
                         const std::vector<LayerSignificance>* significance,
                         const Dataset* eval,
                         const std::vector<ApproxConfig>& configs,
                         int eval_images)
    : model_(model), eval_(eval), ref_(model) {
  check(model != nullptr && significance != nullptr && eval != nullptr,
        "prefix cache needs model, significance and eval set");
  check(!configs.empty(), "prefix cache needs at least one config");
  approx_count_ = model_->approx_layer_count();
  check(approx_count_ > 0,
        "prefix cache needs at least one approximable layer");
  check(static_cast<int>(significance->size()) == approx_count_,
        "significance does not match model");
  n_images_ = clamp_eval_limit(eval_images, eval_->size());
  // Golden-ratio stride (bumped to the next value coprime with the image
  // count) so position prefixes sample the eval subset evenly; see
  // image_at().
  stride_ = std::max(1, static_cast<int>(n_images_ * 0.6180339887));
  while (std::gcd(stride_, n_images_) != 1) ++stride_;

  approx_pos_.resize(static_cast<size_t>(approx_count_));
  for (int k = 0; k < approx_count_; ++k)
    approx_pos_[static_cast<size_t>(k)] = model_->approx_layer_index(k);
  // Exact tail: first linear boundary behind the last approximable layer
  // (trailing residual adds join the last stage so run_from stays valid).
  const int layer_count = static_cast<int>(model_->layers.size());
  tail_begin_ = approx_pos_.back() + 1;
  while (tail_begin_ < layer_count && !model_->linear_boundary(tail_begin_))
    ++tail_begin_;

  // Stage partition (header comment): ordinal k opens a new stage when
  // the deepest linear boundary at or before its layer — the dominating
  // boundary — falls behind ordinal k-1's layer, i.e. the model can be
  // cut between the two with a single cached tensor. On chains every
  // ordinal opens its own stage.
  for (int k = 0; k < approx_count_; ++k) {
    const int cut =
        model_->dominating_boundary(approx_pos_[static_cast<size_t>(k)]);
    if (k == 0) {
      stage_begin_.push_back(cut);
      stage_first_ordinal_.push_back(0);
    } else if (cut > approx_pos_[static_cast<size_t>(k - 1)]) {
      stage_begin_.push_back(cut);
      stage_first_ordinal_.push_back(k);
    }
  }

  const int n_cfg = static_cast<int>(configs.size());
  masked_.resize(static_cast<size_t>(approx_count_));
  key_slot_.resize(static_cast<size_t>(approx_count_));
  keys_.assign(static_cast<size_t>(n_cfg),
               std::vector<int64_t>(static_cast<size_t>(approx_count_), 0));
  slots_.assign(static_cast<size_t>(n_cfg),
                std::vector<int>(static_cast<size_t>(approx_count_), -1));

  // Materialize one zeroed-weight variant per distinct (layer, skip set).
  // The per-layer key is the skipped-operand count: skip sets are nested
  // in tau (skip_plan.hpp), so equal cardinality implies equal set and
  // one tau per distinct count suffices.
  std::vector<uint8_t> layer_mask;
  for (int k = 0; k < approx_count_; ++k) {
    const QLayer& layer =
        model_->layers[static_cast<size_t>(approx_pos_[static_cast<size_t>(k)])];
    const int64_t operand_count =
        describe_layer(layer).skippable_operand_count();
    const LayerSignificance& sig = (*significance)[static_cast<size_t>(k)];
    std::map<double, std::pair<int64_t, int>> by_tau;  // tau -> (key, slot)
    for (int c = 0; c < n_cfg; ++c) {
      check(static_cast<int>(configs[static_cast<size_t>(c)].tau.size()) ==
                approx_count_,
            "config does not match model");
      const double tau = configs[static_cast<size_t>(c)].tau[static_cast<size_t>(k)];
      if (tau < 0.0) continue;  // exact layer: key 0, slot -1
      auto it = by_tau.find(tau);
      if (it == by_tau.end()) {
        // Same comparison make_skip_mask uses (kAlwaysRetain channels
        // never satisfy <= tau), so the variant matches the legacy mask.
        layer_mask.assign(static_cast<size_t>(operand_count), 0);
        int64_t skipped = 0;
        for (size_t i = 0; i < layer_mask.size(); ++i) {
          layer_mask[i] = sig.S[i] <= static_cast<float>(tau) ? 1 : 0;
          skipped += layer_mask[i];
        }
        int slot = -1;
        if (skipped > 0) {
          auto slot_it = key_slot_[static_cast<size_t>(k)].find(skipped);
          if (slot_it == key_slot_[static_cast<size_t>(k)].end()) {
            QLayer variant = layer;
            zero_skipped_weights(variant, layer_mask);
            slot = static_cast<int>(masked_[static_cast<size_t>(k)].size());
            masked_[static_cast<size_t>(k)].push_back(std::move(variant));
            key_slot_[static_cast<size_t>(k)].emplace(skipped, slot);
          } else {
            slot = slot_it->second;
          }
        }
        it = by_tau.emplace(tau, std::make_pair(skipped, slot)).first;
      }
      keys_[static_cast<size_t>(c)][static_cast<size_t>(k)] = it->second.first;
      slots_[static_cast<size_t>(c)][static_cast<size_t>(k)] = it->second.second;
    }
  }

  // Trie leaf order: lexicographic by key vector, stable by config index
  // so the all-exact config 0 stays first among all-exact twins.
  order_.resize(static_cast<size_t>(n_cfg));
  for (int c = 0; c < n_cfg; ++c) order_[static_cast<size_t>(c)] = c;
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const auto& ka = keys_[static_cast<size_t>(a)];
    const auto& kb = keys_[static_cast<size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  });

  lcp_.assign(static_cast<size_t>(n_cfg), 0);
  for (int p = 1; p < n_cfg; ++p) {
    const auto& ka = keys_[static_cast<size_t>(order_[static_cast<size_t>(p - 1)])];
    const auto& kb = keys_[static_cast<size_t>(order_[static_cast<size_t>(p)])];
    int l = 0;
    while (l < approx_count_ && ka[static_cast<size_t>(l)] == kb[static_cast<size_t>(l)])
      ++l;
    lcp_[static_cast<size_t>(p)] = l;
  }
}

void PrefixCache::run_range(int begin, int end,
                            const std::vector<int>* slot_row,
                            int first_ordinal,
                            const std::vector<int8_t>& in,
                            std::vector<int8_t>& out) const {
  check(end > begin, "run_range needs at least one layer");
  // DAG-local tensor walk: every tensor id a layer in [begin, end) reads
  // lies in [begin, end] (begin is a linear boundary, layers are
  // topologically ordered), so `in` plus end-begin local outputs cover
  // the whole range.
  std::vector<std::vector<int8_t>> local(static_cast<size_t>(end - begin));
  auto tensor_of = [&](int t) -> const std::vector<int8_t>& {
    return t == begin ? in : local[static_cast<size_t>(t - begin - 1)];
  };
  int ordinal = first_ordinal;
  for (int l = begin; l < end; ++l) {
    const QLayer* layer = &model_->layers[static_cast<size_t>(l)];
    if (describe_layer(*layer).skippable) {
      const int slot =
          slot_row != nullptr ? (*slot_row)[static_cast<size_t>(ordinal)] : -1;
      if (slot >= 0)
        layer = &masked_[static_cast<size_t>(ordinal)]
                        [static_cast<size_t>(slot)];
      ++ordinal;
    }
    const std::vector<int> ins = model_->inputs_of(l);
    std::vector<int8_t>& dst = local[static_cast<size_t>(l - begin)];
    if (const auto* add = std::get_if<QAdd>(layer)) {
      dst.assign(static_cast<size_t>(add->elems()), 0);
      qadd_ref(*add, tensor_of(ins[0]), tensor_of(ins[1]), dst);
    } else {
      run_layer_ref(*layer, tensor_of(ins[0]), dst, nullptr);
    }
  }
  out = std::move(local.back());
}

int PrefixCache::stage_for_depth(int depth) const {
  int s = 0;
  while (s + 1 < static_cast<int>(stage_first_ordinal_.size()) &&
         stage_first_ordinal_[static_cast<size_t>(s + 1)] <= depth)
    ++s;
  return s;
}

PrefixCacheStats PrefixCache::evaluate_ranges(
    const std::vector<int>& img_begin, const std::vector<int>& img_end,
    std::vector<uint8_t>& hits) const {
  const int n_cfg = config_count();
  check(static_cast<int>(img_begin.size()) == n_cfg &&
            static_cast<int>(img_end.size()) == n_cfg,
        "range vectors do not match config count");
  check(hits.size() == static_cast<size_t>(n_cfg) * n_images_,
        "hits matrix size mismatch");
  int lo_img = n_images_, hi_img = 0;
  for (int c = 0; c < n_cfg; ++c) {
    const int b = img_begin[static_cast<size_t>(c)];
    const int e = img_end[static_cast<size_t>(c)];
    check(b >= 0 && e <= n_images_, "image range out of bounds");
    if (b >= e) continue;
    lo_img = std::min(lo_img, b);
    hi_img = std::max(hi_img, e);
  }
  if (lo_img >= hi_img) return {};

  const int n_stages = static_cast<int>(stage_begin_.size());
  std::atomic<int64_t> run_total{0}, reuse_total{0};
  parallel_for_chunked(lo_img, hi_img, [&](int64_t lo, int64_t hi) {
    // boundary[s] holds tensor stage_begin_[s] (the single-tensor linear
    // cut opening stage s) for the current image; boundary[n_stages] the
    // input of the exact tail.
    std::vector<std::vector<int8_t>> boundary(
        static_cast<size_t>(n_stages) + 1);
    int64_t run = 0, reuse = 0;
    for (int64_t img = lo; img < hi; ++img) {
      const int i = static_cast<int>(img);  // position; hits row offset
      const int image_index = image_at(i);  // dataset image it samples
      const int label = eval_->label(image_index);
      std::vector<int8_t> act =
          ref_.quantize_input(eval_->image(image_index));
      // Scored heads compare the reconstruction against the quantized
      // input at the tail, so keep a copy before `act` is consumed by
      // the boundary buffers below.
      const bool scored = ref_.model().head == TaskHead::kScore;
      std::vector<int8_t> q_input;
      if (scored) q_input = act;
      // Layers before the first stage (normally none) hold no
      // approximable layer; run them once into the depth-0 boundary.
      if (stage_begin_.front() > 0) {
        run_range(0, stage_begin_.front(), nullptr, 0, act, boundary[0]);
      } else {
        boundary[0] = std::move(act);
      }

      // One trie walk per image over every config whose range covers it.
      // The resume depth over a gap of skipped configs is the min of the
      // adjacent lcps (standard property of a lexicographically sorted
      // sequence), tracked in `pending`.
      int pending = approx_count_;
      bool first = true;
      uint8_t prev_hit = 0;
      for (int p = 0; p < n_cfg; ++p) {
        pending = std::min(pending, lcp_[static_cast<size_t>(p)]);
        const int c = order_[static_cast<size_t>(p)];
        if (i < img_begin[static_cast<size_t>(c)] ||
            i >= img_end[static_cast<size_t>(c)])
          continue;
        const int depth = first ? 0 : pending;
        uint8_t hit;
        if (depth == approx_count_) {
          hit = prev_hit;  // identical config key: identical logits
          reuse += approx_count_ + 1;
        } else {
          // Resume from the dominating stage boundary: the deepest
          // single-tensor cut at or below the shared ordinal depth.
          const int s0 = stage_for_depth(depth);
          const int resume_ordinal =
              stage_first_ordinal_[static_cast<size_t>(s0)];
          for (int s = s0; s < n_stages; ++s) {
            const int end = s + 1 < n_stages
                                ? stage_begin_[static_cast<size_t>(s + 1)]
                                : tail_begin_;
            run_range(stage_begin_[static_cast<size_t>(s)], end,
                      &slots_[static_cast<size_t>(c)],
                      stage_first_ordinal_[static_cast<size_t>(s)],
                      boundary[static_cast<size_t>(s)],
                      boundary[static_cast<size_t>(s) + 1]);
          }
          const std::vector<int8_t> logits = ref_.run_from(
              tail_begin_, boundary[static_cast<size_t>(n_stages)]);
          const int pred =
              scored ? scored_class(ref_.model(),
                                    reconstruction_score(ref_.model(),
                                                         q_input, logits))
                     : argmax_lowest_index(logits);
          hit = pred == label ? 1 : 0;
          reuse += resume_ordinal;
          run += (approx_count_ - resume_ordinal) + 1;
        }
        hits[static_cast<size_t>(c) * n_images_ + static_cast<size_t>(i)] =
            hit;
        prev_hit = hit;
        first = false;
        pending = approx_count_;
      }
    }
    // Integer sums are order-insensitive, so the totals stay bitwise
    // deterministic for any thread count.
    run_total.fetch_add(run, std::memory_order_relaxed);
    reuse_total.fetch_add(reuse, std::memory_order_relaxed);
  });

  PrefixCacheStats total;
  total.segments_run = run_total.load();
  total.segments_reused = reuse_total.load();
  return total;
}

PrefixCacheStats PrefixCache::evaluate_images(int image_begin, int image_end,
                                              const std::vector<uint8_t>& alive,
                                              std::vector<uint8_t>& hits) const {
  const int n_cfg = config_count();
  check(static_cast<int>(alive.size()) == n_cfg, "alive mask size mismatch");
  check(image_begin >= 0 && image_begin <= image_end && image_end <= n_images_,
        "image range out of bounds");
  std::vector<int> begin(static_cast<size_t>(n_cfg), 0);
  std::vector<int> end(static_cast<size_t>(n_cfg), 0);
  for (int c = 0; c < n_cfg; ++c) {
    if (!alive[static_cast<size_t>(c)]) continue;
    begin[static_cast<size_t>(c)] = image_begin;
    end[static_cast<size_t>(c)] = image_end;
  }
  return evaluate_ranges(begin, end, hits);
}

}  // namespace ataman
