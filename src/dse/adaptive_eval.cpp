#include "src/dse/adaptive_eval.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/dse/pareto.hpp"

namespace ataman {

namespace {

double wilson_center_half(int64_t hits, int64_t n, double z, int sign) {
  const double p = static_cast<double>(hits) / static_cast<double>(n);
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  return (center + sign * half) / denom;
}

}  // namespace

double wilson_lower(int64_t hits, int64_t n, double z) {
  if (n <= 0) return 0.0;
  return std::max(0.0, wilson_center_half(hits, n, z, -1));
}

double wilson_upper(int64_t hits, int64_t n, double z) {
  if (n <= 0) return 1.0;
  return std::min(1.0, wilson_center_half(hits, n, z, +1));
}

AdaptiveSweepResult adaptive_accuracy_sweep(
    const PrefixCache& cache, const SweepStatics& statics,
    const AdaptiveSweepOptions& options, const SweepProgress& progress) {
  const int n_cfg = cache.config_count();
  const int n_img = cache.eval_images();
  const std::vector<double>& mac_reduction = statics.mac_reduction;
  check(static_cast<int>(mac_reduction.size()) == n_cfg &&
            static_cast<int>(statics.cycles.size()) == n_cfg,
        "statics do not match config count");
  check(options.block_images > 0, "block_images must be positive");

  AdaptiveSweepResult out;
  out.accuracy.assign(static_cast<size_t>(n_cfg), 0.0);
  out.images_evaluated.assign(static_cast<size_t>(n_cfg), 0);

  std::vector<uint8_t> hits(static_cast<size_t>(n_cfg) * n_img, 0);
  std::vector<int64_t> correct(static_cast<size_t>(n_cfg), 0);
  // Per-config evaluation state: images [0, evaluated) are measured; a
  // config is pending while it still advances blockwise, done once it
  // has the full budget, and abandoned (neither) after an early exit.
  std::vector<uint8_t> pending(static_cast<size_t>(n_cfg), 1);
  std::vector<uint8_t> done(static_cast<size_t>(n_cfg), 0);
  std::vector<int> target(static_cast<size_t>(n_cfg), 0);

  // Advance every config to its target image count in one shared trie
  // walk, folding the new hit flags into the per-config counts (index
  // order, so totals are bitwise deterministic for any thread count).
  const auto advance = [&]() {
    std::vector<int> begin(static_cast<size_t>(n_cfg), 0);
    for (int c = 0; c < n_cfg; ++c)
      begin[static_cast<size_t>(c)] = out.images_evaluated[static_cast<size_t>(c)];
    const PrefixCacheStats st = cache.evaluate_ranges(begin, target, hits);
    out.cache_hits += st.segments_reused;
    for (int c = 0; c < n_cfg; ++c) {
      int64_t h = 0;
      for (int i = begin[static_cast<size_t>(c)];
           i < target[static_cast<size_t>(c)]; ++i)
        h += hits[static_cast<size_t>(c) * n_img + static_cast<size_t>(i)];
      correct[static_cast<size_t>(c)] += h;
      out.images_evaluated[static_cast<size_t>(c)] = std::max(
          out.images_evaluated[static_cast<size_t>(c)],
          target[static_cast<size_t>(c)]);
      if (out.images_evaluated[static_cast<size_t>(c)] == n_img)
        done[static_cast<size_t>(c)] = 1;
    }
  };
  const auto estimate = [&](int c) {
    const int n = out.images_evaluated[static_cast<size_t>(c)];
    return n > 0 ? static_cast<double>(correct[static_cast<size_t>(c)]) /
                       static_cast<double>(n)
                 : 0.0;
  };

  if (options.exact_sweep) {
    // Blockwise like the adaptive path (no exits), so long sweeps keep
    // reporting progress: configs-worth of images completed so far.
    for (int block_end = std::min(n_img, options.block_images);;
         block_end = std::min(n_img, block_end + options.block_images)) {
      target.assign(static_cast<size_t>(n_cfg), block_end);
      advance();
      if (progress)
        progress(static_cast<int>(static_cast<int64_t>(n_cfg) * block_end /
                                  n_img),
                 n_cfg);
      if (block_end == n_img) break;
    }
  } else {
    // Exit decisions compare configs sorted by descending reduction: a
    // config is abandoned when some config with >= reduction provably
    // (at the configured confidence) ends with higher accuracy.
    std::vector<int> by_red(static_cast<size_t>(n_cfg));
    for (int c = 0; c < n_cfg; ++c) by_red[static_cast<size_t>(c)] = c;
    std::sort(by_red.begin(), by_red.end(), [&](int a, int b) {
      if (mac_reduction[static_cast<size_t>(a)] !=
          mac_reduction[static_cast<size_t>(b)])
        return mac_reduction[static_cast<size_t>(a)] >
               mac_reduction[static_cast<size_t>(b)];
      return a < b;
    });

    std::vector<double> lb(static_cast<size_t>(n_cfg), 0.0);
    std::vector<double> ub(static_cast<size_t>(n_cfg), 1.0);
    for (int block_end = std::min(n_img, options.block_images);;
         block_end = std::min(n_img, block_end + options.block_images)) {
      for (int c = 0; c < n_cfg; ++c) {
        if (pending[static_cast<size_t>(c)] && !done[static_cast<size_t>(c)])
          target[static_cast<size_t>(c)] = block_end;
      }
      advance();
      if (block_end == n_img) break;

      // Project each pending config's final full-sample accuracy: the
      // evaluated hits are a fact; the unseen remainder is bounded by
      // the Wilson interval of the per-image hit probability. Done
      // configs are settled: their bounds are the measurement itself.
      for (int c = 0; c < n_cfg; ++c) {
        if (done[static_cast<size_t>(c)]) {
          lb[static_cast<size_t>(c)] = ub[static_cast<size_t>(c)] =
              estimate(c);
          continue;
        }
        if (!pending[static_cast<size_t>(c)]) continue;
        const int64_t h = correct[static_cast<size_t>(c)];
        const int64_t n = out.images_evaluated[static_cast<size_t>(c)];
        const int64_t rest = n_img - n;
        lb[static_cast<size_t>(c)] =
            (static_cast<double>(h) +
             wilson_lower(h, n, options.z) * static_cast<double>(rest)) /
            static_cast<double>(n_img);
        ub[static_cast<size_t>(c)] =
            (static_cast<double>(h) +
             wilson_upper(h, n, options.z) * static_cast<double>(rest)) /
            static_cast<double>(n_img);
      }

      // Walk groups of equal reduction in descending order, keeping a
      // frontier of floor candidates seen so far (live configs with >=
      // reduction, pruned to the (lb max, cycles min) Pareto set). A
      // config exits only when some floor provably beats its accuracy
      // AND has no more cycles — so an abandoned config is irrelevant
      // both to the Fig. 2 front and to unconstrained select_design
      // (see SweepStatics for the binding-flash-capacity caveat).
      // Equal-reduction configs join the frontier before their group is
      // tested (they can dominate each other; self-domination is
      // impossible, lb <= ub).
      struct Floor {
        double lb;
        int64_t cycles;
      };
      std::vector<Floor> floors;
      const auto add_floor = [&](int c) {
        const Floor f{lb[static_cast<size_t>(c)],
                      statics.cycles[static_cast<size_t>(c)]};
        for (const Floor& e : floors) {
          if (e.lb >= f.lb && e.cycles <= f.cycles)
            return;  // an existing floor is at least as strong everywhere
        }
        std::erase_if(floors, [&](const Floor& e) {
          return f.lb >= e.lb && f.cycles <= e.cycles;
        });
        floors.push_back(f);
      };
      size_t g = 0;
      while (g < by_red.size()) {
        size_t g_end = g;
        const double red = mac_reduction[static_cast<size_t>(by_red[g])];
        while (g_end < by_red.size() &&
               mac_reduction[static_cast<size_t>(by_red[g_end])] == red)
          ++g_end;
        for (size_t p = g; p < g_end; ++p) {
          const int c = by_red[p];
          if (pending[static_cast<size_t>(c)] || done[static_cast<size_t>(c)])
            add_floor(c);
        }
        for (size_t p = g; p < g_end; ++p) {
          const int c = by_red[p];
          if (c == 0 || done[static_cast<size_t>(c)] ||
              !pending[static_cast<size_t>(c)])
            continue;
          for (const Floor& f : floors) {
            if (f.lb > ub[static_cast<size_t>(c)] + options.margin &&
                f.cycles <= statics.cycles[static_cast<size_t>(c)]) {
              pending[static_cast<size_t>(c)] = 0;  // provably irrelevant
              break;
            }
          }
        }
        g = g_end;
      }

      if (progress) {
        int settled = 0;
        for (int c = 0; c < n_cfg; ++c)
          settled +=
              (pending[static_cast<size_t>(c)] && !done[static_cast<size_t>(c)])
                  ? 0
                  : 1;
        progress(settled, n_cfg);
      }
    }

    // Completion: every Pareto member of the reported accuracies must be
    // a full-sample measurement. Completing a member can reshape the
    // front, so iterate until it is stable (each round completes at
    // least one config, so this terminates).
    for (;;) {
      std::vector<ParetoPoint> points;
      points.reserve(static_cast<size_t>(n_cfg));
      for (int c = 0; c < n_cfg; ++c)
        points.push_back({mac_reduction[static_cast<size_t>(c)],
                          estimate(c), c});
      target.assign(static_cast<size_t>(n_cfg), 0);
      bool incomplete = false;
      for (const int c : pareto_front(points)) {
        if (out.images_evaluated[static_cast<size_t>(c)] == n_img) continue;
        target[static_cast<size_t>(c)] = n_img;
        incomplete = true;
      }
      if (!incomplete) break;
      advance();
    }
  }

  for (int c = 0; c < n_cfg; ++c) {
    const int n = out.images_evaluated[static_cast<size_t>(c)];
    out.accuracy[static_cast<size_t>(c)] = estimate(c);
    out.total_images += n;
    if (n < n_img) ++out.early_exits;
  }
  if (progress) progress(n_cfg, n_cfg);
  return out;
}

}  // namespace ataman
