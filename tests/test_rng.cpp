// Deterministic RNG: reproducibility, stream independence, distribution
// sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ataman {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng parent(7);
  Rng f1 = parent.fork(3);
  (void)parent.next_u64();  // advancing the parent must not change forks
  Rng f2 = parent.fork(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ConsecutiveForksDecorrelated) {
  Rng parent(7);
  Rng f0 = parent.fork(0);
  Rng f1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (f0.next_u64() == f1.next_u64()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(42);
  for (const uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(42);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FloatConversionHonorsHalfOpenInterval) {
  // Worst-case bit patterns: static_cast<float> rounds any double
  // >= 1 - 2^-25 up to exactly 1.0f (the pre-fix bug, which let
  // next_uniform(lo, hi) return hi). The clamp must keep [0, 1).
  const float max_below_one = 0x1.fffffep-1f;
  // Exact round-to-nearest-even boundary: halfway between max_below_one
  // and 1.0, ties-to-even picks 1.0 — the smallest double that trips it.
  EXPECT_EQ(Rng::to_float01(1.0 - std::ldexp(1.0, -25)), max_below_one);
  // Largest double below 1.
  EXPECT_EQ(Rng::to_float01(std::nextafter(1.0, 0.0)), max_below_one);
  EXPECT_LT(Rng::to_float01(std::nextafter(1.0, 0.0)), 1.0f);
  // Non-pathological draws pass through bit-identically (stream
  // preservation: seeded datasets / weight init must not shift).
  EXPECT_EQ(Rng::to_float01(0.0), 0.0f);
  EXPECT_EQ(Rng::to_float01(0.5), 0.5f);
  EXPECT_EQ(Rng::to_float01(0.25 + std::ldexp(1.0, -30)),
            static_cast<float>(0.25 + std::ldexp(1.0, -30)));
  // 1 - 2^-24 is exactly the largest float below 1: representable, kept.
  EXPECT_EQ(Rng::to_float01(1.0 - std::ldexp(1.0, -24)), max_below_one);
}

TEST(Rng, FloatStreamStaysBelowOne) {
  Rng rng(21);
  for (int i = 0; i < 100000; ++i) {
    const float f = rng.next_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
  // next_uniform must never return hi even at the clamp boundary.
  Rng rng2(22);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng2.next_uniform(-2.0f, 3.0f);
    ASSERT_GE(u, -2.0f);
    ASSERT_LT(u, 3.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  // And it actually moved things.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(Rng, BoolProbability) {
  Rng rng(13);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.2) ? 1 : 0;
  EXPECT_NEAR(trues / 10000.0, 0.2, 0.02);
}

}  // namespace
}  // namespace ataman
