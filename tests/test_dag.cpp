// DAG execution (residual QAdd skip edges) end to end: the liveness-based
// activation-buffer plan (peak-RAM pinned against both the chain
// ping-pong and the naive sum-of-tensors bound), QAdd requantize-add
// kernel semantics, linear/dominating boundary predicates and the
// run_from contract on DAGs, prefix-cached DSE parity when configs
// diverge inside a partially-shared stage, serve determinism on residual
// models (this suite carries the `serve-smoke` + `dse-smoke` labels, so
// the TSan leg race-checks DAG-buffered workers), generated-C parity, and
// the full train -> quantize -> DSE -> select -> serve -> codegen
// pipeline on the mobilenetv2 (inverted-residual) zoo architecture.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "src/codegen/c_emitter.hpp"
#include "src/common/fixed_point.hpp"
#include "src/common/parallel.hpp"
#include "src/core/ataman.hpp"
#include "src/core/engine_iface.hpp"
#include "src/dse/config_space.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/dse/evaluator.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/serve/server.hpp"
#include "src/sig/act_stats.hpp"
#include "src/unpack/layer_selection.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::ServeOptions;
using testing::make_qadd;
using testing::make_random_image;
using testing::make_random_input;
using testing::make_residual_qmodel;
using testing::make_tiny_qmodel;

SkipMask random_mask(const QModel& m, double density, uint64_t seed) {
  SkipMask mask = SkipMask::none(m);
  Rng rng(seed);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(density) ? 1 : 0;
  return mask;
}

// ---------------------------------------------------------------------------
// Liveness-based activation plan
// ---------------------------------------------------------------------------

// On a pure chain exactly {input, output} are live at every step, so the
// planner must reproduce the classic two-slot ping-pong bound.
TEST(ActivationPlan, ChainPeakEqualsPingPongPair) {
  const QModel m = make_tiny_qmodel(40);
  ASSERT_TRUE(m.is_chain());
  const ActivationPlan plan = plan_activations(m);

  int64_t ping_pong = 0;
  for (int l = 0; l < static_cast<int>(m.layers.size()); ++l)
    ping_pong = std::max(ping_pong, m.tensor_elems(l) + m.tensor_elems(l + 1));
  EXPECT_EQ(plan.peak_elems, ping_pong);
  EXPECT_EQ(plan.slot_count(), 2);
  // Slot capacities together cover the peak.
  EXPECT_GE(std::accumulate(plan.slot_elems.begin(), plan.slot_elems.end(),
                            int64_t{0}),
            plan.peak_elems);
}

// The pinned DAG regression from the memory-model contract: on a
// residual model the liveness peak sits strictly between the chain
// pair bound (a skip tensor is held across the block body) and the
// naive no-reuse sum of every tensor.
TEST(ActivationPlan, ResidualPeakBeatsSumOfTensors) {
  const QModel m = make_residual_qmodel(41);
  ASSERT_FALSE(m.is_chain());
  const ActivationPlan plan = plan_activations(m);

  // 8x8x4 = 256-element tensors; at each add three of them are live
  // (both operands + the output), so the true peak is 3 * 256 = 768 —
  // above the chain pair bound (512), far below the 6 * 256 + 10 sum.
  EXPECT_EQ(plan.peak_elems, 768);
  int64_t pair_bound = 0;
  for (int l = 0; l < static_cast<int>(m.layers.size()); ++l)
    pair_bound = std::max(pair_bound, m.tensor_elems(l) + m.tensor_elems(l + 1));
  EXPECT_GT(plan.peak_elems, pair_bound);
  EXPECT_LT(plan.peak_elems, plan.total_tensor_elems());

  // And the model-level RAM row uses the liveness peak, not the pair.
  EXPECT_GE(model_ram_bytes(m, /*packed_engine=*/false),
            plan.peak_elems + MemoryCostTable{}.runtime_reserve);
}

// A step's output slot must never alias a live input slot — the property
// that makes slot-backed engine execution correct on DAGs.
TEST(ActivationPlan, SlotsNeverAliasOutputWithLiveInput) {
  for (const uint64_t seed : {42u, 43u, 44u}) {
    const QModel m = make_residual_qmodel(seed);
    const ActivationPlan plan = plan_activations(m);
    ASSERT_EQ(plan.tensors.size(), m.layers.size() + 1);
    for (int l = 0; l < static_cast<int>(m.layers.size()); ++l) {
      const int out_slot = plan.tensors[static_cast<size_t>(l) + 1].slot;
      for (const int t : m.inputs_of(l)) {
        EXPECT_NE(out_slot, plan.tensors[static_cast<size_t>(t)].slot)
            << "layer " << l << " output aliases input tensor " << t;
      }
    }
    // Every tensor fits its slot.
    for (const ActivationPlan::Tensor& t : plan.tensors) {
      ASSERT_GE(t.slot, 0);
      ASSERT_LT(t.slot, plan.slot_count());
      EXPECT_LE(t.elems, plan.slot_elems[static_cast<size_t>(t.slot)]);
    }
  }
}

// ---------------------------------------------------------------------------
// QAdd kernel semantics
// ---------------------------------------------------------------------------

// Identical scales make both requant multipliers exactly 1.0, so the op
// reduces to integer (qa - za) + (qb - zb) + zo with saturation — a
// hand-checkable case of the requantize-to-common-scale contract.
TEST(QAddKernel, IdentityScaleAddsZeroPointsAndSaturates) {
  const QAdd add = make_qadd(1, 1, 4, /*a=*/{0.1f, 5}, /*b=*/{0.1f, -3},
                             /*out=*/{0.1f, 7});
  const std::vector<int8_t> a = {50, 100, -100, 5};
  const std::vector<int8_t> b = {60, 100, -100, -3};
  std::vector<int8_t> out(4);
  qadd_ref(add, a, b, out);
  // (50-5)+(60+3)+7 = 115; 95+103+7 -> saturate 127;
  // -105-97+7 = -195 -> saturate -128; (5-5)+(-3+3)+7 = 7.
  EXPECT_EQ(out, (std::vector<int8_t>{115, 127, -128, 7}));
}

TEST(QAddKernel, FoldedReluClampsAtOutputZeroPoint) {
  const QAdd add = make_qadd(1, 1, 2, {0.1f, 0}, {0.1f, 0}, {0.1f, 10},
                             /*folded_relu=*/true);
  ASSERT_EQ(add.act_min, 10);
  const std::vector<int8_t> a = {-50, 30};
  const std::vector<int8_t> b = {-50, 20};
  std::vector<int8_t> out(2);
  qadd_ref(add, a, b, out);
  // -100 + 10 = -90 -> clamped to act_min (the folded ReLU's zero).
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 60);
}

// Arbitrary scale ratios: the kernel must apply exactly
// mbqm(qa - za, requant_a) + mbqm(qb - zb, requant_b) + zo per element,
// with the shared fixed-point helper doing the rounding.
TEST(QAddKernel, MatchesFixedPointRequantizePerElement) {
  const QAdd add = make_qadd(3, 3, 2, {0.043f, 4}, {0.31f, -17},
                             {0.11f, 9});
  const auto a = make_random_input(3 * 3 * 2, 78);
  const auto b = make_random_input(3 * 3 * 2, 79);
  std::vector<int8_t> out(a.size());
  qadd_ref(add, a, b, out);
  for (size_t i = 0; i < a.size(); ++i) {
    const int32_t ra = multiply_by_quantized_multiplier(
        static_cast<int32_t>(a[i]) - add.in_a.zero_point, add.requant_a);
    const int32_t rb = multiply_by_quantized_multiplier(
        static_cast<int32_t>(b[i]) - add.in_b.zero_point, add.requant_b);
    const int32_t expected = std::clamp(ra + rb + add.out.zero_point,
                                        add.act_min, add.act_max);
    EXPECT_EQ(static_cast<int32_t>(out[i]), expected) << "element " << i;
  }
}

// ---------------------------------------------------------------------------
// Linear / dominating boundaries and the run_from contract
// ---------------------------------------------------------------------------

TEST(DagBoundaries, ResidualModelBoundaryPredicates) {
  const QModel m = make_residual_qmodel(50);
  // layer_inputs = {{0},{1},{2,1},{3},{4,3},{5}}: the adds at layers 2
  // and 4 cross boundaries 2 and 4; everything else is linear.
  for (const int linear : {0, 1, 3, 5, 6})
    EXPECT_TRUE(m.linear_boundary(linear)) << "boundary " << linear;
  for (const int crossed : {2, 4})
    EXPECT_FALSE(m.linear_boundary(crossed)) << "boundary " << crossed;

  EXPECT_EQ(m.dominating_boundary(0), 0);
  EXPECT_EQ(m.dominating_boundary(1), 1);
  EXPECT_EQ(m.dominating_boundary(2), 1);  // rounds down past the edge
  EXPECT_EQ(m.dominating_boundary(3), 3);
  EXPECT_EQ(m.dominating_boundary(4), 3);
  EXPECT_EQ(m.dominating_boundary(5), 5);

  // Chains: every boundary linear, dominating == identity.
  const QModel chain = make_tiny_qmodel(51);
  for (int l = 0; l <= static_cast<int>(chain.layers.size()); ++l) {
    EXPECT_TRUE(chain.linear_boundary(l));
    EXPECT_EQ(chain.dominating_boundary(l), l);
  }
}

TEST(DagBoundaries, RunFromResumesAtLinearBoundariesAndRejectsCrossed) {
  const QModel m = make_residual_qmodel(52);
  const RefEngine ref(&m);
  const auto image = make_random_image(8 * 8 * 4, 53);
  const std::vector<int8_t> full = ref.run(image);

  // Rebuild tensor 3 (the first add's output) with the reference
  // kernels, then resume at linear boundary 3.
  const std::vector<int8_t> t0 = ref.quantize_input(image);
  std::vector<int8_t> t1(256), t2(256), t3(256);
  conv2d_ref(std::get<QConv2D>(m.layers[0]), t0, t1);
  conv2d_ref(std::get<QConv2D>(m.layers[1]), t1, t2);
  qadd_ref(std::get<QAdd>(m.layers[2]), t2, t1, t3);
  EXPECT_EQ(ref.run_from(3, t3), full);
  // Boundary 0 resumes from the quantized input.
  EXPECT_EQ(ref.run_from(0, t0), full);
  // Past the last layer: identity.
  EXPECT_EQ(ref.run_from(static_cast<int>(m.layers.size()), full), full);

  // Crossed boundaries are rejected: a single tensor cannot carry the
  // frontier there.
  const std::vector<int8_t> junk(256, 0);
  EXPECT_THROW(ref.run_from(2, junk), Error);
  EXPECT_THROW(ref.run_from(4, junk), Error);
}

// ---------------------------------------------------------------------------
// Four-engine parity on the residual model
// ---------------------------------------------------------------------------

TEST(DagEngines, FourEngineBitwiseParityExactAndMasked) {
  const QModel m = make_residual_qmodel(60);
  const RefEngine oracle(&m);
  const SkipMask mask = random_mask(m, 0.35, 61);

  EngineConfig exact_cfg;
  exact_cfg.model = &m;
  EngineConfig masked_cfg;
  masked_cfg.model = &m;
  masked_cfg.mask = &mask;
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, exact_cfg);
    for (int i = 0; i < 6; ++i) {
      const auto img = make_random_image(8 * 8 * 4, 62 + i);
      EXPECT_EQ(engine->run(img), oracle.run(img)) << name << " image " << i;
    }
  }
  // Masked: skipping products on the DAG stays bitwise identical between
  // the masked reference and the skip-compiled unpacked engine.
  const UnpackedEngine up(&m, &mask);
  for (int i = 0; i < 6; ++i) {
    const auto img = make_random_image(8 * 8 * 4, 70 + i);
    EXPECT_EQ(oracle.run(img, &mask), up.run(img)) << "masked image " << i;
  }
}

TEST(DagEngines, BatchedExecutionMatchesPerImage) {
  const QModel m = make_residual_qmodel(63);
  const SkipMask mask = random_mask(m, 0.3, 64);
  EngineConfig cfg;
  cfg.model = &m;
  cfg.mask = &mask;
  std::vector<std::vector<uint8_t>> images;
  for (int i = 0; i < 7; ++i)
    images.push_back(make_random_image(8 * 8 * 4, 65 + i));
  std::vector<std::span<const uint8_t>> spans(images.begin(), images.end());

  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    std::vector<std::vector<int8_t>> batched;
    engine->run_batch(spans, batched);
    ASSERT_EQ(batched.size(), images.size());
    for (size_t i = 0; i < images.size(); ++i)
      EXPECT_EQ(batched[i], engine->run(images[i]))
          << name << " image " << i;
  }
}

// Hybrid packed/unpacked layer selection runs on the descriptor seam, so
// it must produce one choice per approximable layer on DAG models too.
TEST(DagEngines, HybridSelectionCoversResidualModels) {
  const QModel m = make_residual_qmodel(66);
  const SkipMask mask = random_mask(m, 0.5, 67);
  const HybridPlan plan = select_layers_to_unpack(m, mask, /*budget=*/0);
  EXPECT_EQ(static_cast<int>(plan.choices.size()), m.approx_layer_count());
  for (const LayerDeployChoice& c : plan.choices) {
    EXPECT_GT(c.packed_cycles, 0);
    EXPECT_GT(c.unpacked_cycles, 0);
  }
}

// ---------------------------------------------------------------------------
// Prefix-cached DSE on DAGs
// ---------------------------------------------------------------------------

// conv -> conv -> conv -> add(skip from conv1) -> fc: the skip edge
// spans TWO approximable ordinals (layers 1 and 2 share the stage that
// starts at boundary 1), so configs that differ only at ordinal 2 must
// re-run from the dominating boundary — the in-stage resume path that
// does not exist on chains.
QModel make_overlap_qmodel(uint64_t seed) {
  QModel m;
  m.name = "overlap-test";
  m.topology = "1-[r1]-1";
  m.in_h = 8;
  m.in_w = 8;
  m.in_c = 4;
  m.input = {1.0f / 255.0f, -128};

  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 4;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 1;

  QConv2D c1 = testing::make_random_qconv(g, seed * 71 + 1, true);
  c1.in = m.input;
  refresh_requant(c1);
  c1.act_min = c1.out.zero_point;
  QConv2D c2 = testing::make_random_qconv(g, seed * 71 + 2, true);
  c2.in = c1.out;
  refresh_requant(c2);
  c2.act_min = c2.out.zero_point;
  QConv2D c3 = testing::make_random_qconv(g, seed * 71 + 3, true);
  c3.in = c2.out;
  refresh_requant(c3);
  c3.act_min = c3.out.zero_point;

  Rng rng(seed * 71 + 4);
  const QAdd a1 =
      make_qadd(8, 8, 4, c3.out, c1.out, testing::random_act_params(rng));
  QDense fc = testing::make_random_qdense(8 * 8 * 4, 10, seed * 71 + 5);
  fc.in = a1.out;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  m.layers.emplace_back(std::move(c1));
  m.layers.emplace_back(std::move(c2));
  m.layers.emplace_back(std::move(c3));
  m.layers.emplace_back(a1);
  m.layers.emplace_back(std::move(fc));
  m.layer_inputs = {{0}, {1}, {2}, {3, 1}, {4}};
  m.validate_dag();
  return m;
}

class DagDseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new QModel(make_overlap_qmodel(80));
    eval_ = new Dataset(ImageShape{8, 8, 4}, 10);
    Rng rng(81);
    for (int i = 0; i < 60; ++i) {
      std::vector<uint8_t> img(8 * 8 * 4);
      for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
      eval_->add(img, rng.next_int(0, 9));
    }
    const auto stats = capture_activation_stats(*model_, *eval_, 24);
    sig_ = new std::vector<LayerSignificance>(
        compute_model_significance(*model_, stats));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete eval_;
    delete sig_;
    model_ = nullptr;
    eval_ = nullptr;
    sig_ = nullptr;
  }

  static QModel* model_;
  static Dataset* eval_;
  static std::vector<LayerSignificance>* sig_;
};

QModel* DagDseFixture::model_ = nullptr;
Dataset* DagDseFixture::eval_ = nullptr;
std::vector<LayerSignificance>* DagDseFixture::sig_ = nullptr;

TEST_F(DagDseFixture, ExactSweepBitwiseMatchesPerConfigEvaluate) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  DseOptions grid;
  grid.tau_step = 0.02;
  const auto configs = generate_configs(model_->approx_layer_count(), grid);

  DseOptions o;
  o.exact_sweep = true;
  const DseOutcome fast = run_dse(ev, configs, o);

  ASSERT_EQ(fast.results.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const DseResult legacy = ev.evaluate(configs[i]);
    EXPECT_EQ(fast.results[i].accuracy, legacy.accuracy) << "config " << i;
    EXPECT_EQ(fast.results[i].executed_macs, legacy.executed_macs);
    EXPECT_EQ(fast.results[i].cycles, legacy.cycles);
  }
  // The dominating-boundary resume still reuses work (the stage at
  // boundary 0/1 prefixes), it just reuses less than a chain would —
  // docs/DSE.md documents the hit-rate drop.
  EXPECT_GT(fast.cache_hits, 0);
}

TEST_F(DagDseFixture, AdaptiveSweepDeterministicAcrossThreadCounts) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  DseOptions o;
  o.tau_step = 0.02;
  o.eval_block = 8;
  const auto configs = generate_configs(model_->approx_layer_count(), o);
  set_num_threads(1);
  const DseOutcome a = run_dse(ev, configs, o);
  set_num_threads(8);
  const DseOutcome b = run_dse(ev, configs, o);
  set_num_threads(0);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i].accuracy, b.results[i].accuracy) << i;
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.images_evaluated, b.images_evaluated);
}

// ---------------------------------------------------------------------------
// Serve determinism on residual models (TSan-checked via serve-smoke)
// ---------------------------------------------------------------------------

TEST(DagServe, ResidualModelBitwiseEqualToSerialForWorkers1And3) {
  const QModel m = make_residual_qmodel(90);
  const SkipMask mask = random_mask(m, 0.3, 91);
  struct Key {
    std::string engine;
    const SkipMask* mask;
  };
  const std::vector<Key> keys = {{"ref", &mask},
                                 {"unpacked", &mask},
                                 {"cmsis", nullptr},
                                 {"xcube", nullptr}};

  std::vector<InferRequest> requests;
  for (int i = 0; i < 24; ++i) {
    const Key& key = keys[static_cast<size_t>(i) % keys.size()];
    InferRequest r;
    r.engine = key.engine;
    r.mask = key.mask;
    r.image = make_random_image(8 * 8 * 4, 92 + static_cast<uint64_t>(i));
    requests.push_back(std::move(r));
  }
  // Serial single-request oracle.
  std::vector<std::vector<int8_t>> expected;
  for (const InferRequest& r : requests) {
    EngineConfig cfg;
    cfg.model = &m;
    cfg.mask = r.mask;
    expected.push_back(EngineRegistry::instance().create(r.engine, cfg)->run(
        r.image));
  }

  for (const int workers : {1, 3}) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch = 4;
    InferenceServer server(&m, options);
    const std::vector<InferFuture> futures =
        server.submit_all(std::vector<InferRequest>(requests));
    server.drain();
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(futures[i].get().logits, expected[i])
          << "workers=" << workers << " request " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Generated C on the residual model
// ---------------------------------------------------------------------------

TEST(DagCodegen, CompiledResidualModelMatchesEngineBitExact) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host C compiler";
  const QModel m = make_residual_qmodel(95);
  const SkipMask mask = random_mask(m, 0.3, 96);

  const std::string code = emit_model_c(m, &mask);
  // Two add kernels, each taking two input pointers.
  EXPECT_NE(code.find("_add0"), std::string::npos);
  EXPECT_NE(code.find("_add1"), std::string::npos);

  const std::string dir = "/tmp/ataman_dag_codegen";
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/model.c", code);
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[8*8*4];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
)";
  write_text_file(dir + "/main.c", driver);
  const std::string compile = "cc -std=c99 -O2 " + dir + "/model.c " + dir +
                              "/main.c -o " + dir + "/runner 2> " + dir +
                              "/cc.log";
  ASSERT_EQ(std::system(compile.c_str()), 0)
      << "generated residual-model C failed to compile";

  const UnpackedEngine engine(&m, &mask);
  for (int trial = 0; trial < 4; ++trial) {
    const auto img = make_random_image(8 * 8 * 4, 97 + trial);
    {
      std::ofstream out(dir + "/img.bin", std::ios::binary);
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size()));
    }
    const std::string run =
        dir + "/runner < " + dir + "/img.bin > " + dir + "/out.txt";
    ASSERT_EQ(std::system(run.c_str()), 0);
    std::ifstream in(dir + "/out.txt");
    std::vector<int8_t> got;
    int v = 0;
    while (in >> v) got.push_back(static_cast<int8_t>(v));
    EXPECT_EQ(got, engine.run(img)) << "trial " << trial;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Serialization: DAG trailer round trip + chain backward compat
// ---------------------------------------------------------------------------

TEST(DagSerialization, ResidualModelRoundTripsLayerInputs) {
  const std::string dir = "/tmp/ataman_dag_roundtrip";
  std::filesystem::create_directories(dir);
  const QModel m = make_residual_qmodel(98);
  save_qmodel(m, dir + "/residual.qm");
  const QModel loaded = load_qmodel(dir + "/residual.qm");
  ASSERT_EQ(loaded.layers.size(), m.layers.size());
  EXPECT_EQ(loaded.layer_inputs, m.layer_inputs);
  EXPECT_EQ(loaded.topology, m.topology);
  EXPECT_FALSE(loaded.is_chain());
  const RefEngine a(&m), b(&loaded);
  for (int i = 0; i < 6; ++i) {
    const auto img = make_random_image(8 * 8 * 4, 99 + i);
    EXPECT_EQ(a.run(img), b.run(img)) << i;
  }
  // Chains keep the pre-DAG representation: empty layer_inputs.
  const QModel chain = make_tiny_qmodel(100);
  save_qmodel(chain, dir + "/chain.qm");
  EXPECT_TRUE(load_qmodel(dir + "/chain.qm").is_chain());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// mobilenetv2: the inverted-residual zoo pipeline end to end
// ---------------------------------------------------------------------------

class Mobilenetv2Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ZooSpec spec = mobilenetv2_spec();
    spec.data.train_images = 600;
    spec.data.test_images = 250;
    spec.train.epochs = 2;
    spec.train.lr_decay_at = {1};
    TrainedModel trained = train_from_scratch(spec, /*verbose=*/false);
    data_ = new SynthCifar(make_synth_cifar(spec.data));
    qmodel_ = new QModel(quantize_model(trained.net, data_->train));

    PipelineOptions opts;
    opts.dse.eval_images = 120;
    opts.dse.tau_step = 0.05;
    opts.dse.max_configs = 64;  // subset mode over 11 approx layers
    pipe_ = new AtamanPipeline(qmodel_, &data_->train, &data_->test, opts);
    pipe_->analyze();
    outcome_ = new DseOutcome(pipe_->explore());
  }
  static void TearDownTestSuite() {
    delete outcome_;
    delete pipe_;
    delete qmodel_;
    delete data_;
    outcome_ = nullptr;
    pipe_ = nullptr;
    qmodel_ = nullptr;
    data_ = nullptr;
  }

  static SynthCifar* data_;
  static QModel* qmodel_;
  static AtamanPipeline* pipe_;
  static DseOutcome* outcome_;
};

SynthCifar* Mobilenetv2Pipeline::data_ = nullptr;
QModel* Mobilenetv2Pipeline::qmodel_ = nullptr;
AtamanPipeline* Mobilenetv2Pipeline::pipe_ = nullptr;
DseOutcome* Mobilenetv2Pipeline::outcome_ = nullptr;

TEST_F(Mobilenetv2Pipeline, QuantizedModelHasResidualStructure) {
  // stem conv + 3 inverted-residual bodies (3 approximable layers each)
  // + head conv, with QAdd joins on the two stride-1 blocks.
  EXPECT_EQ(qmodel_->approx_layer_count(), 11);
  EXPECT_EQ(qmodel_->layers.size(), 15u);
  int add_count = 0;
  for (const QLayer& layer : qmodel_->layers) {
    const OpDescriptor d = describe_layer(layer);
    if (d.kind == OpKind::kAdd) {
      ++add_count;
      EXPECT_FALSE(d.skippable);
      EXPECT_EQ(d.macs, 0);
    }
  }
  EXPECT_EQ(add_count, 2);
  EXPECT_FALSE(qmodel_->is_chain());
  EXPECT_NO_THROW(qmodel_->validate_dag());
  EXPECT_EQ(qmodel_->topology, "1-[r1]-1-[r1]-1-1");
  // The residual structure shows up in the RAM plan: skip tensors held
  // across block bodies need more than two slots.
  EXPECT_GT(plan_activations(*qmodel_).slot_count(), 2);
}

TEST_F(Mobilenetv2Pipeline, FourEngineBitwiseParityOnExactConfig) {
  const RefEngine oracle(qmodel_);
  EngineConfig cfg;
  cfg.model = qmodel_;
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (int i = 0; i < 8; ++i) {
      const auto img = data_->test.image(i);
      EXPECT_EQ(engine->run(img), oracle.run(img)) << name << " image " << i;
    }
  }
}

TEST_F(Mobilenetv2Pipeline, RefEqualsUnpackedOnEverySweptConfig) {
  for (size_t i = 0; i < outcome_->results.size(); ++i) {
    const ApproxConfig& cfg = outcome_->results[i].config;
    if (!cfg.approximates_anything()) continue;
    const SkipMask mask = pipe_->mask_for(cfg);
    const RefEngine ref(qmodel_);
    const UnpackedEngine up(qmodel_, &mask);
    for (int img = 0; img < 2; ++img) {
      ASSERT_EQ(ref.run(data_->test.image(img), &mask),
                up.run(data_->test.image(img)))
          << "config " << i << " image " << img;
    }
  }
}

TEST_F(Mobilenetv2Pipeline, FastDseEngagedThePrefixCache) {
  EXPECT_GT(outcome_->results.size(), 10u);
  EXPECT_GT(outcome_->cache_hits, 0);
  EXPECT_GT(outcome_->images_evaluated, 0);
  bool any_reduction = false;
  for (const DseResult& r : outcome_->results)
    any_reduction |= r.skipped_conv_macs > 0;
  EXPECT_TRUE(any_reduction);
}

TEST_F(Mobilenetv2Pipeline, SelectsDeploysAndEmitsResidualCode) {
  const int idx = pipe_->select(*outcome_, 0.10);
  ASSERT_GE(idx, 0);
  const ApproxConfig& cfg = outcome_->results[static_cast<size_t>(idx)].config;
  EXPECT_EQ(cfg.tau.size(), 11u);

  const std::string code = pipe_->generate_code(cfg);
  EXPECT_NE(code.find("_add0"), std::string::npos);
  EXPECT_NE(code.find("_add1"), std::string::npos);
  EXPECT_NE(code.find("_dw"), std::string::npos);

  const DseResult& r = outcome_->results[static_cast<size_t>(idx)];
  const DeployReport dep = pipe_->deploy(cfg, "mbv2-approx", 120);
  EXPECT_DOUBLE_EQ(dep.top1_accuracy, r.accuracy);
  EXPECT_EQ(dep.cycles, r.cycles);
  EXPECT_EQ(dep.mac_ops, r.executed_macs);
  // The block-notation topology satellite: reports carry it through.
  EXPECT_EQ(dep.topology, "1-[r1]-1-[r1]-1-1");
}

TEST_F(Mobilenetv2Pipeline, ServesTheResidualModelDeterministically) {
  const RefEngine oracle(qmodel_);
  for (const int workers : {1, 3}) {
    InferenceServer server(qmodel_,
                           ServeOptions{.workers = workers, .max_batch = 4});
    std::vector<InferFuture> futures;
    for (int i = 0; i < 16; ++i) {
      InferRequest r;
      r.engine = (i % 2 == 0) ? "ref" : "unpacked";
      r.image = std::vector<uint8_t>(data_->test.image(i).begin(),
                                     data_->test.image(i).end());
      futures.push_back(server.submit(r));
    }
    server.drain();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(futures[static_cast<size_t>(i)].get().logits,
                oracle.run(data_->test.image(i)))
          << "workers=" << workers << " request " << i;
    }
  }
}

TEST_F(Mobilenetv2Pipeline, SerializationRoundTripsTheDag) {
  const std::string dir = "/tmp/ataman_mbv2_roundtrip";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/mobilenetv2.qm";
  save_qmodel(*qmodel_, path);
  const QModel loaded = load_qmodel(path);
  ASSERT_EQ(loaded.layers.size(), qmodel_->layers.size());
  EXPECT_EQ(loaded.layer_inputs, qmodel_->layer_inputs);
  EXPECT_FALSE(loaded.is_chain());
  const RefEngine a(qmodel_), b(&loaded);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(a.run(data_->test.image(i)), b.run(data_->test.image(i)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ataman
