// Pareto analysis over (objective-to-maximize, objective-to-maximize)
// pairs — used for the accuracy vs. MAC-reduction trade-off of Fig. 2.
#pragma once

#include <cstdint>
#include <vector>

namespace ataman {

struct ParetoPoint {
  double x = 0.0;  // e.g. normalized MAC reduction (maximize)
  double y = 0.0;  // e.g. accuracy (maximize)
  int index = 0;   // caller's design index
};

// Indices (into `points`) of the non-dominated subset, sorted by ascending
// x. A point is dominated when another point is >= in both coordinates
// and strictly greater in at least one.
std::vector<int> pareto_front(const std::vector<ParetoPoint>& points);

// True when a dominates b (maximizing both coordinates).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

}  // namespace ataman
