// SynthCIFAR: a deterministic procedural stand-in for CIFAR-10.
//
// The paper trains LeNet/AlexNet on CIFAR-10; the dataset itself is not
// part of the contribution — the approximation framework only needs
// (a) a labelled training/eval set and (b) an input-activation
// distribution for the significance analysis. SynthCIFAR provides a
// 10-class, 32x32x3 classification task whose difficulty (class-noise,
// palette overlap, distractor textures) is tuned so the baseline CNNs land
// near the paper's ~71% Top-1 band, which keeps the 0%/5%/10%
// accuracy-loss operating points of Table II meaningful.
//
// Every image is generated from (seed, split, index) alone: datasets are
// bit-reproducible across runs, platforms and thread counts.
#pragma once

#include <cstdint>

#include "src/data/dataset.hpp"

namespace ataman {

// Which labelled task the generator renders. All three share the same
// 32x32x3 pattern substrate; they differ only in how labels are derived:
//   kClassify10  10-way pattern-family classification (the default).
//   kVww         person/no-person stand-in: the 10 families collapse to a
//                binary label (family parity), mirroring the MLPerf-Tiny
//                visual-wakeword task shape (2 logits, argmax head).
//   kAnomaly     anomaly detection: label 0 = clean render, label 1 = a
//                corrupted render (inverted patch + extra noise). Training
//                data is all-normal — autoencoders must learn "normal"
//                without seeing anomalies, as in the MLPerf-Tiny ToyADMOS
//                setup — while the test split mixes both for AUC scoring.
enum class SynthTask { kClassify10 = 0, kVww = 1, kAnomaly = 2 };

struct SynthCifarSpec {
  int train_images = 8000;
  int test_images = 2000;
  uint64_t seed = 42;
  SynthTask task = SynthTask::kClassify10;

  // Difficulty knobs. Defaults were calibrated (see docs/DESIGN.md) so the
  // Table I models land near the paper's ~71% Top-1 band after int8 PTQ.
  float noise_sigma = 140.0f;      // additive Gaussian pixel noise (u8 units)
  float palette_jitter = 0.22f;    // per-instance color palette perturbation
  float distractor_alpha = 0.54f;  // blend weight of a wrong-class texture
  float label_noise = 0.09f;       // fraction of deliberately wrong labels

  bool operator==(const SynthCifarSpec&) const = default;
};

struct SynthCifar {
  Dataset train;
  Dataset test;
};

// Generate both splits. Parallelized over images; deterministic.
SynthCifar make_synth_cifar(const SynthCifarSpec& spec);

// Generate a single split with `count` images (used by tests).
// `anomaly_fraction` only matters for SynthTask::kAnomaly: that fraction
// of images is corrupted and labelled 1. make_synth_cifar passes 0.0 for
// the train split (all-normal) and 0.5 for the test split.
Dataset make_synth_cifar_split(const SynthCifarSpec& spec, int count,
                               uint64_t split_salt,
                               float anomaly_fraction = 0.0f);

// CIFAR-10-style class names for the 10 synthetic families.
const char* synth_cifar_class_name(int label);

}  // namespace ataman
