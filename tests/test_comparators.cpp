// X-CUBE-AI comparator and the qualitative baseline models.
#include <gtest/gtest.h>

#include "src/baselines/qualitative.hpp"
#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/nn/engine.hpp"
#include "src/xcube/xcube_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_tiny_qmodel;

TEST(XCube, ExactNumericsMatchReference) {
  const QModel m = make_tiny_qmodel(90);
  XCubeEngine xcube(&m);
  RefEngine ref(&m);
  for (int i = 0; i < 20; ++i) {
    const auto img = testing::make_random_image(12 * 12 * 3, 910 + i);
    EXPECT_EQ(xcube.classify(img), ref.classify(img));
  }
}

TEST(XCube, FasterThanCmsisOnFastPathModels) {
  // X-CUBE-AI beats CMSIS on both paper networks; our cost profile must
  // reproduce that ordering on comparable models.
  const QModel m = make_tiny_qmodel(91);
  XCubeEngine xcube(&m);
  CmsisEngine cmsis(&m);
  EXPECT_LT(xcube.total_cycles(), cmsis.total_cycles());
}

TEST(XCube, SmallerFlashThanCmsis) {
  const QModel m = make_tiny_qmodel(92);
  XCubeEngine xcube(&m);
  const FlashReport cmsis = packed_flash(m);
  EXPECT_LT(xcube.flash_bytes(), cmsis.total_bytes);
}

TEST(XCube, DeployReportShape) {
  const QModel m = make_tiny_qmodel(93);
  XCubeEngine xcube(&m);
  Dataset eval(ImageShape{12, 12, 3}, 10);
  Rng rng(94);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    eval.add(img, rng.next_int(0, 9));
  }
  const DeployReport r = xcube.deploy(eval, BoardSpec{});
  EXPECT_EQ(r.design, "x-cube-ai");
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_GT(r.energy_mj, 0.0);
  EXPECT_EQ(r.mac_ops, m.mac_count());
}

TEST(CMixNN, MatchesCitedOperatingPoint) {
  // §III: ~326 ms at 13.8 M MACs on a 160 MHz core.
  const CMixNNModel cmix;
  const BoardSpec board;
  EXPECT_NEAR(cmix.latency_ms(13'800'000, board), 326.0, 5.0);
}

TEST(MicroTvm, ThirteenPercentOverheadVsCmsis) {
  const MicroTvmModel utvm;
  EXPECT_EQ(utvm.cycles(1'000'000), 1'130'000);
}

}  // namespace
}  // namespace ataman
