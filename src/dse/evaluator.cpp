#include "src/dse/evaluator.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/core/engine_iface.hpp"
#include "src/core/eval.hpp"

namespace ataman {

UnpackStats compute_unpack_stats(const QModel& model, const SkipMask& mask) {
  mask.validate(model);
  UnpackStats stats;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (!d.skippable) continue;
    const uint8_t* m = nullptr;
    if (ordinal < static_cast<int>(mask.masks.size()) &&
        !mask.masks[static_cast<size_t>(ordinal)].empty()) {
      m = mask.masks[static_cast<size_t>(ordinal)].data();
    }
    int64_t pairs = 0, singles = 0, retained_static = 0;
    for (int ch = 0; ch < d.channels; ++ch) {
      int retained = 0;
      if (m == nullptr) {
        retained = d.patch;
      } else {
        const uint8_t* row = m + static_cast<size_t>(ch) * d.patch;
        for (int i = 0; i < d.patch; ++i) retained += row[i] ? 0 : 1;
      }
      pairs += retained / 2;
      singles += retained % 2;
      retained_static += retained;
    }
    stats.static_pairs.push_back(pairs);
    stats.static_singles.push_back(singles);
    stats.retained_conv_macs += retained_static * d.positions;
    ++ordinal;
  }
  return stats;
}

ConfigEvaluator::ConfigEvaluator(
    const QModel* model, const std::vector<LayerSignificance>* significance,
    const Dataset* eval, int eval_images, CortexM33CostTable costs,
    MemoryCostTable memory, std::string accuracy_engine)
    : model_(model),
      significance_(significance),
      eval_(eval),
      eval_images_(eval_images),
      costs_(costs),
      memory_(memory),
      accuracy_engine_(std::move(accuracy_engine)) {
  check(model != nullptr && significance != nullptr && eval != nullptr,
        "evaluator needs model, significance and eval set");
  check(static_cast<int>(significance->size()) ==
            model->approx_layer_count(),
        "significance does not match model");
  check(EngineRegistry::instance().contains(accuracy_engine_),
        "unknown accuracy engine '" + accuracy_engine_ + "'");
  baseline_cycles_ = packed_model_cycles(*model_, costs_);
  conv_total_macs_ = model_->approx_mac_count();
  fc_total_macs_ = model_->mac_count() - conv_total_macs_;
}

void ConfigEvaluator::set_stream_stride(int stride_cols) {
  check(stride_cols >= 0, "stream stride must be >= 0 (0 disables)");
  stream_stride_ = stride_cols;
  stream_plan_ = stride_cols > 0 ? plan_stream_steady(*model_, stride_cols)
                                 : StreamPlan{};
}

DseResult ConfigEvaluator::evaluate(const ApproxConfig& config) const {
  check(static_cast<int>(config.tau.size()) == model_->approx_layer_count(),
        "config does not match model");
  const SkipMask mask = make_skip_mask(*model_, *significance_, config);
  DseResult r = static_metrics(config, mask);
  // Zeroed-weight copy: numerically identical to skip-aware execution
  // (tests assert it) but branch-free, so the sweep runs ~2x faster.
  const QModel masked = apply_skip_mask(*model_, mask);
  EngineConfig engine_cfg;
  engine_cfg.model = &masked;
  engine_cfg.costs = costs_;
  engine_cfg.memory = memory_;
  const auto engine =
      EngineRegistry::instance().create(accuracy_engine_, engine_cfg);
  r.accuracy = evaluate_batch(*engine, *eval_, eval_images_).top1;
  return r;
}

DseResult ConfigEvaluator::evaluate_static(const ApproxConfig& config) const {
  check(static_cast<int>(config.tau.size()) == model_->approx_layer_count(),
        "config does not match model");
  return static_metrics(config,
                        make_skip_mask(*model_, *significance_, config));
}

DseResult ConfigEvaluator::static_metrics(const ApproxConfig& config,
                                          const SkipMask& mask) const {
  DseResult r;
  r.config = config;
  const UnpackStats stats = compute_unpack_stats(*model_, mask);
  r.executed_macs = stats.retained_conv_macs + fc_total_macs_;
  r.skipped_conv_macs = conv_total_macs_ - stats.retained_conv_macs;
  r.conv_mac_reduction =
      conv_total_macs_ > 0
          ? static_cast<double>(r.skipped_conv_macs) /
                static_cast<double>(conv_total_macs_)
          : 0.0;

  // Unpacked deployment cycles: unpacked conv/depthwise + packed
  // FC/pool/softmax. When a stream stride is set, a second accumulator
  // prices the same deployment's steady-state streaming frame: the
  // conv/depthwise position terms scale to the splice plan's recomputed
  // positions (the plan is pure geometry, shared across configs) plus
  // the band copy; everything else recomputes in full.
  const bool streaming = stream_stride_ > 0;
  double cycles = 0.0;
  double stream_cycles = 0.0;
  int ordinal = 0;
  int out_dim = 0;
  for (size_t l = 0; l < model_->layers.size(); ++l) {
    const QLayer& layer = model_->layers[l];
    const StreamLayerPlan* lp =
        streaming ? &stream_plan_.layers[l] : nullptr;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      cycles += static_cast<double>(unpacked_conv_cycles(
          *conv, stats.static_pairs[static_cast<size_t>(ordinal)],
          stats.static_singles[static_cast<size_t>(ordinal)], costs_));
      if (streaming) {
        stream_cycles += static_cast<double>(unpacked_conv_stream_cycles(
            *conv, stats.static_pairs[static_cast<size_t>(ordinal)],
            stats.static_singles[static_cast<size_t>(ordinal)],
            lp->recomputed_positions, costs_));
      }
      ++ordinal;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      cycles += static_cast<double>(unpacked_depthwise_cycles(
          *dw, stats.static_pairs[static_cast<size_t>(ordinal)],
          stats.static_singles[static_cast<size_t>(ordinal)], costs_));
      if (streaming) {
        stream_cycles += static_cast<double>(unpacked_depthwise_stream_cycles(
            *dw, stats.static_pairs[static_cast<size_t>(ordinal)],
            stats.static_singles[static_cast<size_t>(ordinal)],
            lp->recomputed_positions, costs_));
      }
      ++ordinal;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      cycles += costs_.layer_dispatch +
                static_cast<double>(pool_cycles(*pool, costs_));
      stream_cycles += costs_.layer_dispatch +
                       static_cast<double>(pool_cycles(*pool, costs_));
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      cycles += costs_.layer_dispatch +
                static_cast<double>(avgpool_cycles(*pool, costs_));
      stream_cycles += costs_.layer_dispatch +
                       static_cast<double>(avgpool_cycles(*pool, costs_));
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      cycles += costs_.layer_dispatch +
                static_cast<double>(dense_cycles(*fc, costs_));
      stream_cycles += costs_.layer_dispatch +
                       static_cast<double>(dense_cycles(*fc, costs_));
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      // Residual adds are never unpacked or approximated: same
      // requantize-and-add cost as the deploying engine charges.
      cycles += costs_.layer_dispatch +
                static_cast<double>(qadd_cycles(*add, costs_));
      stream_cycles += costs_.layer_dispatch +
                       static_cast<double>(qadd_cycles(*add, costs_));
    }
    if (streaming && lp->spliced) {
      stream_cycles += costs_.stream_splice_per_elem *
                       static_cast<double>(lp->splice_hi - lp->splice_lo) *
                       static_cast<double>(lp->out_rows) * lp->out_ch;
    }
  }
  cycles += costs_.softmax_per_logit * out_dim;
  stream_cycles += costs_.softmax_per_logit * out_dim;
  r.cycles = static_cast<int64_t>(cycles);
  if (streaming) {
    r.stream_cycles_per_frame = static_cast<int64_t>(stream_cycles);
    r.stream_energy_mj_per_frame =
        BoardSpec{}.energy_mj(r.stream_cycles_per_frame);
  }
  r.latency_reduction =
      1.0 - static_cast<double>(r.cycles) /
                static_cast<double>(baseline_cycles_);
  r.flash_bytes =
      unpacked_flash(*model_, stats.static_pairs, stats.static_singles,
                     memory_)
          .total_bytes;
  return r;
}

}  // namespace ataman
