#include <gtest/gtest.h>

#include "src/common/fixed_point.hpp"

TEST(Smoke, BuildsAndLinks) {
  const auto qm = ataman::quantize_multiplier(0.5);
  EXPECT_EQ(ataman::multiply_by_quantized_multiplier(100, qm), 50);
}
