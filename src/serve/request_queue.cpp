#include "src/serve/request_queue.hpp"

#include "src/common/error.hpp"
#include "src/serve/stream_session.hpp"

namespace ataman::serve {

RequestQueue::RequestQueue(int max_batch) : max_batch_(max_batch) {
  check(max_batch >= 1, "RequestQueue max_batch must be >= 1");
}

bool RequestQueue::same_key(const InferRequest& a, const InferRequest& b) {
  return a.mask == b.mask && a.engine == b.engine;
}

bool RequestQueue::push(QueuedJob job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::pop_batch(std::vector<QueuedJob>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  // The head of the batch is the oldest *eligible* job: frames of a
  // session that already has an in-flight batch are skipped (they must
  // wait for session_done), everything else keeps strict FIFO priority.
  auto eligible_head = [&] {
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->session == nullptr ||
          busy_sessions_.count(it->session->id()) == 0) {
        return it;
      }
    }
    return jobs_.end();
  };
  std::deque<QueuedJob>::iterator head;
  cv_.wait(lock, [&] {
    head = eligible_head();
    // Ineligible leftovers after close() are not "drained": the worker
    // holding their session will call session_done and wake us.
    return head != jobs_.end() || (closed_ && jobs_.empty());
  });
  if (head == jobs_.end()) return false;  // closed and drained

  out.push_back(std::move(*head));
  jobs_.erase(head);
  const StreamSession* session = out.front().session.get();
  // Coalesce later compatible arrivals (arrival order preserved — we
  // scan front to back and never reorder survivors). Session batches
  // take only frames of the same session; one-shot batches take only
  // one-shots sharing the head's (engine, mask) key.
  for (auto it = jobs_.begin();
       it != jobs_.end() && static_cast<int>(out.size()) < max_batch_;) {
    const bool take =
        session != nullptr
            ? it->session.get() == session
            : it->session == nullptr &&
                  same_key(out.front().request, it->request);
    if (take) {
      out.push_back(std::move(*it));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (session != nullptr) busy_sessions_.insert(session->id());
  return true;
}

void RequestQueue::session_done(uint64_t session_id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    busy_sessions_.erase(session_id);
  }
  cv_.notify_all();
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<QueuedJob> RequestQueue::cancel_pending() {
  std::vector<QueuedJob> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cancelled.reserve(jobs_.size());
    while (!jobs_.empty()) {
      cancelled.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
    }
  }
  cv_.notify_all();
  return cancelled;
}

int RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(jobs_.size());
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace ataman::serve
