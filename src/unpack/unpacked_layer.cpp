#include "src/unpack/unpacked_layer.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"
#include "src/cmsisnn/smlad.hpp"

namespace ataman {

int64_t UnpackedConv::static_pairs() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels)
    total += static_cast<int64_t>(ch.pairs.size());
  return total;
}

int64_t UnpackedConv::static_singles() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels) total += ch.has_single ? 1 : 0;
  return total;
}

int64_t UnpackedConv::retained_macs() const {
  int64_t static_ops = 0;
  for (const ChannelProgram& ch : channels) static_ops += ch.retained_ops();
  return static_ops * geom.positions();
}

UnpackedConv UnpackedConv::build(const QConv2D& layer, const uint8_t* skip) {
  UnpackedConv u;
  u.geom = layer.geom;
  u.in_q = layer.in;
  u.out_q = layer.out;
  u.requant = layer.requant;
  u.act_min = layer.act_min;
  u.act_max = layer.act_max;

  const int patch = layer.geom.patch_size();
  u.channels.resize(static_cast<size_t>(layer.geom.out_c));
  for (int oc = 0; oc < layer.geom.out_c; ++oc) {
    ChannelProgram& prog = u.channels[static_cast<size_t>(oc)];
    prog.bias = layer.bias[static_cast<size_t>(oc)];
    const int8_t* w =
        layer.weights.data() + static_cast<size_t>(oc) * patch;
    const uint8_t* sk =
        skip != nullptr ? skip + static_cast<size_t>(oc) * patch : nullptr;

    // Offline re-pairing: collect retained operand indices, then emit one
    // SMLAD per surviving pair and an SMLABB for the odd leftover.
    std::vector<uint32_t> retained;
    retained.reserve(static_cast<size_t>(patch));
    for (int i = 0; i < patch; ++i) {
      if (sk == nullptr || !sk[i]) retained.push_back(static_cast<uint32_t>(i));
    }
    const size_t n_pairs = retained.size() / 2;
    prog.pairs.reserve(n_pairs);
    for (size_t p = 0; p < n_pairs; ++p) {
      const uint32_t ia = retained[2 * p];
      const uint32_t ib = retained[2 * p + 1];
      prog.pairs.push_back(
          {pack_weight_pair(/*hi=*/w[ib], /*lo=*/w[ia]), ia, ib});
    }
    if (retained.size() % 2 != 0) {
      prog.has_single = true;
      prog.single = {static_cast<int16_t>(w[retained.back()]),
                     retained.back()};
    }
  }
  return u;
}

void UnpackedConv::run(std::span<const int8_t> in,
                       std::span<int8_t> out) const {
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(geom.in_h) * geom.in_w * geom.in_c,
        "unpacked conv input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(geom.positions()) * geom.out_c,
        "unpacked conv output size mismatch");

  const int oh = geom.out_h(), ow = geom.out_w();
  const int patch = geom.patch_size();
  const int32_t zp = in_q.zero_point;

  // The host interpreter materializes the zero-point-corrected patch once
  // per position purely as a host-speed optimization; the *priced*
  // instruction stream (cost_model::unpacked_conv_cycles) models direct
  // activation loads with no such buffer, and the numerics are identical.
  std::vector<int16_t> col(static_cast<size_t>(patch));
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int idx = 0;
      for (int ky = 0; ky < geom.kernel; ++ky) {
        const int iy = oy * geom.stride - geom.pad + ky;
        for (int kx = 0; kx < geom.kernel; ++kx) {
          const int ix = ox * geom.stride - geom.pad + kx;
          const bool inside =
              iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
          const int8_t* src =
              inside
                  ? in.data() + (static_cast<size_t>(iy) * geom.in_w + ix) *
                                    geom.in_c
                  : nullptr;
          for (int c = 0; c < geom.in_c; ++c, ++idx)
            col[static_cast<size_t>(idx)] =
                static_cast<int16_t>((inside ? src[c] : zp) - zp);
        }
      }

      int8_t* orow =
          out.data() + (static_cast<size_t>(oy) * ow + ox) * geom.out_c;
      for (int oc = 0; oc < geom.out_c; ++oc) {
        const ChannelProgram& prog = channels[static_cast<size_t>(oc)];
        int32_t acc = prog.bias;
        for (const MacPairOp& op : prog.pairs) {
          const uint32_t apair =
              pack_q15_pair(col[op.operand_b], col[op.operand_a]);
          acc = smlad(op.weight_const, apair, acc);
        }
        if (prog.has_single) {
          acc = smlabb(pack_q15_pair(0, prog.single.weight),
                       pack_q15_pair(0, col[prog.single.operand]), acc);
        }
        const int32_t scaled =
            multiply_by_quantized_multiplier(acc, requant) + out_q.zero_point;
        orow[oc] =
            static_cast<int8_t>(std::clamp(scaled, act_min, act_max));
      }
    }
  }
}

}  // namespace ataman
