// End-to-end integration: the full Fig. 1 pipeline on a small trained
// model — train, quantize, analyze, explore, select, deploy; plus the
// cross-engine agreements the framework's claims rest on.
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/core/ataman.hpp"
#include "src/nn/engine.hpp"
#include "src/unpack/unpacked_engine.hpp"

namespace ataman {
namespace {

// One shared trained+quantized micronet for every test in this file.
class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ZooSpec spec = micronet_spec();
    spec.data.train_images = 900;
    spec.data.test_images = 400;
    spec.train.epochs = 5;
    spec.train.lr_decay_at = {4};
    TrainedModel trained = train_from_scratch(spec, /*verbose=*/false);
    data_ = new SynthCifar(make_synth_cifar(spec.data));
    qmodel_ = new QModel(quantize_model(trained.net, data_->train));

    PipelineOptions opts;
    opts.dse.eval_images = 200;
    opts.dse.tau_step = 0.02;
    pipe_ = new AtamanPipeline(qmodel_, &data_->train, &data_->test, opts);
    pipe_->analyze();
    outcome_ = new DseOutcome(pipe_->explore());
  }
  static void TearDownTestSuite() {
    delete outcome_;
    delete pipe_;
    delete qmodel_;
    delete data_;
    outcome_ = nullptr;
    pipe_ = nullptr;
    qmodel_ = nullptr;
    data_ = nullptr;
  }

  static SynthCifar* data_;
  static QModel* qmodel_;
  static AtamanPipeline* pipe_;
  static DseOutcome* outcome_;
};

SynthCifar* Pipeline::data_ = nullptr;
QModel* Pipeline::qmodel_ = nullptr;
AtamanPipeline* Pipeline::pipe_ = nullptr;
DseOutcome* Pipeline::outcome_ = nullptr;

TEST_F(Pipeline, AnalyzeProducesSignificancePerConvLayer) {
  ASSERT_TRUE(pipe_->analyzed());
  EXPECT_EQ(static_cast<int>(pipe_->significance().size()),
            qmodel_->approx_layer_count());
  for (const LayerSignificance& sig : pipe_->significance()) {
    EXPECT_GT(sig.out_c, 0);
    EXPECT_GT(sig.patch, 0);
    EXPECT_EQ(sig.S.size(), static_cast<size_t>(sig.out_c) * sig.patch);
  }
}

TEST_F(Pipeline, ExploreFindsNonTrivialPareto) {
  EXPECT_GT(outcome_->results.size(), 10u);
  EXPECT_GE(outcome_->pareto.size(), 2u);
  // At least one approximate design reduces MACs by > 10% while staying
  // within 10% accuracy of the exact baseline (the paper finds far more).
  bool found = false;
  for (const DseResult& r : outcome_->results) {
    if (r.conv_mac_reduction > 0.10 &&
        r.accuracy >= outcome_->exact_accuracy - 0.10)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(Pipeline, ZeroLossSelectionDoesNotDegradeAccuracy) {
  const int idx = pipe_->select(*outcome_, 0.0);
  ASSERT_GE(idx, 0);
  const DseResult& r = outcome_->results[static_cast<size_t>(idx)];
  EXPECT_GE(r.accuracy, outcome_->exact_accuracy - 1e-12);
  // And it is faster than (or equal to) the exact unpacked design.
  EXPECT_LE(r.cycles, outcome_->results[0].cycles);
}

TEST_F(Pipeline, LooserThresholdsAreMonotonicallyFaster) {
  int64_t prev_cycles = std::numeric_limits<int64_t>::max();
  for (const double loss : {0.0, 0.05, 0.10}) {
    const int idx = pipe_->select(*outcome_, loss);
    ASSERT_GE(idx, 0) << "loss " << loss;
    const int64_t cycles =
        outcome_->results[static_cast<size_t>(idx)].cycles;
    EXPECT_LE(cycles, prev_cycles);
    prev_cycles = cycles;
  }
}

TEST_F(Pipeline, DeployedReportMatchesDseEstimates) {
  const int idx = pipe_->select(*outcome_, 0.05);
  ASSERT_GE(idx, 0);
  const DseResult& r = outcome_->results[static_cast<size_t>(idx)];
  const DeployReport dep =
      pipe_->deploy(r.config, "ataman(5%)", /*eval_limit=*/200);
  // The DSE evaluates with masked reference inference; deployment runs
  // the actual unpacked engine. Accuracy and cycles must agree exactly.
  EXPECT_DOUBLE_EQ(dep.top1_accuracy, r.accuracy);
  EXPECT_EQ(dep.cycles, r.cycles);
  EXPECT_EQ(dep.flash_bytes, r.flash_bytes);
  EXPECT_EQ(dep.mac_ops, r.executed_macs);
}

TEST_F(Pipeline, BaselineReportsAreOrderedAsInThePaper) {
  const DeployReport cmsis = pipe_->deploy_cmsis_baseline(/*eval_limit=*/200);
  const DeployReport xcube = pipe_->deploy_xcube(/*eval_limit=*/200);
  // Exact engines agree on accuracy (bit-exact numerics).
  EXPECT_DOUBLE_EQ(cmsis.top1_accuracy, xcube.top1_accuracy);
  // X-CUBE-AI is the faster exact library (Table II).
  EXPECT_LT(xcube.latency_ms, cmsis.latency_ms);

  const int idx = pipe_->select(*outcome_, 0.10);
  ASSERT_GE(idx, 0);
  const DeployReport ours = pipe_->deploy(
      outcome_->results[static_cast<size_t>(idx)].config, "ataman(10%)",
      /*eval_limit=*/200);
  // At a 10% budget the approximate design beats the exact baseline.
  EXPECT_LT(ours.latency_ms, cmsis.latency_ms);
  EXPECT_LT(ours.mac_ops, cmsis.mac_ops);
  // Flash grows (code unpacking) but must still fit the board.
  EXPECT_GT(ours.flash_bytes, 0);
  EXPECT_TRUE(ours.fits_flash);
  EXPECT_TRUE(ours.fits_ram);
}

TEST_F(Pipeline, MaskedReferenceEqualsUnpackedEngineOnSelectedDesign) {
  const int idx = pipe_->select(*outcome_, 0.05);
  ASSERT_GE(idx, 0);
  const SkipMask mask =
      pipe_->mask_for(outcome_->results[static_cast<size_t>(idx)].config);
  RefEngine ref(qmodel_);
  UnpackedEngine up(qmodel_, &mask);
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(ref.run(data_->test.image(i), &mask),
              up.run(data_->test.image(i)))
        << "image " << i;
  }
}

TEST_F(Pipeline, GeneratedCodeReflectsSelectedConfig) {
  const int idx = pipe_->select(*outcome_, 0.10);
  ASSERT_GE(idx, 0);
  const ApproxConfig& cfg =
      outcome_->results[static_cast<size_t>(idx)].config;
  const std::string code = pipe_->generate_code(cfg);
  EXPECT_NE(code.find("_run"), std::string::npos);
  // The exact build has at least as many MAC instructions as the
  // approximate one.
  const std::string exact_code =
      pipe_->generate_code(ApproxConfig::exact(qmodel_->approx_layer_count()));
  const auto count_smlad = [](const std::string& s) {
    size_t n = 0, pos = 0;
    while ((pos = s.find("_smlad(0x", pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  EXPECT_LE(count_smlad(code), count_smlad(exact_code));
}

TEST_F(Pipeline, QModelCacheRoundTripPreservesBehaviour) {
  const std::string dir = "/tmp/ataman_integration_cache";
  ZooSpec spec = micronet_spec();
  spec.data.train_images = 300;
  spec.data.test_images = 100;
  spec.train.epochs = 2;
  const QModel a = get_or_build_qmodel(spec, dir);  // trains + caches
  const QModel b = get_or_build_qmodel(spec, dir);  // loads from cache
  const SynthCifar data = make_synth_cifar(spec.data);
  RefEngine ea(&a), eb(&b);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(ea.run(data.test.image(i)), eb.run(data.test.image(i)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ataman
