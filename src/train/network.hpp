// Sequential network container and the architecture description shared by
// the trainer, the quantizer and the model zoo.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/train/layers.hpp"

namespace ataman {

// Declarative layer description. An architecture is a list of these; the
// paper's "topology" notation (e.g. LeNet 3-2-2 = 3 conv, 2 pool, 2 FC)
// maps directly onto the kinds below.
struct LayerSpec {
  enum class Kind { kConv, kPool, kRelu, kDense, kDepthwise, kAvgPool, kAdd };
  Kind kind = Kind::kConv;
  int out_c = 0;   // conv: output channels
  int kernel = 0;  // conv/depthwise/pool: window
  int stride = 1;  // conv/depthwise/pool
  int pad = 0;     // conv/depthwise
  int units = 0;   // dense: output width
  // add: absolute spec index of the layer producing the second operand
  // (-1 = the network input). The first operand is always the chain
  // predecessor, so an architecture stays a flat list with explicit
  // residual skip edges.
  int from = -1;

  static LayerSpec conv(int out_c, int kernel, int stride, int pad);
  static LayerSpec pool(int kernel, int stride);
  static LayerSpec relu();
  static LayerSpec dense(int units);
  // Depthwise conv keeps the incoming channel count.
  static LayerSpec depthwise(int kernel, int stride, int pad);
  static LayerSpec avgpool(int kernel, int stride);
  // Residual merge with the output of spec index `from` (must precede
  // this layer and match its shape; -1 = the network input).
  static LayerSpec add(int from);
};

struct ModelArch {
  std::string name;       // "lenet", "alexnet", ...
  std::string topology;   // paper notation, e.g. "3-2-2"
  std::vector<LayerSpec> layers;

  int conv_count() const;
  int pool_count() const;
  int dense_count() const;
};

class Network {
 public:
  Network() = default;
  // Instantiates `arch` for `input` shape; weights drawn from `rng`.
  Network(const ModelArch& arch, ImageShape input, Rng& rng);

  FTensor forward(const FTensor& x, bool train);
  // Backpropagate from the loss gradient; parameter grads accumulate.
  void backward(const FTensor& dloss);
  void zero_grad();

  std::vector<ParamRef> params();
  int64_t param_count();

  const ModelArch& arch() const { return arch_; }
  ImageShape input_shape() const { return input_; }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  // Total multiply-accumulate operations of one inference (conv + dense).
  int64_t mac_count() const;

  // Argmax class prediction for a batch of [B,H,W,C] float images.
  std::vector<int> predict(const FTensor& x);

 private:
  ModelArch arch_;
  ImageShape input_;
  std::vector<std::unique_ptr<Layer>> layers_;
  // tapped_[i] != 0 iff some later add layer reads the output of layer i
  // through a skip edge; forward() caches exactly those tensors.
  std::vector<uint8_t> tapped_;
};

// Convert dataset images [lo, hi) to a float batch normalized to [0, 1]
// (the paper normalizes inputs to [0, 1]).
FTensor to_float_batch(const Dataset& ds, const std::vector<int>& indices,
                       size_t lo, size_t hi);

// Top-1 accuracy of `net` on `ds` (float inference), parallel over batches.
double evaluate_accuracy(Network& net, const Dataset& ds, int batch_size = 64);

}  // namespace ataman
