#include "src/data/synth_cifar.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/data/patterns.hpp"

namespace ataman {

namespace {

constexpr int kSize = 32;
constexpr int kChannels = 3;
constexpr int kClasses = 10;

// Base RGB palette per class: (foreground, background), chosen so color
// alone is informative but not sufficient (several classes share hues).
struct Palette {
  std::array<float, 3> fg;
  std::array<float, 3> bg;
};

constexpr std::array<Palette, kClasses> kPalettes = {{
    {{0.85f, 0.30f, 0.25f}, {0.15f, 0.10f, 0.12f}},  // 0 stripes-h, red
    {{0.25f, 0.75f, 0.35f}, {0.10f, 0.16f, 0.12f}},  // 1 stripes-v, green
    {{0.30f, 0.45f, 0.85f}, {0.08f, 0.10f, 0.18f}},  // 2 diag, blue
    {{0.80f, 0.72f, 0.25f}, {0.18f, 0.15f, 0.08f}},  // 3 checker, yellow
    {{0.78f, 0.35f, 0.75f}, {0.14f, 0.08f, 0.15f}},  // 4 rings, magenta
    {{0.30f, 0.78f, 0.78f}, {0.08f, 0.15f, 0.16f}},  // 5 blob, cyan
    {{0.85f, 0.55f, 0.25f}, {0.16f, 0.12f, 0.08f}},  // 6 cross, orange
    {{0.70f, 0.70f, 0.72f}, {0.12f, 0.12f, 0.14f}},  // 7 quadrants, grey
    {{0.45f, 0.30f, 0.78f}, {0.10f, 0.08f, 0.16f}},  // 8 dots, violet
    {{0.55f, 0.80f, 0.30f}, {0.12f, 0.16f, 0.08f}},  // 9 sectors, lime
}};

constexpr std::array<const char*, kClasses> kClassNames = {
    "stripes-h", "stripes-v", "stripes-d", "checker", "rings",
    "blob",      "cross",     "quadrant",  "dots",    "sectors"};

float clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

void render_image(const SynthCifarSpec& spec, Rng& rng, int label,
                  std::array<uint8_t, kSize * kSize * kChannels>& out) {
  const auto family = static_cast<PatternFamily>(label);
  const PatternParams params = sample_pattern_params(rng);

  // A distractor texture from a different family is blended in at low
  // weight: it forces the classifier to separate overlapping evidence and
  // is the main difficulty source besides pixel noise.
  const int distractor_label =
      (label + rng.next_int(1, kClasses - 1)) % kClasses;
  const auto distractor_family = static_cast<PatternFamily>(distractor_label);
  const PatternParams distractor_params = sample_pattern_params(rng);

  Palette pal = kPalettes[static_cast<size_t>(label)];
  for (auto& c : pal.fg)
    c = clamp01(c + rng.next_uniform(-spec.palette_jitter, spec.palette_jitter));
  for (auto& c : pal.bg)
    c = clamp01(c + rng.next_uniform(-spec.palette_jitter, spec.palette_jitter));

  const float brightness = rng.next_uniform(0.85f, 1.15f);
  const float contrast = rng.next_uniform(0.8f, 1.2f);

  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      const float u = (static_cast<float>(x) + 0.5f) / kSize;
      const float v = (static_cast<float>(y) + 0.5f) / kSize;
      float t = pattern_value(family, u, v, params);
      const float d =
          pattern_value(distractor_family, u, v, distractor_params);
      t = (1.0f - spec.distractor_alpha) * t + spec.distractor_alpha * d;
      t = clamp01(0.5f + (t - 0.5f) * contrast);
      for (int c = 0; c < kChannels; ++c) {
        const float base =
            pal.bg[static_cast<size_t>(c)] +
            t * (pal.fg[static_cast<size_t>(c)] - pal.bg[static_cast<size_t>(c)]);
        float value = 255.0f * brightness * base +
                      rng.next_normal(0.0f, spec.noise_sigma);
        value = std::clamp(value, 0.0f, 255.0f);
        out[static_cast<size_t>((y * kSize + x) * kChannels + c)] =
            static_cast<uint8_t>(std::lround(value));
      }
    }
  }
}

// Anomaly corruption: invert a deterministic patch and add extra noise on
// top of a normal render. Strong enough that a reconstruction-error head
// separates the two populations, weak enough that raw pixel statistics
// (mean/stddev) stay in-distribution.
void corrupt_image(Rng& rng, float noise_sigma,
                   std::array<uint8_t, kSize * kSize * kChannels>& img) {
  const int patch = 12;
  const int px = rng.next_int(0, kSize - patch);
  const int py = rng.next_int(0, kSize - patch);
  for (int y = py; y < py + patch; ++y) {
    for (int x = px; x < px + patch; ++x) {
      for (int c = 0; c < kChannels; ++c) {
        const size_t idx = static_cast<size_t>((y * kSize + x) * kChannels + c);
        float value = 255.0f - static_cast<float>(img[idx]) +
                      rng.next_normal(0.0f, 0.5f * noise_sigma);
        img[idx] = static_cast<uint8_t>(
            std::lround(std::clamp(value, 0.0f, 255.0f)));
      }
    }
  }
}

}  // namespace

Dataset make_synth_cifar_split(const SynthCifarSpec& spec, int count,
                               uint64_t split_salt, float anomaly_fraction) {
  check(count >= 0, "split size must be non-negative");
  check(anomaly_fraction >= 0.0f && anomaly_fraction <= 1.0f,
        "anomaly fraction must be in [0, 1]");
  const int num_classes = spec.task == SynthTask::kClassify10 ? kClasses : 2;
  Dataset ds(ImageShape{kSize, kSize, kChannels}, num_classes);

  // Render in parallel into a flat buffer, then append sequentially so the
  // dataset layout is identical for any thread count.
  std::vector<std::array<uint8_t, kSize * kSize * kChannels>> images(
      static_cast<size_t>(count));
  std::vector<uint8_t> labels(static_cast<size_t>(count));
  const Rng base(spec.seed ^ split_salt);
  parallel_for(0, count, [&](int64_t i) {
    Rng rng = base.fork(static_cast<uint64_t>(i));
    // All tasks render the full 10-family substrate; they differ only in
    // how the stored label is derived from the rendered family.
    const int family = static_cast<int>(i) % kClasses;
    int label = family;
    switch (spec.task) {
      case SynthTask::kClassify10:
        // Label noise reassigns a small fraction to a random class to cap
        // achievable accuracy realistically.
        if (rng.next_bool(spec.label_noise))
          label = rng.next_int(0, kClasses - 1);
        render_image(spec, rng, label, images[static_cast<size_t>(i)]);
        break;
      case SynthTask::kVww:
        // Family parity as the person/no-person bit; noise flips it.
        label = family % 2;
        if (rng.next_bool(spec.label_noise)) label = 1 - label;
        render_image(spec, rng, family, images[static_cast<size_t>(i)]);
        break;
      case SynthTask::kAnomaly: {
        // No label noise: the label IS the corruption bit, and flipping it
        // would poison both the all-normal train split and test AUC.
        render_image(spec, rng, family, images[static_cast<size_t>(i)]);
        const bool anomalous = rng.next_bool(anomaly_fraction);
        if (anomalous)
          corrupt_image(rng, spec.noise_sigma, images[static_cast<size_t>(i)]);
        label = anomalous ? 1 : 0;
        break;
      }
    }
    labels[static_cast<size_t>(i)] = static_cast<uint8_t>(label);
  });
  for (int i = 0; i < count; ++i)
    ds.add(images[static_cast<size_t>(i)], labels[static_cast<size_t>(i)]);

  // Shuffle so class order is not periodic (matters for mini-batch SGD).
  Rng shuffle_rng(spec.seed ^ (split_salt * 0x9E3779B9ULL) ^ 0xC0FFEE);
  ds.shuffle(shuffle_rng);
  return ds;
}

SynthCifar make_synth_cifar(const SynthCifarSpec& spec) {
  // Anomaly training data is all-normal (the autoencoder never sees an
  // anomaly); the test split is half corrupted for threshold/AUC scoring.
  const float test_anomaly_fraction =
      spec.task == SynthTask::kAnomaly ? 0.5f : 0.0f;
  SynthCifar out;
  out.train = make_synth_cifar_split(spec, spec.train_images, /*salt=*/1);
  out.test = make_synth_cifar_split(spec, spec.test_images, /*salt=*/2,
                                    test_anomaly_fraction);
  return out;
}

const char* synth_cifar_class_name(int label) {
  check(label >= 0 && label < kClasses, "class label out of range");
  return kClassNames[static_cast<size_t>(label)];
}

}  // namespace ataman
