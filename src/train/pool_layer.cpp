#include <limits>

#include "src/common/parallel.hpp"
#include "src/train/layers.hpp"

namespace ataman {

MaxPool2DLayer::MaxPool2DLayer(int kernel, int stride)
    : kernel_(kernel), stride_(stride) {
  check(kernel >= 1 && stride >= 1, "invalid pooling geometry");
}

FTensor MaxPool2DLayer::forward(const FTensor& x, bool train) {
  check(x.rank() == 4, "pool input must be [B,H,W,C]");
  const int batch = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const int oh = conv_out_extent(h, kernel_, stride_, 0);
  const int ow = conv_out_extent(w, kernel_, stride_, 0);
  check(oh > 0 && ow > 0, "pool output collapses");

  FTensor y({batch, oh, ow, c});
  in_shape_ = x.shape();
  argmax_.assign(static_cast<size_t>(y.size()), -1);

  parallel_for(0, batch, [&](int64_t b) {
    const float* in = x.item(static_cast<int>(b));
    float* out = y.item(static_cast<int>(b));
    int32_t* arg = argmax_.data() + y.item_size() * b;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int ch = 0; ch < c; ++ch) {
          float best = -std::numeric_limits<float>::infinity();
          int32_t best_idx = -1;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            if (iy >= h) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              if (ix >= w) continue;
              const int32_t idx = (iy * w + ix) * c + ch;
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          const int32_t oidx = (oy * ow + ox) * c + ch;
          out[oidx] = best;
          arg[oidx] = best_idx;
        }
      }
    }
  });
  (void)train;  // argmax is cheap; always recorded
  return y;
}

FTensor MaxPool2DLayer::backward(const FTensor& dy) {
  check(!in_shape_.empty(), "pool backward before forward");
  FTensor dx{std::vector<int>(in_shape_)};
  const int batch = dx.dim(0);
  parallel_for(0, batch, [&](int64_t b) {
    const float* dyb = dy.item(static_cast<int>(b));
    float* dxb = dx.item(static_cast<int>(b));
    const int32_t* arg = argmax_.data() + dy.item_size() * b;
    for (int64_t i = 0; i < dy.item_size(); ++i) {
      if (arg[i] >= 0) dxb[arg[i]] += dyb[i];
    }
  });
  return dx;
}

AvgPool2DLayer::AvgPool2DLayer(int kernel, int stride)
    : kernel_(kernel), stride_(stride) {
  check(kernel >= 1 && stride >= 1, "invalid pooling geometry");
}

FTensor AvgPool2DLayer::forward(const FTensor& x, bool train) {
  check(x.rank() == 4, "pool input must be [B,H,W,C]");
  const int batch = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  validate_pool_geometry(h, w, kernel_, stride_, "avgpool2d");
  const int oh = conv_out_extent(h, kernel_, stride_, 0);
  const int ow = conv_out_extent(w, kernel_, stride_, 0);

  FTensor y({batch, oh, ow, c});
  in_shape_ = x.shape();
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  parallel_for(0, batch, [&](int64_t b) {
    const float* in = x.item(static_cast<int>(b));
    float* out = y.item(static_cast<int>(b));
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int ch = 0; ch < c; ++ch) {
          float sum = 0.0f;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              sum += in[(iy * w + ix) * c + ch];
            }
          }
          out[(oy * ow + ox) * c + ch] = sum * inv;
        }
      }
    }
  });
  (void)train;
  return y;
}

FTensor AvgPool2DLayer::backward(const FTensor& dy) {
  check(!in_shape_.empty(), "pool backward before forward");
  FTensor dx{std::vector<int>(in_shape_)};
  const int batch = dx.dim(0), h = dx.dim(1), w = dx.dim(2), c = dx.dim(3);
  // dy may arrive flattened to rank 2 from a dense head above; recompute
  // the output extent from the cached input shape.
  const int oh = conv_out_extent(h, kernel_, stride_, 0);
  const int ow = conv_out_extent(w, kernel_, stride_, 0);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  check(dy.item_size() == static_cast<int64_t>(oh) * ow * c,
        "avgpool backward gradient size mismatch");
  parallel_for(0, batch, [&](int64_t b) {
    const float* dyb = dy.item(static_cast<int>(b));
    float* dxb = dx.item(static_cast<int>(b));
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int ch = 0; ch < c; ++ch) {
          const float g = dyb[(oy * ow + ox) * c + ch] * inv;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              dxb[(iy * w + ix) * c + ch] += g;
            }
          }
        }
      }
    }
  });
  return dx;
}

FTensor ReluLayer::forward(const FTensor& x, bool train) {
  FTensor y{std::vector<int>(x.shape())};
  if (train) mask_.assign(static_cast<size_t>(x.size()), 0);
  for (int64_t i = 0; i < x.size(); ++i) {
    const bool on = x[i] > 0.0f;
    y[i] = on ? x[i] : 0.0f;
    if (train) mask_[static_cast<size_t>(i)] = on ? 1 : 0;
  }
  return y;
}

FTensor ReluLayer::backward(const FTensor& dy) {
  check(mask_.size() == static_cast<size_t>(dy.size()),
        "relu backward before forward(train=true)");
  FTensor dx{std::vector<int>(dy.shape())};
  for (int64_t i = 0; i < dy.size(); ++i)
    dx[i] = mask_[static_cast<size_t>(i)] ? dy[i] : 0.0f;
  return dx;
}

}  // namespace ataman
