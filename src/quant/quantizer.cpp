#include "src/quant/quantizer.hpp"

#include <cmath>
#include <numeric>

#include "src/common/math_util.hpp"
#include "src/common/serialize.hpp"
#include "src/quant/calibrate.hpp"

namespace ataman {

namespace {

constexpr const char* kQModelMagic = "ATAMAN.QMODEL";

// Quantize one weight tensor symmetrically; returns the scale.
float quantize_weights(const std::vector<float>& w, std::vector<int8_t>& out) {
  float absmax = 0.0f;
  for (const float v : w) absmax = std::max(absmax, std::abs(v));
  const float scale = absmax > 0.0f ? absmax / 127.0f : 1e-8f;
  out.resize(w.size());
  for (size_t i = 0; i < w.size(); ++i)
    out[i] = saturate_int8(round_to_int32(w[i] / scale));
  return scale;
}

std::vector<int32_t> quantize_bias(const std::vector<float>& b,
                                   float in_scale, float w_scale) {
  std::vector<int32_t> out(b.size());
  const double s = static_cast<double>(in_scale) * w_scale;
  for (size_t i = 0; i < b.size(); ++i)
    out[i] = static_cast<int32_t>(std::llround(b[i] / s));
  return out;
}

}  // namespace

QModel quantize_model(Network& net, const Dataset& calib,
                      const QuantizerConfig& config) {
  check(calib.size() > 0, "calibration dataset is empty");
  const int n_calib = std::min(config.calibration_images, calib.size());

  // --- Pass 1: float forward over the calibration subset, observing the
  // output range of every conv/dense layer (post-ReLU when ReLU follows,
  // since ReLU is folded into the layer's output clamp).
  const auto& layers = net.layers();
  std::vector<RangeObserver> observers(layers.size(),
                                       RangeObserver(config.clip_quantile));

  std::vector<int> indices(static_cast<size_t>(n_calib));
  std::iota(indices.begin(), indices.end(), 0);
  constexpr int kBatch = 32;
  for (size_t lo = 0; lo < indices.size(); lo += kBatch) {
    const size_t hi = std::min(indices.size(), lo + kBatch);
    FTensor cur = to_float_batch(calib, indices, lo, hi);
    for (size_t li = 0; li < layers.size(); ++li) {
      Layer* layer = layers[li].get();
      if (dynamic_cast<DenseLayer*>(layer) != nullptr && cur.rank() != 2) {
        FTensor flat({cur.dim(0), static_cast<int>(cur.item_size())});
        std::copy(cur.data(), cur.data() + cur.size(), flat.data());
        cur = std::move(flat);
      }
      cur = layer->forward(cur, /*train=*/false);
      observers[li].observe(cur.data(), cur.size());
    }
  }

  // --- Pass 2: assemble the QModel.
  QModel qm;
  qm.name = net.arch().name;
  qm.topology = net.arch().topology;
  qm.in_h = net.input_shape().height;
  qm.in_w = net.input_shape().width;
  qm.in_c = net.input_shape().channels;
  // Inputs are u8/255 in [0,1]: scale 1/255, zero_point -128 is exact
  // (q = pixel - 128).
  qm.input = {1.0f / 255.0f, -128};

  QuantParams act = qm.input;
  // Running activation extent (valid while the net is still spatial).
  int h = qm.in_h, w = qm.in_w, c = qm.in_c;
  for (size_t li = 0; li < layers.size(); ++li) {
    Layer* layer = layers[li].get();
    const bool relu_next =
        li + 1 < layers.size() &&
        dynamic_cast<ReluLayer*>(layers[li + 1].get()) != nullptr;
    // Observer of the folded output: post-ReLU range when folding.
    const RangeObserver& out_obs = observers[relu_next ? li + 1 : li];

    if (auto* conv = dynamic_cast<Conv2DLayer*>(layer)) {
      QConv2D q;
      q.geom = conv->geom();
      q.in = act;
      q.w_scale = quantize_weights(conv->weights(), q.weights);
      q.bias = quantize_bias(conv->bias(), act.scale, q.w_scale);
      q.out = out_obs.to_affine_params();
      q.requant = quantize_multiplier(
          static_cast<double>(act.scale) * q.w_scale / q.out.scale);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      h = q.geom.out_h();
      w = q.geom.out_w();
      c = q.geom.out_c;
      qm.layers.emplace_back(std::move(q));
    } else if (auto* dw = dynamic_cast<DepthwiseConv2DLayer*>(layer)) {
      QDepthwiseConv2D q;
      q.in_h = dw->geom().in_h;
      q.in_w = dw->geom().in_w;
      q.channels = dw->geom().channels;
      q.kernel = dw->geom().kernel;
      q.stride = dw->geom().stride;
      q.pad = dw->geom().pad;
      q.in = act;
      q.w_scale = quantize_weights(dw->weights(), q.weights);
      q.bias = quantize_bias(dw->bias(), act.scale, q.w_scale);
      q.out = out_obs.to_affine_params();
      q.requant = quantize_multiplier(
          static_cast<double>(act.scale) * q.w_scale / q.out.scale);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(std::move(q));
    } else if (auto* fc = dynamic_cast<DenseLayer*>(layer)) {
      QDense q;
      q.in_dim = fc->in_dim();
      q.out_dim = fc->out_dim();
      q.in = act;
      q.w_scale = quantize_weights(fc->weights(), q.weights);
      q.bias = quantize_bias(fc->bias(), act.scale, q.w_scale);
      q.out = out_obs.to_affine_params();
      q.requant = quantize_multiplier(
          static_cast<double>(act.scale) * q.w_scale / q.out.scale);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      qm.layers.emplace_back(std::move(q));
    } else if (auto* pool = dynamic_cast<MaxPool2DLayer*>(layer)) {
      // Max pooling commutes with the (monotone) quantization map: params
      // pass through unchanged.
      validate_pool_geometry(h, w, pool->kernel(), pool->stride(),
                             "quantizer maxpool");
      QMaxPool q;
      q.in_h = h;
      q.in_w = w;
      q.channels = c;
      q.kernel = pool->kernel();
      q.stride = pool->stride();
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(q);
    } else if (auto* pool = dynamic_cast<AvgPool2DLayer*>(layer)) {
      // Int8 average pooling reuses the input quantization (TFLite
      // convention: in/out params equal, rounding divide in q space).
      validate_pool_geometry(h, w, pool->kernel(), pool->stride(),
                             "quantizer avgpool");
      QAvgPool q;
      q.in_h = h;
      q.in_w = w;
      q.channels = c;
      q.kernel = pool->kernel();
      q.stride = pool->stride();
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(q);
    }
    // ReLU layers are folded; nothing is emitted for them.
  }
  return qm;
}

void save_qmodel(const QModel& m, const std::string& path) {
  BinaryWriter w(path, kQModelMagic);
  w.str(m.name);
  w.str(m.topology);
  w.i32(m.in_h);
  w.i32(m.in_w);
  w.i32(m.in_c);
  w.f32(m.input.scale);
  w.i32(m.input.zero_point);
  w.u32(static_cast<uint32_t>(m.layers.size()));
  for (const QLayer& layer : m.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      w.u32(0);
      w.i32(conv->geom.in_h);
      w.i32(conv->geom.in_w);
      w.i32(conv->geom.in_c);
      w.i32(conv->geom.out_c);
      w.i32(conv->geom.kernel);
      w.i32(conv->geom.stride);
      w.i32(conv->geom.pad);
      w.vec(conv->weights);
      w.vec(conv->bias);
      w.f32(conv->in.scale);
      w.i32(conv->in.zero_point);
      w.f32(conv->out.scale);
      w.i32(conv->out.zero_point);
      w.f32(conv->w_scale);
      w.i32(conv->requant.mult);
      w.i32(conv->requant.shift);
      w.i32(conv->act_min);
      w.i32(conv->act_max);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      w.u32(1);
      w.i32(pool->in_h);
      w.i32(pool->in_w);
      w.i32(pool->channels);
      w.i32(pool->kernel);
      w.i32(pool->stride);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      w.u32(2);
      w.i32(fc->in_dim);
      w.i32(fc->out_dim);
      w.vec(fc->weights);
      w.vec(fc->bias);
      w.f32(fc->in.scale);
      w.i32(fc->in.zero_point);
      w.f32(fc->out.scale);
      w.i32(fc->out.zero_point);
      w.f32(fc->w_scale);
      w.i32(fc->requant.mult);
      w.i32(fc->requant.shift);
      w.i32(fc->act_min);
      w.i32(fc->act_max);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      w.u32(3);
      w.i32(dw->in_h);
      w.i32(dw->in_w);
      w.i32(dw->channels);
      w.i32(dw->kernel);
      w.i32(dw->stride);
      w.i32(dw->pad);
      w.vec(dw->weights);
      w.vec(dw->bias);
      w.f32(dw->in.scale);
      w.i32(dw->in.zero_point);
      w.f32(dw->out.scale);
      w.i32(dw->out.zero_point);
      w.f32(dw->w_scale);
      w.i32(dw->requant.mult);
      w.i32(dw->requant.shift);
      w.i32(dw->act_min);
      w.i32(dw->act_max);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      w.u32(4);
      w.i32(pool->in_h);
      w.i32(pool->in_w);
      w.i32(pool->channels);
      w.i32(pool->kernel);
      w.i32(pool->stride);
    }
  }
  w.close();
}

QModel load_qmodel(const std::string& path) {
  BinaryReader r(path, kQModelMagic);
  QModel m;
  m.name = r.str();
  m.topology = r.str();
  m.in_h = r.i32();
  m.in_w = r.i32();
  m.in_c = r.i32();
  m.input.scale = r.f32();
  m.input.zero_point = r.i32();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t kind = r.u32();
    if (kind == 0) {
      QConv2D conv;
      conv.geom.in_h = r.i32();
      conv.geom.in_w = r.i32();
      conv.geom.in_c = r.i32();
      conv.geom.out_c = r.i32();
      conv.geom.kernel = r.i32();
      conv.geom.stride = r.i32();
      conv.geom.pad = r.i32();
      conv.weights = r.vec<int8_t>();
      conv.bias = r.vec<int32_t>();
      conv.in.scale = r.f32();
      conv.in.zero_point = r.i32();
      conv.out.scale = r.f32();
      conv.out.zero_point = r.i32();
      conv.w_scale = r.f32();
      conv.requant.mult = r.i32();
      conv.requant.shift = r.i32();
      conv.act_min = r.i32();
      conv.act_max = r.i32();
      m.layers.emplace_back(std::move(conv));
    } else if (kind == 1) {
      QMaxPool pool;
      pool.in_h = r.i32();
      pool.in_w = r.i32();
      pool.channels = r.i32();
      pool.kernel = r.i32();
      pool.stride = r.i32();
      m.layers.emplace_back(pool);
    } else if (kind == 2) {
      QDense fc;
      fc.in_dim = r.i32();
      fc.out_dim = r.i32();
      fc.weights = r.vec<int8_t>();
      fc.bias = r.vec<int32_t>();
      fc.in.scale = r.f32();
      fc.in.zero_point = r.i32();
      fc.out.scale = r.f32();
      fc.out.zero_point = r.i32();
      fc.w_scale = r.f32();
      fc.requant.mult = r.i32();
      fc.requant.shift = r.i32();
      fc.act_min = r.i32();
      fc.act_max = r.i32();
      m.layers.emplace_back(std::move(fc));
    } else if (kind == 3) {
      QDepthwiseConv2D dw;
      dw.in_h = r.i32();
      dw.in_w = r.i32();
      dw.channels = r.i32();
      dw.kernel = r.i32();
      dw.stride = r.i32();
      dw.pad = r.i32();
      dw.weights = r.vec<int8_t>();
      dw.bias = r.vec<int32_t>();
      dw.in.scale = r.f32();
      dw.in.zero_point = r.i32();
      dw.out.scale = r.f32();
      dw.out.zero_point = r.i32();
      dw.w_scale = r.f32();
      dw.requant.mult = r.i32();
      dw.requant.shift = r.i32();
      dw.act_min = r.i32();
      dw.act_max = r.i32();
      m.layers.emplace_back(std::move(dw));
    } else if (kind == 4) {
      QAvgPool pool;
      pool.in_h = r.i32();
      pool.in_w = r.i32();
      pool.channels = r.i32();
      pool.kernel = r.i32();
      pool.stride = r.i32();
      m.layers.emplace_back(pool);
    } else {
      fail("unknown layer kind in " + path);
    }
  }
  return m;
}

}  // namespace ataman
