// Design-space generation (§II-C): "exhaustive DSE w.r.t. the targeted
// layers and the values of tau".
//
// Two generation modes, matching the paper's description (layers are the
// approximable ones — conv and depthwise — in ordinal order):
//  * kUniformTauBySubset: for every non-empty subset of approximable
//    layers and every tau in [tau_min, tau_max] at tau_step, approximate
//    exactly the layers in the subset with that tau.
//  * kPerLayerGrid: cartesian product of a per-layer tau grid (including
//    "exact") — the mode that reaches the paper's >10,000 designs.
#pragma once

#include <vector>

#include "src/sig/skip_plan.hpp"

namespace ataman {

enum class DseMode { kUniformTauBySubset, kPerLayerGrid };

struct DseOptions {
  DseMode mode = DseMode::kUniformTauBySubset;
  double tau_min = 0.0;
  double tau_max = 0.1;  // paper: tau in [0, 0.1]
  // Default 0.01 is a deliberate deviation from the paper's
  // model-specific grids (0.001 for LeNet, 0.01 for AlexNet) so that the
  // default sweep stays minutes, not hours. The paper-faithful grids live
  // in bench/bench_common.hpp (dse_options_for(network, Scale::kPaper));
  // see docs/DESIGN.md "DSE defaults vs. the paper's tau grids".
  double tau_step = 0.01;
  // kPerLayerGrid: number of tau levels per layer (log-spaced over
  // [tau_min(+eps), tau_max]) plus the "exact" level.
  int per_layer_levels = 4;
  // Images used per accuracy evaluation (-1 = whole eval set).
  int eval_images = 512;
  // Cap on generated configs (0 = no cap); configs are subsampled
  // deterministically when the space is larger.
  int max_configs = 0;

  // --- fast-sweep controls (see docs/DSE.md) -----------------------------
  // By default run_dse sweeps through the layer-prefix activation cache
  // with adaptive early exit: a config stops evaluating once a Wilson
  // confidence bound proves some config with >= MAC reduction and <=
  // cycles ends with higher accuracy — it can then reach neither the
  // Pareto front nor win an (unconstrained) select_design. Abandoned
  // configs keep their partial-sample accuracy (flagged via
  // DseResult::partial_eval); the all-exact config and every
  // Pareto-front member are always evaluated on the full image budget.
  // The statistics assume the eval subset is not pathologically ordered
  // (the sweep samples it with a coprime stride to spread any class
  // ordering; a set whose *first eval_images* images are one class
  // still biases partial samples). Set exact_sweep = true to evaluate
  // every config on every image — still prefix-cached, and bitwise
  // identical to the per-config ConfigEvaluator::evaluate sweep.
  bool exact_sweep = false;
  // Images per adaptive evaluation block (early-exit decisions happen at
  // block boundaries; smaller blocks exit sooner but decide on noisier
  // counts — the Wilson interval widens accordingly, so soundness does
  // not depend on the block size).
  int eval_block = 16;
  // Wilson interval z-score for the early-exit test (1.96 ~ 95%). Raise
  // it to prune more cautiously; the all-exact config and the final
  // Pareto front are fully evaluated regardless.
  double exit_z = 1.96;
  // Extra accuracy slack a config must provably fall below before it is
  // abandoned (guards the front against borderline exits).
  double exit_margin = 0.01;
};

// All candidate configurations for a model with `approx_count`
// approximable (conv + depthwise) layers. Always includes the all-exact
// baseline config at index 0.
std::vector<ApproxConfig> generate_configs(int approx_count,
                                           const DseOptions& options);

}  // namespace ataman
