#include "src/quant/quantizer.hpp"

#include <cmath>
#include <numeric>

#include "src/common/math_util.hpp"
#include "src/common/serialize.hpp"
#include "src/quant/calibrate.hpp"

namespace ataman {

namespace {

constexpr const char* kQModelMagic = "ATAMAN.QMODEL";

// Quantize one weight tensor symmetrically; returns the scale.
float quantize_weights(const std::vector<float>& w, std::vector<int8_t>& out) {
  float absmax = 0.0f;
  for (const float v : w) absmax = std::max(absmax, std::abs(v));
  const float scale = absmax > 0.0f ? absmax / 127.0f : 1e-8f;
  out.resize(w.size());
  for (size_t i = 0; i < w.size(); ++i)
    out[i] = saturate_int8(round_to_int32(w[i] / scale));
  return scale;
}

float scale_from_absmax(float absmax) {
  return absmax > 0.0f ? absmax / 127.0f : 1e-8f;
}

// Per-output-channel symmetric quantization of a conv weight tensor
// ([out_c][k][k][in_c]: one contiguous patch per output channel). With
// per_channel off, every channel shares the tensor-wide max-abs scale —
// bitwise-identical to the historical per-tensor path.
std::vector<float> quantize_conv_weights(const std::vector<float>& w,
                                         int out_c, std::vector<int8_t>& out,
                                         bool per_channel) {
  check(out_c > 0 && w.size() % static_cast<size_t>(out_c) == 0,
        "conv weight tensor not divisible into output channels");
  const size_t patch = w.size() / static_cast<size_t>(out_c);
  std::vector<float> scales(static_cast<size_t>(out_c));
  if (per_channel) {
    for (size_t c = 0; c < scales.size(); ++c) {
      float absmax = 0.0f;
      for (size_t i = c * patch; i < (c + 1) * patch; ++i)
        absmax = std::max(absmax, std::abs(w[i]));
      scales[c] = scale_from_absmax(absmax);
    }
  } else {
    float absmax = 0.0f;
    for (const float v : w) absmax = std::max(absmax, std::abs(v));
    scales.assign(scales.size(), scale_from_absmax(absmax));
  }
  out.resize(w.size());
  for (size_t c = 0; c < scales.size(); ++c)
    for (size_t i = c * patch; i < (c + 1) * patch; ++i)
      out[i] = saturate_int8(round_to_int32(w[i] / scales[c]));
  return scales;
}

// Per-channel quantization of a depthwise weight tensor ([k][k][channels],
// channel innermost: channel c's taps sit at stride `channels`).
std::vector<float> quantize_dw_weights(const std::vector<float>& w,
                                       int channels, std::vector<int8_t>& out,
                                       bool per_channel) {
  check(channels > 0 && w.size() % static_cast<size_t>(channels) == 0,
        "depthwise weight tensor not divisible into channels");
  const int taps = static_cast<int>(w.size()) / channels;
  std::vector<float> scales(static_cast<size_t>(channels));
  if (per_channel) {
    for (int c = 0; c < channels; ++c) {
      float absmax = 0.0f;
      for (int t = 0; t < taps; ++t)
        absmax = std::max(absmax, std::abs(w[dw_weight_index(c, t, channels)]));
      scales[static_cast<size_t>(c)] = scale_from_absmax(absmax);
    }
  } else {
    float absmax = 0.0f;
    for (const float v : w) absmax = std::max(absmax, std::abs(v));
    scales.assign(scales.size(), scale_from_absmax(absmax));
  }
  out.resize(w.size());
  for (int c = 0; c < channels; ++c)
    for (int t = 0; t < taps; ++t) {
      const size_t i = dw_weight_index(c, t, channels);
      out[i] =
          saturate_int8(round_to_int32(w[i] / scales[static_cast<size_t>(c)]));
    }
  return scales;
}

std::vector<int32_t> quantize_bias(const std::vector<float>& b,
                                   float in_scale, float w_scale) {
  std::vector<int32_t> out(b.size());
  const double s = static_cast<double>(in_scale) * w_scale;
  for (size_t i = 0; i < b.size(); ++i)
    out[i] = static_cast<int32_t>(std::llround(b[i] / s));
  return out;
}

// Per-channel bias: bias[c] lives at scale in_scale * w_scales[c].
std::vector<int32_t> quantize_bias(const std::vector<float>& b, float in_scale,
                                   const std::vector<float>& w_scales) {
  check(b.size() == w_scales.size(),
        "bias / per-channel weight scale length mismatch");
  std::vector<int32_t> out(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    const double s = static_cast<double>(in_scale) * w_scales[i];
    out[i] = static_cast<int32_t>(std::llround(b[i] / s));
  }
  return out;
}

}  // namespace

QModel quantize_model(Network& net, const Dataset& calib,
                      const QuantizerConfig& config) {
  check(calib.size() > 0, "calibration dataset is empty");
  const int n_calib = std::min(config.calibration_images, calib.size());

  // --- Pass 1: float forward over the calibration subset, observing the
  // output range of every conv/dense layer (post-ReLU when ReLU follows,
  // since ReLU is folded into the layer's output clamp). The walk mirrors
  // Network::forward's DAG dispatch: residual add layers read the chain
  // predecessor plus a cached skip-edge tensor.
  const auto& layers = net.layers();
  const auto& specs = net.arch().layers;
  check(specs.size() == layers.size(),
        "architecture spec / layer list length mismatch");
  std::vector<RangeObserver> observers(layers.size(),
                                       RangeObserver(config.clip_quantile));
  // Float spec indices read by some later add's skip edge.
  std::vector<uint8_t> tapped(layers.size(), 0);
  bool input_tapped = false;
  for (const LayerSpec& s : specs) {
    if (s.kind != LayerSpec::Kind::kAdd) continue;
    if (s.from < 0)
      input_tapped = true;
    else
      tapped[static_cast<size_t>(s.from)] = 1;
  }

  std::vector<int> indices(static_cast<size_t>(n_calib));
  std::iota(indices.begin(), indices.end(), 0);
  constexpr int kBatch = 32;
  for (size_t lo = 0; lo < indices.size(); lo += kBatch) {
    const size_t hi = std::min(indices.size(), lo + kBatch);
    FTensor cur = to_float_batch(calib, indices, lo, hi);
    const FTensor input = input_tapped ? cur : FTensor();
    std::vector<FTensor> taps(layers.size());
    for (size_t li = 0; li < layers.size(); ++li) {
      Layer* layer = layers[li].get();
      if (auto* add = dynamic_cast<AddLayer*>(layer)) {
        const int from = specs[li].from;
        cur = add->forward2(
            cur, from < 0 ? input : taps[static_cast<size_t>(from)]);
      } else {
        if (dynamic_cast<DenseLayer*>(layer) != nullptr && cur.rank() != 2) {
          FTensor flat({cur.dim(0), static_cast<int>(cur.item_size())});
          std::copy(cur.data(), cur.data() + cur.size(), flat.data());
          cur = std::move(flat);
        }
        cur = layer->forward(cur, /*train=*/false);
      }
      observers[li].observe(cur.data(), cur.size());
      if (tapped[li]) taps[li] = cur;
    }
  }

  // --- Pass 2: assemble the QModel.
  QModel qm;
  qm.name = net.arch().name;
  qm.topology = net.arch().topology;
  qm.in_h = net.input_shape().height;
  qm.in_w = net.input_shape().width;
  qm.in_c = net.input_shape().channels;
  // Inputs are u8/255 in [0,1]: scale 1/255, zero_point -128 is exact
  // (q = pixel - 128).
  qm.input = {1.0f / 255.0f, -128};

  QuantParams act = qm.input;
  // Running activation extent (valid while the net is still spatial).
  int h = qm.in_h, w = qm.in_w, c = qm.in_c;
  // Per-float-spec output tensor id in the emitted QModel (tensor 0 =
  // network input, tensor l+1 = output of emitted layer l) and its
  // quantization params; folded ReLU specs share their producer's
  // tensor. Resolves residual skip edges to emitted tensor ids.
  std::vector<int> spec_tensor(layers.size(), 0);
  std::vector<QuantParams> spec_params(layers.size(), qm.input);
  std::vector<std::vector<int>> layer_inputs;
  bool has_add = false;
  for (size_t li = 0; li < layers.size(); ++li) {
    Layer* layer = layers[li].get();
    // Tensor id feeding this layer: the current top of the chain.
    const int top = static_cast<int>(qm.layers.size());
    const bool relu_next =
        li + 1 < layers.size() &&
        dynamic_cast<ReluLayer*>(layers[li + 1].get()) != nullptr;
    // Observer of the folded output: post-ReLU range when folding.
    const RangeObserver& out_obs = observers[relu_next ? li + 1 : li];

    if (auto* conv = dynamic_cast<Conv2DLayer*>(layer)) {
      QConv2D q;
      q.geom = conv->geom();
      q.in = act;
      q.w_scales = quantize_conv_weights(conv->weights(), q.geom.out_c,
                                         q.weights,
                                         config.per_channel_weights);
      q.bias = quantize_bias(conv->bias(), act.scale, q.w_scales);
      q.out = out_obs.to_affine_params();
      refresh_requant(q);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      h = q.geom.out_h();
      w = q.geom.out_w();
      c = q.geom.out_c;
      qm.layers.emplace_back(std::move(q));
    } else if (auto* dw = dynamic_cast<DepthwiseConv2DLayer*>(layer)) {
      QDepthwiseConv2D q;
      q.in_h = dw->geom().in_h;
      q.in_w = dw->geom().in_w;
      q.channels = dw->geom().channels;
      q.kernel = dw->geom().kernel;
      q.stride = dw->geom().stride;
      q.pad = dw->geom().pad;
      q.in = act;
      q.w_scales = quantize_dw_weights(dw->weights(), q.channels, q.weights,
                                       config.per_channel_weights);
      q.bias = quantize_bias(dw->bias(), act.scale, q.w_scales);
      q.out = out_obs.to_affine_params();
      refresh_requant(q);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(std::move(q));
    } else if (auto* fc = dynamic_cast<DenseLayer*>(layer)) {
      QDense q;
      q.in_dim = fc->in_dim();
      q.out_dim = fc->out_dim();
      q.in = act;
      q.w_scale = quantize_weights(fc->weights(), q.weights);
      q.bias = quantize_bias(fc->bias(), act.scale, q.w_scale);
      q.out = out_obs.to_affine_params();
      q.requant = quantize_multiplier(
          static_cast<double>(act.scale) * q.w_scale / q.out.scale);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      qm.layers.emplace_back(std::move(q));
    } else if (auto* pool = dynamic_cast<MaxPool2DLayer*>(layer)) {
      // Max pooling commutes with the (monotone) quantization map: params
      // pass through unchanged.
      validate_pool_geometry(h, w, pool->kernel(), pool->stride(),
                             "quantizer maxpool");
      QMaxPool q;
      q.in_h = h;
      q.in_w = w;
      q.channels = c;
      q.kernel = pool->kernel();
      q.stride = pool->stride();
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(q);
    } else if (auto* pool = dynamic_cast<AvgPool2DLayer*>(layer)) {
      // Int8 average pooling reuses the input quantization (TFLite
      // convention: in/out params equal, rounding divide in q space).
      validate_pool_geometry(h, w, pool->kernel(), pool->stride(),
                             "quantizer avgpool");
      QAvgPool q;
      q.in_h = h;
      q.in_w = w;
      q.channels = c;
      q.kernel = pool->kernel();
      q.stride = pool->stride();
      h = q.out_h();
      w = q.out_w();
      qm.layers.emplace_back(q);
    } else if (dynamic_cast<AddLayer*>(layer) != nullptr) {
      // Residual merge: requantize both operands to the common output
      // scale (out = clamp(rq_a(a - za) + rq_b(b - zb) + zo)).
      const int from = specs[li].from;
      const int b_tensor =
          from < 0 ? 0 : spec_tensor[static_cast<size_t>(from)];
      const QuantParams b_params =
          from < 0 ? qm.input : spec_params[static_cast<size_t>(from)];
      QAdd q;
      q.h = h;
      q.w = w;
      q.channels = c;
      q.in_a = act;
      q.in_b = b_params;
      q.out = out_obs.to_affine_params();
      q.requant_a = quantize_multiplier(static_cast<double>(q.in_a.scale) /
                                        q.out.scale);
      q.requant_b = quantize_multiplier(static_cast<double>(q.in_b.scale) /
                                        q.out.scale);
      q.act_min = relu_next ? q.out.zero_point : -128;
      q.act_max = 127;
      act = q.out;
      layer_inputs.push_back({top, b_tensor});
      has_add = true;
      qm.layers.emplace_back(std::move(q));
    }
    // ReLU layers are folded; nothing is emitted for them.
    // Chain row for whatever layer this spec emitted (the QAdd branch
    // already pushed its two-input row).
    if (layer_inputs.size() < qm.layers.size()) layer_inputs.push_back({top});
    spec_tensor[li] = static_cast<int>(qm.layers.size());
    spec_params[li] = act;
  }
  if (has_add) {
    qm.layer_inputs = std::move(layer_inputs);
    qm.validate_dag();
  }
  return qm;
}

void save_qmodel(const QModel& m, const std::string& path) {
  BinaryWriter w(path, kQModelMagic);
  w.str(m.name);
  w.str(m.topology);
  w.i32(m.in_h);
  w.i32(m.in_w);
  w.i32(m.in_c);
  w.f32(m.input.scale);
  w.i32(m.input.zero_point);
  w.u32(static_cast<uint32_t>(m.layers.size()));
  for (const QLayer& layer : m.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      w.u32(0);
      w.i32(conv->geom.in_h);
      w.i32(conv->geom.in_w);
      w.i32(conv->geom.in_c);
      w.i32(conv->geom.out_c);
      w.i32(conv->geom.kernel);
      w.i32(conv->geom.stride);
      w.i32(conv->geom.pad);
      w.vec(conv->weights);
      w.vec(conv->bias);
      w.f32(conv->in.scale);
      w.i32(conv->in.zero_point);
      w.f32(conv->out.scale);
      w.i32(conv->out.zero_point);
      // Legacy inline slots carry channel 0; the full per-channel vectors
      // live in the trailer (see below) so pre-PR-9 readers still parse.
      w.f32(conv->w_scales.at(0));
      w.i32(conv->requant.at(0).mult);
      w.i32(conv->requant.at(0).shift);
      w.i32(conv->act_min);
      w.i32(conv->act_max);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      w.u32(1);
      w.i32(pool->in_h);
      w.i32(pool->in_w);
      w.i32(pool->channels);
      w.i32(pool->kernel);
      w.i32(pool->stride);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      w.u32(2);
      w.i32(fc->in_dim);
      w.i32(fc->out_dim);
      w.vec(fc->weights);
      w.vec(fc->bias);
      w.f32(fc->in.scale);
      w.i32(fc->in.zero_point);
      w.f32(fc->out.scale);
      w.i32(fc->out.zero_point);
      w.f32(fc->w_scale);
      w.i32(fc->requant.mult);
      w.i32(fc->requant.shift);
      w.i32(fc->act_min);
      w.i32(fc->act_max);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      w.u32(3);
      w.i32(dw->in_h);
      w.i32(dw->in_w);
      w.i32(dw->channels);
      w.i32(dw->kernel);
      w.i32(dw->stride);
      w.i32(dw->pad);
      w.vec(dw->weights);
      w.vec(dw->bias);
      w.f32(dw->in.scale);
      w.i32(dw->in.zero_point);
      w.f32(dw->out.scale);
      w.i32(dw->out.zero_point);
      w.f32(dw->w_scales.at(0));
      w.i32(dw->requant.at(0).mult);
      w.i32(dw->requant.at(0).shift);
      w.i32(dw->act_min);
      w.i32(dw->act_max);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      w.u32(4);
      w.i32(pool->in_h);
      w.i32(pool->in_w);
      w.i32(pool->channels);
      w.i32(pool->kernel);
      w.i32(pool->stride);
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      w.u32(5);
      w.i32(add->h);
      w.i32(add->w);
      w.i32(add->channels);
      w.f32(add->in_a.scale);
      w.i32(add->in_a.zero_point);
      w.f32(add->in_b.scale);
      w.i32(add->in_b.zero_point);
      w.f32(add->out.scale);
      w.i32(add->out.zero_point);
      w.i32(add->requant_a.mult);
      w.i32(add->requant_a.shift);
      w.i32(add->requant_b.mult);
      w.i32(add->requant_b.shift);
      w.i32(add->act_min);
      w.i32(add->act_max);
    }
  }
  // DAG trailer: per-layer input tensor ids (row count 0 = pure chain).
  // Readers that predate the trailer never reach it on chain files they
  // understand; the loader treats a missing trailer as a chain.
  w.u32(static_cast<uint32_t>(m.layer_inputs.size()));
  for (const std::vector<int>& row : m.layer_inputs) {
    w.u32(static_cast<uint32_t>(row.size()));
    for (const int t : row) w.i32(t);
  }
  // Head trailer (appended after the DAG trailer, same compatibility
  // scheme): absent means the pre-scored default, an argmax head.
  w.u32(static_cast<uint32_t>(m.head));
  w.f32(m.score_threshold);
  // Per-channel requant trailer (append-only versioning, PR 9): one row
  // per conv/depthwise layer in stored order — u32 channel count, then
  // (f32 scale, i32 mult, i32 shift) per channel. Absent (pre-PR-9
  // artifacts) means the inline per-tensor scalars broadcast.
  uint32_t pc_rows = 0;
  for (const QLayer& layer : m.layers)
    if (std::holds_alternative<QConv2D>(layer) ||
        std::holds_alternative<QDepthwiseConv2D>(layer))
      ++pc_rows;
  w.u32(pc_rows);
  for (const QLayer& layer : m.layers) {
    const std::vector<float>* scales = nullptr;
    const std::vector<QuantizedMultiplier>* rq = nullptr;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      scales = &conv->w_scales;
      rq = &conv->requant;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      scales = &dw->w_scales;
      rq = &dw->requant;
    }
    if (scales == nullptr) continue;
    check(scales->size() == rq->size(),
          "w_scales / requant length mismatch while saving " + m.name);
    w.u32(static_cast<uint32_t>(scales->size()));
    for (size_t c = 0; c < scales->size(); ++c) {
      w.f32((*scales)[c]);
      w.i32((*rq)[c].mult);
      w.i32((*rq)[c].shift);
    }
  }
  w.close();
}

QModel load_qmodel(const std::string& path) {
  BinaryReader r(path, kQModelMagic);
  QModel m;
  m.name = r.str();
  m.topology = r.str();
  m.in_h = r.i32();
  m.in_w = r.i32();
  m.in_c = r.i32();
  m.input.scale = r.f32();
  m.input.zero_point = r.i32();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t kind = r.u32();
    if (kind == 0) {
      QConv2D conv;
      conv.geom.in_h = r.i32();
      conv.geom.in_w = r.i32();
      conv.geom.in_c = r.i32();
      conv.geom.out_c = r.i32();
      conv.geom.kernel = r.i32();
      conv.geom.stride = r.i32();
      conv.geom.pad = r.i32();
      conv.weights = r.vec<int8_t>();
      conv.bias = r.vec<int32_t>();
      conv.in.scale = r.f32();
      conv.in.zero_point = r.i32();
      conv.out.scale = r.f32();
      conv.out.zero_point = r.i32();
      // Inline per-tensor scalars broadcast across channels; the
      // per-channel trailer (when present) overrides them below. The
      // stored multiplier is reused verbatim — never recomputed — so
      // pre-PR-9 artifacts stay bitwise-identical.
      const float w_scale = r.f32();
      QuantizedMultiplier rq;
      rq.mult = r.i32();
      rq.shift = r.i32();
      conv.w_scales.assign(static_cast<size_t>(conv.geom.out_c), w_scale);
      conv.requant.assign(static_cast<size_t>(conv.geom.out_c), rq);
      conv.act_min = r.i32();
      conv.act_max = r.i32();
      m.layers.emplace_back(std::move(conv));
    } else if (kind == 1) {
      QMaxPool pool;
      pool.in_h = r.i32();
      pool.in_w = r.i32();
      pool.channels = r.i32();
      pool.kernel = r.i32();
      pool.stride = r.i32();
      m.layers.emplace_back(pool);
    } else if (kind == 2) {
      QDense fc;
      fc.in_dim = r.i32();
      fc.out_dim = r.i32();
      fc.weights = r.vec<int8_t>();
      fc.bias = r.vec<int32_t>();
      fc.in.scale = r.f32();
      fc.in.zero_point = r.i32();
      fc.out.scale = r.f32();
      fc.out.zero_point = r.i32();
      fc.w_scale = r.f32();
      fc.requant.mult = r.i32();
      fc.requant.shift = r.i32();
      fc.act_min = r.i32();
      fc.act_max = r.i32();
      m.layers.emplace_back(std::move(fc));
    } else if (kind == 3) {
      QDepthwiseConv2D dw;
      dw.in_h = r.i32();
      dw.in_w = r.i32();
      dw.channels = r.i32();
      dw.kernel = r.i32();
      dw.stride = r.i32();
      dw.pad = r.i32();
      dw.weights = r.vec<int8_t>();
      dw.bias = r.vec<int32_t>();
      dw.in.scale = r.f32();
      dw.in.zero_point = r.i32();
      dw.out.scale = r.f32();
      dw.out.zero_point = r.i32();
      const float w_scale = r.f32();
      QuantizedMultiplier rq;
      rq.mult = r.i32();
      rq.shift = r.i32();
      dw.w_scales.assign(static_cast<size_t>(dw.channels), w_scale);
      dw.requant.assign(static_cast<size_t>(dw.channels), rq);
      dw.act_min = r.i32();
      dw.act_max = r.i32();
      m.layers.emplace_back(std::move(dw));
    } else if (kind == 4) {
      QAvgPool pool;
      pool.in_h = r.i32();
      pool.in_w = r.i32();
      pool.channels = r.i32();
      pool.kernel = r.i32();
      pool.stride = r.i32();
      m.layers.emplace_back(pool);
    } else if (kind == 5) {
      QAdd add;
      add.h = r.i32();
      add.w = r.i32();
      add.channels = r.i32();
      add.in_a.scale = r.f32();
      add.in_a.zero_point = r.i32();
      add.in_b.scale = r.f32();
      add.in_b.zero_point = r.i32();
      add.out.scale = r.f32();
      add.out.zero_point = r.i32();
      add.requant_a.mult = r.i32();
      add.requant_a.shift = r.i32();
      add.requant_b.mult = r.i32();
      add.requant_b.shift = r.i32();
      add.act_min = r.i32();
      add.act_max = r.i32();
      m.layers.emplace_back(add);
    } else {
      fail("unknown layer kind in " + path);
    }
  }
  // DAG trailer (absent in pre-DAG artifacts: those are pure chains).
  if (!r.at_end()) {
    const uint32_t rows = r.u32();
    m.layer_inputs.resize(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      const uint32_t len = r.u32();
      m.layer_inputs[i].resize(len);
      for (uint32_t k = 0; k < len; ++k) m.layer_inputs[i][k] = r.i32();
    }
    if (!m.layer_inputs.empty()) m.validate_dag();
  }
  if (!r.at_end()) {
    const uint32_t head = r.u32();
    check(head <= 1, "bad head tag in " + path);
    m.head = static_cast<TaskHead>(head);
    m.score_threshold = r.f32();
  }
  // Per-channel requant trailer (absent in pre-PR-9 artifacts: the inline
  // broadcast above already holds).
  if (!r.at_end()) {
    uint32_t expect_rows = 0;
    for (const QLayer& layer : m.layers)
      if (std::holds_alternative<QConv2D>(layer) ||
          std::holds_alternative<QDepthwiseConv2D>(layer))
        ++expect_rows;
    const uint32_t rows = r.u32();
    check(rows == expect_rows, "per-channel trailer row count mismatch in " +
                                   path);
    for (QLayer& layer : m.layers) {
      std::vector<float>* scales = nullptr;
      std::vector<QuantizedMultiplier>* rq = nullptr;
      if (auto* conv = std::get_if<QConv2D>(&layer)) {
        scales = &conv->w_scales;
        rq = &conv->requant;
      } else if (auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
        scales = &dw->w_scales;
        rq = &dw->requant;
      }
      if (scales == nullptr) continue;
      const uint32_t channels = r.u32();
      check(channels == scales->size(),
            "per-channel trailer channel count mismatch in " + path);
      for (uint32_t c = 0; c < channels; ++c) {
        (*scales)[c] = r.f32();
        (*rq)[c].mult = r.i32();
        (*rq)[c].shift = r.i32();
      }
    }
  }
  return m;
}

}  // namespace ataman
