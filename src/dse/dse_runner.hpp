// DSE driver: sweeps the configuration space in parallel (the paper ran
// its exhaustive exploration offline on 6 host threads), extracts the
// accuracy/MAC-reduction Pareto front (Fig. 2), and selects deployment
// configs for user accuracy-loss thresholds (Table II's 0%/5%/10%).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/dse/config_space.hpp"
#include "src/dse/evaluator.hpp"
#include "src/dse/pareto.hpp"

namespace ataman {

struct DseOutcome {
  std::vector<DseResult> results;  // results[0] is the all-exact config
  std::vector<int> pareto;         // indices into results (ascending x)
  double exact_accuracy = 0.0;     // accuracy of results[0]
  int64_t baseline_cycles = 0;     // packed exact engine cycles
  double wall_seconds = 0.0;
  int threads_used = 0;
};

using DseProgress = std::function<void(int done, int total)>;

DseOutcome run_dse(const ConfigEvaluator& evaluator,
                   const std::vector<ApproxConfig>& configs,
                   const DseProgress& progress = nullptr);

// Convenience: generate + sweep in one call.
DseOutcome run_dse(const ConfigEvaluator& evaluator, int conv_count,
                   const DseOptions& options,
                   const DseProgress& progress = nullptr);

// Latency-optimized design meeting `accuracy >= exact - max_loss`
// and fitting `flash_capacity` (bytes; <=0 disables the check).
// Returns results index, or -1 when nothing qualifies.
int select_design(const DseOutcome& outcome, double max_accuracy_loss,
                  int64_t flash_capacity = 0);

}  // namespace ataman
