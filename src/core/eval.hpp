// Shared batched accuracy evaluation and DeployReport assembly.
//
// Before this existed, every engine carried its own copy of "parallel
// loop over eval images, count argmax hits, fill a DeployReport" — four
// slightly different implementations with slightly different limit
// clamping. All accuracy measurement in the repo now funnels through
// evaluate_batch: chunked over images (`parallel_for_chunked`), safe
// under an enclosing parallel region (the DSE sweeps configs in
// parallel; the inner image loop then runs serially instead of spawning
// threads² workers), and reduced deterministically (per-image hit flags
// summed in index order, so the result is bitwise identical for any
// thread count).
#pragma once

#include <functional>
#include <span>

#include "src/core/engine_iface.hpp"
#include "src/data/dataset.hpp"
#include "src/mcu/board.hpp"
#include "src/mcu/deploy_report.hpp"

namespace ataman {

// Canonical eval-count clamp, shared by every accuracy path:
//   limit < 0            -> the whole dataset
//   limit > dataset_size -> the whole dataset
//   otherwise            -> limit
// Throws ("no images to evaluate") when the clamped count is zero —
// i.e. limit == 0 or an empty dataset — so no caller can divide by zero.
int clamp_eval_limit(int limit, int dataset_size);

struct BatchAccuracy {
  int images = 0;   // evaluated image count (after clamping)
  int correct = 0;  // argmax == label count
  double top1 = 0.0;
};

using ClassifyFn = std::function<int(std::span<const uint8_t>)>;

// Top-1 accuracy of `classify` over up to `limit` images of `ds`.
BatchAccuracy evaluate_batch(const ClassifyFn& classify, const Dataset& ds,
                             int limit = -1);

// Convenience overload for any InferenceEngine. On scored models
// (TaskHead::kScore) the per-image decision is the thresholded
// reconstruction score instead of argmax; the hit reduction is shared,
// so `top1` then reads as binary (normal/anomalous) accuracy.
BatchAccuracy evaluate_batch(const InferenceEngine& engine, const Dataset& ds,
                             int limit = -1);

// Scored-model evaluation with the threshold-free metric alongside the
// thresholded accuracy: `auc` is the rank AUC (ties credited 0.5) of the
// per-image reconstruction scores against the dataset's 0/1 labels.
// Throws on argmax-head models.
struct ScoredAccuracy {
  int images = 0;
  int correct = 0;   // scored_class(score) == label count
  double top1 = 0.0;  // thresholded binary accuracy
  double auc = 0.5;
};
ScoredAccuracy evaluate_scored(const InferenceEngine& engine,
                               const Dataset& ds, int limit = -1);

// One Table II row: measured accuracy plus the engine's modeled cost
// columns, finalized against `board`. This is the single DeployReport
// assembly point — InferenceEngine::deploy delegates here.
DeployReport assemble_deploy_report(const InferenceEngine& engine,
                                    const Dataset& eval,
                                    const BoardSpec& board, int limit = -1);

}  // namespace ataman
