// JSON-lite: round trips, parsing edge cases, error behaviour.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/json_lite.hpp"

namespace ataman {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7.5").as_number(), -7.5);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, DumpParseRoundTrip) {
  JsonObject obj;
  obj.emplace("name", "lenet");
  obj.emplace("tau", JsonArray{Json(0.001), Json(-1.0), Json(0.05)});
  obj.emplace("exact", false);
  obj.emplace("count", 42);
  JsonObject nested;
  nested.emplace("x", 1.5);
  obj.emplace("inner", std::move(nested));
  const Json j(std::move(obj));

  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("name").as_string(), "lenet");
  EXPECT_EQ(back.at("tau").as_array().size(), 3u);
  EXPECT_EQ(back.at("tau").as_array()[1].as_number(), -1.0);
  EXPECT_FALSE(back.at("exact").as_bool());
  EXPECT_EQ(back.at("count").as_int(), 42);
  EXPECT_EQ(back.at("inner").at("x").as_number(), 1.5);
}

TEST(Json, PrettyParsesBack) {
  JsonObject obj;
  obj.emplace("a", JsonArray{Json(1), Json(2)});
  obj.emplace("b", "text");
  const Json j(std::move(obj));
  const Json back = Json::parse(j.dump_pretty());
  EXPECT_EQ(back.at("a").as_array()[1].as_int(), 2);
  EXPECT_EQ(back.at("b").as_string(), "text");
}

TEST(Json, StringEscapes) {
  const Json j(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(Json::parse(j.dump()).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_EQ(Json(JsonArray{}).dump(), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(), "{}");
}

TEST(Json, WhitespaceTolerant) {
  const Json j = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(Json, ScientificNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("1e-3").as_number(), 1e-3);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E2").as_number(), -250.0);
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, TypeMismatchesThrow) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.as_array(), Error);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_THROW(j.at("a").as_string(), Error);
  EXPECT_THROW(Json::parse("1.5").as_int(), Error);
}

TEST(Json, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

}  // namespace
}  // namespace ataman
