// Remaining common utilities: parallel_for, serialization, CSV, tables,
// math helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include <limits>

#include "src/common/csv.hpp"
#include "src/common/math_util.hpp"
#include "src/common/metrics.hpp"
#include "src/common/parallel.hpp"
#include "src/common/serialize.hpp"
#include "src/common/table.hpp"

namespace ataman {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Parallel, CoversAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  parallel_for(5, 5, [&](int64_t) { FAIL(); });
  parallel_for(5, 3, [&](int64_t) { FAIL(); });
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](int64_t i) {
                     if (i == 37) throw Error("boom");
                   }),
      Error);
}

TEST(Parallel, IndexedWorkerMappingIsStatic) {
  // Same worker must process a contiguous chunk: record assignments and
  // verify per-worker index ranges do not interleave.
  const int n = 97;
  std::vector<int> owner(n, -1);
  const int workers = parallel_for_indexed(
      0, n, [&](int w, int64_t i) { owner[static_cast<size_t>(i)] = w; });
  EXPECT_GE(workers, 1);
  for (const int o : owner) EXPECT_GE(o, 0);
  for (int i = 1; i < n; ++i)
    EXPECT_LE(owner[static_cast<size_t>(i - 1)], owner[static_cast<size_t>(i)])
        << "chunks must be contiguous and ordered";
}

TEST(Parallel, NestedParallelForSerializesInsteadOfOversubscribing) {
  // DSE shape: outer loop over configs, inner loop over images. The inner
  // parallel_for must detect the enclosing region and run serially on the
  // calling worker (threads, not threads^2), still covering every index.
  EXPECT_FALSE(in_parallel_region());
  const int outer = 6, inner = 40;
  std::vector<int> hits(static_cast<size_t>(outer * inner), 0);
  std::atomic<int> nested_regions{0};
  parallel_for(0, outer, [&](int64_t o) {
    EXPECT_TRUE(in_parallel_region());
    EXPECT_EQ(num_threads(), 1);  // a nested loop would get one worker
    nested_regions.fetch_add(1, std::memory_order_relaxed);
    parallel_for(0, inner, [&](int64_t i) {
      EXPECT_TRUE(in_parallel_region());
      hits[static_cast<size_t>(o * inner + i)]++;
    });
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(nested_regions.load(), outer);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, NestedChunkedAndIndexedAlsoSerialize) {
  std::vector<int> hits(64, 0);
  parallel_for(0, 4, [&](int64_t) {
    const int workers = parallel_for_indexed(
        0, 16, [&](int w, int64_t) { EXPECT_EQ(w, 0); });
    EXPECT_EQ(workers, 1);
  });
  parallel_for_chunked(0, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      parallel_for_chunked(i, i + 1, [&](int64_t l2, int64_t h2) {
        for (int64_t j = l2; j < h2; ++j) hits[static_cast<size_t>(j)]++;
      });
    }
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ThreadOverrideRespected) {
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  std::atomic<int> max_worker{0};
  parallel_for_indexed(0, 64, [&](int w, int64_t) {
    int cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), 2);
  set_num_threads(0);  // restore default
}

TEST(Serialize, RoundTrip) {
  const std::string path = temp_path("ataman_ser_test.bin");
  {
    BinaryWriter w(path, "TEST.MAGIC");
    w.u32(42);
    w.i32(-7);
    w.f32(1.5f);
    w.f64(2.25);
    w.str("hello");
    w.vec(std::vector<int8_t>{1, -2, 3});
    w.vec(std::vector<float>{0.5f, -0.25f});
    w.close();
  }
  BinaryReader r(path, "TEST.MAGIC");
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), 2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.vec<int8_t>(), (std::vector<int8_t>{1, -2, 3}));
  EXPECT_EQ(r.vec<float>(), (std::vector<float>{0.5f, -0.25f}));
  EXPECT_TRUE(r.at_end());
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicRejected) {
  const std::string path = temp_path("ataman_ser_magic.bin");
  {
    BinaryWriter w(path, "GOOD.MAGIC");
    w.u32(1);
    w.close();
  }
  EXPECT_THROW(BinaryReader(path, "WRONG.MAGIC"), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedFileRejected) {
  const std::string path = temp_path("ataman_ser_trunc.bin");
  {
    BinaryWriter w(path, "T.MAGIC");
    w.u32(7);
    w.close();
  }
  BinaryReader r(path, "T.MAGIC");
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u64(), Error);
  std::filesystem::remove(path);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = temp_path("ataman_csv_test.csv");
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "with,comma"});
    csv.row({"3", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::filesystem::remove(path);
}

TEST(Csv, ArityEnforced) {
  const std::string path = temp_path("ataman_csv_arity.csv");
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), Error);
  std::filesystem::remove(path);
}

TEST(Table, RendersAlignedColumns) {
  ConsoleTable t({"Net", "Latency"});
  t.row({"lenet", "82.8"});
  t.separator();
  t.row({"alexnet", "179.9"});
  const std::string s = t.render("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| lenet"), std::string::npos);
  EXPECT_NE(s.find("179.9"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, FmtDecimals) {
  EXPECT_EQ(ConsoleTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::fmt(-1.0, 1), "-1.0");
}

TEST(MathUtil, SaturateInt8) {
  EXPECT_EQ(saturate_int8(300), 127);
  EXPECT_EQ(saturate_int8(-300), -128);
  EXPECT_EQ(saturate_int8(5), 5);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

TEST(MathUtil, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_extent(32, 5, 1, 2), 32);
  EXPECT_EQ(conv_out_extent(32, 2, 2, 0), 16);
  EXPECT_EQ(conv_out_extent(7, 3, 2, 0), 3);
}

TEST(MathUtil, NarrowChecksRange) {
  EXPECT_EQ(narrow<int16_t>(1000), 1000);
  EXPECT_THROW(narrow<int8_t>(1000), Error);
}

TEST(RankAuc, SeparatedClassesScoreOneAndChanceOnDegenerate) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(rank_auc(scores, labels), 1.0);
  // Single-class and empty inputs sit at chance.
  EXPECT_DOUBLE_EQ(rank_auc(scores, std::vector<int>{0, 0, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(rank_auc({}, {}), 0.5);
}

TEST(RankAuc, TiesCreditHalf) {
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<int> labels = {0, 1};
  EXPECT_DOUBLE_EQ(rank_auc(scores, labels), 0.5);
}

// Regression: NaN scores (a diverged float training run) must not hang.
// The tie-group scan used to pin on NaN != NaN and loop forever.
TEST(RankAuc, NanScoresTerminate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores = {nan, 0.5, nan, 0.1};
  const std::vector<int> labels = {1, 0, 1, 0};
  const double auc = rank_auc(scores, labels);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(ErrorHandling, CheckThrowsWithContext) {
  try {
    check(false, "something failed");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("something failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common_util"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ataman
