// FrameStream: a deterministic stand-in for a sensor that slides a fixed
// window over a continuous signal — the input shape of streaming
// inference (dscnn keyword spotting processes overlapping spectrogram
// windows that advance a few frames of audio at a time).
//
// The generator renders one wide signal of total_cols() columns and
// serves two views of it:
//   frame(i)        the full h x w x c window starting at column
//                   i * stride_cols — what a from-scratch inference
//                   consumes, and what StreamSession's fallback path
//                   reconstructs internally;
//   new_columns(i)  only the stride_cols columns frame i exposes beyond
//                   frame i-1 ([h][s][c]) — what a streaming client
//                   pushes per frame. new_columns(0) is the whole first
//                   window: a session's first frame has no history.
//
// Consecutive frames therefore overlap in w - stride_cols columns by
// construction, which is exactly the overlap the temporal-reuse splice
// (src/mcu/stream_plan.hpp) exploits. The signal is generated from the
// seed alone (structured drifting waves + per-pixel noise), so streams
// are bit-reproducible across runs, platforms and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/dataset.hpp"

namespace ataman {

struct FrameStreamSpec {
  ImageShape shape;     // the per-frame window (dscnn default: 32x32x3)
  int frames = 8;       // number of windows the stream serves
  int stride_cols = 2;  // columns the window advances per frame
  uint64_t seed = 42;

  bool operator==(const FrameStreamSpec&) const = default;
};

class FrameStream {
 public:
  // Renders the full signal up front; O(h * total_cols * c) memory.
  explicit FrameStream(const FrameStreamSpec& spec);

  const FrameStreamSpec& spec() const { return spec_; }
  int frames() const { return spec_.frames; }

  // Width of the underlying signal: w + (frames - 1) * stride_cols.
  int total_cols() const;

  // Full window of frame `index` ([h][w][c] u8, shape().pixels() bytes).
  std::vector<uint8_t> frame(int index) const;

  // Columns frame `index` adds over its predecessor ([h][s][c]);
  // new_columns(0) is the entire first window.
  std::vector<uint8_t> new_columns(int index) const;

 private:
  // Copy of signal columns [col_lo, col_lo + cols) for every row.
  std::vector<uint8_t> columns(int col_lo, int cols) const;

  FrameStreamSpec spec_;
  std::vector<uint8_t> signal_;  // [h][total_cols][c]
};

}  // namespace ataman
