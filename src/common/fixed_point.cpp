#include "src/common/fixed_point.hpp"

#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace ataman {

QuantizedMultiplier quantize_multiplier(double real_multiplier) {
  check(real_multiplier >= 0.0, "quantized multiplier must be non-negative");
  if (real_multiplier == 0.0) return {0, 0};

  int exponent = 0;
  const double significand = std::frexp(real_multiplier, &exponent);
  // significand in [0.5, 1); scale to [2^30, 2^31).
  auto mult = static_cast<int64_t>(std::round(significand * (1LL << 31)));
  ATAMAN_ASSERT(mult <= (1LL << 31));
  if (mult == (1LL << 31)) {  // rounding carried: 0.5 -> 1.0
    mult /= 2;
    ++exponent;
  }
  check(exponent <= 30, "multiplier too large to represent");
  return {static_cast<int32_t>(mult), exponent};
}

int32_t saturating_rounding_doubling_high_mul(int32_t a, int32_t b) {
  const bool overflow =
      a == b && a == std::numeric_limits<int32_t>::min();
  if (overflow) return std::numeric_limits<int32_t>::max();
  const int64_t ab = static_cast<int64_t>(a) * static_cast<int64_t>(b);
  const int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<int32_t>((ab + nudge) / (1LL << 31));
}

int32_t rounding_divide_by_pot(int32_t x, int exponent) {
  ATAMAN_ASSERT(exponent >= 0 && exponent <= 31);
  if (exponent == 0) return x;
  const int32_t mask = static_cast<int32_t>((1LL << exponent) - 1);
  const int32_t remainder = x & mask;
  int32_t threshold = mask >> 1;
  if (x < 0) threshold += 1;
  int32_t result = x >> exponent;
  if (remainder > threshold) ++result;
  return result;
}

int32_t multiply_by_quantized_multiplier(int32_t x, QuantizedMultiplier qm) {
  const int left_shift = qm.shift > 0 ? qm.shift : 0;
  const int right_shift = qm.shift > 0 ? 0 : -qm.shift;
  // Pre-shift in int64: quantize_multiplier admits exponents up to 30
  // (QAdd requant ratios above 1 reach them), where `x << shift` overflows
  // int32 — signed-overflow UB. Saturate to int32 instead; every consumer
  // clamps the result to int8 range anyway, so saturation is exact for all
  // representable outputs and merely well-defined for the rest.
  const int64_t wide = static_cast<int64_t>(x) << left_shift;
  constexpr int64_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int32_t>::max();
  const auto shifted =
      static_cast<int32_t>(wide < kMin ? kMin : (wide > kMax ? kMax : wide));
  return rounding_divide_by_pot(
      saturating_rounding_doubling_high_mul(shifted, qm.mult), right_shift);
}

}  // namespace ataman
