// SynthCIFAR: a deterministic procedural stand-in for CIFAR-10.
//
// The paper trains LeNet/AlexNet on CIFAR-10; the dataset itself is not
// part of the contribution — the approximation framework only needs
// (a) a labelled training/eval set and (b) an input-activation
// distribution for the significance analysis. SynthCIFAR provides a
// 10-class, 32x32x3 classification task whose difficulty (class-noise,
// palette overlap, distractor textures) is tuned so the baseline CNNs land
// near the paper's ~71% Top-1 band, which keeps the 0%/5%/10%
// accuracy-loss operating points of Table II meaningful.
//
// Every image is generated from (seed, split, index) alone: datasets are
// bit-reproducible across runs, platforms and thread counts.
#pragma once

#include <cstdint>

#include "src/data/dataset.hpp"

namespace ataman {

struct SynthCifarSpec {
  int train_images = 8000;
  int test_images = 2000;
  uint64_t seed = 42;

  // Difficulty knobs. Defaults were calibrated (see docs/DESIGN.md) so the
  // Table I models land near the paper's ~71% Top-1 band after int8 PTQ.
  float noise_sigma = 140.0f;      // additive Gaussian pixel noise (u8 units)
  float palette_jitter = 0.22f;    // per-instance color palette perturbation
  float distractor_alpha = 0.54f;  // blend weight of a wrong-class texture
  float label_noise = 0.09f;       // fraction of deliberately wrong labels

  bool operator==(const SynthCifarSpec&) const = default;
};

struct SynthCifar {
  Dataset train;
  Dataset test;
};

// Generate both splits. Parallelized over images; deterministic.
SynthCifar make_synth_cifar(const SynthCifarSpec& spec);

// Generate a single split with `count` images (used by tests).
Dataset make_synth_cifar_split(const SynthCifarSpec& spec, int count,
                               uint64_t split_salt);

// CIFAR-10-style class names for the 10 synthetic families.
const char* synth_cifar_class_name(int label);

}  // namespace ataman
