#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

RefEngine::RefEngine(const QModel* model) : InferenceEngine(model, "ref") {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  return run_layers(0, quantize_input(image), mask, tap);
}

std::vector<int8_t> RefEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  return run_from(layer_begin, activations, default_mask_);
}

std::vector<int8_t> RefEngine::run_from(int layer_begin,
                                        std::span<const int8_t> activations,
                                        const SkipMask* mask,
                                        const ConvTap& tap) const {
  return run_layers(layer_begin,
                    std::vector<int8_t>(activations.begin(), activations.end()),
                    mask, tap);
}

std::vector<int8_t> RefEngine::run_layers(int layer_begin,
                                          std::vector<int8_t> act,
                                          const SkipMask* mask,
                                          const ConvTap& tap) const {
  const int layer_count = static_cast<int>(model().layers.size());
  check(layer_begin >= 0 && layer_begin <= layer_count,
        "run_from layer index out of range");
  if (mask != nullptr) mask->validate(model());
  if (layer_begin < layer_count) {
    const QLayer& entry = model().layers[static_cast<size_t>(layer_begin)];
    check(static_cast<int64_t>(act.size()) ==
              describe_layer(entry).in_elems,
          "run_from activation size mismatch at layer " +
              std::to_string(layer_begin));
  }
  std::vector<int8_t> cur = std::move(act);
  std::vector<int8_t> next;

  int approx_ordinal = 0;
  for (int l = 0; l < layer_begin; ++l) {
    if (describe_layer(model().layers[static_cast<size_t>(l)]).skippable)
      ++approx_ordinal;
  }
  for (int l = layer_begin; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (tap) tap(approx_ordinal, layer, cur);
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    run_layer_ref(layer, cur, next, skip);
    cur.swap(next);
  }
  return cur;
}

void RefEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const SkipMask* mask = default_mask_;
  if (mask != nullptr) mask->validate(model());
  const size_t batch = images.size();

  // Per-image activation buffers, advanced layer-major: layer l runs over
  // every image before layer l+1 starts. Each image's arithmetic is the
  // untouched per-image reference kernel, so batched logits are bitwise
  // identical to run() by construction; the batch only changes the order
  // in which (layer, image) pairs execute, keeping each layer's weights
  // hot across the whole batch.
  std::vector<std::vector<int8_t>> acts(batch);
  for (size_t b = 0; b < batch; ++b) acts[b] = quantize_input(images[b]);

  std::vector<int8_t> next;
  int approx_ordinal = 0;
  for (const QLayer& layer : model().layers) {
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    for (size_t b = 0; b < batch; ++b) {
      run_layer_ref(layer, acts[b], next, skip);
      acts[b].swap(next);
    }
  }
  logits_out = std::move(acts);
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  RefEngine engine(&model);
  engine.bind_mask(mask);
  // Engine overload: evaluation proceeds through run_batch, so each
  // layer's weights stream once per sub-batch instead of once per image.
  return evaluate_batch(engine, ds, limit).top1;
}

}  // namespace ataman
