// Cortex-M33 cycle cost model.
//
// Latency on this MCU class is a deterministic function of the executed
// instruction stream (in-order core, no data cache, flat flash with a
// prefetch buffer); the paper itself relies on this by reporting that its
// offline cycle counters "closely align with the cycles of the actual
// model deployment" (§II-C). This model prices the instruction streams of
// the three kernel families in the repo:
//
// 1. Packed CMSIS-NN-style convolution (the exact baseline [2]).
//    im2col expands the receptive field to int16 (q15), then a dual-MAC
//    inner loop runs SMLAD over weight pairs. CMSIS has two variants:
//      * FAST  (in_c % 4 == 0 and out_c % 2 == 0): 2 output channels x
//        2 columns per iteration, weights expanded with SXTB16; ~2.9
//        cycles per weight pair (1.45/MAC).
//      * BASIC (everything else, e.g. RGB input layers): scalar LDRSB/
//        SMLABB code, ~11.8 cycles per pair (5.9/MAC).
//    This split is what makes small/odd-geometry CNNs (the paper's LeNet,
//    2.94 cyc/MAC end to end) proportionally slower than wide 3x3 CNNs
//    (AlexNet, 1.79 cyc/MAC): the RGB stem runs on the basic path and
//    per-channel epilogues amortize worse.
//
// 2. Unpacked fixed-weight convolution (the paper's §II-B contribution).
//    Straight-line code; per retained pair: MOVW+MOVT materialize the
//    packed 32-bit weight constant (two sign-extended int8 weights, e.g.
//    64*2^16 + 20 = 4194324 for w1=64, w2=20), one activation-pair load,
//    one SMLAD, plus amortized flash-fetch stalls (straight-line code
//    defeats the loop prefetch buffer). No im2col, no loop/branch
//    overhead, cheaper epilogue. Note the per-pair cost (~5.5) sits
//    *between* the basic and fast packed paths: unpacking alone speeds up
//    basic-path layers dramatically and costs wide fast-path layers a
//    little — the headline wins of Table II come from unpacking combined
//    with significance skipping (fewer executed pairs), which is exactly
//    the paper's "cooperative" framing.
//
// 3. Packed fully-connected / pooling / softmax, common to all engines.
//
// All constants live in CortexM33CostTable; change one place to re-price
// every engine, bench and report.
#pragma once

#include <cstdint>

#include "src/mcu/deploy_report.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct CortexM33CostTable {
  // -- shared --
  double layer_dispatch = 400.0;     // runtime per-layer call/setup
  double softmax_per_logit = 30.0;

  // -- packed (CMSIS-like) convolution --
  double im2col_per_elem = 3.0;      // load q7, extend to q15, store
  double packed_fast_per_pair = 2.9; // 2x2 SMLAD kernel, per weight pair
  double packed_basic_per_mac = 5.9; // scalar path, per MAC
  double packed_chan_epilogue = 30.0;  // bias+requant+saturate+store per
                                       // (position x channel)
  // -- packed fully-connected --
  double fc_per_pair = 2.9;
  double fc_out_epilogue = 30.0;

  // -- unpacked convolution (this paper) --
  double unpacked_per_pair = 5.5;    // MOVW+MOVT+LDR+SMLAD+fetch stalls
  double unpacked_per_single = 3.5;  // MOVW+LDRSB+SMLABB for odd leftovers
  double unpacked_chan_epilogue = 24.0;  // branchless epilogue
  double unpacked_layer_setup = 200.0;   // customized runtime, no dispatch
                                         // table walk

  // -- packed depthwise convolution --
  // CMSIS-NN depthwise kernels (arm_depthwise_conv_s8) run a scalar
  // per-channel tap loop — the dual-MAC trick needs two weights against
  // one accumulator, which a per-channel filter cannot feed from
  // consecutive memory. Priced per MAC like the basic conv path, with a
  // slightly cheaper constant (no im2col, better locality). Calibrated
  // against bench/kernel_micro (BM_DepthwisePackedCmsis vs
  // BM_DepthwiseUnpacked/0): at these rates packed depthwise prices
  // ~1.5x the unpacked zero-skip program on the 16x16x24 3x3 layer,
  // matching the scalar-loop vs paired-straight-line instruction shape;
  // pinned by tests/test_mcu.cpp so re-pricing is a deliberate act.
  double packed_depthwise_per_mac = 5.2;

  // -- pooling --
  double pool_per_output_elem_per_tap = 2.0;  // load+compare per window tap
  double avgpool_div_per_output = 7.0;  // rounding divide + saturate per
                                        // output element (SDIV + fixup)

  // -- residual add --
  // Per output element: two loads, two fixed-point requants (SMMUL-class
  // rounding multiply + shift each), add, saturate, store. Identical for
  // every engine — QAdd has no weights to pack or unpack.
  double qadd_per_elem = 9.0;

  // -- streaming splice --
  // Per int8 element copied from the activation ring instead of
  // recomputed (steady-state streaming, src/mcu/stream_plan.hpp). Bands
  // are contiguous per row, so the copy runs word-wide LDR/STR (~0.5
  // cycles/byte) plus a little per-row loop overhead.
  double stream_splice_per_elem = 0.6;
};

// True when the layer qualifies for the CMSIS fast (dual-SMLAD) path.
bool packed_conv_uses_fast_path(const QConv2D& layer);

// Cycle counts -----------------------------------------------------------

int64_t packed_conv_cycles(const QConv2D& layer,
                           const CortexM33CostTable& t = {});

// `static_pairs`/`static_singles`: retained SMLAD pairs / leftover single
// MACs summed over all output channels of this layer (static code, reused
// at every output position).
int64_t unpacked_conv_cycles(const QConv2D& layer, int64_t static_pairs,
                             int64_t static_singles,
                             const CortexM33CostTable& t = {});

// Packed (loop-kernel) depthwise convolution.
int64_t packed_depthwise_cycles(const QDepthwiseConv2D& layer,
                                const CortexM33CostTable& t = {});

// Unpacked depthwise convolution: per-channel straight-line tap programs
// (same instruction shape as unpacked conv; operand pairs come from one
// channel's k*k taps).
int64_t unpacked_depthwise_cycles(const QDepthwiseConv2D& layer,
                                  int64_t static_pairs,
                                  int64_t static_singles,
                                  const CortexM33CostTable& t = {});

int64_t dense_cycles(const QDense& layer, const CortexM33CostTable& t = {});

int64_t pool_cycles(const QMaxPool& layer, const CortexM33CostTable& t = {});

int64_t avgpool_cycles(const QAvgPool& layer,
                       const CortexM33CostTable& t = {});

// Residual add: per-element requantize-and-add (same stream on every
// engine; never approximated, never unpacked).
int64_t qadd_cycles(const QAdd& layer, const CortexM33CostTable& t = {});

// Whole-model cycles for the packed (exact CMSIS-like) engine, including
// per-layer dispatch and the final softmax.
int64_t packed_model_cycles(const QModel& model,
                            const CortexM33CostTable& t = {});

// Batched-execution accounting row for the packed engine. On the modeled
// MCU (in-order, no cache) per-image kernel cycles are a pure function of
// the layer geometry and do not change with batch size — which is why
// engine total_cycles() stays batch-invariant. What a batch does amortize
// is the per-layer runtime dispatch: one call/setup per (layer, batch)
// instead of per (layer, image). `total_cycles` prices a whole batch;
// `per_image_cycles` is the amortized figure (non-increasing in `batch`,
// equal to packed_model_cycles at batch == 1).
struct BatchedCycleRow {
  int batch = 1;
  int64_t total_cycles = 0;        // whole-batch cycles
  double per_image_cycles = 0.0;   // total_cycles / batch
  int64_t amortized_dispatch = 0;  // dispatch cycles saved vs serial runs
};

BatchedCycleRow batched_packed_model_cycles(const QModel& model, int batch,
                                            const CortexM33CostTable& t = {});

// Streaming (temporal reuse) ---------------------------------------------
//
// Steady-state per-frame cost of serving overlapping windows that
// advance `stride_cols` input columns per frame, with the splice plan of
// src/mcu/stream_plan.hpp applied: conv/depthwise position-proportional
// terms scale to the recomputed positions, spliced elements pay the copy
// rate, and pools / dense / QAdd / dispatch / softmax recompute in full.

struct StreamingCostRow {
  int stride_cols = 0;
  int64_t cycles_per_frame = 0;  // packed engine, steady state, reuse on
  int64_t full_cycles = 0;       // packed_model_cycles: the reuse-off frame
  int64_t macs_per_frame = 0;    // recomputed MACs (StreamPlan::frame_macs)
  int64_t full_macs = 0;
  int64_t spliced_elems = 0;
  double reuse_ratio = 0.0;      // full_macs / macs_per_frame
};

StreamingCostRow steady_state_stream_cost(const QModel& model, int stride_cols,
                                          const CortexM33CostTable& t = {});

// Streaming variants of the unpacked kernels (per-config DSE pricing):
// the position-proportional pair/single/epilogue terms scale to
// `recomputed_positions` of the steady-state plan; the per-layer setup
// is paid in full every frame. Splice copy cycles are charged separately
// by the caller (they depend on the plan's band, not the mask).
int64_t unpacked_conv_stream_cycles(const QConv2D& layer, int64_t static_pairs,
                                    int64_t static_singles,
                                    int64_t recomputed_positions,
                                    const CortexM33CostTable& t = {});

int64_t unpacked_depthwise_stream_cycles(const QDepthwiseConv2D& layer,
                                         int64_t static_pairs,
                                         int64_t static_singles,
                                         int64_t recomputed_positions,
                                         const CortexM33CostTable& t = {});

// Fill the DeployReport steady-state streaming row (stride, cycles,
// latency, energy-per-frame from `board`, reuse ratio) for `model`
// served at `stride_cols` columns per frame.
void attach_streaming_row(DeployReport& report, const QModel& model,
                          int stride_cols, const BoardSpec& board,
                          const CortexM33CostTable& t = {});

}  // namespace ataman
