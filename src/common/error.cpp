#include "src/common/error.hpp"

#include <sstream>

namespace ataman::detail {

namespace {
std::string format(const std::string& message, const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": " << message;
  return os.str();
}
}  // namespace

void throw_error(const std::string& message, const std::source_location& loc) {
  throw Error(format(message, loc));
}

void assertion_failure(const char* expr, const std::string& message,
                       const std::source_location& loc) {
  std::ostringstream os;
  os << "internal assertion failed: (" << expr << ")";
  if (!message.empty()) os << " — " << message;
  throw Error(format(os.str(), loc));
}

}  // namespace ataman::detail
