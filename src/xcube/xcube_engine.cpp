#include "src/xcube/xcube_engine.hpp"

#include <atomic>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/nn/engine.hpp"

namespace ataman {

XCubeEngine::XCubeEngine(const QModel* model, XCubeCostTable costs)
    : model_(model), costs_(costs) {
  check(model != nullptr, "engine needs a model");
  double cycles = 0.0;
  int out_dim = 0;
  for (const QLayer& layer : model_->layers) {
    cycles += costs_.layer_dispatch;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      const ConvGeom& g = conv->geom;
      cycles += costs_.im2col_per_elem *
                static_cast<double>(g.positions()) * g.patch_size();
      if (packed_conv_uses_fast_path(*conv)) {
        cycles += costs_.fast_per_pair *
                  static_cast<double>(g.positions()) * g.out_c *
                  (g.patch_size() / 2);
        cycles += costs_.basic_per_mac *
                  static_cast<double>(g.positions()) * g.out_c *
                  (g.patch_size() % 2);
      } else {
        cycles += costs_.basic_per_mac * static_cast<double>(g.macs());
      }
      cycles += costs_.chan_epilogue *
                static_cast<double>(g.positions()) * g.out_c;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      cycles += costs_.pool_per_output_elem_per_tap *
                static_cast<double>(pool->out_h()) * pool->out_w() *
                pool->channels * pool->kernel * pool->kernel;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      cycles += costs_.fc_per_pair *
                static_cast<double>(fc->out_dim) * (fc->in_dim / 2);
      cycles += costs_.fc_out_epilogue * static_cast<double>(fc->out_dim);
      out_dim = fc->out_dim;
    }
  }
  cycles += costs_.softmax_per_logit * out_dim;
  total_cycles_ = static_cast<int64_t>(std::llround(cycles));
}

int XCubeEngine::classify(std::span<const uint8_t> image) const {
  return RefEngine(model_).classify(image);
}

int64_t XCubeEngine::flash_bytes() const {
  return costs_.runtime_code +
         static_cast<int64_t>(std::llround(
             costs_.weight_compression *
             static_cast<double>(model_->weight_bytes())));
}

int64_t XCubeEngine::ram_bytes() const {
  MemoryCostTable t;
  t.runtime_reserve = costs_.ram_runtime_reserve;
  return model_ram_bytes(*model_, /*packed_engine=*/true, t);
}

DeployReport XCubeEngine::deploy(const Dataset& eval, const BoardSpec& board,
                                 int limit) const {
  const int n = limit < 0 ? eval.size() : std::min(limit, eval.size());
  check(n > 0, "no images to evaluate");
  RefEngine ref(model_);
  std::atomic<int> correct{0};
  parallel_for(0, n, [&](int64_t i) {
    if (ref.classify(eval.image(static_cast<int>(i))) ==
        eval.label(static_cast<int>(i)))
      correct.fetch_add(1, std::memory_order_relaxed);
  });

  DeployReport r;
  r.design = "x-cube-ai";
  r.network = model_->name;
  r.top1_accuracy = static_cast<double>(correct.load()) / n;
  r.cycles = total_cycles_;
  r.mac_ops = model_->mac_count();
  r.flash_bytes = flash_bytes();
  r.ram_bytes = ram_bytes();
  r.finalize(board);
  return r;
}

}  // namespace ataman
