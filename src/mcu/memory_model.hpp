// Flash and RAM accounting for deployed models.
//
// Flash (packed deployment) = runtime code + kernel code + weights/biases
// + constant tables. Flash (unpacked deployment) replaces each unpacked
// conv layer's weights with straight-line code whose size scales with the
// *retained* operand count — the flash/latency trade-off of §II-B. The
// paper's customization claim (§II-A: offloading model-structure handling
// to compile time cuts runtime flash by up to 30%) shows up as
// `custom_runtime_code` < `generic_runtime_code`.
//
// RAM = liveness-planned activation arena + im2col scratch (packed
// only) + a fixed runtime reserve (stack, HAL, I/O staging) calibrated
// once against Table I. The arena term is
//   peak = max over execution steps l of  sum of live tensor sizes,
// where tensor t is live at step l iff def(t) <= l <= last_use(t)
// (def = producing step, last_use = last consuming step). On a pure
// chain exactly {input, output} are live at each step, so peak reduces
// to the classic ping-pong max(cur + next); on a DAG it accounts for
// every skip-edge tensor held across the block body and is strictly
// below the naive sum-of-all-tensors (pinned by tests/test_dag.cpp).
// MinUn (PAPERS.md) is the reference for this style of placement.
#pragma once

#include <cstdint>

#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct MemoryCostTable {
  // Code sizes (bytes).
  int64_t generic_runtime_code = 52 * 1024;  // CMSIS-NN + dispatch runtime
  int64_t custom_runtime_code = 36 * 1024;   // ours: structure at compile time
  int64_t const_tables = 4 * 1024;           // requant tables, class map, io
  int64_t per_layer_descriptor = 96;         // packed runtime layer metadata

  // Unpacked code emission (bytes). Per retained SMLAD pair: MOVW+MOVT of
  // the packed weight constant (8) plus its share of activation loads and
  // the SMLAD itself (amortized ~4).
  int64_t unpacked_bytes_per_pair = 12;
  int64_t unpacked_bytes_per_single = 8;
  int64_t unpacked_bytes_per_channel = 16;   // bias load + requant + store
  int64_t unpacked_bytes_per_layer = 256;    // prologue/epilogue, pointers

  // RAM.
  int64_t runtime_reserve = 168 * 1024;  // stack, HAL, statics, I/O staging
};

struct FlashReport {
  int64_t total_bytes = 0;
  int64_t code_bytes = 0;
  int64_t weight_bytes = 0;
  int64_t unpacked_code_bytes = 0;
  double percent_of(int64_t flash_capacity) const {
    return 100.0 * static_cast<double>(total_bytes) /
           static_cast<double>(flash_capacity);
  }
};

// Packed (CMSIS-like) deployment: weights stored as data.
FlashReport packed_flash(const QModel& model, const MemoryCostTable& t = {});

// Unpacked deployment: approximable layers (conv + depthwise) in
// `static_pairs` / `static_singles` (indexed by approximable-layer
// ordinal, -1 entries = layer kept packed) become straight-line code;
// their weights disappear from the data segment. FC layers stay packed.
FlashReport unpacked_flash(const QModel& model,
                           const std::vector<int64_t>& static_pairs,
                           const std::vector<int64_t>& static_singles,
                           const MemoryCostTable& t = {});

// ---------------------------------------------------------------------------
// Liveness-based activation-buffer plan — the one placement every engine
// (ref, cmsis, unpacked), the serve workers and the codegen runner
// consume instead of hard-coded ping-pong buffers.
//
// Tensor ids follow QModel: tensor 0 is the network input, tensor l+1
// the output of layer l. Each tensor's live interval is
// [def, last_use]; buffers are assigned by first-fit interval-graph
// coloring (tensors are already in def order), which degenerates to the
// two-slot ping-pong on pure chains. Slots never alias a step's output
// with one of its inputs: the output's interval starts at the step
// where every input is still live.
// ---------------------------------------------------------------------------
struct ActivationPlan {
  struct Tensor {
    int64_t elems = 0;  // int8 elements == bytes
    int def = 0;        // producing step (-1 for the network input)
    int last_use = 0;   // last consuming step (layer count for the output)
    int slot = -1;      // buffer slot from interval coloring
  };
  std::vector<Tensor> tensors;      // indexed by tensor id, 0..layer count
  std::vector<int64_t> slot_elems;  // capacity of each buffer slot
  // True DAG peak: max over steps of the summed size of live tensors.
  // Equals the ping-pong max(cur + next) on chains.
  int64_t peak_elems = 0;

  int slot_count() const { return static_cast<int>(slot_elems.size()); }
  // Sum of every tensor size — the naive no-reuse bound the planner
  // must beat on DAGs (regression-pinned).
  int64_t total_tensor_elems() const;
};

ActivationPlan plan_activations(const QModel& model);

// RAM use is engine-independent to first order (same activation buffers);
// packed adds the im2col q15 scratch. The arena term is
// plan_activations(model).peak_elems.
int64_t model_ram_bytes(const QModel& model, bool packed_engine,
                        const MemoryCostTable& t = {});

}  // namespace ataman
