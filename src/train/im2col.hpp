// im2col / col2im for NHWC activations.
//
// The column matrix has one row per output position (oy * out_w + ox) and
// one column per filter operand, flattened in (ky, kx, in_c) order — the
// same operand order the quantized kernels, the significance analysis and
// the code generator use, so "operand index i" means the same thing in
// every module.
#pragma once

#include "src/common/math_util.hpp"

namespace ataman {

struct ConvGeom {
  int in_h = 0, in_w = 0, in_c = 0;
  int out_c = 0;
  int kernel = 1, stride = 1, pad = 0;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, pad); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, pad); }
  int patch_size() const { return kernel * kernel * in_c; }  // K of the GEMM
  int positions() const { return out_h() * out_w(); }        // M of the GEMM
  int64_t macs() const {
    return static_cast<int64_t>(positions()) * out_c * patch_size();
  }
  int64_t weight_count() const {
    return static_cast<int64_t>(out_c) * patch_size();
  }
  bool operator==(const ConvGeom&) const = default;
};

// Fill `col` ([positions x patch_size] row-major) from NHWC `input`.
// Out-of-image taps contribute `pad_value` (0 for float, zero-point for
// quantized activations).
void im2col_f32(const ConvGeom& g, const float* input, float* col);

// Scatter-add the column-matrix gradient back to NHWC input gradient.
// `dinput` must be zero-initialized by the caller.
void col2im_f32(const ConvGeom& g, const float* dcol, float* dinput);

}  // namespace ataman
