// Full-model approximate engine: unpacked conv + depthwise layers (with
// optional significance skipping baked in), packed FC, reference
// pooling. This is the "Proposed (ours)" column of Table II.
//
// Hybrid deployments (see layer_selection.hpp) may keep individual
// approximable layers on the packed CMSIS-style kernel instead: pass an
// `unpack_selection` vector (one flag per approximable-layer ordinal).
// Packed layers execute exactly (skips only remove instructions from
// *unpacked* code), keep their weights in the flash data segment, and
// are costed with the packed kernel model.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/core/engine_iface.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"
#include "src/unpack/unpacked_layer.hpp"

namespace ataman {

class UnpackedEngine : public InferenceEngine {
 public:
  // `mask` == nullptr -> exact unpacking (no skips).
  // `unpack_selection` == nullptr -> every approximable layer (conv +
  // depthwise) is unpacked (the paper's policy); otherwise one 0/1 flag
  // per approximable-layer ordinal.
  UnpackedEngine(const QModel* model, const SkipMask* mask = nullptr,
                 CortexM33CostTable costs = {}, MemoryCostTable memory = {},
                 const std::vector<uint8_t>* unpack_selection = nullptr);

  std::vector<int8_t> run(std::span<const uint8_t> image) const override;

  // Batch-amortized path: unpacked channel programs and packed FC weight
  // streams execute once per lane-block of kBatchLanes images (hybrid
  // packed-conv fallbacks use the batched packed kernels). Bitwise
  // identical to run().
  bool supports_run_batch() const override { return true; }
  void run_batch(std::span<const std::span<const uint8_t>> images,
                 std::vector<std::vector<int8_t>>& logits_out) const override;

  // Copies the unpacked channel programs / packed FC streams verbatim —
  // much cheaper than re-unpacking, which is why serve pools clone a
  // shared prototype per (mask, selection) instead of reconstructing.
  // The mask is baked into the programs at construction, so this engine
  // deliberately does NOT support rebind_mask().
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<UnpackedEngine>(*this);
  }

  int64_t total_cycles() const override { return total_cycles_; }
  // Executed (retained) conv/depthwise MACs + FC MACs per inference.
  int64_t executed_macs() const { return executed_macs_; }
  int64_t mac_ops() const override { return executed_macs_; }
  const std::vector<LayerProfile>& layer_profile() const override {
    return profile_;
  }
  int unpacked_conv_count() const;  // unpacked approximable layers

  FlashReport flash(const MemoryCostTable& t = {}) const;
  int64_t flash_bytes() const override { return flash(memory_).total_bytes; }
  int64_t ram_bytes() const override;

  using InferenceEngine::deploy;
  // As the interface deploy, but reported under `design_name` (e.g.
  // "ataman(5%)") instead of the engine default.
  DeployReport deploy(const Dataset& eval, const BoardSpec& board, int limit,
                      const std::string& design_name) const;

 private:
  // Per approximable-layer ordinal: exactly one execution form is
  // engaged — an unpacked program (conv or depthwise) or the packed
  // fallback (PackedWeights stream for conv; the depthwise loop kernel
  // needs no prepacked state).
  struct ApproxExec {
    bool is_unpacked = true;
    std::optional<UnpackedConv> unpacked;
    std::optional<UnpackedDepthwise> unpacked_dw;
    std::optional<PackedWeights> packed;
  };

  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  // Shared liveness-based activation plan (src/mcu/memory_model): slot
  // buffers replace ping-pong so DAG (residual) models execute with the
  // peak RAM the memory model reports.
  ActivationPlan plan_;
  std::vector<ApproxExec> convs_;          // by approximable ordinal
  std::vector<PackedWeights> packed_fc_;   // by fc ordinal
  std::vector<LayerProfile> profile_;
  int64_t total_cycles_ = 0;
  int64_t executed_macs_ = 0;
};

}  // namespace ataman
