// DSE engine: Pareto analysis, config-space generation, evaluator
// semantics, design selection, determinism.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/dse/config_space.hpp"
#include "src/dse/dse_io.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/dse/evaluator.hpp"
#include "src/dse/pareto.hpp"
#include "src/nn/engine.hpp"
#include "src/sig/act_stats.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_tiny_qmodel;

TEST(Pareto, Dominates) {
  EXPECT_TRUE(dominates({2, 2, 0}, {1, 1, 1}));
  EXPECT_TRUE(dominates({2, 1, 0}, {1, 1, 1}));
  EXPECT_FALSE(dominates({1, 1, 0}, {1, 1, 1}));  // equal: no strict gain
  EXPECT_FALSE(dominates({2, 0, 0}, {1, 1, 1}));  // trade-off
}

TEST(Pareto, FrontContainsOnlyNonDominated) {
  const std::vector<ParetoPoint> pts = {
      {0.0, 0.9, 0}, {0.1, 0.85, 1}, {0.2, 0.87, 2},
      {0.3, 0.6, 3}, {0.25, 0.87, 4}, {0.05, 0.5, 5},
  };
  const std::vector<int> front = pareto_front(pts);
  // 1 is dominated by 2/4 (more reduction, more accuracy); 5 dominated.
  for (const int idx : front) {
    for (const auto& other : pts) {
      EXPECT_FALSE(dominates(other, pts[static_cast<size_t>(idx)]))
          << "front point " << idx << " is dominated";
    }
  }
  // Best-accuracy and best-reduction points must be present.
  EXPECT_NE(std::find(front.begin(), front.end(), 0), front.end());
  EXPECT_NE(std::find(front.begin(), front.end(), 3), front.end());
  // Ascending in x.
  for (size_t i = 1; i < front.size(); ++i)
    EXPECT_LT(pts[static_cast<size_t>(front[i - 1])].x,
              pts[static_cast<size_t>(front[i])].x);
}

TEST(Pareto, SinglePointAndEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
  const std::vector<int> one = pareto_front({{1.0, 1.0, 0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(ConfigSpace, UniformSubsetModeCount) {
  DseOptions o;
  o.mode = DseMode::kUniformTauBySubset;
  o.tau_min = 0.0;
  o.tau_max = 0.1;
  o.tau_step = 0.05;  // grid {0, 0.05, 0.1}
  const auto configs = generate_configs(3, o);
  // exact + (2^3 - 1) subsets x 3 taus = 1 + 21.
  EXPECT_EQ(configs.size(), 22u);
  EXPECT_FALSE(configs[0].approximates_anything());
}

TEST(ConfigSpace, PerLayerGridModeCount) {
  DseOptions o;
  o.mode = DseMode::kPerLayerGrid;
  o.per_layer_levels = 3;  // + exact level = 4 per layer
  const auto configs = generate_configs(2, o);
  EXPECT_EQ(configs.size(), 16u);  // 4^2
  EXPECT_FALSE(configs[0].approximates_anything());
}

TEST(ConfigSpace, PaperScaleLeNetGridExceeds10k) {
  // Paper: tau in [0, 0.1] step 0.001 (LeNet) across layer subsets of a
  // 3-conv model -> 1 + 7 * 101 = 708 uniform configs; the per-layer grid
  // with 10 levels gives 11^3 = 1331; both modes together with the
  // documented paper-scale options pass 10k only via finer per-layer
  // grids — verify the generator scales and caps correctly.
  DseOptions o;
  o.mode = DseMode::kPerLayerGrid;
  o.per_layer_levels = 21;
  const auto configs = generate_configs(3, o);
  EXPECT_EQ(configs.size(), 22u * 22 * 22);  // > 10,000 designs
  EXPECT_GT(configs.size(), 10000u);
}

TEST(ConfigSpace, MaxConfigsSubsamplesDeterministically) {
  DseOptions o;
  o.mode = DseMode::kPerLayerGrid;
  o.per_layer_levels = 6;
  o.max_configs = 50;
  const auto a = generate_configs(3, o);
  const auto b = generate_configs(3, o);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_FALSE(a[0].approximates_anything());  // exact kept at slot 0
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].tau, b[i].tau);
}

TEST(ConfigSpace, RejectsBadGrid) {
  DseOptions o;
  o.tau_step = 0.0;
  EXPECT_THROW(generate_configs(2, o), Error);
  EXPECT_THROW(generate_configs(-1, DseOptions{}), Error);
}

TEST(ConfigSpace, ZeroApproxLayersDegeneratesToExact) {
  // Models with no approximable layers (e.g. dense-only autoencoders)
  // still sweep: the space is the single exact config.
  const std::vector<ApproxConfig> configs =
      generate_configs(0, DseOptions{});
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_FALSE(configs[0].approximates_anything());
  EXPECT_TRUE(configs[0].tau.empty());
}

// --- evaluator + runner on a tiny random model --------------------------

class DseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new QModel(make_tiny_qmodel(60));
    eval_ = new Dataset(ImageShape{12, 12, 3}, 10);
    Rng rng(61);
    for (int i = 0; i < 60; ++i) {
      std::vector<uint8_t> img(12 * 12 * 3);
      for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
      eval_->add(img, rng.next_int(0, 9));
    }
    const auto stats = capture_activation_stats(*model_, *eval_, 32);
    sig_ = new std::vector<LayerSignificance>(
        compute_model_significance(*model_, stats));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete eval_;
    delete sig_;
    model_ = nullptr;
    eval_ = nullptr;
    sig_ = nullptr;
  }
  static QModel* model_;
  static Dataset* eval_;
  static std::vector<LayerSignificance>* sig_;
};

QModel* DseFixture::model_ = nullptr;
Dataset* DseFixture::eval_ = nullptr;
std::vector<LayerSignificance>* DseFixture::sig_ = nullptr;

TEST_F(DseFixture, ExactConfigHasZeroReduction) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  const DseResult r = ev.evaluate(ApproxConfig::exact(2));
  EXPECT_EQ(r.skipped_conv_macs, 0);
  EXPECT_DOUBLE_EQ(r.conv_mac_reduction, 0.0);
  EXPECT_EQ(r.executed_macs, model_->mac_count());
  // Exact accuracy equals plain reference accuracy.
  EXPECT_DOUBLE_EQ(r.accuracy,
                   evaluate_quantized_accuracy(*model_, *eval_));
}

TEST_F(DseFixture, MacReductionMonotoneInUniformTau) {
  const ConfigEvaluator ev(model_, sig_, eval_, 20);
  double prev = -1.0;
  for (const double tau : {0.0, 0.005, 0.02, 0.08}) {
    const DseResult r = ev.evaluate(ApproxConfig::uniform(2, tau));
    EXPECT_GE(r.conv_mac_reduction, prev);
    prev = r.conv_mac_reduction;
  }
}

TEST_F(DseFixture, CyclesDropWithSkipping) {
  const ConfigEvaluator ev(model_, sig_, eval_, 20);
  const DseResult exact = ev.evaluate(ApproxConfig::exact(2));
  const DseResult heavy = ev.evaluate(ApproxConfig::uniform(2, 0.08));
  if (heavy.skipped_conv_macs > 0) {
    EXPECT_LT(heavy.cycles, exact.cycles);
    EXPECT_GT(heavy.latency_reduction, exact.latency_reduction);
    EXPECT_LT(heavy.flash_bytes, exact.flash_bytes);
  }
}

TEST_F(DseFixture, RunnerProducesValidFrontAndBaseline) {
  const ConfigEvaluator ev(model_, sig_, eval_, 30);
  DseOptions o;
  o.tau_step = 0.02;
  const DseOutcome outcome = run_dse(ev, 2, o);
  ASSERT_FALSE(outcome.results.empty());
  EXPECT_FALSE(outcome.results[0].config.approximates_anything());
  EXPECT_EQ(outcome.exact_accuracy, outcome.results[0].accuracy);
  EXPECT_GT(outcome.baseline_cycles, 0);
  ASSERT_FALSE(outcome.pareto.empty());
  // No front member is dominated by any result.
  for (const int fi : outcome.pareto) {
    const DseResult& f = outcome.results[static_cast<size_t>(fi)];
    for (const DseResult& r : outcome.results) {
      const bool dom = r.conv_mac_reduction >= f.conv_mac_reduction &&
                       r.accuracy >= f.accuracy &&
                       (r.conv_mac_reduction > f.conv_mac_reduction ||
                        r.accuracy > f.accuracy);
      EXPECT_FALSE(dom);
    }
  }
}

TEST_F(DseFixture, SelectRespectsAccuracyFloor) {
  const ConfigEvaluator ev(model_, sig_, eval_, 30);
  DseOptions o;
  o.tau_step = 0.02;
  const DseOutcome outcome = run_dse(ev, 2, o);

  const int strict = select_design(outcome, 0.0);
  ASSERT_GE(strict, 0);
  EXPECT_GE(outcome.results[static_cast<size_t>(strict)].accuracy,
            outcome.exact_accuracy - 1e-12);

  const int loose = select_design(outcome, 0.10);
  ASSERT_GE(loose, 0);
  EXPECT_LE(outcome.results[static_cast<size_t>(loose)].cycles,
            outcome.results[static_cast<size_t>(strict)].cycles);
}

TEST_F(DseFixture, SelectHonorsFlashCapacity) {
  const ConfigEvaluator ev(model_, sig_, eval_, 30);
  DseOptions o;
  o.tau_step = 0.05;
  const DseOutcome outcome = run_dse(ev, 2, o);
  // Impossibly small capacity -> nothing qualifies.
  EXPECT_EQ(select_design(outcome, 0.5, 1), -1);
}

TEST_F(DseFixture, DeterministicAcrossThreadCounts) {
  const ConfigEvaluator ev(model_, sig_, eval_, 25);
  DseOptions o;
  o.tau_step = 0.05;
  const auto configs = generate_configs(2, o);
  set_num_threads(1);
  const DseOutcome a = run_dse(ev, configs);
  set_num_threads(8);
  const DseOutcome b = run_dse(ev, configs);
  set_num_threads(0);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].accuracy, b.results[i].accuracy);
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
  }
  EXPECT_EQ(a.pareto, b.pareto);
}

TEST_F(DseFixture, RunnerRejectsNonExactFirstConfig) {
  const ConfigEvaluator ev(model_, sig_, eval_, 10);
  EXPECT_THROW(run_dse(ev, {ApproxConfig::uniform(2, 0.05)}), Error);
}

TEST_F(DseFixture, OutcomeJsonRoundTrip) {
  const ConfigEvaluator ev(model_, sig_, eval_, 20);
  DseOptions o;
  o.tau_step = 0.05;
  const DseOutcome a = run_dse(ev, 2, o);

  const std::string path = "/tmp/ataman_dse_roundtrip.json";
  save_dse_outcome(a, path);
  const DseOutcome b = load_dse_outcome(path);
  std::remove(path.c_str());

  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].config.tau, b.results[i].config.tau);
    EXPECT_DOUBLE_EQ(a.results[i].accuracy, b.results[i].accuracy);
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
    EXPECT_EQ(a.results[i].flash_bytes, b.results[i].flash_bytes);
    EXPECT_DOUBLE_EQ(a.results[i].conv_mac_reduction,
                     b.results[i].conv_mac_reduction);
  }
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_DOUBLE_EQ(a.exact_accuracy, b.exact_accuracy);
  EXPECT_EQ(a.baseline_cycles, b.baseline_cycles);
  // Selection over the loaded outcome matches the original.
  EXPECT_EQ(select_design(a, 0.05), select_design(b, 0.05));
}

TEST_F(DseFixture, LoadRejectsCorruptPareto) {
  const ConfigEvaluator ev(model_, sig_, eval_, 10);
  DseOptions o;
  o.tau_step = 0.1;
  const DseOutcome a = run_dse(ev, 2, o);
  Json j = dse_outcome_to_json(a);
  j.as_object()["pareto"] = Json(JsonArray{Json(999)});
  EXPECT_THROW(dse_outcome_from_json(j), Error);
}

}  // namespace
}  // namespace ataman
