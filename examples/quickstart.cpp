// Quickstart: the whole ATAMAN flow on a small CNN in ~1 minute.
//
//   1. train a small CNN on SynthCIFAR (cached after the first run)
//   2. post-training-quantize it to int8
//   3. analyze: capture input distribution, compute significance (Eq. 2)
//   4. explore: DSE over skipping thresholds -> Pareto front
//   5. select a design for a 5% accuracy budget and deploy it on the
//      simulated STM32U575, next to the exact CMSIS-NN baseline
//   6. emit the approximate C kernel code
//   7. DAG smoke: quantize a mobilenetv2-style residual net (untrained —
//      this step is about graph plumbing, not accuracy), show the
//      liveness-planned activation arena beating the naive bound, and
//      cross-check ref vs unpacked bitwise on the skip-edge graph
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/ataman.hpp"
#include "src/core/engine_iface.hpp"
#include "src/mcu/memory_model.hpp"

int main() {
  using namespace ataman;

  // --- 1+2: trained, quantized model (micronet: 2 conv, ~0.45M MACs).
  std::printf("== step 1/2: train + quantize (cached after first run)\n");
  const ZooSpec spec = micronet_spec();
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);
  std::printf("   model %s: %d conv layers, %.2fM MACs\n",
              model.name.c_str(), model.conv_layer_count(),
              static_cast<double>(model.mac_count()) / 1e6);

  // --- 3: significance analysis.
  std::printf("== step 3: significance analysis\n");
  PipelineOptions options;
  options.dse.tau_step = 0.01;
  options.dse.eval_images = 400;
  AtamanPipeline pipeline(&model, &data.train, &data.test, options);
  pipeline.analyze();

  // --- 4: design space exploration.
  std::printf("== step 4: DSE\n");
  const DseOutcome outcome = pipeline.explore();
  std::printf("   %zu configs, %zu on the Pareto front, exact accuracy "
              "%.3f\n",
              outcome.results.size(), outcome.pareto.size(),
              outcome.exact_accuracy);

  // --- 5: select + deploy. Comparators come from the EngineRegistry
  // ("cmsis", "xcube", ... — any registered backend works here).
  std::printf("== step 5: select (5%% budget) + deploy on STM32U575 model\n");
  const DeployReport baseline = pipeline.deploy_engine("cmsis");
  const int chosen = pipeline.select(outcome, /*max_accuracy_loss=*/0.05);
  check(chosen >= 0, "no design met the 5% budget");
  const ApproxConfig config =
      outcome.results[static_cast<size_t>(chosen)].config;
  const DeployReport ours = pipeline.deploy(config, "ataman(5%)");

  std::printf("   %-12s acc %.3f  latency %6.2f ms  flash %4.0f KB  "
              "energy %.3f mJ\n",
              baseline.design.c_str(), baseline.top1_accuracy,
              baseline.latency_ms,
              static_cast<double>(baseline.flash_bytes) / 1024.0,
              baseline.energy_mj);
  std::printf("   %-12s acc %.3f  latency %6.2f ms  flash %4.0f KB  "
              "energy %.3f mJ  (%.0f%% faster)\n",
              ours.design.c_str(), ours.top1_accuracy, ours.latency_ms,
              static_cast<double>(ours.flash_bytes) / 1024.0,
              ours.energy_mj,
              100.0 * (1.0 - ours.latency_ms / baseline.latency_ms));

  // --- 6: generate the approximate C kernels.
  std::printf("== step 6: emit approximate C code\n");
  const std::string code = pipeline.generate_code(config);
  write_text_file("generated/quickstart_model.c", code);
  std::printf("   wrote generated/quickstart_model.c (%zu bytes, "
              "hardwired SMLAD constants)\n",
              code.size());

  // --- 7: residual-DAG smoke on the mobilenetv2 zoo arch. Training it
  // takes minutes, so quantize a randomly-initialized instance instead:
  // every DAG code path (skip edges, buffer plan, engine parity) is
  // weight-agnostic. `ataman_cli --model mobilenetv2` runs the trained
  // full pipeline.
  std::printf("== step 7: residual DAG smoke (mobilenetv2, untrained)\n");
  ZooSpec mb = mobilenetv2_spec();
  mb.data.train_images = 256;  // calibration only
  mb.data.test_images = 8;
  const SynthCifar mb_data = make_synth_cifar(mb.data);
  Rng mb_init(1);
  Network mb_net(mb.arch, ImageShape{32, 32, 3}, mb_init);
  const QModel dag = quantize_model(mb_net, mb_data.train);
  dag.validate_dag();

  const ActivationPlan plan = plan_activations(dag);
  std::printf("   %s (topology %s): %zu layers, %d buffer slots, "
              "arena %lld B (naive per-tensor bound %lld B)\n",
              dag.name.c_str(), dag.topology.c_str(), dag.layers.size(),
              plan.slot_count(), static_cast<long long>(plan.peak_elems),
              static_cast<long long>(plan.total_tensor_elems()));

  EngineConfig dag_cfg;
  dag_cfg.model = &dag;
  const auto dag_ref = EngineRegistry::instance().create("ref", dag_cfg);
  const auto dag_unpacked =
      EngineRegistry::instance().create("unpacked", dag_cfg);
  for (int i = 0; i < mb_data.test.size(); ++i) {
    check(dag_ref->run(mb_data.test.image(i)) ==
              dag_unpacked->run(mb_data.test.image(i)),
          "ref/unpacked logits diverged on the residual DAG");
  }
  std::printf("   ref == unpacked bitwise on %d images across both "
              "skip edges\n",
              mb_data.test.size());
  std::printf("done.\n");
  return 0;
}
