// Full-model packed engine: the "exact baseline [2]" column of Table II.
//
// Executes the QModel with packed kernels (bit-exact with the reference
// engine) and produces the MCU deployment report — cycles from the cost
// model, flash/RAM from the memory model. The per-layer cycle profile is
// the software analogue of the paper's kernel cycle counters (§II-A),
// which are "deactivated during runtime": profiling here is free because
// cycles are a pure function of the layer geometry.
#pragma once

#include <span>
#include <vector>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/data/dataset.hpp"
#include "src/mcu/board.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/deploy_report.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

class CmsisEngine {
 public:
  explicit CmsisEngine(const QModel* model, CortexM33CostTable costs = {},
                       MemoryCostTable memory = {});

  std::vector<int8_t> run(std::span<const uint8_t> image) const;
  int classify(std::span<const uint8_t> image) const;

  // Structure-derived metrics (no execution needed).
  int64_t total_cycles() const { return total_cycles_; }
  const std::vector<LayerProfile>& layer_profile() const { return profile_; }

  // Full deployment report; accuracy is measured on `eval` (up to `limit`
  // images, all if < 0).
  DeployReport deploy(const Dataset& eval, const BoardSpec& board,
                      int limit = -1) const;

  const QModel& model() const { return *model_; }

 private:
  const QModel* model_;
  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  std::vector<PackedWeights> packed_;  // conv + fc, in layer order
  std::vector<LayerProfile> profile_;
  int64_t total_cycles_ = 0;
};

}  // namespace ataman
