// Small single-threaded GEMM kernels for the training substrate.
//
// Deliberately single-threaded: the trainer parallelizes over batch images
// (disjoint outputs, deterministic per-worker gradient buffers), so nested
// parallelism here would only cause oversubscription. Loop orders are
// chosen for contiguous inner accesses so -O3 auto-vectorizes them.
#pragma once

namespace ataman {

// C[M,N] (+)= A[M,K] * B[K,N], all row-major.
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate);

// C[M,N] (+)= A[M,K] * B[N,K]^T  (dot-product form).
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate);

// C[M,N] (+)= A[K,M]^T * B[K,N]  (gradient-of-weights form).
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate);

}  // namespace ataman
