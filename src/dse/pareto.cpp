#include "src/dse/pareto.hpp"

#include <algorithm>

namespace ataman {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.x >= b.x && a.y >= b.y && (a.x > b.x || a.y > b.y);
}

std::vector<int> pareto_front(const std::vector<ParetoPoint>& points) {
  // Sort by descending x, then descending y; sweep keeping the best y.
  std::vector<int> order(points.size());
  for (size_t i = 0; i < points.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& pa = points[static_cast<size_t>(a)];
    const auto& pb = points[static_cast<size_t>(b)];
    if (pa.x != pb.x) return pa.x > pb.x;
    return pa.y > pb.y;
  });

  std::vector<int> front;
  double best_y = -1e300;
  double last_x = 0.0;
  bool first = true;
  for (const int idx : order) {
    const auto& p = points[static_cast<size_t>(idx)];
    if (first || p.y > best_y) {
      // Equal-x points: only the first (highest y) survives.
      if (!first && p.x == last_x) continue;
      front.push_back(idx);
      best_y = p.y;
      last_x = p.x;
      first = false;
    }
  }
  std::reverse(front.begin(), front.end());  // ascending x
  return front;
}

}  // namespace ataman
