#include "src/serve/server.hpp"

#include <chrono>

#include "src/common/parallel.hpp"
#include "src/nn/skip_mask.hpp"

namespace ataman::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

InferenceServer::InferenceServer(const QModel* model, ServeOptions options)
    : model_(model),
      options_(options),
      queue_(options.max_batch),
      pool_(model, options.workers, options.costs, options.memory,
            options.xcube),
      per_worker_done_(static_cast<size_t>(options.workers), 0) {
  check(model != nullptr, "InferenceServer needs a model");
  check(options_.workers >= 1, "InferenceServer needs at least one worker");
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

InferenceServer::~InferenceServer() { stop(Shutdown::kDrain); }

InferFuture InferenceServer::submit(InferRequest request) {
  // Fail on the caller's thread, before anything is queued.
  const QModel& m = *model_;
  const int64_t expected = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
  check(static_cast<int64_t>(request.image.size()) == expected,
        "submit: image size " + std::to_string(request.image.size()) +
            " does not match model input " + std::to_string(expected));
  check(EngineRegistry::instance().contains(request.engine),
        "submit: unknown engine '" + request.engine + "'");
  if (request.mask != nullptr) request.mask->validate(m);

  QueuedJob job;
  job.request = std::move(request);
  job.state = std::make_shared<detail::FutureState>();
  job.enqueued = std::chrono::steady_clock::now();
  InferFuture future(job.state);

  {
    // Count before pushing so drain() can never observe a resolved job
    // that was not yet counted as submitted.
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    job.id = next_id_++;
    ++submitted_;
  }
  if (!queue_.push(std::move(job))) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      --submitted_;
    }
    drain_cv_.notify_all();
    fail("submit: server is stopped");
  }
  return future;
}

std::vector<InferFuture> InferenceServer::submit_all(
    std::vector<InferRequest> requests) {
  std::vector<InferFuture> futures;
  futures.reserve(requests.size());
  for (InferRequest& r : requests) futures.push_back(submit(std::move(r)));
  return futures;
}

std::shared_ptr<StreamSession> InferenceServer::open_session(
    StreamSessionOptions options) {
  check(EngineRegistry::instance().contains(options.engine),
        "open_session: unknown engine '" + options.engine + "'");
  if (options.mask != nullptr) options.mask->validate(*model_);
  uint64_t id;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    id = next_session_id_++;
  }
  // The constructor validates the head kind; count the session only once
  // it exists.
  std::shared_ptr<StreamSession> session(
      new StreamSession(id, model_, std::move(options)));
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++sessions_;
  }
  return session;
}

InferFuture InferenceServer::push_frame(
    const std::shared_ptr<StreamSession>& session,
    std::vector<uint8_t> columns) {
  check(session != nullptr, "push_frame: null session");
  // Fail on the caller's thread, before anything is queued.
  session->validate_push(columns.size());

  QueuedJob job;
  job.request.engine = session->options().engine;
  job.request.mask = session->options().mask;
  job.request.image = std::move(columns);
  job.session = session;
  job.state = std::make_shared<detail::FutureState>();
  job.enqueued = std::chrono::steady_clock::now();
  InferFuture future(job.state);

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    job.id = next_id_++;
    ++submitted_;
  }
  if (!queue_.push(std::move(job))) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      --submitted_;
    }
    drain_cv_.notify_all();
    fail("push_frame: server is stopped");
  }
  return future;
}

void InferenceServer::worker_main(int worker_id) {
  // One lane of the serving pool: any parallel_for issued while running
  // a request stays serial on this thread (see parallel.hpp).
  const SerialRegionScope serial;
  std::vector<QueuedJob> batch;
  while (queue_.pop_batch(batch)) {
    if (batch.front().session != nullptr) {
      // A session batch: consecutive frames of one streaming session,
      // in push order. The queue guarantees exclusivity (no other
      // worker holds this session until session_done), so the session's
      // cross-frame state is touched single-threaded; frames execute
      // one by one — each depends on the previous frame's ring.
      const std::shared_ptr<StreamSession> session = batch.front().session;
      InferenceEngine* engine = nullptr;
      std::string setup_error;
      try {
        engine = &pool_.engine_for(worker_id, session->options().engine,
                                   session->options().mask);
      } catch (const std::exception& e) {
        setup_error = e.what();
      }
      int64_t incremental = 0;
      for (QueuedJob& job : batch) {
        if (engine == nullptr) {
          job.state->fail_with("engine setup failed: " + setup_error,
                               /*was_cancelled=*/false);
          continue;
        }
        const auto start = std::chrono::steady_clock::now();
        try {
          InferResult r = session->execute_frame(*engine, job.request.image);
          const auto end = std::chrono::steady_clock::now();
          r.queue_ms = ms_between(job.enqueued, start);
          r.run_ms = ms_between(start, end);
          r.worker = worker_id;
          r.batch_size = static_cast<int>(batch.size());
          if (engine->supports_run_incremental()) ++incremental;
          job.state->complete(std::move(r));
        } catch (const std::exception& e) {
          job.state->fail_with(e.what(), /*was_cancelled=*/false);
        }
      }
      queue_.session_done(session->id());
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        const int64_t n = static_cast<int64_t>(batch.size());
        completed_ += n;
        ++batches_;
        if (n > 1) coalesced_ += n;
        if (n > max_batch_seen_) max_batch_seen_ = n;
        session_frames_ += n;
        incremental_frames_ += incremental;
        per_worker_done_[static_cast<size_t>(worker_id)] += n;
      }
      drain_cv_.notify_all();
      continue;
    }
    // A batch shares one (engine, mask) key; bind the engine once and
    // run the images back-to-back, evaluate_batch-style.
    InferenceEngine* engine = nullptr;
    std::string setup_error;
    try {
      engine = &pool_.engine_for(worker_id, batch.front().request.engine,
                                 batch.front().request.mask);
    } catch (const std::exception& e) {
      setup_error = e.what();
    }

    if (engine == nullptr) {
      for (QueuedJob& job : batch) {
        job.state->fail_with("engine setup failed: " + setup_error,
                             /*was_cancelled=*/false);
      }
    } else {
      // One run_batch call executes the whole coalesced batch, so the
      // engine's batch-amortized kernels engage (or the per-image
      // fallback loop, for engines without one — same numerics either
      // way: run_batch is bitwise equal to per-image run() by contract,
      // which keeps the serve determinism guarantee intact for any
      // worker count, batch size, or arrival order). A kernel error
      // fails every request in the batch: there is no per-image retry
      // state once execution is fused.
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::span<const uint8_t>> images;
      images.reserve(batch.size());
      for (const QueuedJob& job : batch) images.push_back(job.request.image);
      std::vector<std::vector<int8_t>> logits;
      std::string run_error;
      try {
        engine->run_batch(images, logits);
      } catch (const std::exception& e) {
        run_error = e.what();
      }
      const auto end = std::chrono::steady_clock::now();
      for (size_t i = 0; i < batch.size(); ++i) {
        QueuedJob& job = batch[i];
        if (!run_error.empty()) {
          job.state->fail_with(run_error, /*was_cancelled=*/false);
          continue;
        }
        InferResult r;
        r.logits = std::move(logits[i]);
        if (engine->model().head == TaskHead::kScore) {
          r.score = reconstruction_score(
              engine->model(), engine->quantize_input(job.request.image),
              r.logits);
          r.top1 = scored_class(engine->model(), r.score);
        } else {
          r.top1 = argmax_lowest_index(r.logits);
        }
        r.queue_ms = ms_between(job.enqueued, start);
        r.run_ms = ms_between(start, end);  // batch wall time, per job
        r.worker = worker_id;
        r.batch_size = static_cast<int>(batch.size());
        job.state->complete(std::move(r));
      }
    }

    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      const int64_t n = static_cast<int64_t>(batch.size());
      completed_ += n;
      ++batches_;
      if (n > 1) coalesced_ += n;
      if (n > max_batch_seen_) max_batch_seen_ = n;
      per_worker_done_[static_cast<size_t>(worker_id)] += n;
    }
    drain_cv_.notify_all();
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  drain_cv_.wait(lock, [&] { return completed_ + cancelled_ >= submitted_; });
}

void InferenceServer::stop(Shutdown mode) {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (mode == Shutdown::kCancelPending) {
    std::vector<QueuedJob> pending = queue_.cancel_pending();
    if (!pending.empty()) {
      // Count before resolving: anyone woken by a cancelled future must
      // already see it in stats().cancelled.
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      cancelled_ += static_cast<int64_t>(pending.size());
    }
    for (QueuedJob& job : pending) {
      job.state->fail_with(
          "request cancelled: server shut down with pending requests",
          /*was_cancelled=*/true);
    }
    drain_cv_.notify_all();
  } else {
    queue_.close();
  }
  if (!joined_) {
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    joined_ = true;
  }
}

ServeStats InferenceServer::stats() const {
  ServeStats s;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.batches = batches_;
    s.coalesced = coalesced_;
    s.max_batch_seen = max_batch_seen_;
    s.sessions = sessions_;
    s.session_frames = session_frames_;
    s.incremental_frames = incremental_frames_;
    s.per_worker = per_worker_done_;
  }
  s.pool = pool_.stats();
  return s;
}

}  // namespace ataman::serve
