// DSE outcome serialization — the framework's exported artifact (Fig. 1
// step 4 "configs"): every evaluated design with its metrics plus the
// Pareto front, as JSON for downstream tooling, and back.
#pragma once

#include <string>

#include "src/dse/dse_runner.hpp"

namespace ataman {

Json dse_outcome_to_json(const DseOutcome& outcome);
DseOutcome dse_outcome_from_json(const Json& j);

void save_dse_outcome(const DseOutcome& outcome, const std::string& path);
DseOutcome load_dse_outcome(const std::string& path);

}  // namespace ataman
