// google-benchmark microbenches for the kernel substrates: host execution
// throughput of packed vs unpacked vs skipped convolutions, plus the
// modeled MCU cycles attached as counters (the numbers that actually
// decide Table II). Host ns/op and modeled device cycles are independent
// axes; both should move the same direction under skipping.
#include <benchmark/benchmark.h>

#include "src/cmsisnn/im2col_q15.hpp"
#include "src/cmsisnn/packed_kernels.hpp"
#include "src/cmsisnn/smlad.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "src/unpack/unpacked_layer.hpp"
#include "tests/test_util.hpp"

namespace {

using namespace ataman;

QConv2D bench_conv() {
  ConvGeom g;
  g.in_h = 16; g.in_w = 16; g.in_c = 16;
  g.out_c = 16; g.kernel = 3; g.stride = 1; g.pad = 1;
  return ataman::testing::make_random_qconv(g, 4242);
}

void BM_ConvReference(benchmark::State& state) {
  const QConv2D conv = bench_conv();
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 1);
  std::vector<int8_t> out(static_cast<size_t>(conv.geom.positions()) *
                          conv.geom.out_c);
  for (auto _ : state) {
    conv2d_ref(conv, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["macs"] = static_cast<double>(conv.geom.macs());
}
BENCHMARK(BM_ConvReference);

void BM_ConvPackedCmsis(benchmark::State& state) {
  const QConv2D conv = bench_conv();
  const PackedWeights packed = PackedWeights::pack(
      conv.weights, conv.geom.out_c, conv.geom.patch_size());
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 2);
  std::vector<int8_t> out(static_cast<size_t>(conv.geom.positions()) *
                          conv.geom.out_c);
  for (auto _ : state) {
    packed_conv2d(conv, packed, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_mcu_cycles"] =
      static_cast<double>(packed_conv_cycles(conv));
}
BENCHMARK(BM_ConvPackedCmsis);

void BM_ConvUnpacked(benchmark::State& state) {
  // state.range(0): percent of operands skipped.
  const QConv2D conv = bench_conv();
  const auto skip = ataman::testing::make_random_skip(
      conv.geom, state.range(0) / 100.0, 77);
  const UnpackedConv u = UnpackedConv::build(
      conv, state.range(0) > 0 ? skip.data() : nullptr);
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 3);
  std::vector<int8_t> out(static_cast<size_t>(conv.geom.positions()) *
                          conv.geom.out_c);
  for (auto _ : state) {
    u.run(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_mcu_cycles"] = static_cast<double>(
      unpacked_conv_cycles(conv, u.static_pairs(), u.static_singles()));
  state.counters["retained_macs"] = static_cast<double>(u.retained_macs());
}
BENCHMARK(BM_ConvUnpacked)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

// Batched GEMM rows: state.range(0) = batch size. items/s counts images,
// so the per-image amortization of streaming each weight pair (or each
// unpacked program) once per lane-block shows up directly as items/s
// scaling from Arg(1) to Arg(8).
void BM_ConvPackedCmsisBatch(benchmark::State& state) {
  const QConv2D conv = bench_conv();
  const int batch = static_cast<int>(state.range(0));
  const PackedWeights packed = PackedWeights::pack(
      conv.weights, conv.geom.out_c, conv.geom.patch_size());
  const auto in = ataman::testing::make_random_input(
      static_cast<int64_t>(16 * 16 * 16) * batch, 2);
  std::vector<int8_t> out(static_cast<size_t>(conv.geom.positions()) *
                          conv.geom.out_c * static_cast<size_t>(batch));
  for (auto _ : state) {
    packed_conv2d_batch(conv, packed, in, out, batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["modeled_mcu_cycles_per_image"] = static_cast<double>(
      packed_conv_cycles(conv));
}
BENCHMARK(BM_ConvPackedCmsisBatch)->Arg(1)->Arg(4)->Arg(8);

void BM_ConvUnpackedBatch(benchmark::State& state) {
  // state.range(0) = batch; exact unpacking (no skips) to isolate the
  // batch amortization axis from the skip axis of BM_ConvUnpacked.
  const QConv2D conv = bench_conv();
  const int batch = static_cast<int>(state.range(0));
  const UnpackedConv u = UnpackedConv::build(conv);
  const auto in = ataman::testing::make_random_input(
      static_cast<int64_t>(16 * 16 * 16) * batch, 3);
  std::vector<int8_t> out(static_cast<size_t>(conv.geom.positions()) *
                          conv.geom.out_c * static_cast<size_t>(batch));
  for (auto _ : state) {
    u.run_batch(in, out, batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvUnpackedBatch)->Arg(1)->Arg(4)->Arg(8);

void BM_DenseBatch(benchmark::State& state) {
  const QDense fc = ataman::testing::make_random_qdense(1024, 64, 4545);
  const int batch = static_cast<int>(state.range(0));
  const PackedWeights packed =
      PackedWeights::pack(fc.weights, fc.out_dim, fc.in_dim);
  const auto in = ataman::testing::make_random_input(
      static_cast<int64_t>(fc.in_dim) * batch, 21);
  std::vector<int8_t> out(static_cast<size_t>(fc.out_dim) *
                          static_cast<size_t>(batch));
  for (auto _ : state) {
    packed_dense_batch(fc, packed, in, out, batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DenseBatch)->Arg(1)->Arg(4)->Arg(8);

QDepthwiseConv2D bench_depthwise() {
  return ataman::testing::make_random_qdw(16, 16, 16, /*kernel=*/3,
                                          /*stride=*/1, /*pad=*/1, 4343);
}

void BM_DepthwiseReference(benchmark::State& state) {
  const QDepthwiseConv2D dw = bench_depthwise();
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 11);
  std::vector<int8_t> out(static_cast<size_t>(dw.positions()) * dw.channels);
  for (auto _ : state) {
    depthwise_conv2d_ref(dw, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["macs"] = static_cast<double>(dw.macs());
}
BENCHMARK(BM_DepthwiseReference);

void BM_DepthwisePackedCmsis(benchmark::State& state) {
  const QDepthwiseConv2D dw = bench_depthwise();
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 12);
  std::vector<int8_t> out(static_cast<size_t>(dw.positions()) * dw.channels);
  for (auto _ : state) {
    packed_depthwise_conv2d(dw, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_mcu_cycles"] =
      static_cast<double>(packed_depthwise_cycles(dw));
}
BENCHMARK(BM_DepthwisePackedCmsis);

void BM_DepthwiseUnpacked(benchmark::State& state) {
  // state.range(0): percent of (channel, tap) operands skipped.
  const QDepthwiseConv2D dw = bench_depthwise();
  Rng rng(177);
  std::vector<uint8_t> skip(static_cast<size_t>(dw.weight_count()));
  for (auto& m : skip) m = rng.next_bool(state.range(0) / 100.0) ? 1 : 0;
  const UnpackedDepthwise u = UnpackedDepthwise::build(
      dw, state.range(0) > 0 ? skip.data() : nullptr);
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 13);
  std::vector<int8_t> out(static_cast<size_t>(dw.positions()) * dw.channels);
  for (auto _ : state) {
    u.run(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_mcu_cycles"] = static_cast<double>(
      unpacked_depthwise_cycles(dw, u.static_pairs(), u.static_singles()));
  state.counters["retained_macs"] = static_cast<double>(u.retained_macs());
}
BENCHMARK(BM_DepthwiseUnpacked)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

void BM_AvgPoolReference(benchmark::State& state) {
  QAvgPool pool;
  pool.in_h = 16;
  pool.in_w = 16;
  pool.channels = 16;
  pool.kernel = 2;
  pool.stride = 2;
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 14);
  std::vector<int8_t> out(8 * 8 * 16);
  for (auto _ : state) {
    avgpool_ref(pool, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_mcu_cycles"] =
      static_cast<double>(avgpool_cycles(pool));
}
BENCHMARK(BM_AvgPoolReference);

void BM_Im2ColQ15(benchmark::State& state) {
  const QConv2D conv = bench_conv();
  const auto in = ataman::testing::make_random_input(16 * 16 * 16, 4);
  std::vector<int16_t> col(static_cast<size_t>(conv.geom.patch_size()));
  int pos = 0;
  for (auto _ : state) {
    im2col_patch_q15(conv, in, pos % 16, (pos / 16) % 16, col.data());
    benchmark::DoNotOptimize(col.data());
    ++pos;
  }
}
BENCHMARK(BM_Im2ColQ15);

void BM_SmladSemantics(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint32_t> xs(1024), ys(1024);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<uint32_t>(rng.next_u64());
    ys[i] = static_cast<uint32_t>(rng.next_u64());
  }
  int32_t acc = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < xs.size(); ++i) acc = smlad(xs[i], ys[i], acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(xs.size()) * 2);
}
BENCHMARK(BM_SmladSemantics);

void BM_UnpackedBuild(benchmark::State& state) {
  // Offline cost of building (and re-pairing) an unpacked layer — the
  // paper runs this once per DSE config at compile time.
  const QConv2D conv = bench_conv();
  const auto skip = ataman::testing::make_random_skip(conv.geom, 0.5, 99);
  for (auto _ : state) {
    UnpackedConv u = UnpackedConv::build(conv, skip.data());
    benchmark::DoNotOptimize(u.channels.data());
  }
}
BENCHMARK(BM_UnpackedBuild);

}  // namespace

BENCHMARK_MAIN();
