#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/mcu/stream_plan.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

namespace {

// Span-out dispatch of one layer through its reference kernel. `in_b` is
// the second QAdd operand (unused for every other kind).
void run_layer_into(const QLayer& layer, std::span<const int8_t> in_a,
                    std::span<const int8_t> in_b, std::span<int8_t> out,
                    const uint8_t* skip) {
  if (const auto* conv = std::get_if<QConv2D>(&layer)) {
    conv2d_ref(*conv, in_a, out, skip);
  } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
    depthwise_conv2d_ref(*dw, in_a, out, skip);
  } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
    maxpool_ref(*pool, in_a, out);
  } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
    avgpool_ref(*pool, in_a, out);
  } else if (const auto* fc = std::get_if<QDense>(&layer)) {
    dense_ref(*fc, in_a, out);
  } else if (const auto* add = std::get_if<QAdd>(&layer)) {
    qadd_ref(*add, in_a, in_b, out);
  }
}

// Executed (non-skipped) MACs per output position of an approximable
// layer under `skip` — the mask-aware analogue of op.macs / positions.
int64_t retained_macs_per_position(const OpDescriptor& op,
                                   const uint8_t* skip) {
  const int64_t per_pos = static_cast<int64_t>(op.channels) * op.patch;
  if (skip == nullptr) return per_pos;
  int64_t skipped = 0;
  for (int64_t i = 0; i < per_pos; ++i) skipped += skip[i] != 0;
  return per_pos - skipped;
}

}  // namespace

RefEngine::RefEngine(const QModel* model)
    : InferenceEngine(model, "ref"), plan_(plan_activations(*model)) {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  return run_layers(0, quantize_input(image), mask, tap);
}

std::vector<int8_t> RefEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  return run_from(layer_begin, activations, default_mask_);
}

std::vector<int8_t> RefEngine::run_from(int layer_begin,
                                        std::span<const int8_t> activations,
                                        const SkipMask* mask,
                                        const ConvTap& tap) const {
  return run_layers(layer_begin,
                    std::vector<int8_t>(activations.begin(), activations.end()),
                    mask, tap);
}

std::vector<int8_t> RefEngine::run_layers(int layer_begin,
                                          std::vector<int8_t> act,
                                          const SkipMask* mask,
                                          const ConvTap& tap) const {
  const int layer_count = static_cast<int>(model().layers.size());
  check(layer_begin >= 0 && layer_begin <= layer_count,
        "run_from layer index out of range");
  check(model().linear_boundary(layer_begin),
        "run_from must resume at a linear boundary of the DAG (layer " +
            std::to_string(layer_begin) + " is crossed by a skip edge)");
  if (mask != nullptr) mask->validate(model());
  check(static_cast<int64_t>(act.size()) ==
            model().tensor_elems(layer_begin),
        "run_from activation size mismatch at layer " +
            std::to_string(layer_begin));

  // Slot-backed tensor storage from the shared liveness plan: tensor t
  // occupies its assigned slot during [def, last_use], and the plan
  // guarantees a step's output slot never aliases a live input. On a
  // chain this is exactly the historical two-buffer ping-pong.
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  {
    const std::span<int8_t> entry = tensor_span(layer_begin);
    std::copy(act.begin(), act.end(), entry.begin());
  }

  int approx_ordinal = 0;
  for (int l = 0; l < layer_begin; ++l) {
    if (describe_layer(model().layers[static_cast<size_t>(l)]).skippable)
      ++approx_ordinal;
  }
  for (int l = layer_begin; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const std::span<const int8_t> in_a = tensor_span(ins[0]);
    const std::span<const int8_t> in_b =
        ins.size() > 1 ? std::span<const int8_t>(tensor_span(ins[1]))
                       : std::span<const int8_t>();
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (tap) tap(approx_ordinal, layer, in_a);
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    run_layer_into(layer, in_a, in_b, tensor_span(l + 1), skip);
  }
  const std::span<const int8_t> out = tensor_span(layer_count);
  return std::vector<int8_t>(out.begin(), out.end());
}

std::vector<int8_t> RefEngine::run_incremental(
    StreamState& state, std::span<const uint8_t> new_columns) const {
  const QModel& m = model();
  const SkipMask* mask = default_mask_;
  if (mask != nullptr) mask->validate(m);
  if (!state.started()) {
    state.bound_mask = mask;
  } else {
    check(state.bound_mask == mask,
          "run_incremental: mask changed mid-session — a streaming session "
          "is one fixed configuration (open a new session to switch)");
  }

  const int64_t col_elems = static_cast<int64_t>(m.in_h) * m.in_c;
  check(!new_columns.empty() &&
            static_cast<int64_t>(new_columns.size()) % col_elems == 0,
        "run_incremental: new_columns must be whole [h][s][c] columns");
  const int s =
      static_cast<int>(static_cast<int64_t>(new_columns.size()) / col_elems);
  check(s <= m.in_w,
        "run_incremental: more new columns than the input width");
  check(state.started() || s == m.in_w,
        "run_incremental: a session's first frame must push a full window");

  // Assemble the quantized input tensor: the previous frame's input
  // shifted left by s columns, the pushed columns quantized (q = pixel -
  // 128, exactly as quantize_input) into the tail.
  std::vector<int8_t> q_in(static_cast<size_t>(m.in_h) * m.in_w * m.in_c);
  const int keep = m.in_w - s;  // columns carried over from frame n-1
  for (int y = 0; y < m.in_h; ++y) {
    int8_t* row = q_in.data() + static_cast<size_t>(y) * m.in_w * m.in_c;
    if (keep > 0) {
      const int8_t* prev = state.past.front()[0].data() +
                           static_cast<size_t>(y) * m.in_w * m.in_c;
      std::copy(prev + static_cast<size_t>(s) * m.in_c,
                prev + static_cast<size_t>(m.in_w) * m.in_c, row);
    }
    const uint8_t* src =
        new_columns.data() + static_cast<size_t>(y) * s * m.in_c;
    for (int i = 0; i < s * m.in_c; ++i) {
      const float real = static_cast<float>(src[i]) / 255.0f;
      row[keep * m.in_c + i] = m.input.quantize(real);
    }
  }

  // The splice plan for this frame: newest-first stride history capped
  // by the ring fill (frame 0 plans a full recompute of every layer).
  std::vector<int> strides;
  strides.reserve(state.past_strides.size() + 1);
  strides.push_back(s);
  strides.insert(strides.end(), state.past_strides.begin(),
                 state.past_strides.end());
  const StreamPlan plan =
      plan_stream(m, strides, static_cast<int>(state.past.size()));

  // Full per-tensor materialization (no slot aliasing): every tensor of
  // this frame joins the ring, and splice sources read the past frames'
  // tensors directly.
  const int layer_count = static_cast<int>(m.layers.size());
  std::vector<std::vector<int8_t>> tensors(
      static_cast<size_t>(layer_count) + 1);
  tensors[0] = std::move(q_in);

  int approx_ordinal = 0;
  int64_t recomputed = 0, spliced = 0;
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = m.layers[static_cast<size_t>(l)];
    const StreamLayerPlan& lp = plan.layers[static_cast<size_t>(l)];
    const OpDescriptor op = describe_layer(layer);
    const std::vector<int> ins = m.inputs_of(l);
    const std::span<const int8_t> in_a = tensors[static_cast<size_t>(ins[0])];
    const std::span<const int8_t> in_b =
        ins.size() > 1
            ? std::span<const int8_t>(tensors[static_cast<size_t>(ins[1])])
            : std::span<const int8_t>();
    const uint8_t* skip = nullptr;
    if (op.skippable) {
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }

    std::vector<int8_t>& out = tensors[static_cast<size_t>(l) + 1];
    out.assign(static_cast<size_t>(op.out_elems), 0);
    if (lp.spliced) {
      // Copy the proven-equal band row by row from frame n - lookback
      // (source column = dest column + shift), then recompute only the
      // halo columns on either side.
      const std::vector<int8_t>& src =
          state.past[static_cast<size_t>(lp.lookback - 1)]
                    [static_cast<size_t>(l) + 1];
      const size_t row_elems =
          static_cast<size_t>(lp.out_cols) * lp.out_ch;
      const size_t band_elems =
          static_cast<size_t>(lp.splice_hi - lp.splice_lo) * lp.out_ch;
      for (int y = 0; y < lp.out_rows; ++y) {
        std::copy_n(
            src.data() + static_cast<size_t>(y) * row_elems +
                static_cast<size_t>(lp.splice_lo + lp.splice_shift) *
                    lp.out_ch,
            band_elems,
            out.data() + static_cast<size_t>(y) * row_elems +
                static_cast<size_t>(lp.splice_lo) * lp.out_ch);
      }
      if (const auto* conv = std::get_if<QConv2D>(&layer)) {
        conv2d_ref_cols(*conv, in_a, out, 0, lp.splice_lo, skip);
        conv2d_ref_cols(*conv, in_a, out, lp.splice_hi, lp.out_cols, skip);
      } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
        depthwise_conv2d_ref_cols(*dw, in_a, out, 0, lp.splice_lo, skip);
        depthwise_conv2d_ref_cols(*dw, in_a, out, lp.splice_hi, lp.out_cols,
                                  skip);
      }
      spliced += static_cast<int64_t>(band_elems) * lp.out_rows;
    } else {
      run_layer_into(layer, in_a, in_b, std::span<int8_t>(out), skip);
    }
    if (op.macs > 0) {
      // Executed-MAC accounting, mask-aware: conv/depthwise scale with
      // recomputed positions; dense tails always recompute in full.
      recomputed += op.skippable ? retained_macs_per_position(op, skip) *
                                       lp.recomputed_positions
                                 : op.macs;
    }
  }

  state.last_recomputed_macs = recomputed;
  state.last_spliced_elems = spliced;
  state.total_recomputed_macs += recomputed;
  state.total_full_macs += mac_ops();
  ++state.frames;

  std::vector<int8_t> logits = tensors[static_cast<size_t>(layer_count)];
  state.past.push_front(std::move(tensors));
  state.past_strides.insert(state.past_strides.begin(), s);
  while (static_cast<int>(state.past.size()) > kMaxStreamLookback) {
    state.past.pop_back();
    state.past_strides.pop_back();
  }
  return logits;
}

void RefEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const SkipMask* mask = default_mask_;
  if (mask != nullptr) mask->validate(model());
  const size_t batch = images.size();

  // Per-image activation buffers, advanced layer-major: layer l runs over
  // every image before layer l+1 starts. Each image's arithmetic is the
  // untouched per-image reference kernel, so batched logits are bitwise
  // identical to run() by construction; the batch only changes the order
  // in which (layer, image) pairs execute, keeping each layer's weights
  // hot across the whole batch.
  // Per-image slot sets from the shared liveness plan (layer-major, so
  // every image's DAG state advances in lock step).
  const size_t slot_count = plan_.slot_elems.size();
  std::vector<std::vector<std::vector<int8_t>>> slots(batch);
  auto tensor_span = [&](size_t b, int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[b][static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  for (size_t b = 0; b < batch; ++b) {
    slots[b].resize(slot_count);
    const std::vector<int8_t> in = quantize_input(images[b]);
    const std::span<int8_t> entry = tensor_span(b, 0);
    std::copy(in.begin(), in.end(), entry.begin());
  }

  int approx_ordinal = 0;
  const int layer_count = static_cast<int>(model().layers.size());
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    for (size_t b = 0; b < batch; ++b) {
      const std::span<const int8_t> in_a = tensor_span(b, ins[0]);
      const std::span<const int8_t> in_b =
          ins.size() > 1 ? std::span<const int8_t>(tensor_span(b, ins[1]))
                         : std::span<const int8_t>();
      run_layer_into(layer, in_a, in_b, tensor_span(b, l + 1), skip);
    }
  }
  logits_out.assign(batch, {});
  for (size_t b = 0; b < batch; ++b) {
    const std::span<const int8_t> out = tensor_span(b, layer_count);
    logits_out[b].assign(out.begin(), out.end());
  }
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  if (model().head == TaskHead::kScore) {
    return scored_class(model(),
                        reconstruction_score(model(), quantize_input(image),
                                             run(image, mask)));
  }
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  RefEngine engine(&model);
  engine.bind_mask(mask);
  // Engine overload: evaluation proceeds through run_batch, so each
  // layer's weights stream once per sub-batch instead of once per image.
  return evaluate_batch(engine, ds, limit).top1;
}

}  // namespace ataman
