// Ablation of the significance definition (Eq. 2): data-aware
// E[a_i]*w_i ranking vs a weight-magnitude-only ranking (|w_i|), at
// matched MAC-reduction levels. Demonstrates why the paper captures the
// input distribution instead of pruning by weight magnitude alone.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "src/nn/engine.hpp"
#include "src/sig/act_stats.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

// Magnitude-only "significance": replaces E[a_i] with 1 in Eq. (2),
// for every approximable (conv + depthwise) layer.
std::vector<LayerSignificance> magnitude_significance(const QModel& model) {
  std::vector<LayerSignificance> out;
  for (const QLayer& layer : model.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      ConvInputStats ones;
      ones.mean_corrected.assign(
          static_cast<size_t>(conv->geom.patch_size()), 1.0);
      ones.samples = 1;
      out.push_back(compute_significance(*conv, ones));
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      ConvInputStats ones;
      ones.mean_corrected.assign(static_cast<size_t>(stats_len(layer)), 1.0);
      ones.samples = 1;
      out.push_back(compute_significance(*dw, ones));
    }
  }
  return out;
}

// Accuracy at a fixed per-layer skip *fraction*, under a given ranking:
// skip the lowest-ranked `frac` of each channel's operands.
double accuracy_at_fraction(const QModel& model,
                            const std::vector<LayerSignificance>& sig,
                            const Dataset& eval, double frac, int limit) {
  SkipMask mask = SkipMask::none(model);
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    if (!describe_layer(layer).skippable) continue;
    const LayerSignificance& s = sig[static_cast<size_t>(ordinal)];
    auto& m = mask.masks[static_cast<size_t>(ordinal)];
    for (int oc = 0; oc < s.out_c; ++oc) {
      const auto& order = s.ascending[static_cast<size_t>(oc)];
      const auto n_skip = static_cast<size_t>(frac * s.patch);
      for (size_t i = 0; i < n_skip && i < order.size(); ++i) {
        // Never skip always-retain (+inf) operands.
        if (s.significance(oc, static_cast<int>(order[i])) ==
            kAlwaysRetain)
          break;
        m[static_cast<size_t>(oc) * s.patch + order[i]] = 1;
      }
    }
    ++ordinal;
  }
  const QModel masked = apply_skip_mask(model, mask);
  return evaluate_quantized_accuracy(masked, eval, nullptr, limit);
}

void ablate(const BenchModel& m, Scale scale, ConsoleTable& table,
            CsvWriter& csv) {
  const int limit = scale == Scale::kQuick ? 200 : 512;
  PipelineOptions opts;
  AtamanPipeline pipe(&m.qmodel, &m.data.train, &m.data.test, opts);
  pipe.analyze();
  const auto& data_aware = pipe.significance();
  const auto magnitude = magnitude_significance(m.qmodel);

  for (const double frac : {0.2, 0.4, 0.6}) {
    const double acc_sig = accuracy_at_fraction(m.qmodel, data_aware,
                                                m.data.test, frac, limit);
    const double acc_mag = accuracy_at_fraction(m.qmodel, magnitude,
                                                m.data.test, frac, limit);
    table.row({m.name, fmt(100 * frac, 0) + "%", fmt(100 * acc_sig, 1),
               fmt(100 * acc_mag, 1),
               fmt(100 * (acc_sig - acc_mag), 1)});
    csv.row({m.name, CsvWriter::num(frac), CsvWriter::num(acc_sig),
             CsvWriter::num(acc_mag)});
  }
  table.separator();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header("Ablation: Eq.(2) data-aware significance vs "
               "weight-magnitude ranking",
               scale);

  ConsoleTable table({"Network", "Skipped/chan", "Acc sig-aware(%)",
                      "Acc |w|-only(%)", "Delta(pp)"});
  CsvWriter csv(results_dir() + "/ablation_significance.csv",
                {"network", "skip_fraction", "acc_significance",
                 "acc_magnitude"});

  const BenchModel lenet = load_lenet();
  ablate(lenet, scale, table, csv);
  const BenchModel alexnet = load_alexnet();
  ablate(alexnet, scale, table, csv);

  std::printf("%s\n",
              table.render("Significance-definition ablation").c_str());
  std::printf("CSV: %s/ablation_significance.csv\n", results_dir().c_str());
  return 0;
}
