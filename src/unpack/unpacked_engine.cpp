#include "src/unpack/unpacked_engine.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

UnpackedEngine::UnpackedEngine(const QModel* model, const SkipMask* mask,
                               CortexM33CostTable costs,
                               MemoryCostTable memory,
                               const std::vector<uint8_t>* unpack_selection)
    : InferenceEngine(model, "ataman"),
      costs_(costs),
      memory_(memory),
      plan_(plan_activations(*model)) {
  if (mask != nullptr) mask->validate(this->model());
  if (unpack_selection != nullptr) {
    check(static_cast<int>(unpack_selection->size()) ==
              this->model().approx_layer_count(),
          "unpack selection size must match approximable layer count");
  }

  int ordinal = 0;
  int out_dim = 0;
  double cycles = 0.0;
  for (const QLayer& layer : this->model().layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    const auto* dw = std::get_if<QDepthwiseConv2D>(&layer);
    if (conv != nullptr || dw != nullptr) {
      const bool unpack =
          unpack_selection == nullptr ||
          (*unpack_selection)[static_cast<size_t>(ordinal)] != 0;
      ApproxExec exec;
      exec.is_unpacked = unpack;
      const uint8_t* skip = nullptr;
      if (mask != nullptr &&
          ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(ordinal)].data();
      }
      if (unpack && conv != nullptr) {
        UnpackedConv u = UnpackedConv::build(*conv, skip);
        const int64_t c = unpacked_conv_cycles(*conv, u.static_pairs(),
                                               u.static_singles(), costs_);
        profile_.push_back({"conv(unpacked)", c, u.retained_macs()});
        cycles += static_cast<double>(c);
        executed_macs_ += u.retained_macs();
        exec.unpacked = std::move(u);
      } else if (unpack && dw != nullptr) {
        UnpackedDepthwise u = UnpackedDepthwise::build(*dw, skip);
        const int64_t c = unpacked_depthwise_cycles(
            *dw, u.static_pairs(), u.static_singles(), costs_);
        profile_.push_back({"depthwise(unpacked)", c, u.retained_macs()});
        cycles += static_cast<double>(c);
        executed_macs_ += u.retained_macs();
        exec.unpacked_dw = std::move(u);
      } else if (conv != nullptr) {
        // Packed layers execute exactly: static skips cannot remove work
        // from loop kernels (the paper's argument for unpacking).
        exec.packed = PackedWeights::pack(conv->weights, conv->geom.out_c,
                                          conv->geom.patch_size());
        const int64_t c = packed_conv_cycles(*conv, costs_);
        cycles += costs_.layer_dispatch;
        profile_.push_back({"conv(packed)",
                            c + static_cast<int64_t>(costs_.layer_dispatch),
                            conv->geom.macs()});
        cycles += static_cast<double>(c);
        executed_macs_ += conv->geom.macs();
      } else {
        // Packed depthwise fallback: the loop kernel needs no prepacked
        // stream (see packed_depthwise_conv2d).
        const int64_t c = packed_depthwise_cycles(*dw, costs_);
        cycles += costs_.layer_dispatch;
        profile_.push_back({"depthwise(packed)",
                            c + static_cast<int64_t>(costs_.layer_dispatch),
                            dw->macs()});
        cycles += static_cast<double>(c);
        executed_macs_ += dw->macs();
      }
      convs_.push_back(std::move(exec));
      ++ordinal;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      cycles += costs_.layer_dispatch;
      const int64_t c = pool_cycles(*pool, costs_);
      profile_.push_back({"pool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      cycles += costs_.layer_dispatch;
      const int64_t c = avgpool_cycles(*pool, costs_);
      profile_.push_back({"avgpool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      cycles += costs_.layer_dispatch;
      packed_fc_.push_back(
          PackedWeights::pack(fc->weights, fc->out_dim, fc->in_dim));
      const int64_t c = dense_cycles(*fc, costs_);
      profile_.push_back({"fc", c, fc->macs()});
      cycles += static_cast<double>(c);
      executed_macs_ += fc->macs();
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      // Residual adds run the same requantize-and-add stream on every
      // engine: nothing to unpack, never approximated.
      cycles += costs_.layer_dispatch;
      const int64_t c = qadd_cycles(*add, costs_);
      profile_.push_back({"add", c, 0});
      cycles += static_cast<double>(c);
    }
  }
  cycles += costs_.softmax_per_logit * out_dim;
  profile_.push_back(
      {"softmax", static_cast<int64_t>(costs_.softmax_per_logit * out_dim),
       0});
  total_cycles_ = static_cast<int64_t>(cycles);
}

int UnpackedEngine::unpacked_conv_count() const {
  int n = 0;
  for (const ApproxExec& e : convs_) n += e.is_unpacked ? 1 : 0;
  return n;
}

std::vector<int8_t> UnpackedEngine::run(std::span<const uint8_t> image) const {
  // Slot buffers from the shared liveness plan (ping-pong on chains).
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  {
    const std::vector<int8_t> in = quantize_input(image);
    const std::span<int8_t> entry = tensor_span(0);
    std::copy(in.begin(), in.end(), entry.begin());
  }

  const int layer_count = static_cast<int>(model().layers.size());
  size_t approx_idx = 0, fc_idx = 0;
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const std::span<const int8_t> cur = tensor_span(ins[0]);
    const std::span<int8_t> next = tensor_span(l + 1);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      const ApproxExec& exec = convs_[approx_idx++];
      if (exec.is_unpacked) {
        exec.unpacked->run(cur, next);
      } else {
        packed_conv2d(*conv, *exec.packed, cur, next);
      }
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      const ApproxExec& exec = convs_[approx_idx++];
      if (exec.is_unpacked) {
        exec.unpacked_dw->run(cur, next);
      } else {
        packed_depthwise_conv2d(*dw, cur, next);
      }
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      maxpool_ref(*pool, cur, next);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      avgpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense(*fc, packed_fc_[fc_idx++], cur, next);
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      qadd_ref(*add, cur, tensor_span(ins[1]), next);
    }
  }
  const std::span<const int8_t> out = tensor_span(layer_count);
  return std::vector<int8_t>(out.begin(), out.end());
}

void UnpackedEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const int batch = static_cast<int>(images.size());

  // Contiguous batched activations per tensor over liveness-plan slots
  // (image b of tensor t at slot_base + b * elems(t)); see CmsisEngine.
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_batch_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(
          static_cast<size_t>(plan_.slot_elems[static_cast<size_t>(
              info.slot)]) *
          static_cast<size_t>(batch));
    return std::span<int8_t>(
        slot.data(),
        static_cast<size_t>(info.elems) * static_cast<size_t>(batch));
  };
  const size_t in_elems = static_cast<size_t>(
      static_cast<int64_t>(model().in_h) * model().in_w * model().in_c);
  {
    const std::span<int8_t> entry = tensor_batch_span(0);
    for (int b = 0; b < batch; ++b) {
      const std::vector<int8_t> q =
          quantize_input(images[static_cast<size_t>(b)]);
      std::copy(q.begin(), q.end(),
                entry.begin() +
                    static_cast<std::ptrdiff_t>(static_cast<size_t>(b) *
                                                in_elems));
    }
  }

  const int layer_count = static_cast<int>(model().layers.size());
  size_t approx_idx = 0, fc_idx = 0;
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const size_t cur_elems =
        static_cast<size_t>(model().tensor_elems(ins[0]));
    const size_t out_elems =
        static_cast<size_t>(describe_layer(layer).out_elems);
    const std::span<const int8_t> cur = tensor_batch_span(ins[0]);
    const std::span<int8_t> next = tensor_batch_span(l + 1);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      const ApproxExec& exec = convs_[approx_idx++];
      if (exec.is_unpacked) {
        exec.unpacked->run_batch(cur, next, batch);
      } else {
        packed_conv2d_batch(*conv, *exec.packed, cur, next, batch);
      }
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      const ApproxExec& exec = convs_[approx_idx++];
      if (exec.is_unpacked) {
        exec.unpacked_dw->run_batch(cur, next, batch);
      } else {
        packed_depthwise_conv2d_batch(*dw, cur, next, batch);
      }
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        maxpool_ref(*pool,
                    cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                    next.subspan(static_cast<size_t>(b) * out_elems,
                                 out_elems));
      }
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        avgpool_ref(*pool,
                    cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                    next.subspan(static_cast<size_t>(b) * out_elems,
                                 out_elems));
      }
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense_batch(*fc, packed_fc_[fc_idx++], cur, next, batch);
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      const std::span<const int8_t> second = tensor_batch_span(ins[1]);
      for (int b = 0; b < batch; ++b) {
        qadd_ref(*add,
                 cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                 second.subspan(static_cast<size_t>(b) * cur_elems,
                                cur_elems),
                 next.subspan(static_cast<size_t>(b) * out_elems, out_elems));
      }
    }
  }

  const std::span<const int8_t> out = tensor_batch_span(layer_count);
  const size_t final_elems =
      static_cast<size_t>(model().tensor_elems(layer_count));
  logits_out.assign(static_cast<size_t>(batch), {});
  for (int b = 0; b < batch; ++b) {
    const auto sub = out.subspan(static_cast<size_t>(b) * final_elems,
                                 final_elems);
    logits_out[static_cast<size_t>(b)].assign(sub.begin(), sub.end());
  }
}

FlashReport UnpackedEngine::flash(const MemoryCostTable& t) const {
  std::vector<int64_t> pairs, singles;
  pairs.reserve(convs_.size());
  for (const ApproxExec& e : convs_) {
    if (e.is_unpacked) {
      const bool is_dw = e.unpacked_dw.has_value();
      pairs.push_back(is_dw ? e.unpacked_dw->static_pairs()
                            : e.unpacked->static_pairs());
      singles.push_back(is_dw ? e.unpacked_dw->static_singles()
                              : e.unpacked->static_singles());
    } else {
      pairs.push_back(-1);  // memory_model: layer stays packed
      singles.push_back(0);
    }
  }
  return unpacked_flash(model(), pairs, singles, t);
}

int64_t UnpackedEngine::ram_bytes() const {
  return model_ram_bytes(model(), /*packed_engine=*/false, memory_);
}

DeployReport UnpackedEngine::deploy(const Dataset& eval,
                                    const BoardSpec& board, int limit,
                                    const std::string& design_name) const {
  DeployReport r = InferenceEngine::deploy(eval, board, limit);
  r.design = design_name;
  return r;
}

}  // namespace ataman
