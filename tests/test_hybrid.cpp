// Hybrid deployment: per-layer packed/unpacked selection under a flash
// budget (the §II-B flash/latency trade-off, generalized).
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/nn/engine.hpp"
#include "src/unpack/layer_selection.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_tiny_qmodel;

SkipMask random_mask(const QModel& m, double density, uint64_t seed) {
  SkipMask mask = SkipMask::none(m);
  Rng rng(seed);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(density) ? 1 : 0;
  return mask;
}

TEST(Hybrid, AnalyzeProducesOneChoicePerConv) {
  const QModel m = make_tiny_qmodel(100);
  const SkipMask mask = random_mask(m, 0.5, 101);
  const HybridPlan plan = analyze_layer_choices(m, mask);
  EXPECT_EQ(static_cast<int>(plan.choices.size()), m.approx_layer_count());
  for (const LayerDeployChoice& c : plan.choices) {
    EXPECT_GT(c.packed_cycles, 0);
    EXPECT_GT(c.unpacked_cycles, 0);
    EXPECT_GT(c.packed_flash, 0);
    EXPECT_GT(c.unpacked_flash, 0);
  }
}

TEST(Hybrid, UnlimitedBudgetTakesEveryCycleSavingLayer) {
  const QModel m = make_tiny_qmodel(102);
  const SkipMask mask = random_mask(m, 0.6, 103);
  const HybridPlan plan = select_layers_to_unpack(m, mask, /*budget=*/0);
  for (const LayerDeployChoice& c : plan.choices) {
    if (c.packed_cycles > c.unpacked_cycles) {
      EXPECT_TRUE(c.unpack);
    } else {
      EXPECT_FALSE(c.unpack);
    }
  }
  EXPECT_GE(plan.total_cycle_saving(), 0);
}

TEST(Hybrid, TinyBudgetSelectsNothing) {
  const QModel m = make_tiny_qmodel(104);
  const SkipMask mask = random_mask(m, 0.5, 105);
  // Budget below even the packed model size: no layer can be unpacked
  // unless unpacking *shrinks* flash (possible at extreme skip rates).
  const HybridPlan plan = select_layers_to_unpack(m, mask, /*budget=*/1);
  for (const LayerDeployChoice& c : plan.choices) {
    if (c.unpack) {
      EXPECT_LT(c.unpacked_flash, c.packed_flash);
    }
  }
}

TEST(Hybrid, NoSkipsKeepsFastPathLayersPacked) {
  // Without skipping, unpacked straight-line code is slower than the
  // packed fast path for 4-aligned layers — selection must keep them
  // packed. (Both convs of the tiny model satisfy in_c%4==0 except conv0
  // with in_c=3, which is a basic-path layer and should flip.)
  const QModel m = make_tiny_qmodel(106);
  const SkipMask none = SkipMask::none(m);
  const HybridPlan plan = select_layers_to_unpack(m, none, 0);
  const auto* conv0 = std::get_if<QConv2D>(&m.layers[0]);
  ASSERT_NE(conv0, nullptr);
  ASSERT_FALSE(packed_conv_uses_fast_path(*conv0));  // in_c == 3
  EXPECT_TRUE(plan.choices[0].unpack)
      << "basic-path RGB stem should be unpacked even without skipping";
}

TEST(Hybrid, EngineBitExactUnderAnySelection) {
  const QModel m = make_tiny_qmodel(107);
  const SkipMask mask = random_mask(m, 0.4, 108);

  // Hybrid semantics: skips apply only to unpacked layers; packed layers
  // run exact. Build the reference expectation accordingly.
  for (const std::vector<uint8_t>& selection :
       {std::vector<uint8_t>{1, 1}, std::vector<uint8_t>{0, 1},
        std::vector<uint8_t>{1, 0}, std::vector<uint8_t>{0, 0}}) {
    SkipMask effective = mask;
    for (size_t l = 0; l < selection.size(); ++l) {
      if (!selection[l])
        std::fill(effective.masks[l].begin(),
                  effective.masks[l].end(), 0);
    }
    RefEngine ref(&m);
    const UnpackedEngine hybrid(&m, &mask, {}, {}, &selection);
    for (int i = 0; i < 10; ++i) {
      const auto img = testing::make_random_image(12 * 12 * 3, 1100 + i);
      ASSERT_EQ(ref.run(img, &effective), hybrid.run(img))
          << "selection {" << int(selection[0]) << "," << int(selection[1])
          << "} image " << i;
    }
  }
}

TEST(Hybrid, EngineProfilesReflectSelection) {
  const QModel m = make_tiny_qmodel(109);
  const std::vector<uint8_t> selection = {0, 1};
  const UnpackedEngine engine(&m, nullptr, {}, {}, &selection);
  EXPECT_EQ(engine.unpacked_conv_count(), 1);
  int packed_convs = 0, unpacked_convs = 0;
  for (const LayerProfile& p : engine.layer_profile()) {
    if (p.kind == "conv(packed)") ++packed_convs;
    if (p.kind == "conv(unpacked)") ++unpacked_convs;
  }
  EXPECT_EQ(packed_convs, 1);
  EXPECT_EQ(unpacked_convs, 1);
}

TEST(Hybrid, PackedSelectionKeepsWeightsInFlash) {
  const QModel m = make_tiny_qmodel(110);
  const std::vector<uint8_t> all_packed = {0, 0};
  const std::vector<uint8_t> all_unpacked = {1, 1};
  const UnpackedEngine packed_engine(&m, nullptr, {}, {}, &all_packed);
  const UnpackedEngine unpacked_engine(&m, nullptr, {}, {}, &all_unpacked);
  EXPECT_GT(packed_engine.flash().weight_bytes,
            unpacked_engine.flash().weight_bytes);
  EXPECT_EQ(packed_engine.flash().unpacked_code_bytes, 0);
  EXPECT_GT(unpacked_engine.flash().unpacked_code_bytes, 0);
}

TEST(Hybrid, SelectionValidatesSize) {
  const QModel m = make_tiny_qmodel(111);
  const std::vector<uint8_t> wrong = {1};
  EXPECT_THROW(UnpackedEngine(&m, nullptr, {}, {}, &wrong), Error);
}

TEST(Hybrid, BudgetSweepIsMonotone) {
  // Larger budgets can only increase (or keep) total cycle savings.
  const QModel m = make_tiny_qmodel(112);
  const SkipMask mask = random_mask(m, 0.5, 113);
  int64_t prev_saving = -1;
  for (const int64_t budget :
       {int64_t{40} * 1024, int64_t{60} * 1024, int64_t{100} * 1024,
        int64_t{0} /* unlimited */}) {
    const HybridPlan plan = select_layers_to_unpack(m, mask, budget);
    EXPECT_GE(plan.total_cycle_saving(), prev_saving);
    prev_saving = plan.total_cycle_saving();
  }
}

}  // namespace
}  // namespace ataman
