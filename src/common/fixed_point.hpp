// Fixed-point requantization arithmetic.
//
// Quantized inference accumulates int8 products into int32 and rescales the
// accumulator to the output tensor's scale with an integer multiply-shift
// ("quantized multiplier"), exactly as TFLite-Micro/CMSIS-NN do on device:
//
//   out = saturate( multiply_by_quantized_multiplier(acc, M, shift) + zp )
//
// where real_multiplier = in_scale * w_scale / out_scale is decomposed as
// M * 2^shift with M an int32 in [2^30, 2^31).
#pragma once

#include <cstdint>

namespace ataman {

struct QuantizedMultiplier {
  int32_t mult = 0;  // significand in [2^30, 2^31) (0 encodes real==0)
  int shift = 0;     // power-of-two exponent; <=0 means right shift
};

// Decompose a positive real multiplier (must be < 1 in practice for
// conv/fc rescale, but values up to 2^30 are handled) into mult/shift.
QuantizedMultiplier quantize_multiplier(double real_multiplier);

// gemmlowp SaturatingRoundingDoublingHighMul: (a*b*2) >> 31, round-half-away,
// saturating only on the single overflow case a==b==INT32_MIN.
int32_t saturating_rounding_doubling_high_mul(int32_t a, int32_t b);

// Rounding arithmetic shift right by `exponent` >= 0 (round-half-away-up).
int32_t rounding_divide_by_pot(int32_t x, int exponent);

// Apply the decomposed multiplier: round(x * real_multiplier) in integer
// arithmetic, bit-exact with the TFLite reference implementation.
int32_t multiply_by_quantized_multiplier(int32_t x, QuantizedMultiplier qm);

}  // namespace ataman
