// Numerical gradient checks for every trainable layer and the loss head:
// the correctness backbone of the training substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/train/layers.hpp"
#include "src/train/network.hpp"
#include "src/train/softmax_xent.hpp"

namespace ataman {
namespace {

// Scalar loss used for gradient checking: weighted sum of outputs with
// fixed pseudo-random weights (exercises all output positions).
double probe_loss(const FTensor& y, Rng& probe) {
  double loss = 0.0;
  for (int64_t i = 0; i < y.size(); ++i)
    loss += static_cast<double>(y[i]) * (probe.next_double() - 0.5);
  return loss;
}

FTensor probe_grad(const FTensor& y, uint64_t seed) {
  Rng probe(seed);
  FTensor g{std::vector<int>(y.shape())};
  for (int64_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<float>(probe.next_double() - 0.5);
  return g;
}

double forward_loss(Layer& layer, const FTensor& x, uint64_t seed) {
  FTensor y = layer.forward(x, /*train=*/false);
  Rng probe(seed);
  return probe_loss(y, probe);
}

// Central-difference check of input gradients.
void check_input_gradient(Layer& layer, FTensor x, double tol = 2e-2) {
  const uint64_t seed = 99;
  FTensor y = layer.forward(x, /*train=*/true);
  FTensor dx = layer.backward(probe_grad(y, seed));

  Rng pick(7);
  const double eps = 1e-3;
  for (int trial = 0; trial < 24; ++trial) {
    const int64_t i =
        static_cast<int64_t>(pick.next_below(static_cast<uint64_t>(x.size())));
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double up = forward_loss(layer, x, seed);
    x[i] = orig - static_cast<float>(eps);
    const double down = forward_loss(layer, x, seed);
    x[i] = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input index " << i;
  }
}

// Central-difference check of parameter gradients.
void check_param_gradient(Layer& layer, const FTensor& x, double tol = 2e-2) {
  const uint64_t seed = 99;
  std::vector<ParamRef> params;
  layer.collect_params(params);
  ASSERT_FALSE(params.empty());
  // Gradients accumulate across backward() calls by design; start clean.
  for (const ParamRef& p : params)
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);

  FTensor y = layer.forward(x, /*train=*/true);
  (void)layer.backward(probe_grad(y, seed));

  Rng pick(11);
  const double eps = 1e-3;
  for (const ParamRef& p : params) {
    for (int trial = 0; trial < 12; ++trial) {
      const size_t i = static_cast<size_t>(pick.next_below(p.value->size()));
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + static_cast<float>(eps);
      const double up = forward_loss(layer, x, seed);
      (*p.value)[i] = orig - static_cast<float>(eps);
      const double down = forward_loss(layer, x, seed);
      (*p.value)[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR((*p.grad)[i], numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "param index " << i;
    }
  }
}

FTensor random_input(std::vector<int> shape, uint64_t seed) {
  Rng rng(seed);
  FTensor x(std::move(shape));
  for (int64_t i = 0; i < x.size(); ++i) x[i] = rng.next_normal(0.0f, 1.0f);
  return x;
}

TEST(GradCheck, Conv2DInputAndParams) {
  Rng init(1);
  ConvGeom g;
  g.in_h = 6; g.in_w = 6; g.in_c = 3;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 1;
  Conv2DLayer layer(g, init);
  const FTensor x = random_input({2, 6, 6, 3}, 5);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, Conv2DStride2NoPad) {
  Rng init(2);
  ConvGeom g;
  g.in_h = 7; g.in_w = 7; g.in_c = 2;
  g.out_c = 3; g.kernel = 3; g.stride = 2; g.pad = 0;
  Conv2DLayer layer(g, init);
  const FTensor x = random_input({2, 7, 7, 2}, 6);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, Conv2DKernel5) {
  Rng init(3);
  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 2;
  g.out_c = 2; g.kernel = 5; g.stride = 1; g.pad = 2;
  Conv2DLayer layer(g, init);
  const FTensor x = random_input({1, 8, 8, 2}, 7);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, DepthwiseInputAndParams) {
  Rng init(21);
  DepthwiseConv2DLayer::Geom g;
  g.in_h = 6; g.in_w = 6; g.channels = 3;
  g.kernel = 3; g.stride = 1; g.pad = 1;
  DepthwiseConv2DLayer layer(g, init);
  const FTensor x = random_input({2, 6, 6, 3}, 25);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, DepthwiseStride2NoPad) {
  Rng init(22);
  DepthwiseConv2DLayer::Geom g;
  g.in_h = 7; g.in_w = 7; g.channels = 2;
  g.kernel = 3; g.stride = 2; g.pad = 0;
  DepthwiseConv2DLayer layer(g, init);
  const FTensor x = random_input({2, 7, 7, 2}, 26);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, AvgPool) {
  AvgPool2DLayer layer(2, 2);
  const FTensor x = random_input({2, 4, 4, 3}, 27);
  check_input_gradient(layer, x);
}

TEST(GradCheck, AvgPoolRejectsNonCoveringGeometry) {
  AvgPool2DLayer layer(2, 2);
  // 5x5 input: (5 - 2) % 2 != 0 — edge pixels would be silently dropped.
  const FTensor x = random_input({1, 5, 5, 2}, 28);
  EXPECT_THROW(layer.forward(x, /*train=*/false), Error);
}

TEST(GradCheck, Dense) {
  Rng init(4);
  DenseLayer layer(12, 5, init);
  const FTensor x = random_input({3, 12}, 8);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x);
}

TEST(GradCheck, MaxPool) {
  MaxPool2DLayer layer(2, 2);
  // Distinct values so argmax is stable under the epsilon probe.
  FTensor x({2, 4, 4, 3});
  Rng rng(9);
  for (int64_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(i % 97) * 0.13f + rng.next_float() * 0.01f;
  check_input_gradient(layer, x, 3e-2);
}

TEST(GradCheck, AddLayerForwardAndBackward) {
  AddLayer layer;
  const FTensor a = random_input({2, 3, 3, 2}, 12);
  const FTensor b = random_input({2, 3, 3, 2}, 13);
  const FTensor y = layer.forward2(a, b);
  ASSERT_EQ(y.size(), a.size());
  for (int64_t i = 0; i < y.size(); ++i)
    EXPECT_FLOAT_EQ(y[i], a[i] + b[i]) << i;

  // d(a+b)/da == d(a+b)/db == identity: backward passes dy through
  // unchanged (the Network routes the same dy into the skip operand).
  const FTensor g = probe_grad(y, 7);
  const FTensor dx = layer.backward(g);
  ASSERT_EQ(dx.size(), g.size());
  for (int64_t i = 0; i < dx.size(); ++i) EXPECT_FLOAT_EQ(dx[i], g[i]) << i;

  // Single-input forward() is a wiring error: the Network must dispatch
  // two-operand forward2.
  EXPECT_THROW(layer.forward(a, /*train=*/false), Error);

  // Mismatched operand shapes are rejected.
  const FTensor wrong = random_input({2, 3, 3, 1}, 14);
  EXPECT_THROW(layer.forward2(a, wrong), Error);
}

// Numeric gradcheck of the full DAG backward wiring: a residual network
// whose adds tap both an intermediate layer and the network input, so
// skip-edge gradients must accumulate into the chain gradient.
TEST(GradCheck, ResidualNetworkDagBackward) {
  ModelArch arch;
  arch.name = "gradcheck-residual";
  arch.topology = "1-[r1]-1";
  arch.layers = {LayerSpec::conv(3, 3, 1, 1), LayerSpec::relu(),
                 LayerSpec::conv(3, 3, 1, 1), LayerSpec::add(1),
                 LayerSpec::add(-1),          LayerSpec::dense(5)};
  Rng init(31);
  Network net(arch, ImageShape{6, 6, 3}, init);

  FTensor x = random_input({2, 6, 6, 3}, 32);
  const uint64_t seed = 99;
  net.zero_grad();
  const FTensor y = net.forward(x, /*train=*/true);
  net.backward(probe_grad(y, seed));

  const auto net_loss = [&](const FTensor& input) {
    const FTensor out = net.forward(input, /*train=*/false);
    Rng probe(seed);
    return probe_loss(out, probe);
  };
  Rng pick(33);
  const double eps = 1e-3;
  for (const ParamRef& p : net.params()) {
    for (int trial = 0; trial < 8; ++trial) {
      const size_t i = static_cast<size_t>(pick.next_below(p.value->size()));
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + static_cast<float>(eps);
      const double up = net_loss(x);
      (*p.value)[i] = orig - static_cast<float>(eps);
      const double down = net_loss(x);
      (*p.value)[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      // Slightly looser tolerance than the single-layer checks: the
      // ReLU kink sits inside the differentiated path here.
      EXPECT_NEAR((*p.grad)[i], numeric,
                  3e-2 * std::max(1.0, std::abs(numeric)))
          << "param index " << i;
    }
  }
}

TEST(GradCheck, Relu) {
  ReluLayer layer;
  FTensor x = random_input({2, 3, 3, 2}, 10);
  // Keep values away from the kink.
  for (int64_t i = 0; i < x.size(); ++i)
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  check_input_gradient(layer, x);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(11);
  FTensor logits({3, 5});
  for (int64_t i = 0; i < logits.size(); ++i)
    logits[i] = rng.next_normal(0.0f, 2.0f);
  const std::vector<int> labels = {1, 4, 0};

  const LossResult base = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.size(); ++i) {
    FTensor up = logits, down = logits;
    up[i] += static_cast<float>(eps);
    down[i] -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy(up, labels).loss -
                            softmax_cross_entropy(down, labels).loss) /
                           (2 * eps);
    EXPECT_NEAR(base.dlogits[i], numeric, 1e-3) << "logit " << i;
  }
}

TEST(GradCheck, SoftmaxProbabilitiesSumToOne) {
  const std::vector<float> logits = {1.0f, -2.0f, 0.5f, 3.0f};
  const std::vector<float> p = softmax(logits);
  double sum = 0.0;
  for (const float v : p) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace ataman
