// Streaming (temporal) reuse plan: which output columns of each layer
// can be spliced from a previous frame instead of recomputed.
//
// Keyword spotting is a streaming workload: consecutive input windows
// overlap by all but a few time columns (time = the width axis of the
// NHWC tensors here). When frame n equals frame n-d shifted left by
// `shift` columns, a conv/depthwise output column j equals the old
// column j + shift/stride wherever its receptive field reads only
// shifted-equal data — the same int32 MAC sequence, so splicing the old
// column is *bitwise* identical to recomputing it. This header derives
// those splice bands once, from pure layer geometry; the reference
// engine executes them (RefEngine::run_incremental) and the MCU cost
// model prices them (steady_state_stream_cost), so execution and
// costing can never disagree about what is recomputed.
//
// Band propagation rules, per layer (window stride st, pad p, kernel k):
//   * The input tensor at lookback d is valid on columns [0, w - shift_d)
//     with shift_d = the total columns pushed over the last d frames.
//   * conv/depthwise: the shift divides the layer stride or the band
//     dies (a misaligned shift lands output windows between old ones).
//     Otherwise out_shift = shift/st and the output band is
//       lo = ceil((in_lo + p) / st)        -- windows that would read
//                                             left padding are excluded:
//                                             the new frame reads
//                                             zero-point where the old
//                                             frame read real columns
//       hi = floor((in_hi + p - k)/st) + 1 -- every real-data tap must
//                                             lie in the input band
//                                             (right padding is shift-
//                                             invariant and needs no
//                                             exclusion)
//     additionally clamped to hi <= out_w - out_shift so the splice
//     source column exists.
//   * pooling: same propagation with p = 0, but pool outputs are always
//     recomputed (they are cheap, MAC-free reductions); only the band
//     is forwarded.
//   * dense / QAdd: full recompute, and the band dies downstream (a
//     dense output has no column structure; QAdd is conservatively cut).
//
// Lookback > 1 is what makes stride-2 layers streamable at odd shifts:
// at input stride 2 per frame, the tensor behind the second strided
// layer shifts by 1 column every *two* frames, so it splices from frame
// n-2 — this is why StreamState keeps a short ring of past frames
// rather than just the last one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

// Ring depth of streaming state: the deepest lookback the planner
// considers (and StreamState retains). Covers stride products up to 4
// at any frame stride — enough for every in-tree zoo model; deeper
// pyramids would only add RAM for bands the halo has already eroded.
constexpr int kMaxStreamLookback = 4;

// Validity band of one tensor versus one lookback depth: columns j in
// [lo, hi) satisfy tensor_n[:, j] == tensor_{n-d}[:, j + shift].
struct ColumnBand {
  int lo = 0, hi = 0;
  int shift = 0;
  bool valid() const { return hi > lo && shift > 0; }
};

struct StreamLayerPlan {
  // Splice decision (conv/depthwise only; everything else recomputes).
  bool spliced = false;
  int lookback = 0;      // splice source: frame n - lookback
  int splice_lo = 0;     // output columns [splice_lo, splice_hi) spliced
  int splice_hi = 0;
  int splice_shift = 0;  // source column = j + splice_shift

  // Output-tensor column geometry ([rows][cols][ch]; dense and the
  // final logits degenerate to a single column).
  int out_rows = 1, out_cols = 1, out_ch = 1;

  int recomputed_cols = 0;            // out_cols minus spliced columns
  int64_t recomputed_positions = 0;   // recomputed_cols * out_rows
  int64_t total_positions = 0;
  int64_t recomputed_macs = 0;        // unmasked MACs recomputed per frame
};

struct StreamPlan {
  std::vector<int> recent_strides;     // newest first, as planned against
  std::vector<StreamLayerPlan> layers;
  int64_t frame_macs = 0;    // sum of recomputed_macs (+ dense tails)
  int64_t full_macs = 0;     // QModel::mac_count(): the reuse-off cost
  int64_t spliced_elems = 0; // int8 elements copied instead of computed
  double reuse_ratio() const {
    return frame_macs > 0
               ? static_cast<double>(full_macs) / static_cast<double>(frame_macs)
               : 1.0;
  }
};

// Plan one frame. `recent_strides` holds the columns pushed by the
// current frame and the preceding ones, newest first: shift at lookback
// d is the sum of the first d entries, so lookback d needs at least d
// entries. `available_lookback` additionally caps the splice depth to
// the number of past frames actually retained (ring fill during
// warmup; 0 — the session's first frame — plans a full recompute of
// every layer).
StreamPlan plan_stream(const QModel& model,
                       std::span<const int> recent_strides,
                       int available_lookback);

// Steady-state plan at a constant per-frame stride: every lookback up to
// kMaxStreamLookback available — what the cost model prices.
StreamPlan plan_stream_steady(const QModel& model, int stride_cols);

}  // namespace ataman
