// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (dataset synthesis, weight
// init, shuffling, subsampling) draws from an explicitly seeded Rng so
// whole-pipeline runs are reproducible across platforms and thread counts.
// The generator is xoshiro256** seeded through splitmix64, chosen for
// quality and for being trivially portable (no libstdc++ distribution
// differences leak into results: all distributions are implemented here).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ataman {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Derive an independent stream (e.g. one per image index) so parallel
  // generation does not depend on iteration order.
  Rng fork(uint64_t stream_id) const;

  uint64_t next_u64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  int next_int(int lo, int hi);
  // Uniform in [0, 1).
  double next_double();
  float next_float();
  // Double-to-float conversion behind next_float(). Exposed (and static)
  // so the [0, 1) contract is testable on worst-case bit patterns: a
  // plain static_cast rounds any d >= 1 - 2^-25 up to exactly 1.0f.
  static float to_float01(double d);
  // Uniform in [lo, hi).
  float next_uniform(float lo, float hi);
  // Standard normal via Box-Muller (stateless pairing for determinism).
  float next_normal();
  float next_normal(float mean, float stddev);
  bool next_bool(double p_true = 0.5);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  uint64_t seed_;
};

}  // namespace ataman
