// Significance analysis: Eq. (2) correctness, zero-sum rule, skip-set
// nesting, activation statistics capture.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/sig/act_stats.hpp"
#include "src/sig/significance.hpp"
#include "src/sig/skip_plan.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_qconv;
using testing::make_tiny_qmodel;

ConvInputStats constant_stats(int patch, double value) {
  ConvInputStats s;
  s.mean_corrected.assign(static_cast<size_t>(patch), value);
  s.samples = 100;
  return s;
}

TEST(Significance, MatchesManualEq2) {
  ConvGeom g;
  g.in_h = 3; g.in_w = 3; g.in_c = 1;
  g.out_c = 1; g.kernel = 1; g.stride = 1; g.pad = 0;  // patch 1? too small
  g.in_c = 4;  // patch 4
  QConv2D conv = make_random_qconv(g, 42);
  conv.weights = {10, -20, 30, -40};

  ConvInputStats stats;
  stats.mean_corrected = {1.0, 2.0, 3.0, 4.0};
  stats.samples = 10;

  const LayerSignificance sig = compute_significance(conv, stats);
  // contributions: 10, -40, 90, -160; sum = -100.
  EXPECT_NEAR(sig.significance(0, 0), std::abs(10.0 / -100.0), 1e-6);
  EXPECT_NEAR(sig.significance(0, 1), std::abs(-40.0 / -100.0), 1e-6);
  EXPECT_NEAR(sig.significance(0, 2), std::abs(90.0 / -100.0), 1e-6);
  EXPECT_NEAR(sig.significance(0, 3), std::abs(-160.0 / -100.0), 1e-6);
}

TEST(Significance, SignedContributionsSumToDenominator) {
  // Internal consistency: sum_i E[a_i] w_i / denom == 1 by construction;
  // |S_i| loses sign so we recompute with signs from weights.
  ConvGeom g;
  g.in_h = 4; g.in_w = 4; g.in_c = 3;
  g.out_c = 5; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 43);
  ConvInputStats stats;
  Rng rng(44);
  for (int i = 0; i < g.patch_size(); ++i)
    stats.mean_corrected.push_back(rng.next_uniform(-5.0f, 50.0f));
  stats.samples = 10;

  const LayerSignificance sig = compute_significance(conv, stats);
  for (int oc = 0; oc < g.out_c; ++oc) {
    double denom = 0.0;
    for (int i = 0; i < g.patch_size(); ++i)
      denom += stats.mean_corrected[static_cast<size_t>(i)] *
               conv.weights[static_cast<size_t>(oc) * g.patch_size() + i];
    if (denom == 0.0) continue;
    double signed_sum = 0.0;
    for (int i = 0; i < g.patch_size(); ++i) {
      const double contrib =
          stats.mean_corrected[static_cast<size_t>(i)] *
          conv.weights[static_cast<size_t>(oc) * g.patch_size() + i];
      const double s = sig.significance(oc, i);
      signed_sum += (contrib / denom >= 0 ? s : -s);
    }
    EXPECT_NEAR(signed_sum, 1.0, 1e-4) << "channel " << oc;
  }
}

TEST(Significance, ZeroSumChannelRetainsEverything) {
  ConvGeom g;
  g.in_h = 3; g.in_w = 3; g.in_c = 2;
  g.out_c = 1; g.kernel = 1; g.stride = 1; g.pad = 0;  // patch 2
  QConv2D conv = make_random_qconv(g, 45);
  conv.weights = {5, -5};
  const auto sig =
      compute_significance(conv, constant_stats(g.patch_size(), 3.0));
  EXPECT_TRUE(std::isinf(sig.significance(0, 0)));
  EXPECT_TRUE(std::isinf(sig.significance(0, 1)));

  // +inf never satisfies S <= tau: no skipping even at huge tau.
  QModel m;
  m.name = "zero-sum";
  m.in_h = 3; m.in_w = 3; m.in_c = 2;
  m.input = {1.0f / 255.0f, -128};
  m.layers.emplace_back(conv);
  const SkipMask mask =
      make_skip_mask(m, {sig}, ApproxConfig::uniform(1, 1e9));
  EXPECT_TRUE(mask.empty());
}

TEST(Significance, AscendingOrderSorted) {
  ConvGeom g;
  g.in_h = 5; g.in_w = 5; g.in_c = 4;
  g.out_c = 3; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 46);
  ConvInputStats stats;
  Rng rng(47);
  for (int i = 0; i < g.patch_size(); ++i)
    stats.mean_corrected.push_back(rng.next_uniform(0.0f, 20.0f));
  stats.samples = 5;
  const auto sig = compute_significance(conv, stats);
  for (int oc = 0; oc < g.out_c; ++oc) {
    const auto& order = sig.ascending[static_cast<size_t>(oc)];
    ASSERT_EQ(order.size(), static_cast<size_t>(g.patch_size()));
    for (size_t i = 1; i < order.size(); ++i)
      EXPECT_LE(sig.significance(oc, static_cast<int>(order[i - 1])),
                sig.significance(oc, static_cast<int>(order[i])));
  }
}

TEST(SkipPlan, NestingInTau) {
  // tau1 <= tau2 -> skip(tau1) subset of skip(tau2). The property the
  // whole DSE sweep relies on.
  const QModel m = make_tiny_qmodel(48);
  Dataset calib(ImageShape{12, 12, 3}, 10);
  Rng rng(49);
  for (int i = 0; i < 24; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    calib.add(img, rng.next_int(0, 9));
  }
  const auto stats = capture_activation_stats(m, calib, 24);
  const auto sig = compute_model_significance(m, stats);

  const double taus[] = {0.0, 0.001, 0.01, 0.05, 0.1};
  SkipMask prev;
  for (const double tau : taus) {
    const SkipMask cur = make_skip_mask(
        m, sig, ApproxConfig::uniform(m.approx_layer_count(), tau));
    if (!prev.masks.empty()) {
      for (size_t l = 0; l < cur.masks.size(); ++l)
        for (size_t i = 0; i < cur.masks[l].size(); ++i)
          EXPECT_LE(prev.masks[l][i], cur.masks[l][i])
              << "nesting violated at layer " << l << " operand " << i;
    }
    prev = cur;
  }
}

TEST(SkipPlan, ExactConfigSkipsNothing) {
  const QModel m = make_tiny_qmodel(50);
  std::vector<LayerSignificance> sig;
  int ordinal = 0;
  for (const QLayer& layer : m.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      sig.push_back(compute_significance(
          *conv, constant_stats(conv->geom.patch_size(), 1.0)));
      ++ordinal;
    }
  }
  const SkipMask mask =
      make_skip_mask(m, sig, ApproxConfig::exact(m.approx_layer_count()));
  EXPECT_TRUE(mask.empty());
}

TEST(SkipPlan, PerLayerTauTargetsOnlySelectedLayers) {
  const QModel m = make_tiny_qmodel(51);
  std::vector<LayerSignificance> sig;
  for (const QLayer& layer : m.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer))
      sig.push_back(compute_significance(
          *conv, constant_stats(conv->geom.patch_size(), 2.0)));
  }
  ApproxConfig cfg = ApproxConfig::exact(2);
  cfg.tau[1] = 0.05;  // approximate only conv1
  const SkipMask mask = make_skip_mask(m, sig, cfg);
  int64_t skipped0 = 0, skipped1 = 0;
  for (const uint8_t v : mask.masks[0]) skipped0 += v;
  for (const uint8_t v : mask.masks[1]) skipped1 += v;
  EXPECT_EQ(skipped0, 0);
  EXPECT_GT(skipped1, 0);
}

TEST(ApproxConfig, JsonRoundTrip) {
  ApproxConfig cfg;
  cfg.tau = {-1.0, 0.05, 0.001};
  const ApproxConfig back = ApproxConfig::from_json(
      Json::parse(cfg.to_json().dump()));
  ASSERT_EQ(back.tau.size(), 3u);
  EXPECT_EQ(back.tau[0], -1.0);
  EXPECT_EQ(back.tau[1], 0.05);
  EXPECT_EQ(back.tau[2], 0.001);
  EXPECT_TRUE(cfg.approximates_anything());
  EXPECT_FALSE(ApproxConfig::exact(3).approximates_anything());
}

TEST(ActStats, BruteForceAgreementOnFirstConv) {
  // E[a_i] of conv0 can be computed directly from the quantized input
  // images (conv0 reads the image itself).
  const QModel m = make_tiny_qmodel(52);
  const auto* conv0 = std::get_if<QConv2D>(&m.layers[0]);
  ASSERT_NE(conv0, nullptr);

  Dataset calib(ImageShape{12, 12, 3}, 10);
  Rng rng(53);
  for (int i = 0; i < 10; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    calib.add(img, 0);
  }
  const auto stats = capture_activation_stats(m, calib, 10);

  // Brute force for operand (ky=1,kx=1,c=0): center tap, never padded.
  const ConvGeom& g = conv0->geom;
  const int operand = (1 * g.kernel + 1) * g.in_c + 0;
  double sum = 0.0;
  int64_t count = 0;
  for (int img_i = 0; img_i < 10; ++img_i) {
    const auto img = calib.image(img_i);
    for (int oy = 0; oy < g.out_h(); ++oy) {
      for (int ox = 0; ox < g.out_w(); ++ox) {
        const int iy = oy + 0;  // stride 1, pad 1, ky=1 -> iy = oy
        const int ix = ox + 0;
        const int32_t q =
            static_cast<int32_t>(img[(static_cast<size_t>(iy) * g.in_w + ix) *
                                     g.in_c]) -
            128;  // input quantization: pixel - 128
        sum += q - conv0->in.zero_point;
        ++count;
      }
    }
  }
  EXPECT_NEAR(stats[0].mean_corrected[static_cast<size_t>(operand)],
              sum / static_cast<double>(count), 1e-9);
}

TEST(ActStats, DeterministicAcrossThreadCounts) {
  const QModel m = make_tiny_qmodel(54);
  Dataset calib(ImageShape{12, 12, 3}, 10);
  Rng rng(55);
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    calib.add(img, 0);
  }
  set_num_threads(1);
  const auto a = capture_activation_stats(m, calib, 16);
  set_num_threads(7);
  const auto b = capture_activation_stats(m, calib, 16);
  set_num_threads(0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t l = 0; l < a.size(); ++l) {
    for (size_t i = 0; i < a[l].mean_corrected.size(); ++i)
      EXPECT_NEAR(a[l].mean_corrected[i], b[l].mean_corrected[i], 1e-12);
  }
}

}  // namespace
}  // namespace ataman
