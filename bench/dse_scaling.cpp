// DSE throughput scaling — the paper ran its exhaustive exploration in
// <2h on 6 host threads; this harness measures configs/second of our DSE
// across thread counts on the LeNet pipeline and reports the projected
// wall time of the paper-scale sweep.
#include "bench/bench_common.hpp"
#include "src/common/parallel.hpp"

int main(int argc, char** argv) {
  using namespace ataman;
  using namespace ataman::bench;
  const Scale scale = parse_scale(argc, argv);
  print_header("DSE throughput scaling (paper: <2h on 6 threads)", scale);

  const BenchModel lenet = load_lenet();
  PipelineOptions opts;
  opts.dse = dse_options_for("lenet", Scale::kQuick);
  opts.dse.eval_images = scale == Scale::kQuick ? 96 : 192;
  opts.dse.tau_step = 0.02;  // small fixed sweep re-run per thread count
  AtamanPipeline pipe(&lenet.qmodel, &lenet.data.train, &lenet.data.test,
                      opts);
  pipe.analyze();

  CsvWriter csv(results_dir() + "/dse_scaling.csv",
                {"threads", "configs", "seconds", "configs_per_sec"});
  ConsoleTable table({"Threads", "Configs", "Wall(s)", "Configs/s",
                      "Speedup"});

  const int hw = num_threads();
  double t1 = 0.0;
  for (int threads = 1; threads <= hw; threads *= 2) {
    set_num_threads(threads);
    const DseOutcome outcome = pipe.explore();
    set_num_threads(0);
    const double cps =
        static_cast<double>(outcome.results.size()) / outcome.wall_seconds;
    if (threads == 1) t1 = outcome.wall_seconds;
    table.row({std::to_string(threads),
               std::to_string(outcome.results.size()),
               fmt(outcome.wall_seconds, 2), fmt(cps, 1),
               fmt(t1 / outcome.wall_seconds, 2)});
    csv.row({CsvWriter::num(threads),
             CsvWriter::num(static_cast<double>(outcome.results.size())),
             CsvWriter::num(outcome.wall_seconds), CsvWriter::num(cps)});
    // Paper-scale projection at 6 threads.
    if (threads >= 6 && threads / 2 < 6) {  // first count >= 6
      const double paper_configs = 10000.0;
      const double projected_min =
          paper_configs / cps / 60.0 *
          // paper evaluates the full test set; scale from our subset
          (2000.0 / opts.dse.eval_images);
      std::printf("  projected paper-scale sweep (10k configs, full test "
                  "set) at %d threads: %.0f min (paper: <120 min)\n",
                  threads, projected_min);
    }
  }
  std::printf("%s\n", table.render("DSE scaling").c_str());
  std::printf("CSV: %s/dse_scaling.csv\n", results_dir().c_str());
  return 0;
}
