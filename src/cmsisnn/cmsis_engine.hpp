// Full-model packed engine: the "exact baseline [2]" column of Table II.
//
// Executes the QModel with packed kernels (bit-exact with the reference
// engine) and produces the MCU deployment report — cycles from the cost
// model, flash/RAM from the memory model. The per-layer cycle profile is
// the software analogue of the paper's kernel cycle counters (§II-A),
// which are "deactivated during runtime": profiling here is free because
// cycles are a pure function of the layer geometry.
#pragma once

#include <span>
#include <vector>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/core/engine_iface.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

class CmsisEngine : public InferenceEngine {
 public:
  explicit CmsisEngine(const QModel* model, CortexM33CostTable costs = {},
                       MemoryCostTable memory = {});

  std::vector<int8_t> run(std::span<const uint8_t> image) const override;

  // Batch-amortized path: conv/fc stream each packed weight pair once per
  // lane-block of kBatchLanes images (see packed_kernels.hpp); pools run
  // per image (no weights to amortize). Bitwise identical to run().
  bool supports_run_batch() const override { return true; }
  void run_batch(std::span<const std::span<const uint8_t>> images,
                 std::vector<std::vector<int8_t>>& logits_out) const override;

  // Copies the offline-packed weight streams and the precomputed profile
  // instead of re-running the packing analysis.
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<CmsisEngine>(*this);
  }

  // Structure-derived metrics (no execution needed).
  int64_t total_cycles() const override { return total_cycles_; }
  const std::vector<LayerProfile>& layer_profile() const override {
    return profile_;
  }
  int64_t flash_bytes() const override;
  int64_t ram_bytes() const override;

 private:
  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  // Shared liveness-based activation plan (src/mcu/memory_model): slot
  // buffers replace the old ping-pong pair so DAG models (residual adds)
  // execute with the same peak RAM the memory model reports.
  ActivationPlan plan_;
  std::vector<PackedWeights> packed_;  // conv + fc, in layer order
  std::vector<LayerProfile> profile_;
  int64_t total_cycles_ = 0;
};

}  // namespace ataman
