// From significance to skip masks.
//
// An ApproxConfig assigns each approximable layer (conv + depthwise, in
// ordinal order) a threshold tau (tau < 0 means the layer is left
// exact); make_skip_mask() marks every product with S_i <= tau as
// skipped (Eq. (3)). Because S is static, skip sets are nested in tau —
// skip(tau1) ⊆ skip(tau2) for tau1 <= tau2 — which the DSE sweep and
// its tests rely on.
#pragma once

#include <string>
#include <vector>

#include "src/common/json_lite.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/sig/significance.hpp"

namespace ataman {

struct ApproxConfig {
  // One entry per approximable-layer ordinal; tau < 0 -> layer stays
  // exact.
  std::vector<double> tau;

  bool approximates_anything() const;
  std::string to_string() const;

  Json to_json() const;
  static ApproxConfig from_json(const Json& j);

  // All-exact config for a model with `approx_count` approximable layers.
  static ApproxConfig exact(int approx_count);
  // Same tau for every approximable layer.
  static ApproxConfig uniform(int approx_count, double tau);
};

SkipMask make_skip_mask(const QModel& model,
                        const std::vector<LayerSignificance>& significance,
                        const ApproxConfig& config);

}  // namespace ataman
