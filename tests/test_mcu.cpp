// MCU substrate: board conversions, cycle cost model structure, flash and
// RAM accounting.
#include <gtest/gtest.h>

#include "src/mcu/board.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/deploy_report.hpp"
#include "src/mcu/memory_model.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_qconv;
using testing::make_random_qdense;
using testing::make_random_qdw;
using testing::make_tiny_qmodel;

TEST(Board, Stm32U575Spec) {
  const BoardSpec b = stm32u575_board();
  EXPECT_EQ(b.core, "Cortex-M33");
  EXPECT_DOUBLE_EQ(b.clock_hz, 160e6);
  EXPECT_EQ(b.flash_bytes, 2000 * 1024);
  EXPECT_EQ(b.ram_bytes, 768 * 1024);
}

TEST(Board, CycleToLatencyAndEnergy) {
  const BoardSpec b;
  // 160k cycles at 160 MHz = 1 ms; 1 ms at 33 mW = 0.033 mJ.
  EXPECT_DOUBLE_EQ(b.cycles_to_ms(160000), 1.0);
  EXPECT_NEAR(b.energy_mj(160000), 0.033, 1e-12);
  // Paper Table I cross-check: 13.25M cycles ~ 82.8 ms, 2.73 mJ.
  EXPECT_NEAR(b.cycles_to_ms(13248000), 82.8, 0.1);
  EXPECT_NEAR(b.energy_mj(13248000), 2.73, 0.01);
}

TEST(CostModel, FastPathEligibility) {
  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 4; g.out_c = 6;
  g.kernel = 3; g.stride = 1; g.pad = 1;
  EXPECT_TRUE(packed_conv_uses_fast_path(make_random_qconv(g, 1)));
  g.in_c = 3;  // RGB stem
  EXPECT_FALSE(packed_conv_uses_fast_path(make_random_qconv(g, 2)));
  g.in_c = 4;
  g.out_c = 5;  // odd channel count
  EXPECT_FALSE(packed_conv_uses_fast_path(make_random_qconv(g, 3)));
}

TEST(CostModel, BasicPathCostsMorePerMacThanFast) {
  // The structural fact that reproduces the paper's LeNet-vs-AlexNet
  // cycles/MAC asymmetry.
  ConvGeom fast;
  fast.in_h = 16; fast.in_w = 16; fast.in_c = 8; fast.out_c = 8;
  fast.kernel = 3; fast.stride = 1; fast.pad = 1;
  ConvGeom basic = fast;
  basic.in_c = 3;

  const QConv2D f = make_random_qconv(fast, 4);
  const QConv2D b = make_random_qconv(basic, 5);
  const double f_per_mac =
      static_cast<double>(packed_conv_cycles(f)) / f.geom.macs();
  const double b_per_mac =
      static_cast<double>(packed_conv_cycles(b)) / b.geom.macs();
  EXPECT_GT(b_per_mac, 1.8 * f_per_mac);
}

TEST(CostModel, UnpackedSitsBetweenFastAndBasic) {
  ConvGeom g;
  g.in_h = 16; g.in_w = 16; g.in_c = 8; g.out_c = 8;
  g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 6);
  const int64_t pairs = g.weight_count() / 2;
  const int64_t singles = g.weight_count() % 2;

  const int64_t fast = packed_conv_cycles(conv);
  const int64_t unpacked = unpacked_conv_cycles(conv, pairs, singles);
  QConv2D basic_conv = conv;
  basic_conv.geom.in_c = 3;  // force basic path, similar mac count scale
  // Compare per-MAC rates instead of absolute cycles.
  const CortexM33CostTable t;
  EXPECT_GT(static_cast<double>(unpacked),
            0.9 * static_cast<double>(fast));  // unpacked >= ~fast
  EXPECT_LT(t.unpacked_per_pair / 2.0, t.packed_basic_per_mac);
}

TEST(CostModel, PackedModelCyclesSumsLayers) {
  const QModel m = make_tiny_qmodel(70);
  const int64_t total = packed_model_cycles(m);
  EXPECT_GT(total, 0);
  // Removing a conv layer must reduce the total.
  QModel smaller = m;
  smaller.layers.pop_back();  // drop fc
  EXPECT_LT(packed_model_cycles(smaller), total);
}

TEST(CostModel, DenseAndPoolCycles) {
  const QDense fc = make_random_qdense(128, 10, 8);
  EXPECT_GT(dense_cycles(fc), 0);
  QMaxPool pool;
  pool.in_h = 16; pool.in_w = 16; pool.channels = 8;
  pool.kernel = 2; pool.stride = 2;
  const int64_t c2 = pool_cycles(pool);
  pool.kernel = 3;
  pool.stride = 1;
  const int64_t c3 = pool_cycles(pool);
  EXPECT_GT(c3, c2);  // more taps, more outputs
}

TEST(CostModel, DepthwiseConstantsPinnedToKernelMicroCalibration) {
  // Calibrated against bench/kernel_micro (BM_DepthwisePackedCmsis vs
  // BM_DepthwiseUnpacked/0, modeled_mcu_cycles counters): for the
  // 16x16x24 3x3 depthwise layer, packed prices 314.6k modeled cycles
  // and unpacked-at-zero-skip 203.0k — unpacked is cheaper even before
  // skipping because packed depthwise runs the scalar per-channel tap
  // loop (5.2/MAC; the dual-MAC trick cannot feed one accumulator from
  // a per-channel filter) while unpacked pairs taps at 5.5/pair, i.e.
  // 2.75/MAC. These constants anchor every DSE latency number; a silent
  // change here re-prices all depthwise trade-offs, so pin them.
  const CortexM33CostTable t;
  EXPECT_DOUBLE_EQ(t.packed_depthwise_per_mac, 5.2);
  EXPECT_DOUBLE_EQ(t.unpacked_per_pair, 5.5);
  // Per-MAC ordering the calibration established: packed scalar loop
  // above the fast conv pair rate, unpacked pair rate in between.
  EXPECT_GT(t.packed_depthwise_per_mac, t.packed_fast_per_pair);
  EXPECT_LT(t.unpacked_per_pair / 2.0, t.packed_depthwise_per_mac);

  // The modeled relationship on the kernel_micro layer shape: unpacked
  // depthwise at zero skip is cheaper than packed, and the advantage is
  // the per-MAC rate gap (about 1.5x here), not a rounding artifact.
  const QDepthwiseConv2D dw =
      make_random_qdw(16, 16, 24, /*kernel=*/3, /*stride=*/1, /*pad=*/1, 7);
  const int64_t taps = static_cast<int64_t>(dw.kernel) * dw.kernel;
  const int64_t pairs_per_chan = taps / 2;
  const int64_t singles_per_chan = taps % 2;
  const int64_t packed = packed_depthwise_cycles(dw);
  const int64_t unpacked = unpacked_depthwise_cycles(
      dw, pairs_per_chan * dw.channels, singles_per_chan * dw.channels);
  EXPECT_GT(packed, unpacked);
  EXPECT_GT(static_cast<double>(packed), 1.3 * static_cast<double>(unpacked));
  EXPECT_LT(static_cast<double>(packed), 2.0 * static_cast<double>(unpacked));
}

TEST(MemoryModel, PackedFlashComponents) {
  const QModel m = make_tiny_qmodel(71);
  const FlashReport r = packed_flash(m);
  EXPECT_EQ(r.total_bytes, r.code_bytes + r.weight_bytes);
  EXPECT_EQ(r.weight_bytes, m.weight_bytes());
  EXPECT_EQ(r.unpacked_code_bytes, 0);
  EXPECT_GT(r.percent_of(2000 * 1024), 0.0);
}

TEST(MemoryModel, UnpackedFlashScalesWithRetainedPairs) {
  const QModel m = make_tiny_qmodel(72);
  const FlashReport full = unpacked_flash(m, {100, 200}, {2, 0});
  const FlashReport half = unpacked_flash(m, {50, 100}, {2, 0});
  EXPECT_GT(full.unpacked_code_bytes, half.unpacked_code_bytes);
  // Unpacked conv weights leave the data segment (biases remain).
  EXPECT_LT(full.weight_bytes, m.weight_bytes());
}

TEST(MemoryModel, NegativePairsMeansLayerStaysPacked) {
  const QModel m = make_tiny_qmodel(73);
  const FlashReport mixed = unpacked_flash(m, {-1, 100}, {0, 1});
  const FlashReport all_packed = unpacked_flash(m, {-1, -1}, {0, 0});
  EXPECT_GT(mixed.unpacked_code_bytes, 0);
  EXPECT_EQ(all_packed.unpacked_code_bytes, 0);
  // Layer 0 weights still stored as data in `mixed`.
  EXPECT_GT(mixed.weight_bytes, 0);
}

TEST(MemoryModel, CustomRuntimeSmallerThanGeneric) {
  // §II-A: compile-time specialization cuts runtime flash (up to 30%).
  const MemoryCostTable t;
  EXPECT_LT(t.custom_runtime_code, t.generic_runtime_code);
  EXPECT_GE(static_cast<double>(t.generic_runtime_code -
                                t.custom_runtime_code),
            0.25 * static_cast<double>(t.generic_runtime_code));
}

TEST(MemoryModel, RamPingPongPlusReserve) {
  const QModel m = make_tiny_qmodel(74);
  const MemoryCostTable t;
  const int64_t packed = model_ram_bytes(m, /*packed_engine=*/true, t);
  const int64_t unpacked = model_ram_bytes(m, /*packed_engine=*/false, t);
  EXPECT_GE(packed, unpacked);  // im2col scratch only in packed
  EXPECT_GT(unpacked, t.runtime_reserve);
  // conv0 of the tiny model: in 12*12*3, out 12*12*6 live together.
  EXPECT_GE(unpacked, t.runtime_reserve + 12 * 12 * 3 + 12 * 12 * 6);
}

TEST(DeployReportStruct, FinalizeComputesDerivedFields) {
  DeployReport r;
  r.cycles = 16'000'000;
  r.flash_bytes = 1000 * 1024;
  r.ram_bytes = 100 * 1024;
  const BoardSpec board;
  r.finalize(board);
  EXPECT_NEAR(r.latency_ms, 100.0, 1e-9);
  EXPECT_NEAR(r.energy_mj, 3.3, 1e-9);
  EXPECT_NEAR(r.flash_percent, 50.0, 0.1);
  EXPECT_TRUE(r.fits_flash);
  EXPECT_TRUE(r.fits_ram);
  r.flash_bytes = 3000 * 1024;
  r.finalize(board);
  EXPECT_FALSE(r.fits_flash);
}

}  // namespace
}  // namespace ataman
