#include "src/nn/qkernels_ref.hpp"

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

int32_t conv_accumulate_ref(const QConv2D& layer, std::span<const int8_t> in,
                            int oy, int ox, int oc, const uint8_t* skip) {
  const ConvGeom& g = layer.geom;
  const int patch = g.patch_size();
  const int8_t* w =
      layer.weights.data() + static_cast<size_t>(oc) * patch;
  const uint8_t* sk =
      skip != nullptr ? skip + static_cast<size_t>(oc) * patch : nullptr;

  int32_t acc = layer.bias[static_cast<size_t>(oc)];
  int idx = 0;
  for (int ky = 0; ky < g.kernel; ++ky) {
    const int iy = oy * g.stride - g.pad + ky;
    for (int kx = 0; kx < g.kernel; ++kx) {
      const int ix = ox * g.stride - g.pad + kx;
      const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
      for (int c = 0; c < g.in_c; ++c, ++idx) {
        if (sk != nullptr && sk[idx]) continue;
        // Padding taps read the zero-point, i.e. real value 0.
        const int32_t x =
            inside ? in[(static_cast<size_t>(iy) * g.in_w + ix) * g.in_c + c]
                   : layer.in.zero_point;
        acc += (x - layer.in.zero_point) * static_cast<int32_t>(w[idx]);
      }
    }
  }
  return acc;
}

void conv2d_ref(const QConv2D& layer, std::span<const int8_t> in,
                std::span<int8_t> out, const uint8_t* skip) {
  conv2d_ref_cols(layer, in, out, 0, layer.geom.out_w(), skip);
}

void conv2d_ref_cols(const QConv2D& layer, std::span<const int8_t> in,
                     std::span<int8_t> out, int ox_begin, int ox_end,
                     const uint8_t* skip) {
  const ConvGeom& g = layer.geom;
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(g.in_h) * g.in_w * g.in_c,
        "conv input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(g.positions()) * g.out_c,
        "conv output size mismatch");
  check(ox_begin >= 0 && ox_end <= g.out_w() && ox_begin <= ox_end,
        "conv column range out of bounds");

  const int oh = g.out_h(), ow = g.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = ox_begin; ox < ox_end; ++ox) {
      int8_t* orow = out.data() + (static_cast<size_t>(oy) * ow + ox) * g.out_c;
      for (int oc = 0; oc < g.out_c; ++oc) {
        const int32_t acc = conv_accumulate_ref(layer, in, oy, ox, oc, skip);
        const int32_t scaled =
            multiply_by_quantized_multiplier(
                acc, layer.requant[static_cast<size_t>(oc)]) +
            layer.out.zero_point;
        orow[oc] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

int32_t depthwise_accumulate_ref(const QDepthwiseConv2D& layer,
                                 std::span<const int8_t> in, int oy, int ox,
                                 int ch, const uint8_t* skip) {
  const int patch = layer.patch_size();
  const uint8_t* sk =
      skip != nullptr ? skip + static_cast<size_t>(ch) * patch : nullptr;

  int32_t acc = layer.bias[static_cast<size_t>(ch)];
  int p = 0;
  for (int ky = 0; ky < layer.kernel; ++ky) {
    const int iy = oy * layer.stride - layer.pad + ky;
    for (int kx = 0; kx < layer.kernel; ++kx, ++p) {
      if (sk != nullptr && sk[p]) continue;
      const int ix = ox * layer.stride - layer.pad + kx;
      const bool inside =
          iy >= 0 && iy < layer.in_h && ix >= 0 && ix < layer.in_w;
      // Padding taps read the zero-point, i.e. real value 0.
      const int32_t x =
          inside ? in[(static_cast<size_t>(iy) * layer.in_w + ix) *
                          layer.channels +
                      ch]
                 : layer.in.zero_point;
      acc += (x - layer.in.zero_point) *
             static_cast<int32_t>(
                 layer.weights[dw_weight_index(ch, p, layer.channels)]);
    }
  }
  return acc;
}

void depthwise_conv2d_ref(const QDepthwiseConv2D& layer,
                          std::span<const int8_t> in, std::span<int8_t> out,
                          const uint8_t* skip) {
  depthwise_conv2d_ref_cols(layer, in, out, 0, layer.out_w(), skip);
}

void depthwise_conv2d_ref_cols(const QDepthwiseConv2D& layer,
                               std::span<const int8_t> in,
                               std::span<int8_t> out, int ox_begin, int ox_end,
                               const uint8_t* skip) {
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * layer.channels,
        "depthwise input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(layer.positions()) * layer.channels,
        "depthwise output size mismatch");
  check(ox_begin >= 0 && ox_end <= layer.out_w() && ox_begin <= ox_end,
        "depthwise column range out of bounds");

  const int oh = layer.out_h(), ow = layer.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = ox_begin; ox < ox_end; ++ox) {
      int8_t* orow =
          out.data() + (static_cast<size_t>(oy) * ow + ox) * layer.channels;
      for (int ch = 0; ch < layer.channels; ++ch) {
        const int32_t acc =
            depthwise_accumulate_ref(layer, in, oy, ox, ch, skip);
        const int32_t scaled =
            multiply_by_quantized_multiplier(
                acc, layer.requant[static_cast<size_t>(ch)]) +
            layer.out.zero_point;
        orow[ch] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void maxpool_ref(const QMaxPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out) {
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  validate_pool_geometry(layer.in_h, layer.in_w, layer.kernel, layer.stride,
                         "maxpool_ref");
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * c,
        "pool input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(oh) * ow * c,
        "pool output size mismatch");
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int ch = 0; ch < c; ++ch) {
        // Covering geometry is validated above, so every tap is inside.
        int8_t best = -128;
        for (int ky = 0; ky < layer.kernel; ++ky) {
          const int iy = oy * layer.stride + ky;
          for (int kx = 0; kx < layer.kernel; ++kx) {
            const int ix = ox * layer.stride + kx;
            best = std::max(
                best, in[(static_cast<size_t>(iy) * layer.in_w + ix) * c + ch]);
          }
        }
        out[(static_cast<size_t>(oy) * ow + ox) * c + ch] = best;
      }
    }
  }
}

void avgpool_ref(const QAvgPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out) {
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  validate_pool_geometry(layer.in_h, layer.in_w, layer.kernel, layer.stride,
                         "avgpool_ref");
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * c,
        "pool input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(oh) * ow * c,
        "pool output size mismatch");
  const int32_t count = layer.kernel * layer.kernel;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int ch = 0; ch < c; ++ch) {
        int32_t sum = 0;
        for (int ky = 0; ky < layer.kernel; ++ky) {
          const int iy = oy * layer.stride + ky;
          for (int kx = 0; kx < layer.kernel; ++kx) {
            const int ix = ox * layer.stride + kx;
            sum += in[(static_cast<size_t>(iy) * layer.in_w + ix) * c + ch];
          }
        }
        // Round half away from zero (TFLite AVERAGE_POOL_2D).
        const int32_t avg =
            sum >= 0 ? (sum + count / 2) / count : (sum - count / 2) / count;
        out[(static_cast<size_t>(oy) * ow + ox) * c + ch] =
            saturate_int8(avg);
      }
    }
  }
}

void dense_ref(const QDense& layer, std::span<const int8_t> in,
               std::span<int8_t> out) {
  check(static_cast<int>(in.size()) == layer.in_dim, "dense input mismatch");
  check(static_cast<int>(out.size()) == layer.out_dim, "dense output mismatch");
  for (int o = 0; o < layer.out_dim; ++o) {
    const int8_t* w =
        layer.weights.data() + static_cast<size_t>(o) * layer.in_dim;
    int32_t acc = layer.bias[static_cast<size_t>(o)];
    for (int i = 0; i < layer.in_dim; ++i) {
      acc += (static_cast<int32_t>(in[static_cast<size_t>(i)]) -
              layer.in.zero_point) *
             static_cast<int32_t>(w[i]);
    }
    const int32_t scaled =
        multiply_by_quantized_multiplier(acc, layer.requant) +
        layer.out.zero_point;
    out[static_cast<size_t>(o)] =
        static_cast<int8_t>(std::clamp(scaled, layer.act_min, layer.act_max));
  }
}

void qadd_ref(const QAdd& layer, std::span<const int8_t> in_a,
              std::span<const int8_t> in_b, std::span<int8_t> out) {
  const int64_t n = layer.elems();
  check(static_cast<int64_t>(in_a.size()) == n &&
            static_cast<int64_t>(in_b.size()) == n &&
            static_cast<int64_t>(out.size()) == n,
        "qadd tensor size mismatch");
  for (int64_t i = 0; i < n; ++i) {
    const int32_t a = static_cast<int32_t>(in_a[static_cast<size_t>(i)]) -
                      layer.in_a.zero_point;
    const int32_t b = static_cast<int32_t>(in_b[static_cast<size_t>(i)]) -
                      layer.in_b.zero_point;
    const int32_t sum = multiply_by_quantized_multiplier(a, layer.requant_a) +
                        multiply_by_quantized_multiplier(b, layer.requant_b) +
                        layer.out.zero_point;
    out[static_cast<size_t>(i)] = static_cast<int8_t>(
        std::clamp(sum, layer.act_min, layer.act_max));
  }
}

void run_layer_ref(const QLayer& layer, std::span<const int8_t> in,
                   std::vector<int8_t>& out, const uint8_t* skip) {
  check(!std::holds_alternative<QAdd>(layer),
        "QAdd reads two tensors — dispatch through run_layer_ref_multi");
  out.assign(static_cast<size_t>(describe_layer(layer).out_elems), 0);
  if (const auto* conv = std::get_if<QConv2D>(&layer)) {
    conv2d_ref(*conv, in, out, skip);
  } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
    depthwise_conv2d_ref(*dw, in, out, skip);
  } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
    maxpool_ref(*pool, in, out);
  } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
    avgpool_ref(*pool, in, out);
  } else if (const auto* fc = std::get_if<QDense>(&layer)) {
    dense_ref(*fc, in, out);
  }
}

void run_layer_ref_multi(const QLayer& layer,
                         const std::vector<std::span<const int8_t>>& inputs,
                         std::vector<int8_t>& out, const uint8_t* skip) {
  check(!inputs.empty(), "layer needs at least one input tensor");
  if (const auto* add = std::get_if<QAdd>(&layer)) {
    check(inputs.size() == 2, "QAdd reads exactly two tensors");
    out.assign(static_cast<size_t>(add->elems()), 0);
    qadd_ref(*add, inputs[0], inputs[1], out);
    return;
  }
  run_layer_ref(layer, inputs[0], out, skip);
}

}  // namespace ataman
