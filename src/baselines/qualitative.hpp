// Analytic models for the paper's qualitative comparisons (§III, last
// paragraph). Neither CMix-NN nor μTVM is executed in the paper — it
// compares against their published operating points — so these are
// latency models with constants pinned to the cited numbers.
#pragma once

#include <cstdint>

#include "src/mcu/board.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

// CMix-NN [9]: mixed low-precision CNN library. The paper's comparison:
// "compared to CMix-NN using a model with 13.8M MAC operations, our
// framework achieves a latency of 124 ms … a remarkable 62% reduction" —
// implying CMix-NN ≈ 326 ms at 13.8 M MACs on the same 160 MHz class of
// core, i.e. ≈ 3.78 cycles/MAC end to end.
struct CMixNNModel {
  double cycles_per_mac = 3.78;

  double latency_ms(int64_t macs, const BoardSpec& board) const {
    return board.cycles_to_ms(
        static_cast<int64_t>(cycles_per_mac * static_cast<double>(macs)));
  }
};

// μTVM [10]: reports a 13% latency overhead versus CMSIS-NN on a similar
// LeNet, i.e. latency = 1.13 x the CMSIS baseline for the same model.
struct MicroTvmModel {
  double overhead_vs_cmsis = 1.13;

  int64_t cycles(int64_t cmsis_cycles) const {
    return static_cast<int64_t>(overhead_vs_cmsis *
                                static_cast<double>(cmsis_cycles));
  }
};

}  // namespace ataman
