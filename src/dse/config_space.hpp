// Design-space generation (§II-C): "exhaustive DSE w.r.t. the targeted
// layers and the values of tau".
//
// Two generation modes, matching the paper's description:
//  * kUniformTauBySubset: for every non-empty subset of conv layers and
//    every tau in [tau_min, tau_max] at tau_step, approximate exactly the
//    layers in the subset with that tau.
//  * kPerLayerGrid: cartesian product of a per-layer tau grid (including
//    "exact") — the mode that reaches the paper's >10,000 designs.
#pragma once

#include <vector>

#include "src/sig/skip_plan.hpp"

namespace ataman {

enum class DseMode { kUniformTauBySubset, kPerLayerGrid };

struct DseOptions {
  DseMode mode = DseMode::kUniformTauBySubset;
  double tau_min = 0.0;
  double tau_max = 0.1;    // paper: tau in [0, 0.1]
  double tau_step = 0.01;  // paper: 0.001 (LeNet) / 0.01 (AlexNet)
  // kPerLayerGrid: number of tau levels per layer (log-spaced over
  // [tau_min(+eps), tau_max]) plus the "exact" level.
  int per_layer_levels = 4;
  // Images used per accuracy evaluation (-1 = whole eval set).
  int eval_images = 512;
  // Cap on generated configs (0 = no cap); configs are subsampled
  // deterministically when the space is larger.
  int max_configs = 0;
};

// All candidate configurations for a model with `conv_count` conv layers.
// Always includes the all-exact baseline config at index 0.
std::vector<ApproxConfig> generate_configs(int conv_count,
                                           const DseOptions& options);

}  // namespace ataman
