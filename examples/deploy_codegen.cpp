// Scenario: firmware hand-off — generate, inspect and self-verify the
// approximate C kernels for a chosen design.
//
// The framework's end product (Fig. 1, step 4->5) is C source with every
// retained weight hardwired into the instruction stream. This example
// picks the 5%-budget design for the small model, emits both the exact
// and the approximate builds, prints the code-size/latency delta, and —
// when a host C compiler is available — compiles the generated file and
// cross-checks its logits against the library engine on real test images
// (the same check a firmware team would run before flashing).
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/core/ataman.hpp"
#include "src/unpack/unpacked_engine.hpp"

int main() {
  using namespace ataman;

  const ZooSpec spec = micronet_spec();
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);

  PipelineOptions options;
  options.dse.tau_step = 0.01;
  options.dse.eval_images = 400;
  AtamanPipeline pipeline(&model, &data.train, &data.test, options);
  const DseOutcome outcome = pipeline.explore();
  const int chosen = pipeline.select(outcome, 0.05);
  check(chosen >= 0, "no design met the 5% budget");
  const ApproxConfig config =
      outcome.results[static_cast<size_t>(chosen)].config;

  // Emit exact and approximate builds.
  const std::string exact_code =
      pipeline.generate_code(ApproxConfig::exact(model.approx_layer_count()));
  const std::string approx_code = pipeline.generate_code(config);
  write_text_file("generated/model_exact.c", exact_code);
  write_text_file("generated/model_approx.c", approx_code);

  const auto count = [](const std::string& s, const char* needle) {
    size_t n = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  std::printf("design: %s\n", config.to_string().c_str());
  std::printf("exact build : %7zu bytes, %5zu SMLAD instructions\n",
              exact_code.size(), count(exact_code, "_smlad(0x"));
  std::printf("approx build: %7zu bytes, %5zu SMLAD instructions\n",
              approx_code.size(), count(approx_code, "_smlad(0x"));

  // Self-verification against the library engine.
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    std::printf("no host C compiler found; skipping self-verification\n");
    return 0;
  }
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[32*32*3];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
)";
  write_text_file("generated/driver.c", driver);
  check(std::system("cc -std=c99 -O2 generated/model_approx.c "
                    "generated/driver.c -o generated/approx_runner") == 0,
        "generated code failed to compile");

  const SkipMask mask = pipeline.mask_for(config);
  const UnpackedEngine engine(&model, &mask);
  int verified = 0;
  for (int i = 0; i < 10; ++i) {
    const auto img = data.test.image(i);
    {
      std::ofstream out("generated/img.bin", std::ios::binary);
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size()));
    }
    check(std::system("./generated/approx_runner < generated/img.bin > "
                      "generated/logits.txt") == 0,
          "generated runner failed");
    std::ifstream in("generated/logits.txt");
    std::vector<int8_t> got;
    int v = 0;
    while (in >> v) got.push_back(static_cast<int8_t>(v));
    check(got == engine.run(img),
          "generated code disagrees with the engine");
    ++verified;
  }
  std::printf("self-verification: %d/10 images bit-exact between the "
              "generated C and the library engine\n",
              verified);
  std::printf("artifacts in ./generated/\n");
  return 0;
}
