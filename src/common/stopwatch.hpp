// Wall-clock stopwatch for host-side timing (training, DSE duration).
// Device latency is never measured with this: it comes from the MCU cycle
// model in src/mcu.
#pragma once

#include <chrono>

namespace ataman {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ataman
