// Workload-level coverage for the PR-8 additions: the vww shape
// (depthwise backbone, binary head) and the ae_anomaly shape (dense-only
// autoencoder with the scored head). Uses the untrained test_util
// fixtures, so the whole suite runs in milliseconds while still driving
// the exact code paths the zoo workloads use: four-engine parity on
// logits *and* reconstruction scores, run_batch parity, serialization
// of the scored-head trailer, the DSE smoke paths (prefix cache for
// vww, the zero-approx fallback for the autoencoder), and serve
// determinism across worker counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/dse/config_space.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/nn/engine.hpp"
#include "src/quant/quantizer.hpp"
#include "src/serve/server.hpp"
#include "src/sig/act_stats.hpp"
#include "src/sig/significance.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_image;
using testing::make_tiny_scored_qmodel;
using testing::make_tiny_vww_qmodel;

constexpr uint64_t kSeed = 424242;
constexpr int kImages = 8;

std::vector<std::vector<uint8_t>> image_pool(const QModel& m, int count,
                                             uint64_t salt) {
  const int64_t pixels = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
  std::vector<std::vector<uint8_t>> pool;
  for (int i = 0; i < count; ++i)
    pool.push_back(make_random_image(pixels, salt + static_cast<uint64_t>(i)));
  return pool;
}

Dataset make_eval_set(const QModel& m, int images, int classes,
                      uint64_t seed) {
  Dataset ds(ImageShape{m.in_h, m.in_w, m.in_c}, classes);
  Rng rng(seed);
  for (int i = 0; i < images; ++i) {
    std::vector<uint8_t> img(static_cast<size_t>(m.in_h) * m.in_w * m.in_c);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    ds.add(img, rng.next_int(0, classes - 1));
  }
  return ds;
}

// --- four-engine parity --------------------------------------------------

TEST(Workloads, VwwFourEngineBitwiseParity) {
  const QModel m = make_tiny_vww_qmodel(kSeed);
  const RefEngine oracle(&m);
  EngineConfig cfg;
  cfg.model = &m;
  const auto pool = image_pool(m, kImages, kSeed + 7);
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(engine->run(pool[i]), oracle.run(pool[i]))
          << name << " image " << i;
      const int cls = engine->classify(pool[i]);
      EXPECT_EQ(cls, oracle.classify(pool[i])) << name << " image " << i;
      EXPECT_GE(cls, 0);
      EXPECT_LE(cls, 1);  // binary head
    }
  }
}

TEST(Workloads, ScoredHeadFourEngineBitwiseParity) {
  const QModel m = make_tiny_scored_qmodel(kSeed);
  ASSERT_EQ(m.head, TaskHead::kScore);
  const RefEngine oracle(&m);
  EngineConfig cfg;
  cfg.model = &m;
  const auto pool = image_pool(m, kImages, kSeed + 17);
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (size_t i = 0; i < pool.size(); ++i) {
      // Reconstructions (the "logits") are int8 tensors: bitwise equal.
      EXPECT_EQ(engine->run(pool[i]), oracle.run(pool[i]))
          << name << " image " << i;
      // Scores are double MSEs over identical int8 tensors in fixed
      // index order: exactly equal, not approximately.
      const double s = engine->score(pool[i]);
      EXPECT_EQ(s, oracle.score(pool[i])) << name << " image " << i;
      // classify() routes through the threshold on scored heads.
      EXPECT_EQ(engine->classify(pool[i]), scored_class(m, s))
          << name << " image " << i;
    }
  }
}

TEST(Workloads, ScoreThrowsOnClassifierHeads) {
  const QModel m = make_tiny_vww_qmodel(kSeed);
  const RefEngine engine(&m);
  const auto img = make_random_image(
      static_cast<int64_t>(m.in_h) * m.in_w * m.in_c, kSeed);
  EXPECT_THROW((void)engine.score(img), Error);
}

TEST(Workloads, ScoredClassThresholdSemantics) {
  QModel m = make_tiny_scored_qmodel(kSeed, /*threshold=*/1.0f);
  EXPECT_EQ(scored_class(m, 0.5), 0);
  EXPECT_EQ(scored_class(m, 1.0), 0);  // strictly above, not >=
  EXPECT_EQ(scored_class(m, 1.0 + 1e-9), 1);
}

// --- run_batch parity ----------------------------------------------------

TEST(Workloads, RunBatchMatchesPerImageRunOnBothShapes) {
  for (const bool scored : {false, true}) {
    const QModel m = scored ? make_tiny_scored_qmodel(kSeed + 1)
                            : make_tiny_vww_qmodel(kSeed + 1);
    SCOPED_TRACE(m.name);
    EngineConfig cfg;
    cfg.model = &m;
    const auto pool = image_pool(m, 5, kSeed + 27);
    for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
      const auto engine = EngineRegistry::instance().create(name, cfg);
      for (const int batch : {1, 3, 7}) {
        std::vector<std::span<const uint8_t>> images;
        for (int i = 0; i < batch; ++i)
          images.emplace_back(pool[static_cast<size_t>(i) % pool.size()]);
        std::vector<std::vector<int8_t>> logits;
        engine->run_batch(images, logits);
        ASSERT_EQ(logits.size(), images.size()) << name;
        for (int i = 0; i < batch; ++i) {
          EXPECT_EQ(logits[static_cast<size_t>(i)], engine->run(images[i]))
              << name << " batch " << batch << " image " << i;
        }
      }
    }
  }
}

// --- serialization -------------------------------------------------------

TEST(Workloads, ScoredHeadSurvivesSerializationRoundTrip) {
  const QModel m = make_tiny_scored_qmodel(kSeed + 2, /*threshold=*/0.125f);
  const std::string path = "/tmp/ataman_workloads_scored.qm";
  save_qmodel(m, path);
  const QModel loaded = load_qmodel(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.head, TaskHead::kScore);
  EXPECT_EQ(loaded.score_threshold, 0.125f);
  const RefEngine a(&m), b(&loaded);
  for (const auto& img : image_pool(m, 4, kSeed + 37)) {
    EXPECT_EQ(a.run(img), b.run(img));
    EXPECT_EQ(a.score(img), b.score(img));
    EXPECT_EQ(a.classify(img), b.classify(img));
  }
}

TEST(Workloads, ClassifierHeadRoundTripStaysDefault) {
  const QModel m = make_tiny_vww_qmodel(kSeed + 3);
  const std::string path = "/tmp/ataman_workloads_vww.qm";
  save_qmodel(m, path);
  const QModel loaded = load_qmodel(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.head, TaskHead::kClassify);
  const RefEngine a(&m), b(&loaded);
  for (const auto& img : image_pool(m, 4, kSeed + 47))
    EXPECT_EQ(a.run(img), b.run(img));
}

// --- DSE smoke -----------------------------------------------------------

TEST(Workloads, DseSmokeVwwRunsThroughPrefixCache) {
  const QModel m = make_tiny_vww_qmodel(kSeed + 4);
  ASSERT_GT(m.approx_layer_count(), 0);
  const Dataset eval = make_eval_set(m, 40, 2, kSeed + 57);
  const auto stats = capture_activation_stats(m, eval, 16);
  const auto significance = compute_model_significance(m, stats);

  DseOptions o;
  o.tau_step = 0.02;
  o.eval_images = 32;
  const ConfigEvaluator ev(&m, &significance, &eval, o.eval_images);
  const DseOutcome outcome = run_dse(ev, m.approx_layer_count(), o);

  ASSERT_GT(outcome.results.size(), 1u);
  EXPECT_FALSE(outcome.pareto.empty());
  // The fast sweep must actually engage: segments served from the
  // prefix cache and real image evals both nonzero.
  EXPECT_GT(outcome.cache_hits, 0);
  EXPECT_GT(outcome.images_evaluated, 0);
  EXPECT_GE(outcome.exact_accuracy, 0.0);
  EXPECT_LE(outcome.exact_accuracy, 1.0);
}

TEST(Workloads, DseSmokeScoredModelFallsBackToSingleExactConfig) {
  const QModel m = make_tiny_scored_qmodel(kSeed + 5);
  ASSERT_EQ(m.approx_layer_count(), 0);  // dense-only: nothing to skip
  const Dataset eval = make_eval_set(m, 40, 2, kSeed + 67);
  // Zero approximable layers: stats are empty, significance is empty,
  // the config space is the single exact config, and the runner falls
  // back to per-config evaluation.
  const auto stats = capture_activation_stats(m, eval, 16);
  EXPECT_TRUE(stats.empty());
  const std::vector<LayerSignificance> significance =
      compute_model_significance(m, stats);

  DseOptions o;
  o.eval_images = 32;
  const ConfigEvaluator ev(&m, &significance, &eval, o.eval_images);
  const DseOutcome outcome = run_dse(ev, m.approx_layer_count(), o);

  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_FALSE(outcome.results[0].config.approximates_anything());
  EXPECT_GT(outcome.images_evaluated, 0);
  // Accuracy of the scored model is thresholded-classification accuracy
  // over the eval labels — a probability, not a raw MSE.
  EXPECT_GE(outcome.exact_accuracy, 0.0);
  EXPECT_LE(outcome.exact_accuracy, 1.0);
}

// --- serve determinism ---------------------------------------------------

TEST(Workloads, ServeDeterminismAcrossWorkerCountsOnBothShapes) {
  for (const bool scored : {false, true}) {
    const QModel m = scored ? make_tiny_scored_qmodel(kSeed + 6)
                            : make_tiny_vww_qmodel(kSeed + 6);
    SCOPED_TRACE(m.name);
    const auto pool = image_pool(m, 6, kSeed + 77);
    const char* engines[] = {"unpacked", "cmsis", "ref", "xcube"};
    constexpr int kRequests = 24;

    // Serial ground truth per request.
    std::vector<std::vector<int8_t>> expected;
    std::vector<double> expected_score;
    for (int i = 0; i < kRequests; ++i) {
      EngineConfig cfg;
      cfg.model = &m;
      const auto engine = EngineRegistry::instance().create(
          engines[static_cast<size_t>(i) % std::size(engines)], cfg);
      const auto& img = pool[static_cast<size_t>(i) % pool.size()];
      expected.push_back(engine->run(img));
      expected_score.push_back(scored ? engine->score(img) : 0.0);
    }

    for (const int workers : {1, 3}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      serve::ServeOptions options;
      options.workers = workers;
      options.max_batch = 4;
      serve::InferenceServer server(&m, options);
      std::vector<serve::InferFuture> futures;
      for (int i = 0; i < kRequests; ++i) {
        serve::InferRequest r;
        r.engine = engines[static_cast<size_t>(i) % std::size(engines)];
        const auto& img = pool[static_cast<size_t>(i) % pool.size()];
        r.image.assign(img.begin(), img.end());
        futures.push_back(server.submit(std::move(r)));
      }
      server.drain();
      for (int i = 0; i < kRequests; ++i) {
        const serve::InferResult r = futures[static_cast<size_t>(i)].get();
        EXPECT_EQ(r.logits, expected[static_cast<size_t>(i)])
            << "request " << i;
        if (scored) {
          EXPECT_EQ(r.score, expected_score[static_cast<size_t>(i)])
              << "request " << i;
          EXPECT_EQ(r.top1,
                    scored_class(m, expected_score[static_cast<size_t>(i)]))
              << "request " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ataman
