// Layer-prefix activation cache for the DSE sweep (§II-C, Fig. 2).
//
// The exhaustive exploration scores thousands of ApproxConfigs, each by
// running inference over hundreds of images — yet most configs share long
// per-layer prefixes (identical skip decisions on the early conv layers)
// and differ only in later-layer tau. Re-running every config from the
// input wastes exactly those shared prefixes.
//
// The cache sorts the config space as a trie keyed by each config's
// per-approximable-layer skip decision (conv and depthwise alike):
// configs are visited in lexicographic key order, and for every image
// the activations at each approximable-layer boundary are kept on a
// stack, so a config that shares a k-layer prefix with its predecessor
// resumes from the cached input of approximable layer k instead of
// layer 0. Two properties make this exact (bitwise identical to the
// per-config ConfigEvaluator::evaluate sweep):
//
//  * the per-layer key is the skipped-operand count, which uniquely
//    identifies the layer's skip set because skip sets are nested in tau
//    (skip_plan.hpp) — equal cardinality implies equal set;
//  * each distinct (layer, key) pair is materialized once as a
//    zeroed-weight layer copy (the same branch-free trick
//    apply_skip_mask uses), so segment execution runs the identical
//    kernels on identical weights as the legacy path.
//
// The exact tail behind the last approximable layer (pool/dense/softmax
// — never approximated) is executed through RefEngine::run_from, the
// InferenceEngine seam's layer-boundary resume entry point.
//
// DAG models (residual QAdd edges): a cached boundary is a single
// tensor, so the trie can only cut the model at *linear boundaries* —
// layer indices no skip edge crosses (QModel::linear_boundary). The
// approximable region is therefore partitioned into *stages*: a stage
// starts at the deepest linear boundary at or before its first
// approximable layer (the *dominating boundary*), and a config resumes
// from the deepest stage start at or below its trie lcp. Ordinals that
// share keys but sit inside a partially-shared stage are re-run, which
// is why prefix-cache hit rates drop on residual models (docs/DSE.md).
// On a pure chain every boundary is linear, every ordinal starts its
// own stage, and the walk is bitwise identical to the pre-DAG cache.
//
// See docs/DSE.md for the sweep-level picture (adaptive early exit,
// exact-mode escape hatch, reproduction commands).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/engine.hpp"
#include "src/sig/skip_plan.hpp"

namespace ataman {

// Deterministic counters for one evaluate_images call, in approximable-
// ordinal units: a "segment" is one approximable layer plus its share of
// non-approximable layers; the exact tail counts as one more segment.
// On DAG models a resume rounds down to the dominating stage boundary,
// so ordinals inside a partially-shared stage count as run, not reused —
// the measured hit-rate drop on residual models.
struct PrefixCacheStats {
  int64_t segments_run = 0;     // segments actually executed
  int64_t segments_reused = 0;  // segments served from a cached prefix
};

class PrefixCache {
 public:
  // `model`, `significance` and `eval` must outlive the cache. The cache
  // evaluates up to `eval_images` images of `eval` (-1 = whole set;
  // clamped by the canonical clamp_eval_limit rule).
  PrefixCache(const QModel* model,
              const std::vector<LayerSignificance>* significance,
              const Dataset* eval, const std::vector<ApproxConfig>& configs,
              int eval_images);

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  int config_count() const { return static_cast<int>(keys_.size()); }
  // Approximable (conv + depthwise) layer count — the trie depth.
  int conv_count() const { return approx_count_; }
  int eval_images() const { return n_images_; }

  // Image positions are a fixed coprime-stride permutation of the first
  // eval_images() dataset images, so any prefix of positions is spread
  // across the whole eval subset instead of mirroring its storage order
  // (a class-ordered eval set would otherwise bias the adaptive sweep's
  // partial samples). A full-budget sum covers the same image set either
  // way, so exact-sweep accuracies are unaffected.
  int image_at(int position) const {
    return static_cast<int>((static_cast<int64_t>(position) * stride_) %
                            n_images_);
  }

  // Config indices sorted so that shared per-layer prefixes are adjacent
  // (the trie's depth-first leaf order).
  const std::vector<int>& order() const { return order_; }

  // Classify, for every config c, the images [img_begin[c], img_end[c])
  // (empty ranges are skipped), writing per-(config, image) hit flags
  // into `hits` (row-major, row stride eval_images()):
  // hits[c * eval_images() + i] = 1 iff config c classifies image i
  // correctly. All configs needing a given image are evaluated in one
  // trie walk, so prefix sharing is maximal regardless of how the
  // caller staggers ranges (blockwise sweeps, anchor completions, ...).
  // Parallel over images; results and counters are bitwise deterministic
  // for any thread count.
  PrefixCacheStats evaluate_ranges(const std::vector<int>& img_begin,
                                   const std::vector<int>& img_end,
                                   std::vector<uint8_t>& hits) const;

  // Convenience: one shared range [image_begin, image_end) for every
  // config with alive[config] != 0.
  PrefixCacheStats evaluate_images(int image_begin, int image_end,
                                   const std::vector<uint8_t>& alive,
                                   std::vector<uint8_t>& hits) const;

 private:
  // Execute layers [begin, end) — `begin` must be a linear boundary and
  // `in` tensor `begin` — with a DAG-local tensor walk, substituting the
  // masked variant slots_[.] for each approximable layer (`slot_row` ==
  // nullptr runs everything exact; `first_ordinal` is the approximable
  // ordinal of the first skippable layer at or after `begin`). Leaves
  // tensor `end` in `out`.
  void run_range(int begin, int end, const std::vector<int>* slot_row,
                 int first_ordinal, const std::vector<int8_t>& in,
                 std::vector<int8_t>& out) const;

  // Deepest stage whose first ordinal is <= `depth` — the dominating
  // resume point for a trie lcp of `depth` ordinals.
  int stage_for_depth(int depth) const;

  const QModel* model_;
  const Dataset* eval_;
  int n_images_ = 0;
  int stride_ = 1;  // coprime with n_images_; see image_at()
  int approx_count_ = 0;
  std::vector<int> approx_pos_;  // layer index of each approx ordinal
  // Stage partition of the approximable region (header comment): stage s
  // covers layers [stage_begin_[s], stage_begin_[s+1]) — the last stage
  // ends at tail_begin_ — and owns the approximable ordinals
  // [stage_first_ordinal_[s], stage_first_ordinal_[s+1]). Every
  // stage_begin_ is a linear boundary; on chains each ordinal is its own
  // stage.
  std::vector<int> stage_begin_;
  std::vector<int> stage_first_ordinal_;
  // First linear boundary behind the last approximable layer (== last
  // approximable layer + 1 on chains): where the exact tail resumes.
  int tail_begin_ = 0;
  RefEngine ref_;  // exact engine: input quantization + tail

  // Per approximable ordinal: zeroed-weight variants of the layer (conv
  // or depthwise), one per distinct non-empty skip set seen in the
  // config space; key_slot_ maps the skipped-operand count to its
  // variant index (key 0 / slot -1 means "use the model's original
  // layer").
  std::vector<std::vector<QLayer>> masked_;
  std::vector<std::map<int64_t, int>> key_slot_;

  std::vector<std::vector<int64_t>> keys_;  // [config][ordinal] skip count
  std::vector<std::vector<int>> slots_;     // [config][ordinal] variant
  std::vector<int> order_;                  // configs, trie leaf order
  std::vector<int> lcp_;                    // lcp_[p] = lcp(order[p-1],order[p])
};

}  // namespace ataman
