// Reference (golden) int8 kernels.
//
// Straightforward nested loops with explicit zero-point handling; every
// optimized engine in the repo (CMSIS-like packed, unpacked/approximate,
// generated C) is tested bit-exact against these.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

// out[pos][oc]; `skip` is nullptr or [out_c * patch] (1 = skip operand).
void conv2d_ref(const QConv2D& layer, std::span<const int8_t> in,
                std::span<int8_t> out, const uint8_t* skip = nullptr);

// Column-restricted conv: fills output columns [ox_begin, ox_end) of
// every row, leaving the rest of `out` untouched. `in`/`out` are still
// the full tensors. The streaming executor (RefEngine::run_incremental)
// uses this to recompute only the columns its splice plan says changed;
// conv2d_ref is the [0, out_w) special case.
void conv2d_ref_cols(const QConv2D& layer, std::span<const int8_t> in,
                     std::span<int8_t> out, int ox_begin, int ox_end,
                     const uint8_t* skip = nullptr);

// out[pos][ch]; `skip` is nullptr or [channels * k*k] indexed
// channel * patch + (ky*k + kx) — SkipMask's depthwise operand order.
void depthwise_conv2d_ref(const QDepthwiseConv2D& layer,
                          std::span<const int8_t> in, std::span<int8_t> out,
                          const uint8_t* skip = nullptr);

// Column-restricted depthwise; contract mirrors conv2d_ref_cols.
void depthwise_conv2d_ref_cols(const QDepthwiseConv2D& layer,
                               std::span<const int8_t> in,
                               std::span<int8_t> out, int ox_begin, int ox_end,
                               const uint8_t* skip = nullptr);

void maxpool_ref(const QMaxPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out);

// Int8 average pool: window sum, round-half-away-from-zero divide
// (TFLite-Micro semantics; in/out quantization params are shared).
void avgpool_ref(const QAvgPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out);

void dense_ref(const QDense& layer, std::span<const int8_t> in,
               std::span<int8_t> out);

// Residual add: each input requantized to the output scale with its own
// fixed-point multiplier, then integer add + zero point + clamp. Both
// inputs and the output have identical shape.
void qadd_ref(const QAdd& layer, std::span<const int8_t> in_a,
              std::span<const int8_t> in_b, std::span<int8_t> out);

// Single-channel accumulator for one conv output position — shared by the
// reference kernel and the significance brute-force tests.
int32_t conv_accumulate_ref(const QConv2D& layer, std::span<const int8_t> in,
                            int oy, int ox, int oc, const uint8_t* skip);

// As above for one depthwise output position/channel.
int32_t depthwise_accumulate_ref(const QDepthwiseConv2D& layer,
                                 std::span<const int8_t> in, int oy, int ox,
                                 int ch, const uint8_t* skip);

// Dispatch any QLayer through its reference kernel: sizes `out` from the
// layer descriptor and runs the matching *_ref above (`skip` applies to
// approximable layers only). The one layer-walk helper every generic
// executor (RefEngine, the DSE prefix cache, engine constructors) shares.
void run_layer_ref(const QLayer& layer, std::span<const int8_t> in,
                   std::vector<int8_t>& out, const uint8_t* skip = nullptr);

// DAG-aware dispatch: same contract but takes the full operand list in
// QModel::inputs_of order (QAdd reads two tensors; every other layer
// uses inputs[0]). run_layer_ref is the single-input shorthand.
void run_layer_ref_multi(const QLayer& layer,
                         const std::vector<std::span<const int8_t>>& inputs,
                         std::vector<int8_t>& out,
                         const uint8_t* skip = nullptr);

}  // namespace ataman
