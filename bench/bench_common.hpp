// Shared plumbing for the benchmark harnesses: cached paper models,
// standard options, paper reference values, CLI scale flags, CSV output.
//
// Every harness prints the paper's published row next to the measured row
// and writes machine-readable CSV into bench_results/. Absolute paper
// numbers come from the authors' STM32 testbed and their CIFAR-10 models;
// this reproduction runs the same code paths on the MCU substrate with
// SynthCIFAR-trained models, so the comparison targets *shape* (who wins,
// by roughly what factor), not digit-for-digit equality. docs/DESIGN.md
// explains the substitutions.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/csv.hpp"
#include "src/common/serialize.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/table.hpp"
#include "src/core/ataman.hpp"

namespace ataman::bench {

// --- scale control -------------------------------------------------------

enum class Scale { kQuick, kDefault, kPaper };

inline Scale parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") return Scale::kQuick;
    if (arg == "--paper-scale") return Scale::kPaper;
  }
  return Scale::kDefault;
}

// DSE options per scale. Paper scale restores the published setup:
// tau in [0, 0.1] with step 0.001 (LeNet) / 0.01 (AlexNet), per-layer
// grids pushing past 10,000 evaluated designs (LeNet 22^3 = 10,648;
// AlexNet 7^5 = 16,807) and full-test-set accuracy — expect roughly the
// paper's "<2 hours" wall time. Default keeps the same tau span with a
// coarser uniform-by-subset sweep so the harness finishes in minutes.
inline DseOptions dse_options_for(const std::string& network, Scale scale) {
  DseOptions o;
  o.tau_min = 0.0;
  o.tau_max = 0.1;
  if (scale == Scale::kPaper) {
    o.mode = DseMode::kPerLayerGrid;
    o.per_layer_levels = network == "lenet" ? 21 : 6;
    o.tau_step = network == "lenet" ? 0.001 : 0.01;
    o.eval_images = -1;
    return o;
  }
  o.mode = DseMode::kUniformTauBySubset;
  if (network == "lenet") {
    o.tau_step = scale == Scale::kQuick ? 0.02 : 0.005;
  } else {
    o.tau_step = scale == Scale::kQuick ? 0.02 : 0.01;
  }
  o.eval_images = scale == Scale::kQuick ? 192 : 384;
  return o;
}

// --- cached models -------------------------------------------------------

struct BenchModel {
  std::string name;
  QModel qmodel;
  SynthCifar data;
};

inline BenchModel load_lenet() {
  const ZooSpec spec = lenet_spec();
  return {"lenet", get_or_build_qmodel(spec), make_synth_cifar(spec.data)};
}

inline BenchModel load_alexnet() {
  const ZooSpec spec = alexnet_spec();
  return {"alexnet", get_or_build_qmodel(spec), make_synth_cifar(spec.data)};
}

// --- paper reference values (for side-by-side printing) ------------------

struct PaperTable1Row {
  double accuracy, latency_ms, flash_percent, ram_kb;
  double mac_m;
  const char* topology;
};

inline PaperTable1Row paper_table1(const std::string& network) {
  if (network == "lenet") return {71.6, 82.8, 12.0, 183.5, 4.5, "3-2-2"};
  return {71.9, 179.9, 13.0, 212.16, 16.1, "5-2-2"};
}

struct PaperTable2Row {
  double accuracy, latency_ms, flash_kb, mac_m, energy_mj;
};

// design: "cmsis", "xcube", "ours0", "ours5", "ours10".
inline PaperTable2Row paper_table2(const std::string& network,
                                   const std::string& design) {
  if (network == "lenet") {
    if (design == "cmsis") return {71.6, 82.8, 239, 4.5, 2.73};
    if (design == "xcube") return {71.6, 63.5, 154, 4.5, 2.10};
    if (design == "ours0") return {71.6, 72.7, 761, 3.3, 2.40};
    if (design == "ours5") return {66.7, 66.8, 704, 2.9, 2.20};
    return {61.6, 59.8, 681, 2.4, 1.98};  // ours10
  }
  if (design == "cmsis") return {71.9, 179.9, 267, 16.1, 5.94};
  if (design == "xcube") return {71.9, 150.7, 178, 16.1, 4.97};
  if (design == "ours0") return {72.4, 124.8, 1080, 7.5, 4.12};
  if (design == "ours5") return {67.1, 111.3, 954, 6.2, 3.67};
  return {62.1, 101.5, 891, 5.5, 3.35};  // ours10
}

// --- output --------------------------------------------------------------

inline std::string results_dir() {
  ensure_directory("bench_results");
  return "bench_results";
}

inline std::string fmt(double v, int decimals) {
  return ConsoleTable::fmt(v, decimals);
}

inline void print_header(const std::string& title, Scale scale) {
  const char* s = scale == Scale::kPaper ? "paper-scale"
                  : scale == Scale::kQuick ? "quick"
                                           : "default";
  std::printf("==============================================================\n");
  std::printf("%s  [scale: %s]\n", title.c_str(), s);
  std::printf("  flags: --quick | --paper-scale\n");
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace ataman::bench
