#include "src/serve/engine_pool.hpp"

#include "src/common/error.hpp"
#include "src/nn/skip_mask.hpp"

namespace ataman::serve {

namespace {
// Validated before it sizes any container, so workers <= 0 surfaces as
// a clean ataman::Error instead of std::length_error from a negative
// vector resize.
int checked_workers(int workers) {
  check(workers >= 1, "EnginePool needs at least one worker");
  return workers;
}
}  // namespace

EnginePool::EnginePool(const QModel* model, int workers,
                       CortexM33CostTable costs, MemoryCostTable memory,
                       XCubeCostTable xcube)
    : model_(model),
      costs_(costs),
      memory_(memory),
      xcube_(xcube),
      per_worker_(static_cast<size_t>(checked_workers(workers))) {
  check(model != nullptr, "EnginePool needs a model");
}

std::unique_ptr<InferenceEngine> EnginePool::build_from_registry(
    const Key& key) const {
  EngineConfig cfg;
  cfg.model = model_;
  cfg.mask = key.second;
  cfg.costs = costs_;
  cfg.memory = memory_;
  cfg.xcube = &xcube_;
  return EngineRegistry::instance().create(key.first, cfg);
}

std::unique_ptr<InferenceEngine> EnginePool::make_instance(
    const std::string& backend, const SkipMask* mask, bool& rebindable_out) {
  const std::lock_guard<std::mutex> lock(proto_mutex_);
  auto flag = rebindable_.find(backend);
  if (flag == rebindable_.end()) {
    // First contact with this backend anywhere: build the prototype for
    // the configuration actually requested (no wasted probe build) and
    // read the class-level rebindability off it.
    std::unique_ptr<InferenceEngine> proto =
        build_from_registry(Key{backend, mask});
    ++stats_.prototypes_built;
    const bool rebinds = proto->supports_mask_rebind();
    flag = rebindable_.emplace(backend, rebinds).first;
    // A rebindable prototype is stored under the collapsed (nullptr)
    // key; whatever mask it was built with is rebound before every use.
    prototypes_.emplace(Key{backend, rebinds ? nullptr : mask},
                        std::move(proto));
  }
  rebindable_out = flag->second;

  const Key key{backend, rebindable_out ? nullptr : mask};
  auto it = prototypes_.find(key);
  if (it == prototypes_.end()) {
    it = prototypes_.emplace(key, build_from_registry(key)).first;
    ++stats_.prototypes_built;
  }
  std::unique_ptr<InferenceEngine> instance = it->second->clone();
  if (instance != nullptr) {
    ++stats_.engines_cloned;
  } else {
    // Backend declined to clone: build this worker's own instance.
    instance = build_from_registry(key);
    ++stats_.factory_builds;
  }
  return instance;
}

InferenceEngine& EnginePool::engine_for(int worker,
                                        const std::string& backend,
                                        const SkipMask* mask) {
  check(worker >= 0 && worker < static_cast<int>(per_worker_.size()),
        "engine_for: worker id out of range");
  WorkerState& ws = per_worker_[static_cast<size_t>(worker)];

  // Steady state: this worker has served the backend before — resolve
  // the key from its private rebindability copy and hit its private
  // cache, no shared lock involved.
  const auto flag = ws.rebindable.find(backend);
  if (flag != ws.rebindable.end()) {
    const Key key{backend, flag->second ? nullptr : mask};
    const auto it = ws.engines.find(key);
    if (it != ws.engines.end()) {
      if (flag->second) it->second->rebind_mask(mask);
      return *it->second;
    }
  }

  bool rebindable = false;
  std::unique_ptr<InferenceEngine> instance =
      make_instance(backend, mask, rebindable);
  ws.rebindable[backend] = rebindable;
  const Key key{backend, rebindable ? nullptr : mask};
  InferenceEngine& engine =
      *ws.engines.emplace(key, std::move(instance)).first->second;
  if (rebindable) engine.rebind_mask(mask);
  return engine;
}

EnginePoolStats EnginePool::stats() const {
  const std::lock_guard<std::mutex> lock(proto_mutex_);
  return stats_;
}

}  // namespace ataman::serve
