// Fast DSE path: the run_from layer-boundary resume seam, bitwise parity
// of the prefix-cached exact sweep with the per-config evaluator, the
// adaptive early-exit invariants (all-exact config and every Pareto
// member fully evaluated), determinism across thread counts, and the
// dse_io format-version-3 round trip with version-1 backward compat.
//
// This suite carries the `dse-smoke` ctest label: it is the tiny
// fast-vs-exact sweep CI runs in the OMP_NUM_THREADS={1,4} matrix.
#include <gtest/gtest.h>

#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/dse/adaptive_eval.hpp"
#include "src/dse/config_space.hpp"
#include "src/dse/dse_io.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/dse/evaluator.hpp"
#include "src/dse/prefix_cache.hpp"
#include "src/nn/engine.hpp"
#include "src/sig/act_stats.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_tiny_qmodel;

class DseFastFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new QModel(make_tiny_qmodel(91));
    eval_ = new Dataset(ImageShape{12, 12, 3}, 10);
    Rng rng(92);
    for (int i = 0; i < 120; ++i) {
      std::vector<uint8_t> img(12 * 12 * 3);
      for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
      eval_->add(img, rng.next_int(0, 9));
    }
    const auto stats = capture_activation_stats(*model_, *eval_, 32);
    sig_ = new std::vector<LayerSignificance>(
        compute_model_significance(*model_, stats));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete eval_;
    delete sig_;
    model_ = nullptr;
    eval_ = nullptr;
    sig_ = nullptr;
  }

  static std::vector<ApproxConfig> sweep_configs() {
    DseOptions o;
    o.tau_step = 0.02;  // grid {0, 0.02, ..., 0.1}: 1 + 3 subsets x 6 taus
    return generate_configs(2, o);
  }

  static QModel* model_;
  static Dataset* eval_;
  static std::vector<LayerSignificance>* sig_;
};

QModel* DseFastFixture::model_ = nullptr;
Dataset* DseFastFixture::eval_ = nullptr;
std::vector<LayerSignificance>* DseFastFixture::sig_ = nullptr;

// --- the run_from seam --------------------------------------------------

TEST_F(DseFastFixture, RunFromResumesAtEveryConvBoundary) {
  const RefEngine ref(model_);
  const auto image = eval_->image(0);
  const std::vector<int8_t> full = ref.run(image);

  // Capture each approximable layer's input with a tap, then resume
  // there.
  std::vector<std::vector<int8_t>> conv_inputs(
      static_cast<size_t>(model_->approx_layer_count()));
  ref.run(image, nullptr,
          [&](int ordinal, const QLayer&, std::span<const int8_t> in) {
            conv_inputs[static_cast<size_t>(ordinal)].assign(in.begin(),
                                                             in.end());
          });
  for (int k = 0; k < model_->approx_layer_count(); ++k) {
    const std::vector<int8_t> resumed =
        ref.run_from(model_->approx_layer_index(k),
                     conv_inputs[static_cast<size_t>(k)]);
    EXPECT_EQ(resumed, full) << "resume at conv ordinal " << k;
  }
  // Resuming past the last layer is the identity.
  EXPECT_EQ(ref.run_from(static_cast<int>(model_->layers.size()), full),
            full);
}

TEST_F(DseFastFixture, RunFromValidatesInput) {
  const RefEngine ref(model_);
  const std::vector<int8_t> wrong(7, 0);
  EXPECT_THROW(ref.run_from(0, wrong), Error);
  EXPECT_THROW(ref.run_from(-1, wrong), Error);
  EXPECT_THROW(
      ref.run_from(static_cast<int>(model_->layers.size()) + 1, wrong),
      Error);
}

TEST_F(DseFastFixture, NonResumableEnginesDeclineRunFrom) {
  const CmsisEngine cmsis(model_);
  EXPECT_TRUE(RefEngine(model_).supports_run_from());
  EXPECT_FALSE(cmsis.supports_run_from());
  const std::vector<int8_t> acts(static_cast<size_t>(12) * 12 * 3, 0);
  EXPECT_THROW(cmsis.run_from(0, acts), Error);
}

// --- Wilson bounds ------------------------------------------------------

TEST(WilsonBound, BracketsTheSampleProportion) {
  for (const auto& [h, n] :
       {std::pair{0, 10}, {3, 10}, {10, 10}, {57, 200}}) {
    const double p = static_cast<double>(h) / n;
    EXPECT_LE(wilson_lower(h, n, 2.58), p + 1e-12);
    EXPECT_GE(wilson_upper(h, n, 2.58), p - 1e-12);
    EXPECT_GE(wilson_lower(h, n, 2.58), 0.0);
    EXPECT_LE(wilson_upper(h, n, 2.58), 1.0);
  }
  // No observations: vacuous interval.
  EXPECT_EQ(wilson_lower(0, 0, 2.58), 0.0);
  EXPECT_EQ(wilson_upper(0, 0, 2.58), 1.0);
  // More evidence tightens the interval.
  EXPECT_GT(wilson_upper(3, 10, 2.58) - wilson_lower(3, 10, 2.58),
            wilson_upper(30, 100, 2.58) - wilson_lower(30, 100, 2.58));
}

// --- prefix-cached exact sweep: bitwise parity --------------------------

TEST_F(DseFastFixture, ExactSweepBitwiseMatchesPerConfigEvaluate) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  const auto configs = sweep_configs();

  DseOptions o;
  o.exact_sweep = true;
  const DseOutcome fast = run_dse(ev, configs, o);

  // The pre-prefix-cache sweep: one ConfigEvaluator::evaluate per config.
  std::vector<DseResult> legacy(configs.size());
  for (size_t i = 0; i < configs.size(); ++i)
    legacy[i] = ev.evaluate(configs[i]);

  ASSERT_EQ(fast.results.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(fast.results[i].accuracy, legacy[i].accuracy) << "config " << i;
    EXPECT_EQ(fast.results[i].executed_macs, legacy[i].executed_macs);
    EXPECT_EQ(fast.results[i].skipped_conv_macs, legacy[i].skipped_conv_macs);
    EXPECT_EQ(fast.results[i].conv_mac_reduction,
              legacy[i].conv_mac_reduction);
    EXPECT_EQ(fast.results[i].cycles, legacy[i].cycles);
    EXPECT_EQ(fast.results[i].latency_reduction, legacy[i].latency_reduction);
    EXPECT_EQ(fast.results[i].flash_bytes, legacy[i].flash_bytes);
    EXPECT_EQ(fast.results[i].config.tau, legacy[i].config.tau);
  }

  std::vector<ParetoPoint> points;
  for (size_t i = 0; i < legacy.size(); ++i)
    points.push_back(
        {legacy[i].conv_mac_reduction, legacy[i].accuracy,
         static_cast<int>(i)});
  EXPECT_EQ(fast.pareto, pareto_front(points));

  // Exact mode: full image budget for everyone, reuse accounted.
  EXPECT_EQ(fast.early_exits, 0);
  EXPECT_EQ(fast.images_evaluated,
            static_cast<int64_t>(configs.size()) * eval_->size());
  EXPECT_GT(fast.cache_hits, 0);
}

// --- adaptive early exit ------------------------------------------------

DseOptions aggressive_adaptive_options() {
  DseOptions o;
  o.eval_block = 8;
  o.exit_z = 1.0;       // ~68% interval: exits trigger on noise-level gaps
  o.exit_margin = 0.0;  // so this random-model space actually prunes
  return o;
}

TEST_F(DseFastFixture, AdaptiveSweepFullyEvaluatesBaselineAndFront) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  const auto configs = sweep_configs();
  const DseOutcome fast = run_dse(ev, configs, aggressive_adaptive_options());

  // The scenario must actually prune, or the invariants are vacuous.
  ASSERT_GT(fast.early_exits, 0);
  EXPECT_LT(fast.images_evaluated,
            static_cast<int64_t>(configs.size()) * eval_->size());

  // results[0] (all-exact) is always a full-sample measurement ...
  EXPECT_EQ(fast.results[0].accuracy, ev.evaluate(configs[0]).accuracy);
  EXPECT_EQ(fast.exact_accuracy, fast.results[0].accuracy);
  EXPECT_FALSE(fast.results[0].partial_eval);
  // ... and so is every Pareto member (bitwise equal to the full eval).
  for (const int idx : fast.pareto) {
    const DseResult& r = fast.results[static_cast<size_t>(idx)];
    EXPECT_FALSE(r.partial_eval);
    EXPECT_EQ(r.accuracy, ev.evaluate(r.config).accuracy)
        << "front member " << idx << " not fully evaluated";
  }

  // Early exits are flagged, and selection never trusts a partial
  // sample against an accuracy-loss budget.
  int partial = 0;
  for (const DseResult& r : fast.results) partial += r.partial_eval ? 1 : 0;
  EXPECT_EQ(partial, fast.early_exits);
  for (const double loss : {0.0, 0.05, 0.2}) {
    const int sel = select_design(fast, loss);
    if (sel >= 0) {
      EXPECT_FALSE(fast.results[static_cast<size_t>(sel)].partial_eval);
    }
  }
}

TEST_F(DseFastFixture, AdaptiveSweepDeterministicAcrossThreadCounts) {
  const ConfigEvaluator ev(model_, sig_, eval_, -1);
  const auto configs = sweep_configs();
  const DseOptions o = aggressive_adaptive_options();
  set_num_threads(1);
  const DseOutcome a = run_dse(ev, configs, o);
  set_num_threads(8);
  const DseOutcome b = run_dse(ev, configs, o);
  set_num_threads(0);

  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].accuracy, b.results[i].accuracy);
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
  }
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.images_evaluated, b.images_evaluated);
  EXPECT_EQ(a.early_exits, b.early_exits);
}

TEST_F(DseFastFixture, NonResumableAccuracyBackendFallsBack) {
  // A non-"ref" accuracy backend cannot be prefix-cached; the sweep must
  // fall back to the per-config path and — cmsis being bit-exact with the
  // reference — still produce identical accuracies.
  const ConfigEvaluator ref_ev(model_, sig_, eval_, 40);
  const ConfigEvaluator cmsis_ev(model_, sig_, eval_, 40, {}, {}, "cmsis");
  const auto configs = sweep_configs();
  DseOptions o;
  o.exact_sweep = true;
  const DseOutcome fast = run_dse(ref_ev, configs, o);
  const DseOutcome fallback = run_dse(cmsis_ev, configs, o);
  ASSERT_EQ(fast.results.size(), fallback.results.size());
  for (size_t i = 0; i < fast.results.size(); ++i)
    EXPECT_EQ(fast.results[i].accuracy, fallback.results[i].accuracy);
  EXPECT_EQ(fallback.cache_hits, 0);
  EXPECT_EQ(fallback.early_exits, 0);
  EXPECT_EQ(fallback.images_evaluated,
            static_cast<int64_t>(configs.size()) * 40);
}

// --- dse_io: format version 3 + backward compat -------------------------

TEST_F(DseFastFixture, OutcomeJsonRoundTripCarriesSweepStats) {
  const ConfigEvaluator ev(model_, sig_, eval_, 48);
  const DseOutcome a = run_dse(ev, sweep_configs(),
                               aggressive_adaptive_options());
  const Json j = dse_outcome_to_json(a);
  EXPECT_EQ(j.at("version").as_int(), 3);

  const DseOutcome b = dse_outcome_from_json(j);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.images_evaluated, b.images_evaluated);
  EXPECT_EQ(a.early_exits, b.early_exits);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].accuracy, b.results[i].accuracy);
    EXPECT_EQ(a.results[i].partial_eval, b.results[i].partial_eval);
  }
  EXPECT_EQ(a.pareto, b.pareto);
}

TEST_F(DseFastFixture, VersionOneFilesStillLoad) {
  const ConfigEvaluator ev(model_, sig_, eval_, 48);
  const DseOutcome a = run_dse(ev, sweep_configs(), DseOptions{});

  // A version-1 file is today's format minus the version field and the
  // fast-sweep statistics.
  Json j = dse_outcome_to_json(a);
  j.as_object().erase("version");
  j.as_object().erase("cache_hits");
  j.as_object().erase("images_evaluated");
  j.as_object().erase("early_exits");

  const DseOutcome b = dse_outcome_from_json(Json::parse(j.dump()));
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i].accuracy, b.results[i].accuracy);
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_EQ(b.cache_hits, 0);
  EXPECT_EQ(b.images_evaluated, 0);
  EXPECT_EQ(b.early_exits, 0);
}

TEST_F(DseFastFixture, UnknownFutureVersionIsRejected) {
  const ConfigEvaluator ev(model_, sig_, eval_, 24);
  DseOptions o;
  o.tau_step = 0.05;
  Json j = dse_outcome_to_json(run_dse(ev, 2, o));
  j.as_object()["version"] = Json(static_cast<int64_t>(99));
  EXPECT_THROW(dse_outcome_from_json(j), Error);
}

}  // namespace
}  // namespace ataman
