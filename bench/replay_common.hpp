// Shared pieces of the traffic-replay harness, extracted so the unit
// tests (tests/test_percentiles.cpp) can pin their semantics without
// running the full replay.
//
// Percentiles come from ataman::percentile (src/common/metrics.hpp) —
// nearest-rank, shared with bench/streaming_reuse so every latency
// report in the repo uses the same definition.
//
// Trace generation is fully deterministic: one seeded Rng drives both
// the workload-class choice and the Poisson-style arrival process
// (exponential inter-arrival gaps via inverse-CDF sampling), so the
// same seed always produces the same trace regardless of host, thread
// count, or replay speed.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/metrics.hpp"
#include "src/common/rng.hpp"

namespace ataman::bench {

// The latency digest every replay row reports.
struct LatencySummary {
  int count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

inline LatencySummary summarize_latency(const std::vector<double>& samples) {
  LatencySummary s;
  s.count = static_cast<int>(samples.size());
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(samples, 99.0);
  for (const double v : samples) s.max = std::max(s.max, v);
  return s;
}

// One replayed request in the mixed multi-model trace.
struct TraceEvent {
  int model_class = 0;    // index into the replay's workload list
  int image_index = 0;    // index into that workload's test split
  double arrival_ms = 0;  // offset from replay start (non-decreasing)
};

// Deterministic mixed trace: uniformly random workload class per event,
// exponential inter-arrival gaps with the given mean (inverse-CDF:
// gap = -mean * ln(1 - u), u in [0, 1) so the log argument never hits
// zero). Same seed -> same trace, bit for bit.
inline std::vector<TraceEvent> make_trace(uint64_t seed, int count,
                                          int num_classes,
                                          int images_per_class,
                                          double mean_gap_ms) {
  check(count >= 0, "make_trace: negative event count");
  check(num_classes >= 1, "make_trace: needs at least one workload class");
  check(images_per_class >= 1, "make_trace: needs at least one image");
  check(mean_gap_ms >= 0.0, "make_trace: negative mean arrival gap");
  Rng rng(seed);
  std::vector<TraceEvent> trace;
  trace.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    TraceEvent e;
    e.model_class = rng.next_int(0, num_classes - 1);
    e.image_index = rng.next_int(0, images_per_class - 1);
    t += -mean_gap_ms * std::log(1.0 - rng.next_double());
    e.arrival_ms = t;
    trace.push_back(e);
  }
  return trace;
}

// Per-class sample buckets (insertion via operator[], ordered iteration
// for stable report rendering).
class ClassBuckets {
 public:
  void add(const std::string& cls, double value) {
    buckets_[cls].push_back(value);
  }

  const std::vector<double>& samples(const std::string& cls) const {
    static const std::vector<double> kEmpty;
    const auto it = buckets_.find(cls);
    return it == buckets_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, std::vector<double>>& all() const {
    return buckets_;
  }

 private:
  std::map<std::string, std::vector<double>> buckets_;
};

}  // namespace ataman::bench
