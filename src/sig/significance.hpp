// Significance calculation — Eq. (2) of the paper.
//
//   S_i = | E[a_i] * w_i  /  sum_j E[a_j] * w_j |          (per channel)
//
// measures the long-term expected contribution of product i to its
// channel accumulation Sum_c. When the channel's expected sum is zero
// ("the vast minority of cases"), every product is considered maximally
// significant and is retained, per the paper's rule.
//
// NOTE on the paper's Eq.(3)/prose mismatch: §II-C's prose says products
// with S_i <= tau are "incorporated", but Eq. (3) *subtracts* exactly
// those products, and the stated motivation (skip the insignificant) only
// matches Eq. (3). We follow Eq. (3): products with S_i <= tau are
// SKIPPED. See docs/DESIGN.md.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/sig/act_stats.hpp"

namespace ataman {

struct LayerSignificance {
  int out_c = 0;  // per-channel programs (depthwise: channels)
  int patch = 0;  // skippable operands per channel (depthwise: k*k)
  // S[oc * patch + i]; +infinity encodes "always retain" (zero-sum rule).
  std::vector<float> S;
  // Per channel, operand indices sorted by ascending S (ties by index):
  // the tau sweep walks prefixes of this order, which also proves the
  // skip-set nesting property the DSE relies on.
  std::vector<std::vector<uint32_t>> ascending;

  float significance(int oc, int operand) const {
    return S[static_cast<size_t>(oc) * patch + operand];
  }
};

// Compute Eq. (2) for one conv layer from captured input statistics.
LayerSignificance compute_significance(const QConv2D& layer,
                                       const ConvInputStats& stats);

// Eq. (2) for one depthwise layer: channel ch's expected sum runs over
// its k*k taps only; S is indexed ch * patch + tap, mirroring the skip
// mask's depthwise operand order.
LayerSignificance compute_significance(const QDepthwiseConv2D& layer,
                                       const ConvInputStats& stats);

// All approximable (conv + depthwise) layers of a model (ordinal order).
std::vector<LayerSignificance> compute_model_significance(
    const QModel& model, const std::vector<ConvInputStats>& stats);

constexpr float kAlwaysRetain = std::numeric_limits<float>::infinity();

}  // namespace ataman
