// Flash-constrained hybrid deployment (extension of §II-B).
//
// The paper notes that "the length of the unpacked code is considered
// with respect to the available unused flash, creating an interesting
// trade-off", and always unpacks every conv layer (its models fit). This
// module generalizes that choice: each conv layer may independently stay
// on the packed CMSIS-style kernel (weights as data, loops) or become
// unpacked straight-line code (larger flash, skipping becomes real
// instruction removal). Selection maximizes cycle savings under a flash
// budget with a greedy benefit-per-byte knapsack, which also handles the
// case the all-unpack policy gets wrong: wide fast-path layers whose
// unpacked form is *slower* than the packed 2x2 SMLAD kernel stay packed
// unless aggressive skipping tips the balance.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dse/evaluator.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct LayerDeployChoice {
  bool unpack = true;
  int64_t packed_cycles = 0;     // exact packed kernel (skips are free-of-
                                 // charge impossible there)
  int64_t unpacked_cycles = 0;   // with the mask's skips applied
  int64_t packed_flash = 0;      // weights + descriptor bytes
  int64_t unpacked_flash = 0;    // straight-line code bytes + bias data
};

struct HybridPlan {
  // One entry per approximable-layer (conv + depthwise) ordinal.
  std::vector<LayerDeployChoice> choices;

  std::vector<uint8_t> unpack_selection() const;
  int64_t total_cycle_saving() const;  // vs all-packed
  int64_t total_flash_delta() const;   // vs all-packed (can be negative)
  int unpacked_count() const;
};

// Evaluate both deployment options per approximable layer under `mask`.
HybridPlan analyze_layer_choices(const QModel& model, const SkipMask& mask,
                                 const CortexM33CostTable& costs = {},
                                 const MemoryCostTable& memory = {});

// Greedy knapsack: unpack layers in descending cycles-saved-per-extra-
// flash-byte order while the *total model flash* stays within
// `flash_budget` bytes (<= 0: unlimited). Layers whose unpacked form
// saves cycles AND flash are always taken; layers that lose cycles are
// never taken.
HybridPlan select_layers_to_unpack(const QModel& model, const SkipMask& mask,
                                   int64_t flash_budget,
                                   const CortexM33CostTable& costs = {},
                                   const MemoryCostTable& memory = {});

}  // namespace ataman
