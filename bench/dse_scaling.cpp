// DSE throughput scaling — the paper ran its exhaustive exploration in
// <2h on 6 host threads; this harness measures the same sweep on the
// LeNet pipeline three ways per thread count:
//
//   legacy    one ConfigEvaluator::evaluate per config (the
//             pre-prefix-cache sweep, kept as the speedup baseline)
//   exact     prefix-cached, full image budget (bitwise identical
//             results; DseOptions::exact_sweep = true)
//   adaptive  prefix-cached + Wilson early exit (the default sweep)
//
// and reports the speedups plus the projected wall time of the
// paper-scale sweep. The PR that introduced the cache targets >=3x on
// the adaptive column.
#include "bench/bench_common.hpp"
#include "src/common/parallel.hpp"
#include "src/dse/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ataman;
  using namespace ataman::bench;
  const Scale scale = parse_scale(argc, argv);
  print_header("DSE throughput scaling (paper: <2h on 6 threads)", scale);

  const BenchModel lenet = load_lenet();
  PipelineOptions opts;
  opts.dse = dse_options_for("lenet", Scale::kQuick);
  // Quick trims the image budget to keep the harness snappy; default uses
  // the standard 384-image budget (the paper evaluates the full test
  // set, which is where the early-exit savings are most representative).
  opts.dse.eval_images = scale == Scale::kQuick ? 96 : 384;
  opts.dse.tau_step = 0.02;  // small fixed sweep re-run per thread count
  AtamanPipeline pipe(&lenet.qmodel, &lenet.data.train, &lenet.data.test,
                      opts);
  pipe.analyze();

  const auto configs =
      generate_configs(lenet.qmodel.approx_layer_count(), opts.dse);
  const ConfigEvaluator evaluator(&lenet.qmodel, &pipe.significance(),
                                  &lenet.data.test, opts.dse.eval_images);
  DseOptions exact = opts.dse;
  exact.exact_sweep = true;

  // The pre-prefix-cache sweep: parallel over configs, each config runs
  // its whole image budget from the input.
  const auto legacy_sweep = [&]() {
    Stopwatch watch;
    std::vector<DseResult> results(configs.size());
    parallel_for(0, static_cast<int64_t>(configs.size()), [&](int64_t i) {
      results[static_cast<size_t>(i)] =
          evaluator.evaluate(configs[static_cast<size_t>(i)]);
    });
    return watch.seconds();
  };

  CsvWriter csv(results_dir() + "/dse_scaling.csv",
                {"threads", "configs", "legacy_s", "exact_s", "adaptive_s",
                 "exact_speedup", "adaptive_speedup", "cache_hits",
                 "early_exits"});
  ConsoleTable table({"Threads", "Configs", "Legacy(s)", "Exact(s)",
                      "Adaptive(s)", "Exact x", "Adaptive x"});

  const int hw = num_threads();
  bool hit_target = false;
  double exact_cps = 0.0;
  int exact_cps_threads = 0;
  for (int threads = 1; threads <= hw; threads *= 2) {
    set_num_threads(threads);
    const double t_legacy = legacy_sweep();
    const DseOutcome exact_outcome = run_dse(evaluator, configs, exact);
    const DseOutcome adaptive_outcome =
        run_dse(evaluator, configs, opts.dse);
    set_num_threads(0);

    const double sx = t_legacy / exact_outcome.wall_seconds;
    const double sa = t_legacy / adaptive_outcome.wall_seconds;
    hit_target = hit_target || sa >= 3.0;
    table.row({std::to_string(threads), std::to_string(configs.size()),
               fmt(t_legacy, 2), fmt(exact_outcome.wall_seconds, 2),
               fmt(adaptive_outcome.wall_seconds, 2), fmt(sx, 2),
               fmt(sa, 2)});
    csv.row({CsvWriter::num(threads),
             CsvWriter::num(static_cast<double>(configs.size())),
             CsvWriter::num(t_legacy),
             CsvWriter::num(exact_outcome.wall_seconds),
             CsvWriter::num(adaptive_outcome.wall_seconds),
             CsvWriter::num(sx), CsvWriter::num(sa),
             CsvWriter::num(static_cast<double>(adaptive_outcome.cache_hits)),
             CsvWriter::num(
                 static_cast<double>(adaptive_outcome.early_exits))});
    std::printf("  %d thread(s): %lld prefix-cache hits, %d/%zu configs "
                "early-exited, %lld/%lld image evals run\n",
                threads,
                static_cast<long long>(adaptive_outcome.cache_hits),
                adaptive_outcome.early_exits, configs.size(),
                static_cast<long long>(adaptive_outcome.images_evaluated),
                static_cast<long long>(configs.size()) *
                    opts.dse.eval_images);

    // Paper-scale projection at 6 threads (first count >= 6). Use the
    // exact-cached sweep: its cost is linear in the image budget, so the
    // (full test set / subset) scaling below is valid; the adaptive
    // sweep is sublinear (pruned configs stop after a roughly constant
    // number of images) and finishes sooner than this projection.
    if (threads >= 6 && threads / 2 < 6) {
      exact_cps = static_cast<double>(exact_outcome.results.size()) /
                  exact_outcome.wall_seconds;
      exact_cps_threads = threads;
    }
  }
  std::printf("%s\n", table.render("DSE scaling (speedups vs legacy "
                                   "per-config sweep)")
                          .c_str());
  if (exact_cps > 0.0) {
    const double paper_configs = 10000.0;
    const double projected_min =
        paper_configs / exact_cps / 60.0 *
        // paper evaluates the full test set; scale from our subset
        (2000.0 / opts.dse.eval_images);
    std::printf("  projected paper-scale sweep (10k configs, full test "
                "set, exact-cached; adaptive finishes sooner) at %d "
                "threads: %.0f min (paper: <120 min)\n",
                exact_cps_threads, projected_min);
  }
  std::printf("  >=3x adaptive speedup target: %s\n",
              hit_target ? "MET" : "NOT met");
  std::printf("CSV: %s/dse_scaling.csv\n", results_dir().c_str());
  return 0;
}
