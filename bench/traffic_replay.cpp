// Mixed-traffic replay harness: a seeded multi-model trace against the
// batched async runtime (src/serve), one InferenceServer per workload.
//
// Workload: four zoo models served side by side — micronet and dscnn
// (classifier heads) plus vww and ae_anomaly (the binary-person and
// scored-autoencoder workloads). A deterministic trace (bench/
// replay_common.hpp) assigns each request a workload class, a test
// image, and a Poisson-style arrival offset; the replay paces
// submissions to those offsets, so queue latency reflects arrival
// bursts, not just service time. Requests rotate through all four
// registry backends (exact configurations).
//
// Reported per workload class: request count, throughput, and
// nearest-rank p50/p95/p99 of queue and run latency. Every result is
// cross-checked bitwise against serial execution on the same backend
// (exit 2 on mismatch) — the serve determinism contract, extended here
// to the scored head: ae_anomaly's reconstruction score and thresholded
// class must match the serial engine exactly.
//
// The harness also absorbs the DS-CNN Pareto item: after the replay it
// runs the dscnn DSE, emits Fig. 2-style scatter/Pareto rows
// (bench_results/fig2_pareto_dscnn.csv) and a Table II-style
// packed / unpacked / hybrid comparison for dscnn.
//
//   ./build/bench/traffic_replay [--quick] [--strict] [--requests N]
//                                [--seed S]
//
// --strict turns the replay verdict (all classes served, all results
// bitwise identical to serial, nothing dropped) into exit 1 for CI.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/replay_common.hpp"
#include "src/serve/server.hpp"
#include "src/sig/skip_plan.hpp"
#include "src/unpack/layer_selection.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;
using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::InferResult;
using serve::ServeOptions;
using serve::ServeStats;

struct Args {
  bool quick = false;
  bool strict = false;
  int requests = 0;       // 0 -> per-scale default
  uint64_t seed = 20240u; // trace seed
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (arg == "--requests" && i + 1 < argc) {
      a.requests = std::stoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      a.seed = static_cast<uint64_t>(std::stoull(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(64);
    }
  }
  return a;
}

struct Workload {
  std::string name;
  QModel model;
  SynthCifar data;
};

// Table II-style dscnn comparison + Fig. 2 rows, reusing one DSE sweep.
void dscnn_pareto_and_table(const Workload& w, Scale scale) {
  PipelineOptions opts;
  opts.dse = dse_options_for(w.name, scale);
  AtamanPipeline pipe(&w.model, &w.data.train, &w.data.test, opts);
  std::printf("\n[dscnn] DSE for the Pareto/Table II section...\n");
  const DseOutcome outcome = pipe.explore();
  std::printf("[dscnn] swept %zu configs: %lld image evals, %lld "
              "prefix-cache hits, %d early exits\n",
              outcome.results.size(),
              static_cast<long long>(outcome.images_evaluated),
              static_cast<long long>(outcome.cache_hits),
              outcome.early_exits);

  // Fig. 2 rows (the old fig2_pareto_dscnn item).
  CsvWriter scatter(results_dir() + "/fig2_pareto_dscnn.csv",
                    {"mac_reduction", "latency_reduction", "accuracy",
                     "is_pareto", "config"});
  std::vector<bool> on_front(outcome.results.size(), false);
  for (const int idx : outcome.pareto)
    on_front[static_cast<size_t>(idx)] = true;
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    const DseResult& r = outcome.results[i];
    scatter.row({CsvWriter::num(r.conv_mac_reduction),
                 CsvWriter::num(r.latency_reduction),
                 CsvWriter::num(r.accuracy), on_front[i] ? "1" : "0",
                 r.config.to_string()});
  }
  std::printf("[dscnn] exact accuracy %.4f; Pareto front (%zu points):\n",
              outcome.exact_accuracy, outcome.pareto.size());
  for (const int idx : outcome.pareto) {
    const DseResult& r = outcome.results[static_cast<size_t>(idx)];
    std::printf("    mac-red %-8.3f acc %-8.4f %s\n", r.conv_mac_reduction,
                r.accuracy, r.config.to_string().c_str());
  }

  // Table II-style packed / unpacked / hybrid rows at the 5% budget.
  const int eval_limit = scale == Scale::kQuick ? 200 : 400;
  const int idx = pipe.select(outcome, 0.05);
  check(idx >= 0, "no dscnn design satisfies the 5% budget");
  const ApproxConfig& config =
      outcome.results[static_cast<size_t>(idx)].config;

  const DeployReport packed = pipe.deploy_engine("cmsis", eval_limit);
  const DeployReport unpacked =
      pipe.deploy(config, "ours-unpacked", eval_limit);
  const SkipMask mask = pipe.mask_for(config);
  const HybridPlan plan = select_layers_to_unpack(
      w.model, mask, pipe.options().board.flash_bytes);
  const std::vector<uint8_t> selection = plan.unpack_selection();
  EngineConfig cfg;
  cfg.model = &w.model;
  cfg.mask = &mask;
  cfg.unpack_selection = &selection;
  cfg.costs = pipe.options().costs;
  cfg.memory = pipe.options().memory;
  cfg.design_name = "ataman-hybrid";
  const auto hybrid_engine = EngineRegistry::instance().create("unpacked", cfg);
  const DeployReport hybrid =
      hybrid_engine->deploy(w.data.test, pipe.options().board, eval_limit);

  ConsoleTable table({"design", "acc", "latency ms", "flash KB", "MACs",
                      "energy mJ"});
  CsvWriter csv(results_dir() + "/table2_dscnn.csv",
                {"design", "accuracy", "latency_ms", "flash_kb", "mac_ops",
                 "energy_mj"});
  for (const auto* r : {&packed, &unpacked, &hybrid}) {
    const std::string label = r == &packed     ? "packed (cmsis)"
                              : r == &unpacked ? "unpacked @5% loss"
                                               : "hybrid @5% loss";
    table.row({label, fmt(r->top1_accuracy, 4), fmt(r->latency_ms, 2),
               fmt(static_cast<double>(r->flash_bytes) / 1024.0, 0),
               fmt(static_cast<double>(r->mac_ops) / 1e6, 2) + "M",
               fmt(r->energy_mj, 3)});
    csv.row({label, CsvWriter::num(r->top1_accuracy),
             CsvWriter::num(r->latency_ms),
             CsvWriter::num(static_cast<double>(r->flash_bytes) / 1024.0),
             std::to_string(r->mac_ops), CsvWriter::num(r->energy_mj)});
  }
  std::printf("%s", table.render("Table II-style comparison (dscnn)").c_str());
  std::printf("[csv] %s, %s/fig2_pareto_dscnn.csv\n", csv.path().c_str(),
              results_dir().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const Scale scale = args.quick ? Scale::kQuick : Scale::kDefault;
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("==============================================================\n");
  std::printf("Traffic replay: seeded mixed multi-model trace vs src/serve\n");
  std::printf("  hardware threads=%d  seed=%llu  flags:%s%s\n", hw_threads,
              static_cast<unsigned long long>(args.seed),
              args.quick ? " --quick" : "", args.strict ? " --strict" : "");
  std::printf("==============================================================\n");

  // The four serving classes. Building a model trains it on first run;
  // later runs hit the on-disk qmodel cache.
  std::vector<std::unique_ptr<Workload>> workloads;
  for (const ZooSpec& spec :
       {micronet_spec(), dscnn_spec(), vww_spec(), ae_anomaly_spec()}) {
    auto w = std::make_unique<Workload>();
    w->name = spec.arch.name;
    w->model = get_or_build_qmodel(spec);
    w->data = make_synth_cifar(spec.data);
    workloads.push_back(std::move(w));
  }
  const int num_classes = static_cast<int>(workloads.size());
  int min_images = workloads[0]->data.test.size();
  for (const auto& w : workloads)
    min_images = std::min(min_images, w->data.test.size());

  const int total = args.requests > 0 ? args.requests
                    : args.quick      ? 96
                                      : 320;
  const double mean_gap_ms = args.quick ? 1.0 : 1.5;
  const std::vector<TraceEvent> trace =
      make_trace(args.seed, total, num_classes, min_images, mean_gap_ms);
  const char* kEngines[] = {"unpacked", "cmsis", "ref", "xcube"};
  std::printf("[trace] %d events over ~%.0f ms, %d classes, engine "
              "rotation across %zu backends\n",
              total, trace.empty() ? 0.0 : trace.back().arrival_ms,
              num_classes, std::size(kEngines));

  // Serial oracles: one engine per (class, backend), run in trace order.
  // Their outputs are the bitwise ground truth for the replay.
  std::vector<std::vector<std::unique_ptr<InferenceEngine>>> oracles(
      static_cast<size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    for (const char* name : kEngines) {
      EngineConfig cfg;
      cfg.model = &workloads[static_cast<size_t>(c)]->model;
      oracles[static_cast<size_t>(c)].push_back(
          EngineRegistry::instance().create(name, cfg));
    }
  }
  std::vector<std::vector<int8_t>> expected(trace.size());
  Stopwatch serial_sw;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    const auto& w = *workloads[static_cast<size_t>(e.model_class)];
    expected[i] = oracles[static_cast<size_t>(e.model_class)]
                         [i % std::size(kEngines)]
                             ->run(w.data.test.image(e.image_index));
  }
  const double serial_ms = serial_sw.millis();
  std::printf("[serial] %d requests in %.1f ms (%.0f req/s, warm "
              "single-thread baseline)\n",
              total, serial_ms, 1e3 * total / serial_ms);

  // One server per workload class (a server binds one model).
  const int workers = args.quick ? 2 : 4;
  ServeOptions serve_options;
  serve_options.workers = workers;
  serve_options.max_batch = 8;
  std::vector<std::unique_ptr<InferenceServer>> servers;
  for (const auto& w : workloads)
    servers.push_back(
        std::make_unique<InferenceServer>(&w->model, serve_options));

  // Replay: pace each submission to its arrival offset.
  std::vector<InferFuture> futures(trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(e.arrival_ms)));
    const auto& w = *workloads[static_cast<size_t>(e.model_class)];
    InferRequest r;
    r.engine = kEngines[i % std::size(kEngines)];
    const auto img = w.data.test.image(e.image_index);
    r.image.assign(img.begin(), img.end());
    futures[i] = servers[static_cast<size_t>(e.model_class)]->submit(
        std::move(r));
  }
  for (auto& s : servers) s->drain();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  // Cross-check + per-class latency bucketing.
  ClassBuckets queue_buckets, run_buckets;
  std::vector<int> class_counts(static_cast<size_t>(num_classes), 0);
  int mismatches = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    const auto& w = *workloads[static_cast<size_t>(e.model_class)];
    const InferResult r = futures[i].get();
    if (r.logits != expected[i]) ++mismatches;
    if (w.model.head == TaskHead::kScore) {
      // Scored-head determinism: score and thresholded class must match
      // what the serial engine computes from the same logits.
      const auto& oracle = oracles[static_cast<size_t>(e.model_class)]
                                  [i % std::size(kEngines)];
      const double serial_score = reconstruction_score(
          w.model, oracle->quantize_input(w.data.test.image(e.image_index)),
          expected[i]);
      if (r.score != serial_score ||
          r.top1 != scored_class(w.model, serial_score))
        ++mismatches;
    }
    queue_buckets.add(w.name, r.queue_ms);
    run_buckets.add(w.name, r.run_ms);
    ++class_counts[static_cast<size_t>(e.model_class)];
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: replay diverged from serial on %d requests — "
                 "determinism contract broken\n",
                 mismatches);
    return 2;
  }

  // Per-class report.
  ConsoleTable table({"class", "reqs", "req/s", "queue p50/p95/p99 ms",
                      "run p50/p95/p99 ms"});
  CsvWriter csv(results_dir() + "/traffic_replay.csv",
                {"class", "requests", "req_per_s", "queue_p50", "queue_p95",
                 "queue_p99", "run_p50", "run_p95", "run_p99", "workers",
                 "hw_threads"});
  bool all_classes_served = true;
  for (int c = 0; c < num_classes; ++c) {
    const auto& w = *workloads[static_cast<size_t>(c)];
    const LatencySummary q = summarize_latency(queue_buckets.samples(w.name));
    const LatencySummary r = summarize_latency(run_buckets.samples(w.name));
    const int count = class_counts[static_cast<size_t>(c)];
    if (count == 0) all_classes_served = false;
    const double rps = 1e3 * count / wall_ms;
    table.row({w.name, std::to_string(count), fmt(rps, 1),
               fmt(q.p50, 2) + " / " + fmt(q.p95, 2) + " / " + fmt(q.p99, 2),
               fmt(r.p50, 2) + " / " + fmt(r.p95, 2) + " / " +
                   fmt(r.p99, 2)});
    csv.row({w.name, std::to_string(count), CsvWriter::num(rps),
             CsvWriter::num(q.p50), CsvWriter::num(q.p95),
             CsvWriter::num(q.p99), CsvWriter::num(r.p50),
             CsvWriter::num(r.p95), CsvWriter::num(r.p99),
             std::to_string(workers), std::to_string(hw_threads)});
  }
  std::printf("%s", table.render("replay latency by workload class").c_str());
  std::printf("[replay] %d requests in %.1f ms (%.0f req/s aggregate, %d "
              "workers per class)\n",
              total, wall_ms, 1e3 * total / wall_ms, workers);
  std::printf("[csv] %s\n", csv.path().c_str());

  // Drop-free check: every submitted request completed.
  bool nothing_dropped = true;
  for (const auto& s : servers) {
    const ServeStats stats = s->stats();
    if (stats.completed != stats.submitted) nothing_dropped = false;
  }

  // DS-CNN Pareto + Table II-style section.
  dscnn_pareto_and_table(*workloads[1], scale);

  const bool pass = all_classes_served && nothing_dropped;
  std::printf("\n[verdict] %s: %s, %s, all %d results bitwise identical "
              "to serial\n",
              pass ? "PASS" : "FAIL",
              all_classes_served ? "every class served"
                                 : "a class received no traffic",
              nothing_dropped ? "nothing dropped" : "requests dropped",
              total);
  return pass || !args.strict ? 0 : 1;
}
