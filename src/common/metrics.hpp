// Shared scalar metrics. Header-only so both the float training substrate
// (MSE autoencoder test metric) and the quantized evaluator (scored-head
// reporting) use the exact same AUC definition, and so every latency
// bench (traffic_replay, streaming_reuse) reports the same percentile.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace ataman {

// Nearest-rank percentile of `values` at rank q in [0, 100]: the p-th
// percentile of N samples is the ceil(p/100 * N)-th smallest
// (1-indexed). Needs no interpolation, is exact on small sample counts,
// and matches what SLO dashboards typically report. An empty sample set
// reports 0.0 rather than throwing — bench classes that received no
// traffic render as zero rows, not crashes. Takes a copy: sorting the
// caller's sample buffer in place would make later percentile calls on
// the same data order-dependent. Pinned by tests/test_percentiles.cpp.
inline double percentile(std::vector<double> values, double q) {
  check(q >= 0.0 && q <= 100.0, "percentile rank must be in [0, 100]");
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  size_t rank = static_cast<size_t>(std::ceil(q / 100.0 * n));
  if (rank < 1) rank = 1;  // p0 still reports the smallest sample
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

// Rank-based ROC AUC: the probability that a positive (label 1) scores
// higher than a negative (label 0), with ties credited 0.5 (average-rank
// Mann-Whitney U). Degenerate inputs — empty, or only one class present —
// return 0.5, the chance level. Deterministic for any input order.
inline double rank_auc(std::span<const double> scores,
                       std::span<const int> labels) {
  check(scores.size() == labels.size(), "rank_auc: size mismatch");
  const size_t n = scores.size();
  size_t positives = 0;
  for (int l : labels) {
    check(l == 0 || l == 1, "rank_auc: labels must be binary");
    positives += static_cast<size_t>(l);
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Sum of (average, 1-based) ranks over the positives. The tie group
  // starts at i + 1 so the scan always advances — with j starting at i,
  // a NaN score (NaN == NaN is false) would pin j == i and loop forever.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));  // ranks i+1..j
    for (size_t k = i; k < j; ++k)
      if (labels[order[k]] == 1) positive_rank_sum += avg_rank;
    i = j;
  }
  const double p = static_cast<double>(positives);
  const double q = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * q);
}

}  // namespace ataman
