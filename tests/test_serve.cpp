// The serve runtime (src/serve): bitwise determinism under concurrent,
// mixed-configuration load; micro-batch coalescing policy and fairness;
// shutdown-with-pending-requests semantics; engine-pool reuse accounting;
// and the XCubeEngine clone/worker-isolation audit (the engine holds a
// RefEngine delegate — see the clone/concurrency note in
// src/xcube/xcube_engine.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/engine_iface.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/serve/server.hpp"
#include "src/xcube/xcube_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::QueuedJob;
using serve::RequestQueue;
using serve::ServeOptions;
using serve::ServeStats;
using testing::make_random_image;
using testing::make_tiny_qmodel;

constexpr int kImagePixels = 12 * 12 * 3;

SkipMask make_random_mask(const QModel& model, double density,
                          uint64_t seed) {
  SkipMask mask = SkipMask::none(model);
  Rng rng(seed);
  for (auto& layer : mask.masks)
    for (auto& s : layer) s = rng.next_bool(density) ? 1 : 0;
  return mask;
}

// One (backend, mask) serving configuration plus its serial oracle.
struct ServeKey {
  std::string engine;
  const SkipMask* mask = nullptr;
};

// Serial single-request oracle: the same (engine, mask, image) through a
// freshly built registry engine — what the determinism contract promises
// the server matches bitwise.
std::vector<std::vector<int8_t>> serial_logits(
    const QModel& model, const std::vector<ServeKey>& keys,
    const std::vector<InferRequest>& requests) {
  std::vector<std::vector<int8_t>> expected;
  expected.reserve(requests.size());
  for (const InferRequest& r : requests) {
    (void)keys;
    EngineConfig cfg;
    cfg.model = &model;
    cfg.mask = r.mask;
    const auto engine = EngineRegistry::instance().create(r.engine, cfg);
    expected.push_back(engine->run(r.image));
  }
  return expected;
}

std::vector<InferRequest> make_mixed_requests(const std::vector<ServeKey>& keys,
                                              int count, uint64_t seed) {
  std::vector<InferRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const ServeKey& key = keys[static_cast<size_t>(i) % keys.size()];
    InferRequest r;
    r.engine = key.engine;
    r.mask = key.mask;
    r.image = make_random_image(kImagePixels, seed + static_cast<uint64_t>(i));
    requests.push_back(std::move(r));
  }
  return requests;
}

// ---------------------------------------------------------------------------
// RequestQueue: the coalescing policy in isolation
// ---------------------------------------------------------------------------

QueuedJob make_job(uint64_t id, const std::string& engine,
                   const SkipMask* mask) {
  QueuedJob job;
  job.id = id;
  job.request.engine = engine;
  job.request.mask = mask;
  job.state = std::make_shared<serve::detail::FutureState>();
  return job;
}

TEST(RequestQueue, CoalescesHeadKeyPreservingOrderAndFairness) {
  const QModel m = make_tiny_qmodel(600);
  const SkipMask mask = make_random_mask(m, 0.3, 601);
  RequestQueue queue(/*max_batch=*/3);
  // Arrival: A B A A B A  (A = masked ref, B = exact cmsis).
  ASSERT_TRUE(queue.push(make_job(0, "ref", &mask)));
  ASSERT_TRUE(queue.push(make_job(1, "cmsis", nullptr)));
  ASSERT_TRUE(queue.push(make_job(2, "ref", &mask)));
  ASSERT_TRUE(queue.push(make_job(3, "ref", &mask)));
  ASSERT_TRUE(queue.push(make_job(4, "cmsis", nullptr)));
  ASSERT_TRUE(queue.push(make_job(5, "ref", &mask)));

  std::vector<QueuedJob> batch;
  // Head is A: coalesce the two next As (cap 3), Bs keep their position.
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(batch[2].id, 3u);
  // Next head is B (fairness: the A flood did not starve it).
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 4u);
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 5u);

  // Same engine, different mask -> different key, never coalesced.
  const SkipMask other = make_random_mask(m, 0.3, 602);
  ASSERT_TRUE(queue.push(make_job(6, "ref", &mask)));
  ASSERT_TRUE(queue.push(make_job(7, "ref", &other)));
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 6u);

  // close(): pushes rejected, queued jobs drain, then pop returns false.
  queue.close();
  EXPECT_FALSE(queue.push(make_job(8, "ref", nullptr)));
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_FALSE(queue.pop_batch(batch));

  RequestQueue cancel_queue(4);
  ASSERT_TRUE(cancel_queue.push(make_job(0, "ref", nullptr)));
  ASSERT_TRUE(cancel_queue.push(make_job(1, "ref", nullptr)));
  const std::vector<QueuedJob> pending = cancel_queue.cancel_pending();
  EXPECT_EQ(pending.size(), 2u);
  EXPECT_EQ(cancel_queue.size(), 0);
  EXPECT_FALSE(cancel_queue.pop_batch(batch));
}

// ---------------------------------------------------------------------------
// Determinism under load
// ---------------------------------------------------------------------------

TEST(ServeDeterminism, IdenticalLogitsAcrossWorkersBatchingAndArrivalOrder) {
  const QModel m = make_tiny_qmodel(610);
  const SkipMask mask_a = make_random_mask(m, 0.25, 611);
  const SkipMask mask_b = make_random_mask(m, 0.45, 612);
  const std::vector<ServeKey> keys = {
      {"ref", &mask_a},    {"ref", nullptr},   {"unpacked", &mask_a},
      {"unpacked", &mask_b}, {"cmsis", nullptr}, {"xcube", nullptr},
  };
  const std::vector<InferRequest> requests =
      make_mixed_requests(keys, 48, 6100);
  const std::vector<std::vector<int8_t>> expected =
      serial_logits(m, keys, requests);

  for (const int workers : {1, 2, 8}) {
    for (const int max_batch : {1, 8}) {
      for (const uint64_t shuffle_seed : {0ull, 1ull, 2ull}) {
        // Shuffled arrival order; futures indexed back to request index.
        std::vector<size_t> order(requests.size());
        std::iota(order.begin(), order.end(), size_t{0});
        if (shuffle_seed != 0) {
          Rng rng(6200 + shuffle_seed);
          for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<size_t>(rng.next_below(i))]);
        }

        ServeOptions options;
        options.workers = workers;
        options.max_batch = max_batch;
        InferenceServer server(&m, options);
        std::vector<InferFuture> futures(requests.size());
        for (const size_t idx : order) {
          futures[idx] = server.submit(requests[idx]);  // copies the image
        }
        server.drain();

        for (size_t i = 0; i < requests.size(); ++i) {
          const serve::InferResult r = futures[i].get();
          EXPECT_EQ(r.logits, expected[i])
              << "workers=" << workers << " max_batch=" << max_batch
              << " shuffle=" << shuffle_seed << " request " << i;
          EXPECT_EQ(r.top1, argmax_lowest_index(expected[i]));
          EXPECT_GE(r.worker, 0);
          EXPECT_LT(r.worker, workers);
          EXPECT_GE(r.batch_size, 1);
          EXPECT_LE(r.batch_size, max_batch);
          EXPECT_GE(r.queue_ms, 0.0);
          EXPECT_GE(r.run_ms, 0.0);
        }
        const ServeStats stats = server.stats();
        EXPECT_EQ(stats.submitted, 48);
        EXPECT_EQ(stats.completed, 48);
        EXPECT_EQ(stats.cancelled, 0);
        EXPECT_EQ(std::accumulate(stats.per_worker.begin(),
                                  stats.per_worker.end(), int64_t{0}),
                  48);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed-engine batching correctness + coalescing evidence
// ---------------------------------------------------------------------------

TEST(ServeBatching, MixedEngineTrafficCoalescesAndStaysCorrect) {
  const QModel m = make_tiny_qmodel(620);
  const SkipMask mask = make_random_mask(m, 0.3, 621);
  const std::vector<ServeKey> keys = {{"unpacked", &mask}, {"cmsis", nullptr}};
  const std::vector<InferRequest> requests =
      make_mixed_requests(keys, 120, 6300);
  const std::vector<std::vector<int8_t>> expected =
      serial_logits(m, keys, requests);

  ServeOptions options;
  options.workers = 2;
  options.max_batch = 8;
  InferenceServer server(&m, options);
  const std::vector<InferFuture> futures =
      server.submit_all(std::vector<InferRequest>(requests));
  server.drain();

  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(futures[i].get().logits, expected[i]) << "request " << i;
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 120);
  // 120 near-instant submissions against 2 workers: the queue must have
  // built up, so at least one micro-batch really coalesced.
  EXPECT_GE(stats.max_batch_seen, 2);
  EXPECT_GT(stats.coalesced, 0);
  EXPECT_LT(stats.batches, stats.completed);
}

// ---------------------------------------------------------------------------
// Shutdown with pending requests
// ---------------------------------------------------------------------------

// Test-owned gate shared by every GateEngine clone: run() blocks until
// the test releases it, making "worker busy while the queue is full"
// deterministic instead of a scheduling race.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;
};

class GateEngine : public RefEngine {
 public:
  GateEngine(const QModel* model, Gate* gate) : RefEngine(model), gate_(gate) {
    set_design_name("serve-gate");
  }

  std::vector<int8_t> run(std::span<const uint8_t> image) const override {
    wait_for_release();
    return RefEngine::run(image);
  }

  // The server executes batches through run_batch, which in RefEngine
  // does not call run() per image — an engine that intercepts execution
  // must override both (the engine_iface.hpp contract). Gate once per
  // batch: what matters to the tests is that the worker blocks.
  void run_batch(std::span<const std::span<const uint8_t>> images,
                 std::vector<std::vector<int8_t>>& logits_out) const override {
    wait_for_release();
    RefEngine::run_batch(images, logits_out);
  }

  // Out-of-tree backends must override clone() themselves or inherit a
  // sliced copy — this is the documented contract (see engine_iface.hpp).
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<GateEngine>(*this);
  }

 private:
  void wait_for_release() const {
    std::unique_lock<std::mutex> lock(gate_->mutex);
    gate_->entered = true;
    gate_->cv.notify_all();
    gate_->cv.wait(lock, [&] { return gate_->released; });
  }

  Gate* gate_;
};

TEST(ServeShutdown, CancelPendingResolvesEveryFutureWithoutHanging) {
  const QModel m = make_tiny_qmodel(630);
  Gate gate;
  EngineRegistry::instance().register_engine(
      "serve-gate", [&m, &gate](const EngineConfig& cfg) {
        return std::make_unique<GateEngine>(cfg.model, &gate);
      });

  ServeOptions options;
  options.workers = 1;
  options.max_batch = 1;
  auto server = std::make_unique<InferenceServer>(&m, options);

  // First job blocks the only worker on the gate; 30 more pile up behind.
  InferRequest gate_request;
  gate_request.engine = "serve-gate";
  gate_request.image = make_random_image(kImagePixels, 6400);
  const InferFuture gate_future = server->submit(gate_request);
  std::vector<InferFuture> pending;
  for (int i = 0; i < 30; ++i) {
    InferRequest r;
    r.engine = "ref";
    r.image = make_random_image(kImagePixels, 6401 + i);
    pending.push_back(server->submit(r));
  }
  {
    std::unique_lock<std::mutex> lock(gate.mutex);
    gate.cv.wait(lock, [&] { return gate.entered; });
  }

  // stop(kCancelPending) cancels the 30 queued jobs immediately, then
  // blocks joining the gated worker — run it on a helper thread.
  std::thread stopper([&] {
    server->stop(InferenceServer::Shutdown::kCancelPending);
  });
  for (const InferFuture& f : pending) {
    f.wait();  // resolved (as cancelled) while the worker is still gated
    EXPECT_TRUE(f.cancelled());
    EXPECT_THROW(f.get(), Error);
  }
  EXPECT_EQ(server->stats().cancelled, 30);
  EXPECT_FALSE(gate_future.ready());  // in-flight, not cancelled

  {
    const std::lock_guard<std::mutex> lock(gate.mutex);
    gate.released = true;
  }
  gate.cv.notify_all();
  stopper.join();

  // The in-flight request still completed exactly.
  const serve::InferResult gated = gate_future.get();
  EXPECT_EQ(gated.logits, RefEngine(&m).run(gate_request.image));
  const ServeStats stats = server->stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cancelled, 30);
  EXPECT_EQ(stats.submitted, 31);

  // Stopped server rejects new work; destruction after stop() is clean.
  InferRequest late;
  late.engine = "ref";
  late.image = make_random_image(kImagePixels, 6499);
  EXPECT_THROW(server->submit(late), Error);
  server.reset();

  // The registry is process-global and has no unregister: replace the
  // factory (it captured this test's stack frame) with a self-contained
  // one so later tests enumerating/creating every backend can't touch
  // dangling pointers.
  EngineRegistry::instance().register_engine(
      "serve-gate", [](const EngineConfig& cfg) {
        return std::make_unique<RefEngine>(cfg.model);
      });
}

// ---------------------------------------------------------------------------
// Future handle semantics
// ---------------------------------------------------------------------------

TEST(ServeFuture, HandlesAreReusableAndInvalidOnesThrow) {
  const InferFuture invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.get(), Error);
  EXPECT_THROW((void)invalid.ready(), Error);

  const QModel m = make_tiny_qmodel(640);
  InferenceServer server(&m, ServeOptions{.workers = 1, .max_batch = 2});
  InferRequest r;
  r.engine = "ref";
  r.image = make_random_image(kImagePixels, 6500);
  const InferFuture future = server.submit(r);
  const InferFuture copy = future;  // copies observe the same slot
  server.drain();
  EXPECT_TRUE(future.ready());
  EXPECT_FALSE(future.cancelled());
  const auto first = future.get();
  const auto again = copy.get();  // get() twice: same bits
  EXPECT_EQ(first.logits, again.logits);
  EXPECT_EQ(first.logits, RefEngine(&m).run(r.image));

  // Submit-side validation fails fast on the caller thread.
  InferRequest bad_shape;
  bad_shape.engine = "ref";
  bad_shape.image.assign(7, 0);
  EXPECT_THROW(server.submit(bad_shape), Error);
  InferRequest bad_engine;
  bad_engine.engine = "no-such-backend";
  bad_engine.image = make_random_image(kImagePixels, 6501);
  EXPECT_THROW(server.submit(bad_engine), Error);
}

// ---------------------------------------------------------------------------
// Engine pool reuse accounting
// ---------------------------------------------------------------------------

TEST(ServePool, RebindableRefCollapsesMasksNonRebindableKeysPerMask) {
  const QModel m = make_tiny_qmodel(650);
  const SkipMask mask_a = make_random_mask(m, 0.2, 651);
  const SkipMask mask_b = make_random_mask(m, 0.4, 652);
  const SkipMask mask_c = make_random_mask(m, 0.6, 653);

  {
    // "ref" rebinds: many masks, ONE prototype, at most one clone per
    // worker — PR 2's bind_mask doing the per-batch work.
    const std::vector<ServeKey> keys = {{"ref", &mask_a},
                                        {"ref", &mask_b},
                                        {"ref", &mask_c},
                                        {"ref", nullptr}};
    InferenceServer server(&m, ServeOptions{.workers = 2, .max_batch = 4});
    const std::vector<InferRequest> requests =
        make_mixed_requests(keys, 40, 6600);
    const std::vector<std::vector<int8_t>> expected =
        serial_logits(m, keys, requests);
    const auto futures =
        server.submit_all(std::vector<InferRequest>(requests));
    server.drain();
    for (size_t i = 0; i < futures.size(); ++i)
      EXPECT_EQ(futures[i].get().logits, expected[i]) << i;
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.pool.prototypes_built, 1);
    EXPECT_EQ(stats.pool.factory_builds, 0);
    EXPECT_GE(stats.pool.engines_cloned, 1);
    EXPECT_LE(stats.pool.engines_cloned, 2);  // <= workers
  }
  {
    // "unpacked" bakes the mask in: one prototype per distinct mask,
    // cloned at most once per (worker, key).
    const std::vector<ServeKey> keys = {{"unpacked", &mask_a},
                                        {"unpacked", &mask_b},
                                        {"unpacked", &mask_c}};
    InferenceServer server(&m, ServeOptions{.workers = 2, .max_batch = 4});
    const std::vector<InferRequest> requests =
        make_mixed_requests(keys, 30, 6700);
    const std::vector<std::vector<int8_t>> expected =
        serial_logits(m, keys, requests);
    const auto futures =
        server.submit_all(std::vector<InferRequest>(requests));
    server.drain();
    for (size_t i = 0; i < futures.size(); ++i)
      EXPECT_EQ(futures[i].get().logits, expected[i]) << i;
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.pool.prototypes_built, 3);  // one per distinct mask
    EXPECT_EQ(stats.pool.factory_builds, 0);
    EXPECT_GE(stats.pool.engines_cloned, 3);  // every key ran somewhere
    EXPECT_LE(stats.pool.engines_cloned, 6);  // <= workers * keys
  }
}

// ---------------------------------------------------------------------------
// XCubeEngine clone / worker isolation audit (ISSUE 4 satellite)
// ---------------------------------------------------------------------------

TEST(ServeXCube, CloneIsCheapEquivalentAndSafeAcrossWorkers) {
  const QModel m = make_tiny_qmodel(660);
  EngineConfig cfg;
  cfg.model = &m;
  const auto original = EngineRegistry::instance().create("xcube", cfg);
  const auto clone = original->clone();
  ASSERT_NE(clone, nullptr);
  // The clone carries identical modeled costs (constructor-computed
  // state copied, not re-derived).
  EXPECT_EQ(clone->total_cycles(), original->total_cycles());
  EXPECT_EQ(clone->flash_bytes(), original->flash_bytes());
  EXPECT_EQ(clone->ram_bytes(), original->ram_bytes());

  // Stateless-after-construction audit: hammer BOTH the original and its
  // clone from concurrent threads; every logit vector must match the
  // serial reference. (The pool never shares instances across workers —
  // this pins down that even sharing would be safe today, so the
  // RefEngine delegate inside XCubeEngine is not load-bearing state.)
  const RefEngine oracle(&m);
  constexpr int kThreads = 4, kImagesPerThread = 10;
  std::vector<std::vector<std::vector<int8_t>>> got(
      kThreads, std::vector<std::vector<int8_t>>(kImagesPerThread));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kImagesPerThread; ++i) {
        const auto img =
            make_random_image(kImagePixels, 6800 + t * kImagesPerThread + i);
        const InferenceEngine& engine = (t % 2 == 0) ? *original : *clone;
        got[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            engine.run(img);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kImagesPerThread; ++i) {
      const auto img =
          make_random_image(kImagePixels, 6800 + t * kImagesPerThread + i);
      EXPECT_EQ(got[static_cast<size_t>(t)][static_cast<size_t>(i)],
                oracle.run(img))
          << "thread " << t << " image " << i;
    }
  }

  // And through the server at 8 workers: xcube traffic matches serial.
  InferenceServer server(&m, ServeOptions{.workers = 8, .max_batch = 4});
  std::vector<InferFuture> futures;
  for (int i = 0; i < 32; ++i) {
    InferRequest r;
    r.engine = "xcube";
    r.image = make_random_image(kImagePixels, 6900 + i);
    futures.push_back(server.submit(r));
  }
  server.drain();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get().logits,
              oracle.run(make_random_image(kImagePixels, 6900 + i)))
        << i;
  }
}

}  // namespace
}  // namespace ataman
