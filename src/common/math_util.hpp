// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/common/error.hpp"

namespace ataman {

constexpr int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Saturate an int32 accumulator into int8 (CMSIS __SSAT(x, 8)).
constexpr int8_t saturate_int8(int32_t v) {
  return static_cast<int8_t>(std::clamp<int32_t>(v, -128, 127));
}

constexpr int16_t saturate_int16(int32_t v) {
  return static_cast<int16_t>(std::clamp<int32_t>(v, -32768, 32767));
}

// Checked narrowing conversion (Core Guidelines ES.46 narrow_cast with check).
template <typename To, typename From>
To narrow(From value) {
  const To result = static_cast<To>(value);
  check(static_cast<From>(result) == value, "narrowing conversion lost value");
  return result;
}

// Round-to-nearest-even float->int conversion used by the quantizer.
inline int32_t round_to_int32(float v) {
  return static_cast<int32_t>(std::lrintf(v));
}

// Output spatial extent of a conv/pool window.
constexpr int conv_out_extent(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

// Hard-errors unless the (un-padded) pool window tiles the input exactly:
// the window must fit and (extent - kernel) must be divisible by stride
// in both dimensions. Non-covering geometry would silently truncate edge
// pixels, whose handling the ref/packed/unpacked/codegen paths could
// disagree on; the quantizer, the float substrate and the pool kernels
// all enforce this instead.
inline void validate_pool_geometry(int in_h, int in_w, int kernel, int stride,
                                   const char* what) {
  check(kernel >= 1 && stride >= 1,
        std::string(what) + ": pool kernel/stride must be positive");
  check(in_h >= kernel && in_w >= kernel,
        std::string(what) + ": pool window exceeds the input extent");
  check((in_h - kernel) % stride == 0 && (in_w - kernel) % stride == 0,
        std::string(what) +
            ": pool window does not tile the input exactly "
            "((extent - kernel) % stride != 0); pick a covering geometry "
            "so no engine has to invent edge-pixel semantics");
}

}  // namespace ataman
