// Ablation of the weight-quantization granularity: per-output-channel
// conv/depthwise weight scales (TFLite-Micro int8 convention, this
// repo's default) vs the paper's per-tensor setup (one shared max-abs
// scale per layer). Both quantize the same trained float model with the
// same calibration set and evaluate exact (no skipping) top-1 — the
// delta isolates what granularity alone buys on nets whose channel
// weight ranges differ (depthwise layers especially).
//
// Evaluation uses a large freshly-generated held-out split (salt 7,
// disjoint from the train/test salts) rather than the zoo's 1000-image
// test split: the per-channel effect on these nets is sub-point, and a
// 1000-image estimate has a ~1.6 pp standard error — pure rounding noise
// at that resolution. The zoo-test column is printed alongside for
// reference. SynthCIFAR is procedural, so enlarging the eval set is free
// and bit-reproducible.
#include "bench/bench_common.hpp"
#include "src/data/synth_cifar.hpp"
#include "src/nn/engine.hpp"
#include "src/quant/quantizer.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

constexpr uint64_t kEvalSalt = 7;  // train/test use different salts

struct AblationRow {
  std::string network;
  int eval_images = 0;
  double acc_per_tensor = 0.0;
  double acc_per_channel = 0.0;
  double test_per_tensor = 0.0;
  double test_per_channel = 0.0;
};

AblationRow ablate(const ZooSpec& spec, Scale scale) {
  const int eval_images = scale == Scale::kQuick ? 2000 : 8000;
  TrainedModel trained = get_or_train(spec);
  const SynthCifar data = make_synth_cifar(spec.data);

  QuantizerConfig per_tensor;
  per_tensor.per_channel_weights = false;
  QModel qt = quantize_model(trained.net, data.train, per_tensor);
  QModel qc = quantize_model(trained.net, data.train);  // per-channel

  const Dataset held_out = make_synth_cifar_split(
      spec.data, eval_images, kEvalSalt,
      spec.data.task == SynthTask::kAnomaly ? 0.5f : 0.0f);

  AblationRow row;
  row.network = spec.arch.name;
  row.eval_images = eval_images;
  row.acc_per_tensor = evaluate_quantized_accuracy(qt, held_out);
  row.acc_per_channel = evaluate_quantized_accuracy(qc, held_out);
  row.test_per_tensor = evaluate_quantized_accuracy(qt, data.test);
  row.test_per_channel = evaluate_quantized_accuracy(qc, data.test);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header("Ablation: per-channel vs per-tensor weight quantization",
               scale);

  ConsoleTable table({"Network", "Eval imgs", "Per-tensor(%)",
                      "Per-channel(%)", "Delta(pp)", "Zoo-test delta(pp)"});
  CsvWriter csv(results_dir() + "/ablation_per_channel.csv",
                {"network", "eval_images", "acc_per_tensor",
                 "acc_per_channel", "delta_pp", "zoo_test_delta_pp"});

  for (const ZooSpec& spec : {dscnn_spec(), vww_spec()}) {
    const AblationRow r = ablate(spec, scale);
    const double delta_pp = 100 * (r.acc_per_channel - r.acc_per_tensor);
    const double test_delta_pp =
        100 * (r.test_per_channel - r.test_per_tensor);
    table.row({r.network, std::to_string(r.eval_images),
               fmt(100 * r.acc_per_tensor, 2),
               fmt(100 * r.acc_per_channel, 2), fmt(delta_pp, 2),
               fmt(test_delta_pp, 2)});
    csv.row({r.network, CsvWriter::num(r.eval_images),
             CsvWriter::num(r.acc_per_tensor),
             CsvWriter::num(r.acc_per_channel), CsvWriter::num(delta_pp),
             CsvWriter::num(test_delta_pp)});
  }

  std::printf("%s\n",
              table.render("Weight-granularity ablation (exact configs)")
                  .c_str());
  std::printf("CSV: %s/ablation_per_channel.csv\n", results_dir().c_str());
  return 0;
}
