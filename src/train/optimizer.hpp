// SGD with momentum and decoupled L2 weight decay — sufficient for the
// CIFAR-class models of the paper and free of hidden state beyond the
// per-parameter velocity buffers.
#pragma once

#include <vector>

#include "src/train/layers.hpp"

namespace ataman {

struct SgdConfig {
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config) : config_(config) {}

  // Applies one update step to `params` using their accumulated gradients.
  // Velocity buffers are allocated on first use and keyed by position, so
  // the same parameter list must be passed every step.
  void step(const std::vector<ParamRef>& params);

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace ataman
