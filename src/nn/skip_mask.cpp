#include "src/nn/skip_mask.hpp"

#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

bool SkipMask::empty() const {
  for (const auto& m : masks)
    for (const uint8_t v : m)
      if (v) return false;
  return true;
}

int64_t SkipMask::skipped_static_operands() const {
  int64_t total = 0;
  for (const auto& m : masks)
    total += std::accumulate(m.begin(), m.end(), int64_t{0});
  return total;
}

int64_t SkipMask::skipped_macs(const QModel& model) const {
  validate(model);
  int64_t total = 0;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (!d.skippable) continue;
    if (ordinal < static_cast<int>(masks.size())) {
      const auto& m = masks[static_cast<size_t>(ordinal)];
      const int64_t skipped =
          std::accumulate(m.begin(), m.end(), int64_t{0});
      total += skipped * d.positions;
    }
    ++ordinal;
  }
  return total;
}

void SkipMask::validate(const QModel& model) const {
  const int approx_count = model.approx_layer_count();
  check(static_cast<int>(masks.size()) <= approx_count,
        "skip mask has more layers than the model has approximable layers");
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (!d.skippable) continue;
    if (ordinal < static_cast<int>(masks.size())) {
      const auto& m = masks[static_cast<size_t>(ordinal)];
      check(m.empty() || static_cast<int64_t>(m.size()) ==
                             d.skippable_operand_count(),
            "skip mask size mismatch on approximable layer " +
                std::to_string(ordinal));
    }
    ++ordinal;
  }
}

SkipMask SkipMask::none(const QModel& model) {
  SkipMask mask;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (d.skippable)
      mask.masks.emplace_back(
          static_cast<size_t>(d.skippable_operand_count()), 0);
  }
  return mask;
}

void zero_skipped_weights(QLayer& layer, const std::vector<uint8_t>& mask) {
  if (mask.empty()) return;
  if (auto* conv = std::get_if<QConv2D>(&layer)) {
    // Plain conv: mask index == weight index ([out_c][patch]).
    ATAMAN_ASSERT(mask.size() == conv->weights.size());
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) conv->weights[i] = 0;
  } else if (auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
    // Depthwise: mask is [channel][tap], weights are [tap][channel].
    const int patch = dw->patch_size();
    ATAMAN_ASSERT(static_cast<int64_t>(mask.size()) == dw->weight_count());
    for (int ch = 0; ch < dw->channels; ++ch)
      for (int p = 0; p < patch; ++p)
        if (mask[static_cast<size_t>(ch) * patch + p])
          dw->weights[dw_weight_index(ch, p, dw->channels)] = 0;
  } else {
    fail("zero_skipped_weights on a non-approximable layer");
  }
}

QModel apply_skip_mask(const QModel& model, const SkipMask& mask) {
  mask.validate(model);
  QModel masked = model;
  int ordinal = 0;
  for (QLayer& layer : masked.layers) {
    if (!describe_layer(layer).skippable) continue;
    if (ordinal < static_cast<int>(mask.masks.size()))
      zero_skipped_weights(layer, mask.masks[static_cast<size_t>(ordinal)]);
    ++ordinal;
  }
  return masked;
}

}  // namespace ataman
