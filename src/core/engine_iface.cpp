#include "src/core/engine_iface.hpp"

#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/core/eval.hpp"
#include "src/nn/engine.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "src/xcube/xcube_engine.hpp"

namespace ataman {

std::vector<int8_t> InferenceEngine::quantize_input(
    std::span<const uint8_t> image) const {
  const QModel& m = model();
  const int64_t expected =
      static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
  check(static_cast<int64_t>(image.size()) == expected,
        "input image size mismatch");
  std::vector<int8_t> q(image.size());
  for (size_t i = 0; i < image.size(); ++i) {
    // input scale is 1/255 with zero_point -128: q = pixel - 128 exactly.
    const float real = static_cast<float>(image[i]) / 255.0f;
    q[i] = m.input.quantize(real);
  }
  return q;
}

double reconstruction_score(const QModel& model,
                            std::span<const int8_t> q_input,
                            std::span<const int8_t> reconstruction) {
  const auto* head = std::get_if<QDense>(&model.layers.back());
  check(head != nullptr,
        "reconstruction_score: final layer must be fully connected");
  check(reconstruction.size() == q_input.size() &&
            static_cast<int64_t>(q_input.size()) ==
                static_cast<int64_t>(model.in_h) * model.in_w * model.in_c,
        "reconstruction_score: reconstruction width != input element count");
  const QuantParams out = head->out;
  const QuantParams in = model.input;
  double sum = 0.0;
  for (size_t i = 0; i < q_input.size(); ++i) {
    const double diff = static_cast<double>(out.dequantize(reconstruction[i])) -
                        static_cast<double>(in.dequantize(q_input[i]));
    sum += diff * diff;
  }
  return sum / static_cast<double>(q_input.size());
}

int InferenceEngine::classify(std::span<const uint8_t> image) const {
  if (model().head == TaskHead::kScore)
    return scored_class(model(), score(image));
  return argmax_lowest_index(run(image));
}

double InferenceEngine::score(std::span<const uint8_t> image) const {
  check(model().head == TaskHead::kScore,
        "score() on engine '" + design_name_ +
            "': model '" + model().name + "' has an argmax head");
  return reconstruction_score(model(), quantize_input(image), run(image));
}

void InferenceEngine::decline_capability(const char* api,
                                         const char* gate) const {
  fail("engine '" + design_name_ + "' does not support " + api + " (check " +
       gate + "() before calling; callers without a fallback should pick a "
       "capable backend)");
}

std::vector<int8_t> InferenceEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  (void)layer_begin;
  (void)activations;
  decline_capability("run_from", "supports_run_from");
}

std::vector<int8_t> InferenceEngine::run_incremental(
    StreamState& state, std::span<const uint8_t> new_columns) const {
  (void)state;
  (void)new_columns;
  decline_capability("run_incremental", "supports_run_incremental");
}

void InferenceEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  logits_out.assign(images.size(), {});
  for (size_t i = 0; i < images.size(); ++i) logits_out[i] = run(images[i]);
}

void InferenceEngine::rebind_mask(const SkipMask* mask) {
  (void)mask;
  decline_capability("rebind_mask", "supports_mask_rebind");
}

const std::vector<LayerProfile>& InferenceEngine::layer_profile() const {
  static const std::vector<LayerProfile> kEmpty;
  return kEmpty;
}

DeployReport InferenceEngine::deploy(const Dataset& eval,
                                     const BoardSpec& board,
                                     int limit) const {
  return assemble_deploy_report(*this, eval, board, limit);
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::EngineRegistry() {
  factories_["ref"] = [](const EngineConfig& cfg) {
    auto engine = std::make_unique<RefEngine>(cfg.model);
    engine->bind_mask(cfg.mask);
    return engine;
  };
  factories_["cmsis"] = [](const EngineConfig& cfg) {
    return std::make_unique<CmsisEngine>(cfg.model, cfg.costs, cfg.memory);
  };
  factories_["unpacked"] = [](const EngineConfig& cfg) {
    return std::make_unique<UnpackedEngine>(cfg.model, cfg.mask, cfg.costs,
                                            cfg.memory, cfg.unpack_selection);
  };
  factories_["xcube"] = [](const EngineConfig& cfg) {
    return std::make_unique<XCubeEngine>(
        cfg.model, cfg.xcube != nullptr ? *cfg.xcube : XCubeCostTable{});
  };
}

void EngineRegistry::register_engine(const std::string& name,
                                     Factory factory) {
  check(!name.empty(), "engine name must be non-empty");
  check(factory != nullptr, "engine factory must be callable");
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool EngineRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::vector<std::string> EngineRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

std::unique_ptr<InferenceEngine> EngineRegistry::create(
    const std::string& name, const EngineConfig& config) const {
  check(config.model != nullptr, "EngineConfig.model must be set");
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    fail("unknown engine '" + name + "' (registered: " + known + ")");
  }
  std::unique_ptr<InferenceEngine> engine = factory(config);
  check(engine != nullptr, "engine factory for '" + name + "' returned null");
  if (!config.design_name.empty())
    engine->set_design_name(config.design_name);
  return engine;
}

}  // namespace ataman
