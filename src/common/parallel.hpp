// Thin OpenMP wrappers.
//
// All data-parallel loops in the library (batch evaluation, activation
// statistics capture, DSE sweeps, GEMM) go through these helpers so thread
// control lives in one place. Results must not depend on the thread count:
// callers either write to disjoint slots or reduce with order-insensitive
// (integer) arithmetic.
#pragma once

#include <cstdint>
#include <functional>

namespace ataman {

// Number of worker threads the wrappers will use (OpenMP default unless
// overridden via set_num_threads or the OMP_NUM_THREADS environment).
int num_threads();

// Override the worker count for subsequent parallel_for calls; n <= 0
// restores the OpenMP default.
void set_num_threads(int n);

// Parallel loop over [begin, end). `body(i)` must be safe to call
// concurrently for distinct i. Exceptions thrown by `body` are captured
// and rethrown (first one wins) after the loop completes.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t)>& body);

// As parallel_for, but hands each worker its contiguous chunk
// [chunk_begin, chunk_end) — useful when per-iteration work is tiny.
void parallel_for_chunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body);

// Parallel loop where `body(worker, i)` also receives a stable worker id in
// [0, workers). The i -> worker mapping is static (contiguous chunks), so
// per-worker partial results — and any sequential reduction over them —
// are bitwise deterministic for a fixed worker count. Returns the number
// of workers used.
int parallel_for_indexed(int64_t begin, int64_t end,
                         const std::function<void(int, int64_t)>& body);

}  // namespace ataman
