// Ablation of the paper's two §II claims plus the design-choice split:
//   (a) §II-A: compile-time customization cuts runtime flash by up to 30%;
//   (b) §II-B: a fully unpacked fixed-weight convolution fits the flash
//       budget (AlexNet: < 60% of available flash);
//   (c) unpack-only vs skip-only vs cooperative (unpack+skip) — where the
//       latency actually comes from.
#include "bench/bench_common.hpp"
#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/unpack/unpacked_engine.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

void ablate(const BenchModel& m, Scale scale, ConsoleTable& table,
            CsvWriter& csv) {
  const BoardSpec board = stm32u575_board();
  PipelineOptions opts;
  opts.dse = dse_options_for(m.name, scale);
  AtamanPipeline pipe(&m.qmodel, &m.data.train, &m.data.test, opts);

  // Baseline packed.
  const CmsisEngine cmsis(&m.qmodel);
  const double base_ms = board.cycles_to_ms(cmsis.total_cycles());

  // (b) Full unpack, no skipping.
  const UnpackedEngine unpack_only(&m.qmodel);
  const double unpack_ms = board.cycles_to_ms(unpack_only.total_cycles());
  const FlashReport uflash = unpack_only.flash();
  const double avail =
      static_cast<double>(board.flash_bytes);

  // (c) Cooperative: best 0%-loss design.
  const DseOutcome outcome = pipe.explore();
  const int idx0 = pipe.select(outcome, 0.0);
  check(idx0 >= 0, "no 0% design");
  const DseResult& coop = outcome.results[static_cast<size_t>(idx0)];
  const double coop_ms = board.cycles_to_ms(coop.cycles);

  // Skip-only: same skip mask but executed by the *packed* engine — the
  // loop structure cannot exploit static skips, so cycles stay at the
  // baseline. This is exactly why the paper needs unpacking: skipping
  // becomes instruction removal only in unpacked code.
  const double skip_only_ms = base_ms;

  table.row({m.name, "cmsis packed (exact)", fmt(base_ms, 1),
             fmt(static_cast<double>(packed_flash(m.qmodel).total_bytes) /
                     1024.0, 0),
             "1.000"});
  table.row({m.name, "unpack only (exact)", fmt(unpack_ms, 1),
             fmt(static_cast<double>(uflash.total_bytes) / 1024.0, 0),
             fmt(base_ms / unpack_ms, 3)});
  table.row({m.name, "skip only (packed loops)", fmt(skip_only_ms, 1),
             fmt(static_cast<double>(packed_flash(m.qmodel).total_bytes) /
                     1024.0, 0),
             "1.000"});
  table.row({m.name, "cooperative @0% loss", fmt(coop_ms, 1),
             fmt(static_cast<double>(coop.flash_bytes) / 1024.0, 0),
             fmt(base_ms / coop_ms, 3)});
  table.separator();

  csv.row({m.name, CsvWriter::num(base_ms), CsvWriter::num(unpack_ms),
           CsvWriter::num(coop_ms),
           CsvWriter::num(static_cast<double>(uflash.total_bytes)),
           CsvWriter::num(static_cast<double>(coop.flash_bytes))});

  // (a) runtime customization claim.
  const MemoryCostTable mem;
  const double runtime_saving =
      100.0 *
      (1.0 - static_cast<double>(mem.custom_runtime_code) /
                 static_cast<double>(mem.generic_runtime_code));
  std::printf("[%s] runtime flash: generic %lldKB -> customized %lldKB "
              "(%.0f%% smaller; paper: up to 30%%)\n",
              m.name.c_str(),
              static_cast<long long>(mem.generic_runtime_code / 1024),
              static_cast<long long>(mem.custom_runtime_code / 1024),
              runtime_saving);

  // (b) full-unpack flash budget claim.
  std::printf("[%s] fully unpacked convs: %.0fKB = %.0f%% of the %lldKB "
              "flash%s\n",
              m.name.c_str(),
              static_cast<double>(uflash.total_bytes) / 1024.0,
              100.0 * static_cast<double>(uflash.total_bytes) / avail,
              static_cast<long long>(board.flash_bytes / 1024),
              m.name == "alexnet" ? "  (paper: <60% of available)" : "");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header("Ablation: kernel customization, unpack-only, skip-only, "
               "cooperative",
               scale);

  ConsoleTable table(
      {"Network", "Design", "Latency(ms)", "Flash(KB)", "Speedup"});
  CsvWriter csv(results_dir() + "/ablation_unpacking.csv",
                {"network", "cmsis_ms", "unpack_only_ms", "cooperative_ms",
                 "unpack_flash_bytes", "coop_flash_bytes"});

  const BenchModel lenet = load_lenet();
  ablate(lenet, scale, table, csv);
  const BenchModel alexnet = load_alexnet();
  ablate(alexnet, scale, table, csv);

  std::printf("%s\n", table.render("Ablation").c_str());
  std::printf("Note: 'skip only' keeps packed loop kernels, which cannot\n"
              "skip statically-removed products — cooperative unpack+skip\n"
              "is required to convert MAC reduction into cycles (the\n"
              "paper's central design argument).\n");
  std::printf("CSV: %s/ablation_unpacking.csv\n", results_dir().c_str());
  return 0;
}
