#include "src/train/optimizer.hpp"

#include "src/common/error.hpp"

namespace ataman {

void SgdOptimizer::step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const ParamRef& p : params)
      velocity_.emplace_back(p.value->size(), 0.0f);
  }
  check(velocity_.size() == params.size(),
        "optimizer was initialized with a different parameter list");

  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& value = *params[pi].value;
    auto& grad = *params[pi].grad;
    auto& vel = velocity_[pi];
    check(value.size() == grad.size() && value.size() == vel.size(),
          "parameter/gradient size mismatch");
    for (size_t i = 0; i < value.size(); ++i) {
      const float g = grad[i] + config_.weight_decay * value[i];
      vel[i] = config_.momentum * vel[i] - config_.learning_rate * g;
      value[i] += vel[i];
    }
  }
}

}  // namespace ataman
