// Dense float tensor for the training substrate.
//
// Activations are NHWC ([batch, height, width, channels]) to match the
// int8 inference kernels; fully-connected layers view the same buffer as
// [batch, features] (NHWC flattening is a pure reinterpretation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace ataman {

class FTensor {
 public:
  FTensor() = default;
  explicit FTensor(std::vector<int> shape);

  static FTensor zeros(std::vector<int> shape) { return FTensor(std::move(shape)); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // Pointer to the start of batch item `n` (outermost dimension).
  float* item(int n);
  const float* item(int n) const;
  int64_t item_size() const;

  void fill(float v);
  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace ataman
