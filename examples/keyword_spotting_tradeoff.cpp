// Scenario: always-on inference under a latency deadline.
//
// The paper's motivation (§I) is real-time TinyML: a model that misses
// its deadline is useless no matter how accurate. This example inverts
// the quickstart's question — instead of "how fast can I get within an
// accuracy budget?" it asks "what is the most accurate design that meets
// a hard latency deadline?", the query an always-on keyword-spotting or
// anomaly-detection deployment actually runs. It sweeps deadlines from
// generous to brutal and prints the best reachable accuracy for each,
// marking where the exact baselines (CMSIS-NN, X-CUBE-AI) drop out.
#include <algorithm>
#include <cstdio>

#include "src/core/ataman.hpp"

int main() {
  using namespace ataman;

  std::printf("Scenario: hard real-time deadlines on the LeNet-class "
              "model\n\n");
  const ZooSpec spec = lenet_spec();
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);

  PipelineOptions options;
  options.dse.tau_step = 0.01;
  options.dse.eval_images = 384;
  AtamanPipeline pipeline(&model, &data.train, &data.test, options);

  const DseOutcome outcome = pipeline.explore();
  const DeployReport cmsis = pipeline.deploy_cmsis_baseline(400);
  const DeployReport xcube = pipeline.deploy_xcube(400);
  const BoardSpec board = pipeline.options().board;

  std::printf("exact baselines: CMSIS-NN %.1f ms @ %.3f, X-CUBE-AI %.1f ms "
              "@ %.3f\n\n",
              cmsis.latency_ms, cmsis.top1_accuracy, xcube.latency_ms,
              xcube.top1_accuracy);
  std::printf("%-14s %-22s %-10s %s\n", "deadline(ms)", "best design",
              "accuracy", "note");

  for (const double deadline : {90.0, 70.0, 60.0, 50.0, 40.0, 30.0, 20.0}) {
    // Most accurate approximate design meeting the deadline.
    int best = -1;
    for (size_t i = 0; i < outcome.results.size(); ++i) {
      const DseResult& r = outcome.results[i];
      if (board.cycles_to_ms(r.cycles) > deadline) continue;
      if (best < 0 ||
          r.accuracy > outcome.results[static_cast<size_t>(best)].accuracy)
        best = static_cast<int>(i);
    }
    const char* note = "";
    if (cmsis.latency_ms <= deadline) {
      note = "(exact CMSIS also fits)";
    } else if (xcube.latency_ms <= deadline) {
      note = "(X-CUBE fits, CMSIS does not)";
    } else {
      note = "(no exact library fits -> approximation required)";
    }
    if (best < 0) {
      std::printf("%-14.0f %-22s %-10s %s\n", deadline, "none", "-", note);
      continue;
    }
    const DseResult& r = outcome.results[static_cast<size_t>(best)];
    std::printf("%-14.0f %-22s %-10.3f %s\n", deadline,
                r.config.to_string().c_str(), r.accuracy, note);
  }

  std::printf("\nThe region where no exact library meets the deadline but\n"
              "approximate designs still deliver usable accuracy is the\n"
              "trade-off space the paper's framework opens up (SIII: 'an\n"
              "accuracy-latency trade-off that was previously unattainable\n"
              "for optimized libraries like CMSIS').\n");
  return 0;
}
