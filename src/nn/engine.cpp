#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

RefEngine::RefEngine(const QModel* model) : InferenceEngine(model, "ref") {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  return run_layers(0, quantize_input(image), mask, tap);
}

std::vector<int8_t> RefEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  return run_from(layer_begin, activations, default_mask_);
}

std::vector<int8_t> RefEngine::run_from(int layer_begin,
                                        std::span<const int8_t> activations,
                                        const SkipMask* mask,
                                        const ConvTap& tap) const {
  return run_layers(layer_begin,
                    std::vector<int8_t>(activations.begin(), activations.end()),
                    mask, tap);
}

std::vector<int8_t> RefEngine::run_layers(int layer_begin,
                                          std::vector<int8_t> act,
                                          const SkipMask* mask,
                                          const ConvTap& tap) const {
  const int layer_count = static_cast<int>(model().layers.size());
  check(layer_begin >= 0 && layer_begin <= layer_count,
        "run_from layer index out of range");
  if (mask != nullptr) mask->validate(model());
  if (layer_begin < layer_count) {
    const QLayer& entry = model().layers[static_cast<size_t>(layer_begin)];
    int64_t expected = 0;
    if (const auto* conv = std::get_if<QConv2D>(&entry)) {
      expected = static_cast<int64_t>(conv->geom.in_h) * conv->geom.in_w *
                 conv->geom.in_c;
    } else if (const auto* pool = std::get_if<QMaxPool>(&entry)) {
      expected = static_cast<int64_t>(pool->in_h) * pool->in_w *
                 pool->channels;
    } else if (const auto* fc = std::get_if<QDense>(&entry)) {
      expected = fc->in_dim;
    }
    check(static_cast<int64_t>(act.size()) == expected,
          "run_from activation size mismatch at layer " +
              std::to_string(layer_begin));
  }
  std::vector<int8_t> cur = std::move(act);
  std::vector<int8_t> next;

  int conv_ordinal = 0;
  for (int l = 0; l < layer_begin; ++l) {
    if (std::holds_alternative<QConv2D>(model().layers[static_cast<size_t>(l)]))
      ++conv_ordinal;
  }
  for (int l = layer_begin; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      if (tap) tap(conv_ordinal, *conv, cur);
      const uint8_t* skip = nullptr;
      if (mask != nullptr &&
          conv_ordinal < static_cast<int>(mask->conv_masks.size()) &&
          !mask->conv_masks[static_cast<size_t>(conv_ordinal)].empty()) {
        skip = mask->conv_masks[static_cast<size_t>(conv_ordinal)].data();
      }
      next.assign(static_cast<size_t>(conv->geom.positions()) *
                      conv->geom.out_c,
                  0);
      conv2d_ref(*conv, cur, next, skip);
      ++conv_ordinal;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      next.assign(static_cast<size_t>(pool->out_h()) * pool->out_w() *
                      pool->channels,
                  0);
      maxpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      next.assign(static_cast<size_t>(fc->out_dim), 0);
      dense_ref(*fc, cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  const RefEngine engine(&model);
  return evaluate_batch(
             [&](std::span<const uint8_t> image) {
               return engine.classify(image, mask);
             },
             ds, limit)
      .top1;
}

}  // namespace ataman
