// Table I — baseline characteristics of the two CNNs deployed with the
// exact CMSIS-NN-style engine on the STM32U575 substrate: Top-1 accuracy,
// topology, MAC count, latency, flash %, RAM.
#include "bench/bench_common.hpp"
#include "src/cmsisnn/cmsis_engine.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

void run_model(const BenchModel& m, const BoardSpec& board,
               ConsoleTable& table, CsvWriter& csv, int eval_limit) {
  const CmsisEngine engine(&m.qmodel);
  const DeployReport r = engine.deploy(m.data.test, board, eval_limit);
  const PaperTable1Row paper = paper_table1(m.name);

  table.row({m.name + " (paper)", fmt(paper.accuracy, 1), paper.topology,
             fmt(paper.mac_m, 1) + "M", fmt(paper.latency_ms, 1),
             fmt(paper.flash_percent, 0), fmt(paper.ram_kb, 1)});
  table.row({m.name + " (measured)", fmt(100 * r.top1_accuracy, 1),
             m.qmodel.topology,
             fmt(static_cast<double>(r.mac_ops) / 1e6, 1) + "M",
             fmt(r.latency_ms, 1), fmt(r.flash_percent, 0),
             fmt(static_cast<double>(r.ram_bytes) / 1024.0, 1)});
  table.separator();

  csv.row({m.name, CsvWriter::num(100 * r.top1_accuracy),
           CsvWriter::num(static_cast<double>(r.mac_ops)),
           CsvWriter::num(r.latency_ms), CsvWriter::num(r.flash_percent),
           CsvWriter::num(static_cast<double>(r.ram_bytes) / 1024.0),
           CsvWriter::num(r.energy_mj)});

  // Per-operator cycle breakdown (the paper's §II-A kernel counters).
  std::printf("%s per-operator cycles:\n", m.name.c_str());
  for (const LayerProfile& p : engine.layer_profile()) {
    if (p.cycles < 1000) continue;
    std::printf("  %-10s %12lld cycles  (%5.1f%%)\n", p.kind.c_str(),
                static_cast<long long>(p.cycles),
                100.0 * static_cast<double>(p.cycles) /
                    static_cast<double>(engine.total_cycles()));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header("Table I: baseline CNNs on STM32-Nucleo (CMSIS-NN exact)",
               scale);
  const int eval_limit = scale == Scale::kQuick ? 400 : -1;

  const BoardSpec board = stm32u575_board();
  ConsoleTable table({"CNN", "Acc(%)", "Topol.", "#MAC", "Latency(ms)",
                      "Flash(%)", "RAM(KB)"});
  CsvWriter csv(results_dir() + "/table1_baseline.csv",
                {"network", "accuracy", "macs", "latency_ms", "flash_pct",
                 "ram_kb", "energy_mj"});

  const BenchModel lenet = load_lenet();
  run_model(lenet, board, table, csv, eval_limit);
  const BenchModel alexnet = load_alexnet();
  run_model(alexnet, board, table, csv, eval_limit);

  std::printf("%s\n", table.render("Table I (paper vs measured)").c_str());
  std::printf("CSV: %s/table1_baseline.csv\n", results_dir().c_str());
  return 0;
}
