// Training substrate: GEMM kernels, im2col/col2im, network assembly,
// optimizer math, end-to-end learning on a tiny problem, model zoo specs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/train/gemm.hpp"
#include "src/train/im2col.hpp"
#include "src/train/model_zoo.hpp"
#include "src/train/network.hpp"
#include "src/train/optimizer.hpp"
#include "src/train/trainer.hpp"

namespace ataman {
namespace {

void naive_gemm(int m, int n, int k, const float* a, const float* b, float* c,
                bool at, bool bt) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = at ? a[p * m + i] : a[i * k + p];
        const float bv = bt ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

std::vector<float> random_vec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_normal(0.0f, 1.0f);
  return v;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllVariantsMatchNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = random_vec(static_cast<size_t>(m) * k, 1);
  const auto b_nn = random_vec(static_cast<size_t>(k) * n, 2);
  const auto b_nt = random_vec(static_cast<size_t>(n) * k, 3);
  const auto a_tn = random_vec(static_cast<size_t>(k) * m, 4);

  std::vector<float> got(static_cast<size_t>(m) * n);
  std::vector<float> want(static_cast<size_t>(m) * n);

  gemm_nn(m, n, k, a.data(), b_nn.data(), got.data(), false);
  naive_gemm(m, n, k, a.data(), b_nn.data(), want.data(), false, false);
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-3f) << "nn at " << i;

  gemm_nt(m, n, k, a.data(), b_nt.data(), got.data(), false);
  naive_gemm(m, n, k, a.data(), b_nt.data(), want.data(), false, true);
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-3f) << "nt at " << i;

  gemm_tn(m, n, k, a_tn.data(), b_nn.data(), got.data(), false);
  naive_gemm(m, n, k, a_tn.data(), b_nn.data(), want.data(), true, false);
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-3f) << "tn at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 4, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 9, 25),
                      std::make_tuple(3, 32, 17), std::make_tuple(33, 2, 64)));

TEST(Gemm, AccumulateAddsOntoC) {
  const auto a = random_vec(6, 5);
  const auto b = random_vec(6, 6);
  std::vector<float> c(4, 10.0f);
  gemm_nt(2, 2, 3, a.data(), b.data(), c.data(), true);
  std::vector<float> fresh(4, 0.0f);
  gemm_nt(2, 2, 3, a.data(), b.data(), fresh.data(), false);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(c[static_cast<size_t>(i)],
                fresh[static_cast<size_t>(i)] + 10.0f, 1e-4f);
}

TEST(Im2Col, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> — the defining property that makes
  // the conv backward pass correct.
  ConvGeom g;
  g.in_h = 5; g.in_w = 5; g.in_c = 2;
  g.out_c = 1; g.kernel = 3; g.stride = 2; g.pad = 1;
  const auto x = random_vec(static_cast<size_t>(g.in_h * g.in_w * g.in_c), 7);
  const auto y = random_vec(
      static_cast<size_t>(g.positions() * g.patch_size()), 8);

  std::vector<float> col(y.size());
  im2col_f32(g, x.data(), col.data());
  double lhs = 0.0;
  for (size_t i = 0; i < y.size(); ++i)
    lhs += static_cast<double>(col[i]) * y[i];

  std::vector<float> xgrad(x.size(), 0.0f);
  col2im_f32(g, y.data(), xgrad.data());
  double rhs = 0.0;
  for (size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * xgrad[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2Col, PaddingProducesZeros) {
  ConvGeom g;
  g.in_h = 2; g.in_w = 2; g.in_c = 1;
  g.out_c = 1; g.kernel = 3; g.stride = 1; g.pad = 1;
  const std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> col(static_cast<size_t>(g.positions() * g.patch_size()));
  im2col_f32(g, x.data(), col.data());
  // Output position (0,0): top-left patch has 5 padding taps.
  // Patch order (ky,kx,c): taps (0,*) and (*,0) are out of image.
  EXPECT_EQ(col[0], 0.0f);  // ky=0,kx=0
  EXPECT_EQ(col[1], 0.0f);  // ky=0,kx=1
  EXPECT_EQ(col[2], 0.0f);  // ky=0,kx=2
  EXPECT_EQ(col[3], 0.0f);  // ky=1,kx=0
  EXPECT_EQ(col[4], 1.0f);  // center = x(0,0)
}

TEST(Network, ShapeInferenceAndParamCount) {
  Rng rng(1);
  const ModelArch arch = micronet_arch();
  Network net(arch, ImageShape{32, 32, 3}, rng);
  // conv1 8*(3*3*3)+8, conv2 12*(3*3*8)+12, fc 768*10+10.
  EXPECT_EQ(net.param_count(), 8 * 27 + 8 + 12 * 72 + 12 + 768 * 10 + 10);
  FTensor x({2, 32, 32, 3});
  FTensor y = net.forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(Network, MacCountMatchesManualComputation) {
  Rng rng(1);
  Network net(micronet_arch(), ImageShape{32, 32, 3}, rng);
  // conv1: 32*32*8*27, conv2: 16*16*12*72, fc: 768*10
  EXPECT_EQ(net.mac_count(), 1024 * 8 * 27 + 256 * 12 * 72 + 7680);
}

TEST(Optimizer, PlainSgdStep) {
  std::vector<float> w = {1.0f};
  std::vector<float> g = {0.5f};
  SgdOptimizer opt({/*lr=*/0.1f, /*momentum=*/0.0f, /*wd=*/0.0f});
  opt.step({{&w, &g}});
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Optimizer, MomentumAccumulates) {
  std::vector<float> w = {0.0f};
  std::vector<float> g = {1.0f};
  SgdOptimizer opt({/*lr=*/0.1f, /*momentum=*/0.9f, /*wd=*/0.0f});
  opt.step({{&w, &g}});  // v=-0.1, w=-0.1
  EXPECT_NEAR(w[0], -0.1f, 1e-6f);
  opt.step({{&w, &g}});  // v=-0.19, w=-0.29
  EXPECT_NEAR(w[0], -0.29f, 1e-6f);
}

TEST(Optimizer, WeightDecayPullsTowardZero) {
  std::vector<float> w = {10.0f};
  std::vector<float> g = {0.0f};
  SgdOptimizer opt({/*lr=*/0.1f, /*momentum=*/0.0f, /*wd=*/0.01f});
  opt.step({{&w, &g}});
  EXPECT_LT(w[0], 10.0f);
}

TEST(Trainer, OverfitsTinyDataset) {
  // 40 easy images, small model: training must reach high accuracy —
  // the canonical "can it learn at all" smoke test.
  SynthCifarSpec data_spec;
  data_spec.train_images = 40;
  data_spec.test_images = 10;
  data_spec.noise_sigma = 10.0f;
  data_spec.distractor_alpha = 0.1f;
  data_spec.label_noise = 0.0f;
  const SynthCifar data = make_synth_cifar(data_spec);

  Rng rng(3);
  Network net(micronet_arch(), data.train.shape(), rng);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 10;
  cfg.sgd.learning_rate = 0.02f;
  cfg.lr_decay_at = {20};
  cfg.verbose = false;
  const TrainResult result = train_network(net, data.train, data.test, cfg);
  EXPECT_GE(result.final_train_accuracy, 0.9);
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST(ModelZoo, PaperTopologies) {
  const ModelArch lenet = lenet_arch();
  EXPECT_EQ(lenet.topology, "3-2-2");
  EXPECT_EQ(lenet.conv_count(), 3);
  EXPECT_EQ(lenet.pool_count(), 2);
  EXPECT_EQ(lenet.dense_count(), 2);

  const ModelArch alexnet = alexnet_arch();
  EXPECT_EQ(alexnet.topology, "5-2-2");
  EXPECT_EQ(alexnet.conv_count(), 5);
  EXPECT_EQ(alexnet.pool_count(), 2);
  EXPECT_EQ(alexnet.dense_count(), 2);
}

TEST(ModelZoo, MacCountsMatchPaperTableI) {
  Rng rng(1);
  Network lenet(lenet_arch(), ImageShape{}, rng);
  // Paper: 4.5M; ours within 3%.
  EXPECT_NEAR(static_cast<double>(lenet.mac_count()), 4.5e6, 0.03 * 4.5e6);
  Network alexnet(alexnet_arch(), ImageShape{}, rng);
  // Paper: 16.1M; ours within 6%.
  EXPECT_NEAR(static_cast<double>(alexnet.mac_count()), 16.1e6,
              0.06 * 16.1e6);
}

TEST(ModelZoo, SaveLoadRoundTrip) {
  SynthCifarSpec tiny;
  tiny.train_images = 20;
  tiny.test_images = 10;
  ZooSpec spec = micronet_spec();
  spec.data = tiny;
  spec.train.epochs = 1;
  TrainedModel m = train_from_scratch(spec, /*verbose=*/false);

  const std::string path = "/tmp/ataman_zoo_roundtrip.atm";
  save_trained_model(m, path);
  TrainedModel loaded = load_trained_model(spec, path);

  // Same weights -> same predictions.
  const SynthCifar data = make_synth_cifar(tiny);
  std::vector<int> idx = {0, 1, 2, 3};
  FTensor x = to_float_batch(data.test, idx, 0, idx.size());
  EXPECT_EQ(m.net.predict(x), loaded.net.predict(x));
  std::remove(path.c_str());
}

TEST(ToFloatBatch, NormalizesToUnitInterval) {
  Dataset ds(ImageShape{2, 2, 1}, 2);
  ds.add(std::vector<uint8_t>{0, 51, 204, 255}, 0);
  const std::vector<int> idx = {0};
  FTensor x = to_float_batch(ds, idx, 0, 1);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.2f);
  EXPECT_FLOAT_EQ(x[3], 1.0f);
}

}  // namespace
}  // namespace ataman
