// Reference (golden) int8 kernels.
//
// Straightforward nested loops with explicit zero-point handling; every
// optimized engine in the repo (CMSIS-like packed, unpacked/approximate,
// generated C) is tested bit-exact against these.
#pragma once

#include <cstdint>
#include <span>

#include "src/quant/qtypes.hpp"

namespace ataman {

// out[pos][oc]; `skip` is nullptr or [out_c * patch] (1 = skip operand).
void conv2d_ref(const QConv2D& layer, std::span<const int8_t> in,
                std::span<int8_t> out, const uint8_t* skip = nullptr);

void maxpool_ref(const QMaxPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out);

void dense_ref(const QDense& layer, std::span<const int8_t> in,
               std::span<int8_t> out);

// Single-channel accumulator for one conv output position — shared by the
// reference kernel and the significance brute-force tests.
int32_t conv_accumulate_ref(const QConv2D& layer, std::span<const int8_t> in,
                            int oy, int ox, int oc, const uint8_t* skip);

}  // namespace ataman
