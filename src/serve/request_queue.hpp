// Lock-guarded FIFO of pending inference jobs + the micro-batching
// policy.
//
// Workers drain the queue through pop_batch(), which implements the
// coalescing scheduler: take the oldest job, then pull up to
// max_batch - 1 *later* jobs sharing its batch key — (engine name, mask
// pointer) — into one chunk, preserving arrival order inside the chunk.
// A batch therefore always runs on one engine instance with one bound
// mask, which is what lets the worker execute it evaluate_batch-style
// (tight loop over images, engine state hot in cache, no per-request
// pool lookups).
//
// Fairness: only the *head* job's key is ever coalesced, so a flood of
// one configuration cannot starve others — the oldest job always leaves
// with the next batch, and foreign-key jobs keep their queue position.
//
// Shutdown: close() stops admissions but lets queued jobs drain;
// cancel_pending() additionally strips the still-queued jobs and hands
// them back so the owner can resolve their futures as cancelled.
#pragma once

#include <chrono>
#include <deque>
#include <mutex>
#include <vector>

#include "src/serve/request.hpp"

#include <condition_variable>
#include <cstdint>
#include <memory>

namespace ataman::serve {

struct QueuedJob {
  uint64_t id = 0;  // submission order, unique per server
  InferRequest request;
  std::shared_ptr<detail::FutureState> state;
  std::chrono::steady_clock::time_point enqueued{};
};

class RequestQueue {
 public:
  explicit RequestQueue(int max_batch);

  // Enqueue one job; false (job untouched) once the queue is closed.
  bool push(QueuedJob job);

  // Blocks until a job is available or the queue is closed; extracts one
  // micro-batch into `out` (cleared first). False means closed-and-empty:
  // the calling worker should exit.
  bool pop_batch(std::vector<QueuedJob>& out);

  // Stop accepting jobs; queued ones still drain through pop_batch.
  void close();

  // close() plus: remove every still-queued job and return them (the
  // server resolves their futures as cancelled). In-flight jobs already
  // popped by workers are unaffected.
  std::vector<QueuedJob> cancel_pending();

  int size() const;
  bool closed() const;

  // Batching key equality: same backend name and same SkipMask object.
  // Mask identity (not content) is deliberate: the mask is a non-owning
  // pointer the caller keeps alive, so pointer equality is the only
  // comparison that is both cheap and lifetime-safe.
  static bool same_key(const InferRequest& a, const InferRequest& b);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedJob> jobs_;
  const int max_batch_;
  bool closed_ = false;
};

}  // namespace ataman::serve
