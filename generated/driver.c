
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[32*32*3];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
