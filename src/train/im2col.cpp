#include "src/train/im2col.hpp"

#include <cstring>

namespace ataman {

void im2col_f32(const ConvGeom& g, const float* input, float* col) {
  const int oh = g.out_h(), ow = g.out_w();
  const int patch = g.patch_size();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      float* row = col + static_cast<size_t>(oy * ow + ox) * patch;
      int idx = 0;
      for (int ky = 0; ky < g.kernel; ++ky) {
        const int iy = oy * g.stride - g.pad + ky;
        if (iy < 0 || iy >= g.in_h) {
          std::memset(row + idx, 0,
                      sizeof(float) * static_cast<size_t>(g.kernel) * g.in_c);
          idx += g.kernel * g.in_c;
          continue;
        }
        for (int kx = 0; kx < g.kernel; ++kx) {
          const int ix = ox * g.stride - g.pad + kx;
          if (ix < 0 || ix >= g.in_w) {
            std::memset(row + idx, 0, sizeof(float) * static_cast<size_t>(g.in_c));
          } else {
            const float* src =
                input + (static_cast<size_t>(iy) * g.in_w + ix) * g.in_c;
            std::memcpy(row + idx, src, sizeof(float) * static_cast<size_t>(g.in_c));
          }
          idx += g.in_c;
        }
      }
    }
  }
}

void col2im_f32(const ConvGeom& g, const float* dcol, float* dinput) {
  const int oh = g.out_h(), ow = g.out_w();
  const int patch = g.patch_size();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const float* row = dcol + static_cast<size_t>(oy * ow + ox) * patch;
      int idx = 0;
      for (int ky = 0; ky < g.kernel; ++ky) {
        const int iy = oy * g.stride - g.pad + ky;
        for (int kx = 0; kx < g.kernel; ++kx) {
          const int ix = ox * g.stride - g.pad + kx;
          if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
            float* dst =
                dinput + (static_cast<size_t>(iy) * g.in_w + ix) * g.in_c;
            for (int c = 0; c < g.in_c; ++c) dst[c] += row[idx + c];
          }
          idx += g.in_c;
        }
      }
    }
  }
}

}  // namespace ataman
