#include "src/unpack/unpacked_layer.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"
#include "src/cmsisnn/packed_kernels.hpp"  // kBatchLanes
#include "src/cmsisnn/smlad.hpp"

namespace ataman {

int64_t UnpackedConv::static_pairs() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels)
    total += static_cast<int64_t>(ch.pairs.size());
  return total;
}

int64_t UnpackedConv::static_singles() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels) total += ch.has_single ? 1 : 0;
  return total;
}

int64_t UnpackedConv::retained_macs() const {
  int64_t static_ops = 0;
  for (const ChannelProgram& ch : channels) static_ops += ch.retained_ops();
  return static_ops * geom.positions();
}

namespace {

// Offline re-pairing shared by conv and depthwise program construction:
// collect retained operand indices, then emit one SMLAD per surviving
// pair and an SMLABB for the odd leftover. `weight_at(i)` maps an
// operand index into the layer's weight tensor.
template <typename WeightAt>
ChannelProgram build_channel_program(int32_t bias, int patch,
                                     const uint8_t* sk, WeightAt weight_at) {
  ChannelProgram prog;
  prog.bias = bias;
  std::vector<uint32_t> retained;
  retained.reserve(static_cast<size_t>(patch));
  for (int i = 0; i < patch; ++i) {
    if (sk == nullptr || !sk[i]) retained.push_back(static_cast<uint32_t>(i));
  }
  const size_t n_pairs = retained.size() / 2;
  prog.pairs.reserve(n_pairs);
  for (size_t p = 0; p < n_pairs; ++p) {
    const uint32_t ia = retained[2 * p];
    const uint32_t ib = retained[2 * p + 1];
    prog.pairs.push_back(
        {pack_weight_pair(/*hi=*/weight_at(ib), /*lo=*/weight_at(ia)), ia,
         ib});
  }
  if (retained.size() % 2 != 0) {
    prog.has_single = true;
    prog.single = {static_cast<int16_t>(weight_at(retained.back())),
                   retained.back()};
  }
  return prog;
}

}  // namespace

UnpackedConv UnpackedConv::build(const QConv2D& layer, const uint8_t* skip) {
  UnpackedConv u;
  u.geom = layer.geom;
  u.in_q = layer.in;
  u.out_q = layer.out;
  u.act_min = layer.act_min;
  u.act_max = layer.act_max;

  const int patch = layer.geom.patch_size();
  u.channels.resize(static_cast<size_t>(layer.geom.out_c));
  for (int oc = 0; oc < layer.geom.out_c; ++oc) {
    const int8_t* w =
        layer.weights.data() + static_cast<size_t>(oc) * patch;
    const uint8_t* sk =
        skip != nullptr ? skip + static_cast<size_t>(oc) * patch : nullptr;
    ChannelProgram& prog = u.channels[static_cast<size_t>(oc)];
    prog = build_channel_program(layer.bias[static_cast<size_t>(oc)], patch,
                                 sk, [&](uint32_t i) { return w[i]; });
    // Per-output-channel requant constant, baked like the bias.
    prog.requant = layer.requant[static_cast<size_t>(oc)];
  }
  return u;
}

void UnpackedConv::run(std::span<const int8_t> in,
                       std::span<int8_t> out) const {
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(geom.in_h) * geom.in_w * geom.in_c,
        "unpacked conv input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(geom.positions()) * geom.out_c,
        "unpacked conv output size mismatch");

  const int oh = geom.out_h(), ow = geom.out_w();
  const int patch = geom.patch_size();
  const int32_t zp = in_q.zero_point;

  // The host interpreter materializes the zero-point-corrected patch once
  // per position purely as a host-speed optimization; the *priced*
  // instruction stream (cost_model::unpacked_conv_cycles) models direct
  // activation loads with no such buffer, and the numerics are identical.
  std::vector<int16_t> col(static_cast<size_t>(patch));
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int idx = 0;
      for (int ky = 0; ky < geom.kernel; ++ky) {
        const int iy = oy * geom.stride - geom.pad + ky;
        for (int kx = 0; kx < geom.kernel; ++kx) {
          const int ix = ox * geom.stride - geom.pad + kx;
          const bool inside =
              iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
          const int8_t* src =
              inside
                  ? in.data() + (static_cast<size_t>(iy) * geom.in_w + ix) *
                                    geom.in_c
                  : nullptr;
          for (int c = 0; c < geom.in_c; ++c, ++idx)
            col[static_cast<size_t>(idx)] =
                static_cast<int16_t>((inside ? src[c] : zp) - zp);
        }
      }

      int8_t* orow =
          out.data() + (static_cast<size_t>(oy) * ow + ox) * geom.out_c;
      for (int oc = 0; oc < geom.out_c; ++oc) {
        const ChannelProgram& prog = channels[static_cast<size_t>(oc)];
        int32_t acc = prog.bias;
        for (const MacPairOp& op : prog.pairs) {
          const uint32_t apair =
              pack_q15_pair(col[op.operand_b], col[op.operand_a]);
          acc = smlad(op.weight_const, apair, acc);
        }
        if (prog.has_single) {
          acc = smlabb(pack_q15_pair(0, prog.single.weight),
                       pack_q15_pair(0, col[prog.single.operand]), acc);
        }
        const int32_t scaled = multiply_by_quantized_multiplier(
                                   acc, prog.requant) +
                               out_q.zero_point;
        orow[oc] =
            static_cast<int8_t>(std::clamp(scaled, act_min, act_max));
      }
    }
  }
}

void UnpackedConv::run_batch(std::span<const int8_t> in,
                             std::span<int8_t> out, int batch) const {
  check(batch >= 1, "UnpackedConv::run_batch: batch must be >= 1");
  const size_t in_elems =
      static_cast<size_t>(geom.in_h) * geom.in_w * geom.in_c;
  const size_t out_elems =
      static_cast<size_t>(geom.positions()) * geom.out_c;
  check(in.size() == in_elems * static_cast<size_t>(batch),
        "unpacked conv batched input size mismatch");
  check(out.size() == out_elems * static_cast<size_t>(batch),
        "unpacked conv batched output size mismatch");

  const int oh = geom.out_h(), ow = geom.out_w();
  const size_t patch = static_cast<size_t>(geom.patch_size());
  const int32_t zp = in_q.zero_point;

  // Lane-major column blocks (cols[j * patch + operand]): each program's
  // hardwired weight constant is fetched once and multiplied into
  // kBatchLanes accumulators. Lane loops run all kBatchLanes lanes at a
  // constant trip count; ragged tails compute over the zero-filled
  // padding lanes and discard them (SMLAD wraparound is defined).
  std::vector<int16_t> cols(static_cast<size_t>(kBatchLanes) * patch);
  for (int b0 = 0; b0 < batch; b0 += kBatchLanes) {
    const int bn = std::min(kBatchLanes, batch - b0);
    if (bn < kBatchLanes) std::fill(cols.begin(), cols.end(), int16_t{0});
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int j = 0; j < bn; ++j) {
          const int8_t* img =
              in.data() + static_cast<size_t>(b0 + j) * in_elems;
          int16_t* lane = cols.data() + static_cast<size_t>(j) * patch;
          int idx = 0;
          for (int ky = 0; ky < geom.kernel; ++ky) {
            const int iy = oy * geom.stride - geom.pad + ky;
            for (int kx = 0; kx < geom.kernel; ++kx) {
              const int ix = ox * geom.stride - geom.pad + kx;
              const bool inside =
                  iy >= 0 && iy < geom.in_h && ix >= 0 && ix < geom.in_w;
              const int8_t* src =
                  inside ? img + (static_cast<size_t>(iy) * geom.in_w + ix) *
                                     geom.in_c
                         : nullptr;
              for (int c = 0; c < geom.in_c; ++c, ++idx)
                lane[idx] =
                    static_cast<int16_t>((inside ? src[c] : zp) - zp);
            }
          }
        }
        const size_t orow_off =
            (static_cast<size_t>(oy) * ow + ox) * geom.out_c;
        for (int oc = 0; oc < geom.out_c; ++oc) {
          const ChannelProgram& prog = channels[static_cast<size_t>(oc)];
          int32_t acc[kBatchLanes];
          for (int j = 0; j < kBatchLanes; ++j) acc[j] = prog.bias;
          for (const MacPairOp& op : prog.pairs) {
            for (int j = 0; j < kBatchLanes; ++j) {
              const int16_t* lane =
                  cols.data() + static_cast<size_t>(j) * patch;
              acc[j] = smlad(op.weight_const,
                             pack_q15_pair(lane[op.operand_b],
                                           lane[op.operand_a]),
                             acc[j]);
            }
          }
          if (prog.has_single) {
            const uint32_t wlast = pack_q15_pair(0, prog.single.weight);
            for (int j = 0; j < kBatchLanes; ++j) {
              const int16_t* lane =
                  cols.data() + static_cast<size_t>(j) * patch;
              acc[j] = smlabb(
                  wlast, pack_q15_pair(0, lane[prog.single.operand]), acc[j]);
            }
          }
          for (int j = 0; j < bn; ++j) {
            const int32_t scaled =
                multiply_by_quantized_multiplier(acc[j], prog.requant) +
                out_q.zero_point;
            out[static_cast<size_t>(b0 + j) * out_elems + orow_off + oc] =
                static_cast<int8_t>(std::clamp(scaled, act_min, act_max));
          }
        }
      }
    }
  }
}

int64_t UnpackedDepthwise::static_pairs() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels)
    total += static_cast<int64_t>(ch.pairs.size());
  return total;
}

int64_t UnpackedDepthwise::static_singles() const {
  int64_t total = 0;
  for (const ChannelProgram& ch : channels) total += ch.has_single ? 1 : 0;
  return total;
}

int64_t UnpackedDepthwise::retained_macs() const {
  int64_t static_ops = 0;
  for (const ChannelProgram& ch : channels) static_ops += ch.retained_ops();
  return static_ops * positions();
}

UnpackedDepthwise UnpackedDepthwise::build(const QDepthwiseConv2D& layer,
                                           const uint8_t* skip) {
  UnpackedDepthwise u;
  u.in_h = layer.in_h;
  u.in_w = layer.in_w;
  u.channel_count = layer.channels;
  u.kernel = layer.kernel;
  u.stride = layer.stride;
  u.pad = layer.pad;
  u.in_q = layer.in;
  u.out_q = layer.out;
  u.act_min = layer.act_min;
  u.act_max = layer.act_max;

  const int patch = layer.patch_size();
  u.channels.resize(static_cast<size_t>(layer.channels));
  for (int ch = 0; ch < layer.channels; ++ch) {
    const uint8_t* sk =
        skip != nullptr ? skip + static_cast<size_t>(ch) * patch : nullptr;
    ChannelProgram& prog = u.channels[static_cast<size_t>(ch)];
    prog = build_channel_program(
        layer.bias[static_cast<size_t>(ch)], patch, sk, [&](uint32_t p) {
          return layer.weights[dw_weight_index(ch, static_cast<int>(p),
                                               layer.channels)];
        });
    prog.requant = layer.requant[static_cast<size_t>(ch)];
  }
  return u;
}

void UnpackedDepthwise::run(std::span<const int8_t> in,
                            std::span<int8_t> out) const {
  const int c = channel_count;
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(in_h) * in_w * c,
        "unpacked depthwise input size mismatch");
  check(static_cast<int64_t>(out.size()) == positions() * c,
        "unpacked depthwise output size mismatch");

  const int oh = out_h(), ow = out_w();
  const int patch = kernel * kernel;
  const int32_t zp = in_q.zero_point;

  // Shared zero-point-corrected expansion per position (col[tap][ch]);
  // the priced instruction stream models direct loads, as for conv.
  std::vector<int16_t> col(static_cast<size_t>(patch) * c);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int p = 0;
      for (int ky = 0; ky < kernel; ++ky) {
        const int iy = oy * stride - pad + ky;
        for (int kx = 0; kx < kernel; ++kx, ++p) {
          const int ix = ox * stride - pad + kx;
          const bool inside = iy >= 0 && iy < in_h && ix >= 0 && ix < in_w;
          const int8_t* src =
              inside ? in.data() + (static_cast<size_t>(iy) * in_w + ix) * c
                     : nullptr;
          int16_t* dst = col.data() + static_cast<size_t>(p) * c;
          for (int i = 0; i < c; ++i)
            dst[i] = static_cast<int16_t>((inside ? src[i] : zp) - zp);
        }
      }

      int8_t* orow = out.data() + (static_cast<size_t>(oy) * ow + ox) * c;
      for (int ch = 0; ch < c; ++ch) {
        const ChannelProgram& prog = channels[static_cast<size_t>(ch)];
        int32_t acc = prog.bias;
        for (const MacPairOp& op : prog.pairs) {
          const uint32_t apair = pack_q15_pair(
              col[static_cast<size_t>(op.operand_b) * c + ch],
              col[static_cast<size_t>(op.operand_a) * c + ch]);
          acc = smlad(op.weight_const, apair, acc);
        }
        if (prog.has_single) {
          acc = smlabb(
              pack_q15_pair(0, prog.single.weight),
              pack_q15_pair(
                  0, col[static_cast<size_t>(prog.single.operand) * c + ch]),
              acc);
        }
        const int32_t scaled = multiply_by_quantized_multiplier(
                                   acc, prog.requant) +
                               out_q.zero_point;
        orow[ch] =
            static_cast<int8_t>(std::clamp(scaled, act_min, act_max));
      }
    }
  }
}

void UnpackedDepthwise::run_batch(std::span<const int8_t> in,
                                  std::span<int8_t> out, int batch) const {
  check(batch >= 1, "UnpackedDepthwise::run_batch: batch must be >= 1");
  const int c = channel_count;
  const size_t in_elems = static_cast<size_t>(in_h) * in_w * c;
  const size_t out_elems = static_cast<size_t>(positions()) * c;
  check(in.size() == in_elems * static_cast<size_t>(batch),
        "unpacked depthwise batched input size mismatch");
  check(out.size() == out_elems * static_cast<size_t>(batch),
        "unpacked depthwise batched output size mismatch");

  const int oh = out_h(), ow = out_w();
  const int patch = kernel * kernel;
  const int32_t zp = in_q.zero_point;
  const size_t lane_stride = static_cast<size_t>(patch) * c;

  // cols[j * patch * c + tap * c + ch]: shared per-position expansion per
  // lane; each channel program then streams once across all lanes.
  std::vector<int16_t> cols(static_cast<size_t>(kBatchLanes) * lane_stride);
  for (int b0 = 0; b0 < batch; b0 += kBatchLanes) {
    const int bn = std::min(kBatchLanes, batch - b0);
    if (bn < kBatchLanes) std::fill(cols.begin(), cols.end(), int16_t{0});
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int j = 0; j < bn; ++j) {
          const int8_t* img =
              in.data() + static_cast<size_t>(b0 + j) * in_elems;
          int16_t* lane = cols.data() + static_cast<size_t>(j) * lane_stride;
          int p = 0;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - pad + ky;
            for (int kx = 0; kx < kernel; ++kx, ++p) {
              const int ix = ox * stride - pad + kx;
              const bool inside =
                  iy >= 0 && iy < in_h && ix >= 0 && ix < in_w;
              const int8_t* src =
                  inside ? img + (static_cast<size_t>(iy) * in_w + ix) * c
                         : nullptr;
              int16_t* dst = lane + static_cast<size_t>(p) * c;
              for (int i = 0; i < c; ++i)
                dst[i] = static_cast<int16_t>((inside ? src[i] : zp) - zp);
            }
          }
        }
        const size_t orow_off = (static_cast<size_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch) {
          const ChannelProgram& prog = channels[static_cast<size_t>(ch)];
          int32_t acc[kBatchLanes];
          for (int j = 0; j < kBatchLanes; ++j) acc[j] = prog.bias;
          for (const MacPairOp& op : prog.pairs) {
            const size_t off_a =
                static_cast<size_t>(op.operand_a) * c + ch;
            const size_t off_b =
                static_cast<size_t>(op.operand_b) * c + ch;
            for (int j = 0; j < kBatchLanes; ++j) {
              const int16_t* lane =
                  cols.data() + static_cast<size_t>(j) * lane_stride;
              acc[j] = smlad(op.weight_const,
                             pack_q15_pair(lane[off_b], lane[off_a]),
                             acc[j]);
            }
          }
          if (prog.has_single) {
            const uint32_t wlast = pack_q15_pair(0, prog.single.weight);
            const size_t off =
                static_cast<size_t>(prog.single.operand) * c + ch;
            for (int j = 0; j < kBatchLanes; ++j) {
              const int16_t* lane =
                  cols.data() + static_cast<size_t>(j) * lane_stride;
              acc[j] = smlabb(wlast, pack_q15_pair(0, lane[off]), acc[j]);
            }
          }
          for (int j = 0; j < bn; ++j) {
            const int32_t scaled =
                multiply_by_quantized_multiplier(acc[j], prog.requant) +
                out_q.zero_point;
            out[static_cast<size_t>(b0 + j) * out_elems + orow_off + ch] =
                static_cast<int8_t>(std::clamp(scaled, act_min, act_max));
          }
        }
      }
    }
  }
}

}  // namespace ataman
