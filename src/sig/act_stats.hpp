// Activation statistics capture (§II-C, framework step 2).
//
// The significance of a product a_i * w_i depends on the *expected* value
// of its input operand: E[a_i] is estimated per conv layer and per filter
// operand position ((ky,kx,in_c)-flattened) by averaging the zero-point-
// corrected quantized activations over every output position of every
// image in a small calibration subset — "capturing the input values'
// distribution from a small portion of the dataset".
//
// E[a_i] is shared by all output channels of a layer (they read the same
// receptive field); per-channel significance differs only through w_i.
#pragma once

#include <vector>

#include "src/data/dataset.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct ConvInputStats {
  // mean_corrected[i] = E[(x_q - zero_point)] at patch operand i.
  std::vector<double> mean_corrected;
  int64_t samples = 0;  // positions x images averaged over
};

// One entry per conv layer (ordinal order). Uses up to `limit` images of
// `calib` (all if < 0). Parallel over images; deterministic reduction.
std::vector<ConvInputStats> capture_activation_stats(const QModel& model,
                                                     const Dataset& calib,
                                                     int limit = 256);

}  // namespace ataman
