// Request/response types and the completion handle of the serve runtime.
//
// A request names an EngineRegistry backend, optionally points at a skip
// mask (the same approximate-config seam the DSE binds through
// EngineConfig), and owns its image bytes. The server answers through
// InferFuture, a small mutex+condvar completion handle. A hand-rolled
// state (rather than std::future) lets the server cancel still-queued
// work on shutdown, lets callers poll ready()/cancelled(), and carries
// queue/run timings next to the logits.
//
// Determinism contract: `logits` and `top1` are bitwise identical to
// running the same (engine, mask, image) through the engine serially —
// for any worker count, batch composition or arrival order (see
// docs/SERVING.md). `queue_ms`/`run_ms`/`worker`/`batch_size` are
// wall-clock/scheduling diagnostics and are NOT deterministic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace ataman {

struct SkipMask;

namespace serve {

struct InferRequest {
  std::string engine = "ref";      // EngineRegistry backend name
  const SkipMask* mask = nullptr;  // approximate config; nullptr = exact.
                                   // Must outlive request completion.
  std::vector<uint8_t> image;      // owned u8 pixels, model input shape
};

struct InferResult {
  std::vector<int8_t> logits;  // final-layer int8 logits (scored heads:
                               // the int8 reconstruction)
  int top1 = -1;               // argmax_lowest_index(logits); scored
                               // heads: scored_class(score) (1=anomalous)
  double score = 0.0;          // scored heads only: reconstruction MSE,
                               // bitwise deterministic like the logits
  double queue_ms = 0.0;       // submit -> execution start
  double run_ms = 0.0;         // execution start -> logits
  int worker = -1;             // executing worker id (diagnostic)
  int batch_size = 0;          // size of the micro-batch it rode in
};

namespace detail {

// Shared completion slot between the server (producer) and any number of
// InferFuture copies (consumers).
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool cancelled = false;
  InferResult result;
  std::string error;  // non-empty -> get() throws

  void complete(InferResult r) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }

  void fail_with(std::string message, bool was_cancelled) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      error = std::move(message);
      cancelled = was_cancelled;
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

// Completion handle returned by InferenceServer::submit. Copyable (all
// copies observe the same slot); a default-constructed handle is invalid.
class InferFuture {
 public:
  InferFuture() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    require_valid();
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
  }

  // True once the request was resolved by cancellation (queue shutdown
  // before execution). Only meaningful after ready().
  bool cancelled() const {
    require_valid();
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done && state_->cancelled;
  }

  void wait() const {
    require_valid();
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
  }

  // Blocks until resolved; returns the result, or throws Error when the
  // request was cancelled or its execution failed. get() may be called
  // repeatedly (it copies).
  InferResult get() const {
    require_valid();
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (!state_->error.empty()) fail(state_->error);
    return state_->result;
  }

 private:
  friend class InferenceServer;
  explicit InferFuture(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}

  void require_valid() const {
    check(valid(), "operation on an invalid (default-constructed) "
                   "InferFuture");
  }

  std::shared_ptr<detail::FutureState> state_;
};

}  // namespace serve
}  // namespace ataman
