#include "src/sig/act_stats.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/nn/engine.hpp"

namespace ataman {

namespace {

// Accumulate per-operand sums of (x - zp) over all output positions of
// one conv input feature map.
void accumulate_patch_sums(const QConv2D& conv, std::span<const int8_t> in,
                           std::vector<double>& sums, int64_t& positions) {
  const ConvGeom& g = conv.geom;
  const int32_t zp = conv.in.zero_point;
  const int oh = g.out_h(), ow = g.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int idx = 0;
      for (int ky = 0; ky < g.kernel; ++ky) {
        const int iy = oy * g.stride - g.pad + ky;
        for (int kx = 0; kx < g.kernel; ++kx) {
          const int ix = ox * g.stride - g.pad + kx;
          const bool inside =
              iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
          const int8_t* src =
              inside ? in.data() +
                           (static_cast<size_t>(iy) * g.in_w + ix) * g.in_c
                     : nullptr;
          for (int c = 0; c < g.in_c; ++c, ++idx) {
            // Padding taps contribute (zp - zp) == 0.
            if (inside)
              sums[static_cast<size_t>(idx)] +=
                  static_cast<double>(src[c] - zp);
          }
        }
      }
    }
  }
  positions += static_cast<int64_t>(oh) * ow;
}

}  // namespace

std::vector<ConvInputStats> capture_activation_stats(const QModel& model,
                                                     const Dataset& calib,
                                                     int limit) {
  const int n = limit < 0 ? calib.size() : std::min(limit, calib.size());
  check(n > 0, "calibration subset is empty");
  const int conv_count = model.conv_layer_count();
  check(conv_count > 0, "model has no conv layers");

  RefEngine engine(&model);

  // Per-worker accumulators, reduced in worker order for determinism.
  struct Acc {
    std::vector<std::vector<double>> sums;   // [conv][patch]
    std::vector<int64_t> positions;          // [conv]
  };
  const int max_workers = num_threads();
  std::vector<Acc> accs(static_cast<size_t>(max_workers));
  for (Acc& acc : accs) {
    acc.sums.resize(static_cast<size_t>(conv_count));
    acc.positions.assign(static_cast<size_t>(conv_count), 0);
    int ordinal = 0;
    for (const QLayer& layer : model.layers) {
      if (const auto* conv = std::get_if<QConv2D>(&layer)) {
        acc.sums[static_cast<size_t>(ordinal)].assign(
            static_cast<size_t>(conv->geom.patch_size()), 0.0);
        ++ordinal;
      }
    }
  }

  const int workers = parallel_for_indexed(0, n, [&](int w, int64_t i) {
    Acc& acc = accs[static_cast<size_t>(w)];
    const ConvTap tap = [&](int ordinal, const QConv2D& conv,
                            std::span<const int8_t> in) {
      accumulate_patch_sums(conv, in, acc.sums[static_cast<size_t>(ordinal)],
                            acc.positions[static_cast<size_t>(ordinal)]);
    };
    (void)engine.run(calib.image(static_cast<int>(i)), nullptr, tap);
  });

  std::vector<ConvInputStats> stats(static_cast<size_t>(conv_count));
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    ConvInputStats& s = stats[static_cast<size_t>(ordinal)];
    s.mean_corrected.assign(static_cast<size_t>(conv->geom.patch_size()),
                            0.0);
    for (int w = 0; w < workers; ++w) {
      const Acc& acc = accs[static_cast<size_t>(w)];
      for (size_t i = 0; i < s.mean_corrected.size(); ++i)
        s.mean_corrected[i] += acc.sums[static_cast<size_t>(ordinal)][i];
      s.samples += acc.positions[static_cast<size_t>(ordinal)];
    }
    check(s.samples > 0, "no positions captured");
    for (double& v : s.mean_corrected)
      v /= static_cast<double>(s.samples);
    ++ordinal;
  }
  return stats;
}

}  // namespace ataman
