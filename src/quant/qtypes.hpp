// Quantized model representation.
//
// Scheme (TFLite-Micro / CMSIS-NN int8 convention):
//   * activations: asymmetric per-tensor  real = scale * (q - zero_point)
//   * weights:     symmetric  per-tensor  real = scale * q
//   * bias:        int32 at scale in_scale * w_scale, zero_point 0
//   * accumulators: int32; rescaled to the output tensor with a
//     fixed-point multiplier (see common/fixed_point.hpp)
//   * ReLU is folded into the conv/fc output clamp (act_min/act_max)
//
// Layer weight layout is [out_c][kernel][kernel][in_c] for conv and
// [out][in] for fully-connected — identical to the float substrate and to
// the operand indexing used by the significance analysis and codegen.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/fixed_point.hpp"
#include "src/train/im2col.hpp"

namespace ataman {

// Per-tensor affine quantization parameters.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;

  int8_t quantize(float real) const;
  float dequantize(int8_t q) const;
};

struct QConv2D {
  ConvGeom geom;
  std::vector<int8_t> weights;  // [out_c][k][k][in_c]
  std::vector<int32_t> bias;    // [out_c], scale = in.scale * w_scale
  QuantParams in, out;
  float w_scale = 1.0f;
  QuantizedMultiplier requant;
  int32_t act_min = -128;  // output clamp (ReLU folding raises act_min)
  int32_t act_max = 127;
};

struct QDense {
  int in_dim = 0, out_dim = 0;
  std::vector<int8_t> weights;  // [out][in]
  std::vector<int32_t> bias;
  QuantParams in, out;
  float w_scale = 1.0f;
  QuantizedMultiplier requant;
  int32_t act_min = -128;
  int32_t act_max = 127;

  int64_t macs() const {
    return static_cast<int64_t>(in_dim) * out_dim;
  }
};

struct QMaxPool {
  int in_h = 0, in_w = 0, channels = 0;
  int kernel = 2, stride = 2;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, 0); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, 0); }
};

using QLayer = std::variant<QConv2D, QMaxPool, QDense>;

struct QModel {
  std::string name;      // architecture name ("lenet", ...)
  std::string topology;  // paper notation ("3-2-2")
  int in_h = 0, in_w = 0, in_c = 0;
  QuantParams input;     // quantization of the u8/255 input
  std::vector<QLayer> layers;

  int64_t mac_count() const;          // conv + dense MACs
  int64_t conv_mac_count() const;     // conv-only (Fig. 2 normalization)
  int conv_layer_count() const;
  int64_t weight_bytes() const;       // int8 weights + int32 biases
  // Index of the n-th conv layer inside `layers` (n in [0, conv_count)).
  int conv_layer_index(int n) const;

  // Largest activation tensor sizes, for the RAM model: returns the two
  // biggest inter-layer buffers (bytes) in descending order.
  std::pair<int64_t, int64_t> two_largest_activations() const;
};

}  // namespace ataman
