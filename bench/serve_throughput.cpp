// Serving-throughput harness: serial single-request loops vs the batched
// async runtime (src/serve) across worker counts.
//
// Workload: synthetic-CIFAR traffic against a zoo model — a fixed
// interleaved mix of exact and approximate configurations across the
// four registry backends, exactly what a deployment fleet doing
// mixed-precision A/B serving would see. Three execution modes:
//
//   serial-cold  one registry engine built per request, run, discarded —
//                serving without any runtime layer (every deploy_engine
//                call site works like this today)
//   serial-warm  one engine per configuration built upfront, requests
//                run in arrival order on the caller thread — serving
//                with caching but neither batching nor concurrency
//   serve@N      InferenceServer with N workers (micro-batching + the
//                per-worker engine pool)
//
// Every mode's logits are cross-checked bitwise against the serial-cold
// baseline (exit 2 on any mismatch) — the determinism contract,
// measured, not assumed. Serve workers execute each coalesced batch
// through run_batch, so the serve rows measure batched kernels + engine
// caching + concurrency; the CSV labels each row with the host's
// hardware-thread count and whether batched kernels were engaged, so a
// 1-core SKIP row can no longer be mistaken for a multicore result.
// Throughput target (ISSUE 6): serve@4 >= 3x serial-warm — warm is the
// honest baseline now that engine construction is cached everywhere. The
// verdict needs >= 4 hardware threads: inference is pure CPU work, so a
// 1-core container cannot exhibit thread scaling and the harness says so
// instead of faking it (--strict turns a missed, *evaluable* target into
// exit 1 for CI use).
//
//   ./build/bench/serve_throughput [--quick] [--strict]
//                                  [--model micronet|lenet|alexnet]
//                                  [--requests N]
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/serve/server.hpp"
#include "src/sig/skip_plan.hpp"

namespace {

using namespace ataman;
using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::ServeOptions;
using serve::ServeStats;

struct Args {
  bool quick = false;
  bool strict = false;
  std::string model = "micronet";
  int requests = 0;  // 0 -> per-scale default
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (arg == "--model" && i + 1 < argc) {
      a.model = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      a.requests = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(64);
    }
  }
  return a;
}

struct ModeResult {
  std::string mode;
  double wall_ms = 0.0;
  double req_per_s = 0.0;
  int64_t batches = 0;
  int64_t max_batch = 0;
  bool batched_kernels = false;  // run_batch-amortized execution engaged
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("==============================================================\n");
  std::printf("Serving throughput: serial loop vs batched async runtime\n");
  std::printf("  model=%s  hardware threads=%d  flags:%s%s\n",
              args.model.c_str(), hw_threads, args.quick ? " --quick" : "",
              args.strict ? " --strict" : "");
  std::printf("==============================================================\n");

  const ZooSpec spec = args.model == "lenet"     ? lenet_spec()
                       : args.model == "alexnet" ? alexnet_spec()
                                                 : micronet_spec();
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);

  // Significance-derived masks for the approximate configurations.
  AtamanPipeline pipeline(&model, &data.train, &data.test, {});
  pipeline.analyze();
  const int convs = model.conv_layer_count();
  const SkipMask mask_lo = pipeline.mask_for(ApproxConfig::uniform(convs, 0.02));
  const SkipMask mask_hi = pipeline.mask_for(ApproxConfig::uniform(convs, 0.08));

  // The traffic mix: exact + approximate across all four backends.
  struct Key {
    const char* engine;
    const SkipMask* mask;
  };
  const Key keys[] = {
      {"unpacked", &mask_lo}, {"cmsis", nullptr}, {"unpacked", &mask_hi},
      {"xcube", nullptr},     {"ref", &mask_lo},  {"unpacked", nullptr},
  };
  const int total = args.requests > 0 ? args.requests
                    : args.quick      ? 96
                                      : 240;
  std::vector<InferRequest> requests;
  requests.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    const Key& key = keys[static_cast<size_t>(i) % std::size(keys)];
    InferRequest r;
    r.engine = key.engine;
    r.mask = key.mask;
    const auto img = data.test.image(i % data.test.size());
    r.image.assign(img.begin(), img.end());
    requests.push_back(std::move(r));
  }
  std::printf("[workload] %d requests, %zu configurations, %d test images\n",
              total, std::size(keys), data.test.size());

  std::vector<ModeResult> results;

  // --- serial-cold: engine per request -----------------------------------
  std::vector<std::vector<int8_t>> expected(requests.size());
  {
    Stopwatch sw;
    for (size_t i = 0; i < requests.size(); ++i) {
      EngineConfig cfg;
      cfg.model = &model;
      cfg.mask = requests[i].mask;
      const auto engine =
          EngineRegistry::instance().create(requests[i].engine, cfg);
      expected[i] = engine->run(requests[i].image);
    }
    const double ms = sw.millis();
    results.push_back({"serial-cold", ms, 1e3 * total / ms, 0, 0});
  }

  // --- serial-warm: cached engine per configuration ----------------------
  {
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    for (const Key& key : keys) {
      EngineConfig cfg;
      cfg.model = &model;
      cfg.mask = key.mask;
      engines.push_back(EngineRegistry::instance().create(key.engine, cfg));
    }
    Stopwatch sw;
    int mismatches = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
      const auto logits = engines[i % std::size(keys)]->run(requests[i].image);
      if (logits != expected[i]) ++mismatches;
    }
    const double ms = sw.millis();
    results.push_back({"serial-warm", ms, 1e3 * total / ms, 0, 0});
    if (mismatches != 0) {
      std::fprintf(stderr, "FATAL: serial-warm diverged on %d requests\n",
                   mismatches);
      return 2;
    }
  }

  // --- batched async runtime across worker counts ------------------------
  const std::vector<int> worker_counts =
      args.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  double serve4_req_per_s = -1.0;
  for (const int workers : worker_counts) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch = 8;
    InferenceServer server(&model, options);
    Stopwatch sw;
    std::vector<InferFuture> futures;
    futures.reserve(requests.size());
    for (const InferRequest& r : requests) futures.push_back(server.submit(r));
    server.drain();
    const double ms = sw.millis();

    int mismatches = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get().logits != expected[i]) ++mismatches;
    }
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FATAL: serve@%d diverged from serial on %d requests — "
                   "determinism contract broken\n",
                   workers, mismatches);
      return 2;
    }
    const ServeStats stats = server.stats();
    results.push_back({"serve@" + std::to_string(workers), ms,
                       1e3 * total / ms, stats.batches, stats.max_batch_seen,
                       /*batched_kernels=*/true});
    if (workers == 4) serve4_req_per_s = 1e3 * total / ms;
    std::printf(
        "[serve@%d] %lld batches (max fill %lld), %lld coalesced, "
        "%lld prototypes, %lld clones — all %d results bitwise == serial\n",
        workers, static_cast<long long>(stats.batches),
        static_cast<long long>(stats.max_batch_seen),
        static_cast<long long>(stats.coalesced),
        static_cast<long long>(stats.pool.prototypes_built),
        static_cast<long long>(stats.pool.engines_cloned), total);
  }

  // --- report -------------------------------------------------------------
  const double cold_rps = results[0].req_per_s;
  const double warm_rps = results[1].req_per_s;
  ConsoleTable table({"mode", "wall ms", "req/s", "vs cold", "vs warm",
                      "batched"});
  CsvWriter csv(bench::results_dir() + "/serve_throughput.csv",
                {"mode", "wall_ms", "req_per_s", "speedup_vs_cold",
                 "speedup_vs_warm", "batches", "max_batch", "hw_threads",
                 "batched_kernels"});
  for (const ModeResult& r : results) {
    table.row({r.mode, bench::fmt(r.wall_ms, 1), bench::fmt(r.req_per_s, 1),
               bench::fmt(r.req_per_s / cold_rps, 2),
               bench::fmt(r.req_per_s / warm_rps, 2),
               r.batched_kernels ? "yes" : "no"});
    csv.row({r.mode, CsvWriter::num(r.wall_ms), CsvWriter::num(r.req_per_s),
             CsvWriter::num(r.req_per_s / cold_rps),
             CsvWriter::num(r.req_per_s / warm_rps),
             std::to_string(r.batches), std::to_string(r.max_batch),
             std::to_string(hw_threads),
             std::string(r.batched_kernels ? "1" : "0")});
  }
  std::printf("%s", table.render("throughput by execution mode").c_str());
  std::printf("[csv] %s\n", csv.path().c_str());

  // --- verdict ------------------------------------------------------------
  if (serve4_req_per_s < 0) {
    std::printf("[verdict] serve@4 not in the worker set — no verdict\n");
    return 0;
  }
  const double speedup = serve4_req_per_s / warm_rps;
  if (hw_threads < 4) {
    std::printf(
        "[verdict] SKIP: %.2fx at 4 workers vs serial-warm; the >=3x "
        "target needs >=4 hardware threads (this host has %d — CPU-bound "
        "inference cannot thread-scale here)\n",
        speedup, hw_threads);
    return 0;
  }
  const bool pass = speedup >= 3.0;
  std::printf("[verdict] %s: serve@4 is %.2fx serial-warm (target >=3x)\n",
              pass ? "PASS" : "FAIL", speedup);
  return pass || !args.strict ? 0 : 1;
}
