// Softmax + cross-entropy loss head with fused, numerically stable
// gradient (dlogits = softmax - onehot).
#pragma once

#include <span>
#include <vector>

#include "src/train/ftensor.hpp"

namespace ataman {

struct LossResult {
  double loss = 0.0;       // mean cross-entropy over the batch
  int correct = 0;         // argmax == label count
  FTensor dlogits;         // gradient w.r.t. logits (already / batch)
};

LossResult softmax_cross_entropy(const FTensor& logits,
                                 std::span<const int> labels);

// Softmax probabilities for a single logit row (used by examples/tools).
std::vector<float> softmax(std::span<const float> logits);

}  // namespace ataman
