#include "src/unpack/layer_selection.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

std::vector<uint8_t> HybridPlan::unpack_selection() const {
  std::vector<uint8_t> out;
  out.reserve(choices.size());
  for (const LayerDeployChoice& c : choices)
    out.push_back(c.unpack ? 1 : 0);
  return out;
}

int64_t HybridPlan::total_cycle_saving() const {
  int64_t total = 0;
  for (const LayerDeployChoice& c : choices)
    if (c.unpack) total += c.packed_cycles - c.unpacked_cycles;
  return total;
}

int64_t HybridPlan::total_flash_delta() const {
  int64_t total = 0;
  for (const LayerDeployChoice& c : choices)
    if (c.unpack) total += c.unpacked_flash - c.packed_flash;
  return total;
}

int HybridPlan::unpacked_count() const {
  int n = 0;
  for (const LayerDeployChoice& c : choices) n += c.unpack ? 1 : 0;
  return n;
}

HybridPlan analyze_layer_choices(const QModel& model, const SkipMask& mask,
                                 const CortexM33CostTable& costs,
                                 const MemoryCostTable& memory) {
  const UnpackStats stats = compute_unpack_stats(model, mask);
  HybridPlan plan;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (!d.skippable) continue;
    const int64_t pairs = stats.static_pairs[static_cast<size_t>(ordinal)];
    const int64_t singles =
        stats.static_singles[static_cast<size_t>(ordinal)];
    LayerDeployChoice c;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      c.packed_cycles = static_cast<int64_t>(costs.layer_dispatch) +
                        packed_conv_cycles(*conv, costs);
      c.unpacked_cycles = unpacked_conv_cycles(*conv, pairs, singles, costs);
    } else {
      const auto& dw = std::get<QDepthwiseConv2D>(layer);
      c.packed_cycles = static_cast<int64_t>(costs.layer_dispatch) +
                        packed_depthwise_cycles(dw, costs);
      c.unpacked_cycles =
          unpacked_depthwise_cycles(dw, pairs, singles, costs);
    }
    c.packed_flash = d.skippable_operand_count() +
                     static_cast<int64_t>(d.channels) * 4 +
                     memory.per_layer_descriptor;
    c.unpacked_flash = memory.unpacked_bytes_per_layer +
                       memory.unpacked_bytes_per_channel * d.channels +
                       memory.unpacked_bytes_per_pair * pairs +
                       memory.unpacked_bytes_per_single * singles +
                       static_cast<int64_t>(d.channels) * 4;
    c.unpack = false;  // selection decides
    plan.choices.push_back(c);
    ++ordinal;
  }
  return plan;
}

HybridPlan select_layers_to_unpack(const QModel& model, const SkipMask& mask,
                                   int64_t flash_budget,
                                   const CortexM33CostTable& costs,
                                   const MemoryCostTable& memory) {
  HybridPlan plan = analyze_layer_choices(model, mask, costs, memory);

  // Baseline model flash with everything packed.
  int64_t flash = packed_flash(model, memory).total_bytes
                  // swap generic runtime for the customized one (the
                  // hybrid build is generated code either way)
                  - memory.generic_runtime_code + memory.custom_runtime_code;

  // Candidate order: best cycle-saving per extra flash byte first.
  std::vector<int> order(plan.choices.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ca = plan.choices[static_cast<size_t>(a)];
    const auto& cb = plan.choices[static_cast<size_t>(b)];
    const double da = std::max<int64_t>(1, ca.unpacked_flash - ca.packed_flash);
    const double db = std::max<int64_t>(1, cb.unpacked_flash - cb.packed_flash);
    return static_cast<double>(ca.packed_cycles - ca.unpacked_cycles) / da >
           static_cast<double>(cb.packed_cycles - cb.unpacked_cycles) / db;
  });

  for (const int idx : order) {
    LayerDeployChoice& c = plan.choices[static_cast<size_t>(idx)];
    const int64_t saving = c.packed_cycles - c.unpacked_cycles;
    if (saving <= 0) continue;  // unpacking would slow this layer down
    const int64_t delta = c.unpacked_flash - c.packed_flash;
    if (flash_budget > 0 && flash + delta > flash_budget) continue;
    c.unpack = true;
    flash += delta;
  }
  return plan;
}

}  // namespace ataman
