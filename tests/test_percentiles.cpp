// Unit tests for the traffic-replay utilities (bench/replay_common.hpp):
// nearest-rank percentile semantics on crafted vectors, edge cases,
// per-class bucketing, and seeded-trace reproducibility. The replay
// harness (bench/traffic_replay.cpp) consumes exactly these helpers, so
// pinning them here keeps the bench's reported p50/p95/p99 trustworthy
// without running a server in a unit test.
#include <gtest/gtest.h>

#include <vector>

#include "bench/replay_common.hpp"
#include "src/common/error.hpp"

namespace ataman::bench {
namespace {

// --- nearest-rank percentile ---------------------------------------------

TEST(Percentile, NearestRankOnCraftedVectors) {
  // 10 samples: rank(p) = ceil(p/100 * 10), 1-indexed into the sorted
  // vector. Values are deliberately unsorted on input.
  const std::vector<double> v = {10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
  EXPECT_EQ(percentile(v, 50.0), 5.0);   // ceil(5) = 5th smallest
  EXPECT_EQ(percentile(v, 95.0), 10.0);  // ceil(9.5) = 10th
  EXPECT_EQ(percentile(v, 99.0), 10.0);  // ceil(9.9) = 10th
  EXPECT_EQ(percentile(v, 100.0), 10.0);
  EXPECT_EQ(percentile(v, 10.0), 1.0);  // ceil(1) = 1st
  EXPECT_EQ(percentile(v, 0.0), 1.0);   // p0 clamps to the smallest
}

TEST(Percentile, ExactRankBoundaries) {
  // 4 samples: p50 -> ceil(2) = 2nd, p75 -> ceil(3) = 3rd; just past a
  // boundary jumps to the next rank: p51 -> ceil(2.04) = 3rd.
  const std::vector<double> v = {4, 3, 2, 1};
  EXPECT_EQ(percentile(v, 50.0), 2.0);
  EXPECT_EQ(percentile(v, 51.0), 3.0);
  EXPECT_EQ(percentile(v, 75.0), 3.0);
  EXPECT_EQ(percentile(v, 76.0), 4.0);
}

TEST(Percentile, EmptyAndSingleElementEdges) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);  // no traffic -> zero row
  EXPECT_EQ(percentile({}, 99.0), 0.0);
  const std::vector<double> one = {42.5};
  EXPECT_EQ(percentile(one, 0.0), 42.5);
  EXPECT_EQ(percentile(one, 50.0), 42.5);
  EXPECT_EQ(percentile(one, 99.0), 42.5);
  EXPECT_EQ(percentile(one, 100.0), 42.5);
}

TEST(Percentile, RejectsOutOfRangeRanks) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_THROW(percentile(v, -1.0), Error);
  EXPECT_THROW(percentile(v, 100.5), Error);
}

TEST(Percentile, DoesNotMutateCallerSamples) {
  const std::vector<double> v = {3, 1, 2};
  const std::vector<double> before = v;
  (void)percentile(v, 99.0);
  EXPECT_EQ(v, before);
}

TEST(Percentile, SummaryIsMonotoneAcrossRanks) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i) * 0.25);
  const LatencySummary s = summarize_latency(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(s.p50, 50 * 0.25);
  EXPECT_EQ(s.p95, 95 * 0.25);
  EXPECT_EQ(s.p99, 99 * 0.25);
  EXPECT_EQ(s.max, 100 * 0.25);
}

// --- per-class bucketing -------------------------------------------------

TEST(ClassBucketsTest, BucketsSamplesByClassAndReportsEmptyClasses) {
  ClassBuckets b;
  b.add("vww", 1.0);
  b.add("ae_anomaly", 2.0);
  b.add("vww", 3.0);
  ASSERT_EQ(b.samples("vww").size(), 2u);
  EXPECT_EQ(b.samples("vww")[0], 1.0);
  EXPECT_EQ(b.samples("vww")[1], 3.0);
  ASSERT_EQ(b.samples("ae_anomaly").size(), 1u);
  EXPECT_TRUE(b.samples("never-seen").empty());
  EXPECT_EQ(percentile(b.samples("never-seen"), 99.0), 0.0);
  EXPECT_EQ(b.all().size(), 2u);
}

// --- seeded trace --------------------------------------------------------

TEST(Trace, SameSeedReproducesTheTraceBitForBit) {
  const auto a = make_trace(123, 200, 4, 64, 1.5);
  const auto b = make_trace(123, 200, 4, 64, 1.5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model_class, b[i].model_class) << i;
    EXPECT_EQ(a[i].image_index, b[i].image_index) << i;
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms) << i;  // exact doubles
  }
}

TEST(Trace, DifferentSeedsDiverge) {
  const auto a = make_trace(123, 100, 4, 64, 1.5);
  const auto b = make_trace(124, 100, 4, 64, 1.5);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].model_class != b[i].model_class ||
              a[i].image_index != b[i].image_index ||
              a[i].arrival_ms != b[i].arrival_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, EventsAreWellFormed) {
  const auto t = make_trace(7, 500, 3, 10, 2.0);
  ASSERT_EQ(t.size(), 500u);
  double prev = 0.0;
  double total_gap = 0.0;
  std::vector<int> class_counts(3, 0);
  for (const TraceEvent& e : t) {
    EXPECT_GE(e.model_class, 0);
    EXPECT_LT(e.model_class, 3);
    EXPECT_GE(e.image_index, 0);
    EXPECT_LT(e.image_index, 10);
    EXPECT_GE(e.arrival_ms, prev);  // arrivals never go backwards
    total_gap = e.arrival_ms;
    prev = e.arrival_ms;
    ++class_counts[static_cast<size_t>(e.model_class)];
  }
  // Exponential gaps with mean 2.0ms: the 500-event total concentrates
  // near 1000ms; a [300, 3000] band is far beyond any realistic
  // deviation for a fixed seed, and every class gets traffic.
  EXPECT_GT(total_gap, 300.0);
  EXPECT_LT(total_gap, 3000.0);
  for (const int c : class_counts) EXPECT_GT(c, 0);
}

TEST(Trace, ZeroGapCollapsesArrivalsToInstantBurst) {
  const auto t = make_trace(9, 50, 2, 4, 0.0);
  for (const TraceEvent& e : t) EXPECT_EQ(e.arrival_ms, 0.0);
}

TEST(Trace, RejectsDegenerateParameters) {
  EXPECT_THROW(make_trace(1, -1, 4, 64, 1.0), Error);
  EXPECT_THROW(make_trace(1, 10, 0, 64, 1.0), Error);
  EXPECT_THROW(make_trace(1, 10, 4, 0, 1.0), Error);
  EXPECT_THROW(make_trace(1, 10, 4, 64, -0.5), Error);
}

}  // namespace
}  // namespace ataman::bench
