// Tagged binary serialization for model artifacts.
//
// Trained float models, quantized models and calibration statistics are
// cached on disk between runs (training the AlexNet-class model takes
// minutes; benches and examples share one artifact). The format is a
// sequence of (tag, payload) records with explicit sizes, little-endian,
// guarded by a magic header and format version.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace ataman {

class BinaryWriter {
 public:
  BinaryWriter(const std::string& path, const std::string& magic);
  ~BinaryWriter();

  void u32(uint32_t v);
  void i32(int32_t v);
  void u64(uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);
  void bytes(const void* data, size_t n);

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }

  void close();

 private:
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  BinaryReader(const std::string& path, const std::string& magic);

  uint32_t u32();
  int32_t i32();
  uint64_t u64();
  float f32();
  double f64();
  std::string str();
  void bytes(void* data, size_t n);

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = u64();
    check(n < (1ULL << 32), "implausible vector size in " + path_);
    std::vector<T> v(static_cast<size_t>(n));
    bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  bool at_end();

 private:
  std::ifstream in_;
  std::string path_;
};

bool file_exists(const std::string& path);
void ensure_directory(const std::string& path);

}  // namespace ataman
