// Console table printer for paper-style result tables (Table I, Table II).
#pragma once

#include <string>
#include <vector>

namespace ataman {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  // Insert a horizontal separator before the next row.
  void separator();

  // Render with column alignment; `title` is printed above when non-empty.
  std::string render(const std::string& title = "") const;

  static std::string fmt(double v, int decimals);

 private:
  struct Line {
    bool is_separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Line> lines_;
};

}  // namespace ataman
