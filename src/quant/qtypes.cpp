#include "src/quant/qtypes.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

int8_t QuantParams::quantize(float real) const {
  check(scale > 0.0f, "quantization scale must be positive");
  const int32_t q = round_to_int32(real / scale) + zero_point;
  return saturate_int8(q);
}

float QuantParams::dequantize(int8_t q) const {
  return scale * static_cast<float>(static_cast<int32_t>(q) - zero_point);
}

void refresh_requant(QConv2D& conv) {
  check(static_cast<int>(conv.w_scales.size()) == conv.geom.out_c,
        "QConv2D::w_scales must have one entry per output channel");
  conv.requant.resize(conv.w_scales.size());
  for (size_t c = 0; c < conv.w_scales.size(); ++c) {
    conv.requant[c] = quantize_multiplier(static_cast<double>(conv.in.scale) *
                                          conv.w_scales[c] / conv.out.scale);
  }
}

void refresh_requant(QDepthwiseConv2D& dw) {
  check(static_cast<int>(dw.w_scales.size()) == dw.channels,
        "QDepthwiseConv2D::w_scales must have one entry per channel");
  dw.requant.resize(dw.w_scales.size());
  for (size_t c = 0; c < dw.w_scales.size(); ++c) {
    dw.requant[c] = quantize_multiplier(static_cast<double>(dw.in.scale) *
                                        dw.w_scales[c] / dw.out.scale);
  }
}

void set_pertensor_wscale(QConv2D& conv, float w_scale) {
  conv.w_scales.assign(static_cast<size_t>(conv.geom.out_c), w_scale);
  refresh_requant(conv);
}

void set_pertensor_wscale(QDepthwiseConv2D& dw, float w_scale) {
  dw.w_scales.assign(static_cast<size_t>(dw.channels), w_scale);
  refresh_requant(dw);
}

OpDescriptor describe_layer(const QLayer& layer) {
  OpDescriptor d;
  if (const auto* conv = std::get_if<QConv2D>(&layer)) {
    const ConvGeom& g = conv->geom;
    d.kind = OpKind::kConv;
    d.in_elems = static_cast<int64_t>(g.in_h) * g.in_w * g.in_c;
    d.out_elems = static_cast<int64_t>(g.positions()) * g.out_c;
    d.macs = g.macs();
    d.skippable = true;
    d.channels = g.out_c;
    d.patch = g.patch_size();
    d.positions = g.positions();
  } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
    d.kind = OpKind::kDepthwise;
    d.in_elems = static_cast<int64_t>(dw->in_h) * dw->in_w * dw->channels;
    d.out_elems = static_cast<int64_t>(dw->positions()) * dw->channels;
    d.macs = dw->macs();
    d.skippable = true;
    d.channels = dw->channels;
    d.patch = dw->patch_size();
    d.positions = dw->positions();
  } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
    d.kind = OpKind::kMaxPool;
    d.in_elems = static_cast<int64_t>(pool->in_h) * pool->in_w *
                 pool->channels;
    d.out_elems = static_cast<int64_t>(pool->out_h()) * pool->out_w() *
                  pool->channels;
    d.positions = static_cast<int64_t>(pool->out_h()) * pool->out_w();
  } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
    d.kind = OpKind::kAvgPool;
    d.in_elems = static_cast<int64_t>(pool->in_h) * pool->in_w *
                 pool->channels;
    d.out_elems = static_cast<int64_t>(pool->out_h()) * pool->out_w() *
                  pool->channels;
    d.positions = static_cast<int64_t>(pool->out_h()) * pool->out_w();
  } else if (const auto* fc = std::get_if<QDense>(&layer)) {
    d.kind = OpKind::kDense;
    d.in_elems = fc->in_dim;
    d.out_elems = fc->out_dim;
    d.macs = fc->macs();
    d.positions = 1;
    d.out_dim = fc->out_dim;
  } else if (const auto* add = std::get_if<QAdd>(&layer)) {
    d.kind = OpKind::kAdd;
    // in_elems is the size of *each* input tensor (both are equal-shape).
    d.in_elems = add->elems();
    d.out_elems = add->elems();
    d.positions = static_cast<int64_t>(add->h) * add->w;
  }
  return d;
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kDense: return "dense";
    case OpKind::kDepthwise: return "depthwise";
    case OpKind::kAvgPool: return "avgpool";
    case OpKind::kAdd: return "add";
  }
  return "?";
}

std::vector<int> QModel::inputs_of(int layer) const {
  check(layer >= 0 && layer < static_cast<int>(layers.size()),
        "inputs_of: layer index out of range");
  if (layer_inputs.empty()) return {layer};  // pure chain
  return layer_inputs[static_cast<size_t>(layer)];
}

bool QModel::is_chain() const {
  if (layer_inputs.empty()) return true;
  for (size_t l = 0; l < layer_inputs.size(); ++l) {
    if (layer_inputs[l].size() != 1 ||
        layer_inputs[l][0] != static_cast<int>(l))
      return false;
  }
  return true;
}

bool QModel::linear_boundary(int layer) const {
  check(layer >= 0 && layer <= static_cast<int>(layers.size()),
        "linear_boundary: layer index out of range");
  if (layer_inputs.empty()) return true;  // every chain cut is linear
  for (int j = layer; j < static_cast<int>(layers.size()); ++j) {
    for (int t : inputs_of(j))
      if (t < layer) return false;
  }
  return true;
}

int QModel::dominating_boundary(int layer) const {
  for (int l = layer; l > 0; --l)
    if (linear_boundary(l)) return l;
  return 0;
}

void QModel::validate_dag() const {
  if (layer_inputs.empty()) return;  // chain default — always valid
  check(layer_inputs.size() == layers.size(),
        "layer_inputs must have one entry per layer");
  for (size_t l = 0; l < layers.size(); ++l) {
    const OpDescriptor d = describe_layer(layers[l]);
    const std::vector<int>& ins = layer_inputs[l];
    const size_t arity = d.kind == OpKind::kAdd ? 2 : 1;
    check(ins.size() == arity, "layer has wrong input arity for its kind");
    for (int t : ins) {
      check(t >= 0 && t <= static_cast<int>(l),
            "layer input must be an already-produced tensor id");
      check(tensor_elems(t) == d.in_elems,
            "layer input tensor shape mismatch");
    }
  }
}

int64_t QModel::tensor_elems(int tensor) const {
  check(tensor >= 0 && tensor <= static_cast<int>(layers.size()),
        "tensor id out of range");
  if (tensor == 0) return static_cast<int64_t>(in_h) * in_w * in_c;
  return describe_layer(layers[static_cast<size_t>(tensor - 1)]).out_elems;
}

int64_t QModel::mac_count() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) total += describe_layer(layer).macs;
  return total;
}

int64_t QModel::approx_mac_count() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) {
    const OpDescriptor d = describe_layer(layer);
    if (d.skippable) total += d.macs;
  }
  return total;
}

int QModel::conv_layer_count() const {
  int count = 0;
  for (const QLayer& layer : layers)
    if (std::holds_alternative<QConv2D>(layer)) ++count;
  return count;
}

int QModel::approx_layer_count() const {
  int count = 0;
  for (const QLayer& layer : layers)
    if (describe_layer(layer).skippable) ++count;
  return count;
}

int QModel::approx_layer_index(int n) const {
  int seen = 0;
  for (size_t i = 0; i < layers.size(); ++i) {
    if (describe_layer(layers[i]).skippable) {
      if (seen == n) return static_cast<int>(i);
      ++seen;
    }
  }
  fail("approximable layer ordinal out of range");
}

int64_t QModel::weight_bytes() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      total += static_cast<int64_t>(conv->weights.size()) +
               static_cast<int64_t>(conv->bias.size()) * 4;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      total += static_cast<int64_t>(dw->weights.size()) +
               static_cast<int64_t>(dw->bias.size()) * 4;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      total += static_cast<int64_t>(fc->weights.size()) +
               static_cast<int64_t>(fc->bias.size()) * 4;
    }
  }
  return total;
}

std::pair<int64_t, int64_t> QModel::two_largest_activations() const {
  std::vector<int64_t> sizes;
  sizes.push_back(static_cast<int64_t>(in_h) * in_w * in_c);
  for (const QLayer& layer : layers)
    sizes.push_back(describe_layer(layer).out_elems);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return {sizes[0], sizes.size() > 1 ? sizes[1] : 0};
}

}  // namespace ataman
