// Reference int8 inference engine.
//
// Runs a QModel image-by-image with the golden kernels. Supports
//   * skip masks (the DSE evaluates approximate configs through here —
//     masking a product is numerically identical to omitting its
//     instruction from unpacked code, which tests/test_unpack.cpp asserts)
//   * conv-input taps (the significance analysis captures activation
//     statistics through these).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

// Called before each conv layer executes: (conv_ordinal, layer, input).
using ConvTap =
    std::function<void(int, const QConv2D&, std::span<const int8_t>)>;

class RefEngine {
 public:
  explicit RefEngine(const QModel* model);

  // Quantize a u8 image into the model's input tensor (q = pixel - 128
  // for the standard [0,1] input scale).
  std::vector<int8_t> quantize_input(std::span<const uint8_t> image) const;

  // Full inference; returns the final layer's int8 logits.
  std::vector<int8_t> run(std::span<const uint8_t> image,
                          const SkipMask* mask = nullptr,
                          const ConvTap& tap = nullptr) const;

  int classify(std::span<const uint8_t> image,
               const SkipMask* mask = nullptr) const;

  const QModel& model() const { return *model_; }

 private:
  const QModel* model_;
};

// Top-1 accuracy of `model` on up to `limit` images of `ds` (all if
// limit < 0). Parallel over images; deterministic.
double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask = nullptr,
                                   int limit = -1);

}  // namespace ataman
