// Minimal CSV writer used by the benchmark harnesses to dump table/figure
// series for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ataman {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // Append one row; must match the header arity.
  void row(const std::vector<std::string>& cells);

  // Convenience: format doubles with enough digits for round-tripping.
  static std::string num(double v);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  size_t arity_;
};

}  // namespace ataman
