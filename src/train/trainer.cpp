#include "src/train/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/common/stopwatch.hpp"
#include "src/train/softmax_xent.hpp"

namespace ataman {

TrainResult train_network(Network& net, const Dataset& train,
                          const Dataset& test, const TrainConfig& config) {
  check(train.size() > 0, "empty training set");
  check(config.batch_size > 0 && config.epochs > 0, "bad training config");

  SgdOptimizer opt(config.sgd);
  Rng rng(config.seed);
  std::vector<int> order(static_cast<size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (std::find(config.lr_decay_at.begin(), config.lr_decay_at.end(),
                  epoch) != config.lr_decay_at.end()) {
      opt.set_learning_rate(opt.learning_rate() * config.lr_decay);
    }
    rng.shuffle(order);

    Stopwatch watch;
    double loss_sum = 0.0;
    int correct = 0;
    int seen = 0;
    for (size_t lo = 0; lo < order.size();
         lo += static_cast<size_t>(config.batch_size)) {
      const size_t hi = std::min(order.size(),
                                 lo + static_cast<size_t>(config.batch_size));
      FTensor x = to_float_batch(train, order, lo, hi);
      std::vector<int> labels(hi - lo);
      for (size_t i = lo; i < hi; ++i)
        labels[i - lo] = train.label(order[i]);

      FTensor logits = net.forward(x, /*train=*/true);
      LossResult loss = softmax_cross_entropy(logits, labels);

      net.zero_grad();
      net.backward(loss.dlogits);
      opt.step(net.params());

      loss_sum += loss.loss * static_cast<double>(hi - lo);
      correct += loss.correct;
      seen += static_cast<int>(hi - lo);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / seen;
    stats.train_accuracy = static_cast<double>(correct) / seen;
    stats.seconds = watch.seconds();
    result.epochs.push_back(stats);
    if (config.verbose) {
      std::printf("  epoch %2d  loss %.4f  train-acc %.4f  (%.1fs, lr %.4f)\n",
                  epoch, stats.train_loss, stats.train_accuracy, stats.seconds,
                  static_cast<double>(opt.learning_rate()));
      std::fflush(stdout);
    }
  }

  result.final_train_accuracy = result.epochs.back().train_accuracy;
  result.test_accuracy =
      test.size() > 0 ? evaluate_accuracy(net, test) : 0.0;
  return result;
}

}  // namespace ataman
