// Depthwise-separable operator coverage: kernel parity across all four
// engines, per-channel skip-mask semantics, int8 average-pool rounding,
// covering-geometry validation, and the full train -> quantize ->
// significance -> DSE -> select -> codegen pipeline on the dscnn
// (MLPerf-Tiny-KWS-shaped) architecture.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/codegen/c_emitter.hpp"
#include "src/core/ataman.hpp"
#include "src/core/engine_iface.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "src/quant/quantizer.hpp"
#include "src/sig/act_stats.hpp"
#include "src/sig/significance.hpp"
#include "src/sig/skip_plan.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "src/unpack/unpacked_layer.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_image;
using testing::make_random_input;
using testing::make_random_qdw;

// --- depthwise kernel parity -------------------------------------------

TEST(Depthwise, PackedAndUnpackedMatchReference) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const QDepthwiseConv2D dw =
        make_random_qdw(9, 9, 5, /*kernel=*/3, /*stride=*/1, /*pad=*/1, seed);
    const auto in = make_random_input(9 * 9 * 5, seed + 100);
    std::vector<int8_t> ref_out(static_cast<size_t>(dw.positions()) *
                                dw.channels);
    std::vector<int8_t> packed_out(ref_out.size());
    std::vector<int8_t> unpacked_out(ref_out.size());

    depthwise_conv2d_ref(dw, in, ref_out);
    packed_depthwise_conv2d(dw, in, packed_out);
    UnpackedDepthwise::build(dw).run(in, unpacked_out);
    EXPECT_EQ(ref_out, packed_out) << "seed " << seed;
    EXPECT_EQ(ref_out, unpacked_out) << "seed " << seed;
  }
}

TEST(Depthwise, StrideAndNoPadGeometry) {
  const QDepthwiseConv2D dw =
      make_random_qdw(9, 9, 4, /*kernel=*/3, /*stride=*/2, /*pad=*/0, 7);
  EXPECT_EQ(dw.out_h(), 4);
  EXPECT_EQ(dw.patch_size(), 9);
  EXPECT_EQ(dw.macs(), 4 * 4 * 4 * 9);
  const auto in = make_random_input(9 * 9 * 4, 77);
  std::vector<int8_t> a(static_cast<size_t>(dw.positions()) * dw.channels);
  std::vector<int8_t> b(a.size());
  depthwise_conv2d_ref(dw, in, a);
  packed_depthwise_conv2d(dw, in, b);
  EXPECT_EQ(a, b);
}

// Skipping a depthwise operand (channel, tap) removes exactly that
// product: masked ref == unpacked-with-skip == ref over the
// zeroed-weight copy.
TEST(Depthwise, SkipMaskSemantics) {
  const QDepthwiseConv2D dw =
      make_random_qdw(8, 8, 6, /*kernel=*/3, /*stride=*/1, /*pad=*/1, 11);
  const int patch = dw.patch_size();

  // Skip a deterministic scatter of (channel, tap) operands.
  std::vector<uint8_t> skip(static_cast<size_t>(dw.weight_count()), 0);
  for (int ch = 0; ch < dw.channels; ++ch)
    for (int p = 0; p < patch; ++p)
      if ((ch * 31 + p * 7) % 3 == 0)
        skip[static_cast<size_t>(ch) * patch + p] = 1;

  // Zeroed-weight copy through the mask/weight index mapping.
  QDepthwiseConv2D zeroed = dw;
  for (int ch = 0; ch < dw.channels; ++ch)
    for (int p = 0; p < patch; ++p)
      if (skip[static_cast<size_t>(ch) * patch + p])
        zeroed.weights[dw_weight_index(ch, p, dw.channels)] = 0;

  const auto in = make_random_input(8 * 8 * 6, 111);
  std::vector<int8_t> masked(static_cast<size_t>(dw.positions()) *
                             dw.channels);
  std::vector<int8_t> unpacked(masked.size());
  std::vector<int8_t> zeroed_out(masked.size());
  depthwise_conv2d_ref(dw, in, masked, skip.data());
  UnpackedDepthwise::build(dw, skip.data()).run(in, unpacked);
  depthwise_conv2d_ref(zeroed, in, zeroed_out);
  EXPECT_EQ(masked, unpacked);
  EXPECT_EQ(masked, zeroed_out);

  // Static accounting: every skipped operand drops one MAC per position.
  const UnpackedDepthwise u = UnpackedDepthwise::build(dw, skip.data());
  int64_t skipped = 0;
  for (const uint8_t v : skip) skipped += v;
  EXPECT_EQ(u.retained_macs(), dw.macs() - skipped * dw.positions());
}

// --- average pool -------------------------------------------------------

TEST(AvgPool, RoundsHalfAwayFromZero) {
  QAvgPool pool;
  pool.in_h = 2;
  pool.in_w = 2;
  pool.channels = 1;
  pool.kernel = 2;
  pool.stride = 2;
  // sum = 5 over 4 taps -> 1.25 -> 1; sum = 6 -> 1.5 -> 2 (away from 0);
  // sum = -6 -> -1.5 -> -2; sum = -5 -> -1.25 -> -1.
  const std::vector<std::pair<std::vector<int8_t>, int8_t>> cases = {
      {{2, 1, 1, 1}, 1},
      {{2, 2, 1, 1}, 2},
      {{-2, -2, -1, -1}, -2},
      {{-2, -1, -1, -1}, -1},
      {{127, 127, 127, 127}, 127},
      {{-128, -128, -128, -128}, -128},
  };
  for (const auto& [in, expected] : cases) {
    std::vector<int8_t> out(1);
    avgpool_ref(pool, in, out);
    EXPECT_EQ(out[0], expected)
        << "inputs " << static_cast<int>(in[0]) << ","
        << static_cast<int>(in[1]) << "," << static_cast<int>(in[2]) << ","
        << static_cast<int>(in[3]);
  }
}

TEST(AvgPool, GlobalPoolAveragesWholeMap) {
  QAvgPool pool;
  pool.in_h = 4;
  pool.in_w = 4;
  pool.channels = 2;
  pool.kernel = 4;
  pool.stride = 4;
  std::vector<int8_t> in(4 * 4 * 2);
  int32_t sum0 = 0, sum1 = 0;
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    in[static_cast<size_t>(i) * 2] = static_cast<int8_t>(rng.next_int(-90, 90));
    in[static_cast<size_t>(i) * 2 + 1] =
        static_cast<int8_t>(rng.next_int(-90, 90));
    sum0 += in[static_cast<size_t>(i) * 2];
    sum1 += in[static_cast<size_t>(i) * 2 + 1];
  }
  std::vector<int8_t> out(2);
  avgpool_ref(pool, in, out);
  const auto rounded = [](int32_t s) {
    return static_cast<int8_t>(s >= 0 ? (s + 8) / 16 : (s - 8) / 16);
  };
  EXPECT_EQ(out[0], rounded(sum0));
  EXPECT_EQ(out[1], rounded(sum1));
}

// --- covering-geometry validation (satellite: QMaxPool silently
// truncated non-covering windows before) ---------------------------------

TEST(PoolGeometry, NonCoveringGeometryHardErrors) {
  QMaxPool bad;
  bad.in_h = 5;  // (5 - 2) % 2 != 0
  bad.in_w = 5;
  bad.channels = 1;
  bad.kernel = 2;
  bad.stride = 2;
  std::vector<int8_t> in(25, 0), out(4, 0);
  EXPECT_THROW(maxpool_ref(bad, in, out), Error);

  QAvgPool bad_avg;
  bad_avg.in_h = 7;  // (7 - 2) % 2 != 0
  bad_avg.in_w = 7;
  bad_avg.channels = 1;
  bad_avg.kernel = 2;
  bad_avg.stride = 2;
  std::vector<int8_t> in2(49, 0), out2(9, 0);
  EXPECT_THROW(avgpool_ref(bad_avg, in2, out2), Error);

  // The architecture path rejects it at model-construction time, before
  // any engine could disagree on edge pixels.
  ModelArch arch;
  arch.name = "bad-pool";
  arch.layers = {LayerSpec::conv(4, 3, 1, 1), LayerSpec::pool(3, 2)};
  Rng rng(1);
  EXPECT_THROW(Network(arch, ImageShape{}, rng), Error);
}

// --- depthwise significance ---------------------------------------------

TEST(DepthwiseSignificance, MatchesBruteForcePerChannel) {
  const QDepthwiseConv2D dw =
      make_random_qdw(6, 6, 3, /*kernel=*/3, /*stride=*/1, /*pad=*/1, 23);
  const int patch = dw.patch_size();
  ConvInputStats stats;
  stats.mean_corrected.resize(static_cast<size_t>(patch) * dw.channels);
  Rng rng(29);
  for (auto& v : stats.mean_corrected) v = rng.next_double() * 20.0 - 10.0;
  stats.samples = 100;

  const LayerSignificance sig = compute_significance(dw, stats);
  EXPECT_EQ(sig.out_c, dw.channels);
  EXPECT_EQ(sig.patch, patch);
  for (int ch = 0; ch < dw.channels; ++ch) {
    double denom = 0.0;
    for (int p = 0; p < patch; ++p) {
      denom += stats.mean_corrected[dw_weight_index(ch, p, dw.channels)] *
               dw.weights[dw_weight_index(ch, p, dw.channels)];
    }
    ASSERT_NE(denom, 0.0);
    for (int p = 0; p < patch; ++p) {
      const double contrib =
          stats.mean_corrected[dw_weight_index(ch, p, dw.channels)] *
          dw.weights[dw_weight_index(ch, p, dw.channels)];
      EXPECT_NEAR(sig.significance(ch, p), std::abs(contrib / denom), 1e-6)
          << "channel " << ch << " tap " << p;
    }
  }
}

// --- generated C for the new operators ----------------------------------

// conv -> depthwise -> avgpool -> dense, chained quant params, 12x12x3.
QModel make_ds_block_qmodel(uint64_t seed) {
  QModel m;
  m.name = "ds-block";
  m.topology = "1+1ds-1";
  m.in_h = 12;
  m.in_w = 12;
  m.in_c = 3;
  m.input = {1.0f / 255.0f, -128};

  ConvGeom g;
  g.in_h = 12; g.in_w = 12; g.in_c = 3;
  g.out_c = 6; g.kernel = 3; g.stride = 1; g.pad = 1;
  QConv2D conv = testing::make_random_qconv(g, seed + 1, /*folded_relu=*/true);
  conv.in = m.input;
  refresh_requant(conv);
  conv.act_min = conv.out.zero_point;

  QDepthwiseConv2D dw = make_random_qdw(12, 12, 6, 3, 1, 1, seed + 2,
                                        /*folded_relu=*/true);
  dw.in = conv.out;
  refresh_requant(dw);
  dw.act_min = dw.out.zero_point;

  QAvgPool pool;
  pool.in_h = 12; pool.in_w = 12; pool.channels = 6;
  pool.kernel = 2; pool.stride = 2;

  QDense fc = testing::make_random_qdense(6 * 6 * 6, 10, seed + 3);
  fc.in = dw.out;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  m.layers.emplace_back(std::move(conv));
  m.layers.emplace_back(std::move(dw));
  m.layers.emplace_back(pool);
  m.layers.emplace_back(std::move(fc));
  return m;
}

TEST(DepthwiseCodegen, CompiledModelMatchesEngineBitExact) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host C compiler";
  const QModel m = make_ds_block_qmodel(400);
  SkipMask mask = SkipMask::none(m);
  Rng rng(401);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.3) ? 1 : 0;

  const std::string dir = "/tmp/ataman_depthwise_codegen";
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/model.c", emit_model_c(m, &mask));
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[12*12*3];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
)";
  write_text_file(dir + "/main.c", driver);
  const std::string compile = "cc -std=c99 -O2 " + dir + "/model.c " + dir +
                              "/main.c -o " + dir + "/runner 2> " + dir +
                              "/cc.log";
  ASSERT_EQ(std::system(compile.c_str()), 0)
      << "generated depthwise C failed to compile";

  const UnpackedEngine engine(&m, &mask);
  for (int trial = 0; trial < 4; ++trial) {
    const auto img = make_random_image(12 * 12 * 3, 500 + trial);
    {
      std::ofstream out(dir + "/img.bin", std::ios::binary);
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size()));
    }
    const std::string run =
        dir + "/runner < " + dir + "/img.bin > " + dir + "/out.txt";
    ASSERT_EQ(std::system(run.c_str()), 0);
    std::ifstream in(dir + "/out.txt");
    std::vector<int8_t> got;
    int v = 0;
    while (in >> v) got.push_back(static_cast<int8_t>(v));
    EXPECT_EQ(got, engine.run(img)) << "trial " << trial;
  }
  std::filesystem::remove_all(dir);
}

// --- the dscnn end-to-end pipeline --------------------------------------

class DscnnPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ZooSpec spec = dscnn_spec();
    spec.data.train_images = 700;
    spec.data.test_images = 300;
    spec.train.epochs = 3;
    spec.train.lr_decay_at = {2};
    TrainedModel trained = train_from_scratch(spec, /*verbose=*/false);
    data_ = new SynthCifar(make_synth_cifar(spec.data));
    qmodel_ = new QModel(quantize_model(trained.net, data_->train));

    PipelineOptions opts;
    opts.dse.eval_images = 150;
    opts.dse.tau_step = 0.05;
    opts.dse.max_configs = 96;  // subset mode over 9 approx layers is big
    pipe_ = new AtamanPipeline(qmodel_, &data_->train, &data_->test, opts);
    pipe_->analyze();
    outcome_ = new DseOutcome(pipe_->explore());
  }
  static void TearDownTestSuite() {
    delete outcome_;
    delete pipe_;
    delete qmodel_;
    delete data_;
    outcome_ = nullptr;
    pipe_ = nullptr;
    qmodel_ = nullptr;
    data_ = nullptr;
  }

  static SynthCifar* data_;
  static QModel* qmodel_;
  static AtamanPipeline* pipe_;
  static DseOutcome* outcome_;
};

SynthCifar* DscnnPipeline::data_ = nullptr;
QModel* DscnnPipeline::qmodel_ = nullptr;
AtamanPipeline* DscnnPipeline::pipe_ = nullptr;
DseOutcome* DscnnPipeline::outcome_ = nullptr;

TEST_F(DscnnPipeline, QuantizedModelHasTheExpectedOperators) {
  // 5 conv + 4 depthwise + 1 avgpool + 1 dense (ReLU folded).
  EXPECT_EQ(qmodel_->conv_layer_count(), 5);
  EXPECT_EQ(qmodel_->approx_layer_count(), 9);
  EXPECT_EQ(qmodel_->layers.size(), 11u);
  int dw_count = 0, avg_count = 0;
  for (const QLayer& layer : qmodel_->layers) {
    const OpDescriptor d = describe_layer(layer);
    dw_count += d.kind == OpKind::kDepthwise ? 1 : 0;
    avg_count += d.kind == OpKind::kAvgPool ? 1 : 0;
  }
  EXPECT_EQ(dw_count, 4);
  EXPECT_EQ(avg_count, 1);
  // Depthwise MACs are part of the approximable budget.
  EXPECT_GT(qmodel_->approx_mac_count(), 0);
  EXPECT_GT(qmodel_->mac_count(), qmodel_->approx_mac_count());
}

TEST_F(DscnnPipeline, FourEngineBitwiseParityOnExactConfig) {
  const RefEngine oracle(qmodel_);
  EngineConfig cfg;
  cfg.model = qmodel_;
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (int i = 0; i < 12; ++i) {
      const auto img = data_->test.image(i);
      EXPECT_EQ(engine->run(img), oracle.run(img))
          << name << " image " << i;
    }
  }
}

TEST_F(DscnnPipeline, SweepEngagedPrefixCacheAndAdaptiveEval) {
  EXPECT_GT(outcome_->results.size(), 10u);
  // Fast-sweep counters: the prefix cache reused segments and the
  // adaptive sweep evaluated a nonzero image volume.
  EXPECT_GT(outcome_->cache_hits, 0);
  EXPECT_GT(outcome_->images_evaluated, 0);
  EXPECT_GE(outcome_->early_exits, 0);
  // Depthwise taus actually produce skips: some swept config must
  // remove MACs relative to exact.
  bool any_reduction = false;
  for (const DseResult& r : outcome_->results)
    any_reduction |= r.skipped_conv_macs > 0;
  EXPECT_TRUE(any_reduction);
}

TEST_F(DscnnPipeline, RefEqualsUnpackedOnEverySweptConfig) {
  // Masked reference inference == unpacked engine with the skips
  // compiled out, for every approximate config the sweep produced.
  for (size_t i = 0; i < outcome_->results.size(); ++i) {
    const ApproxConfig& cfg = outcome_->results[i].config;
    if (!cfg.approximates_anything()) continue;
    const SkipMask mask = pipe_->mask_for(cfg);
    const RefEngine ref(qmodel_);
    const UnpackedEngine up(qmodel_, &mask);
    for (int img = 0; img < 2; ++img) {
      ASSERT_EQ(ref.run(data_->test.image(img), &mask),
                up.run(data_->test.image(img)))
          << "config " << i << " image " << img;
    }
  }
}

TEST_F(DscnnPipeline, SelectsAndGeneratesDepthwiseCode) {
  const int idx = pipe_->select(*outcome_, 0.10);
  ASSERT_GE(idx, 0);
  const ApproxConfig& cfg = outcome_->results[static_cast<size_t>(idx)].config;
  EXPECT_EQ(cfg.tau.size(), 9u);

  const std::string code = pipe_->generate_code(cfg);
  EXPECT_NE(code.find("_dw0"), std::string::npos);
  EXPECT_NE(code.find("_dw3"), std::string::npos);
  EXPECT_NE(code.find("_avgpool0"), std::string::npos);
  EXPECT_NE(code.find("_run"), std::string::npos);

  // Deployment through the unpacked engine agrees with the DSE row.
  const DseResult& r = outcome_->results[static_cast<size_t>(idx)];
  const DeployReport dep = pipe_->deploy(cfg, "dscnn-approx", 150);
  EXPECT_DOUBLE_EQ(dep.top1_accuracy, r.accuracy);
  EXPECT_EQ(dep.cycles, r.cycles);
  EXPECT_EQ(dep.mac_ops, r.executed_macs);
}

TEST_F(DscnnPipeline, QModelSerializationRoundTripsNewOperators) {
  const std::string dir = "/tmp/ataman_dscnn_roundtrip";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/dscnn.qm";
  save_qmodel(*qmodel_, path);
  const QModel loaded = load_qmodel(path);
  ASSERT_EQ(loaded.layers.size(), qmodel_->layers.size());
  EXPECT_EQ(loaded.approx_layer_count(), qmodel_->approx_layer_count());
  const RefEngine a(qmodel_), b(&loaded);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(a.run(data_->test.image(i)), b.run(data_->test.image(i)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ataman
