#include "src/cmsisnn/packed_kernels.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"
#include "src/cmsisnn/im2col_q15.hpp"
#include "src/cmsisnn/smlad.hpp"

namespace ataman {

PackedWeights PackedWeights::pack(std::span<const int8_t> weights, int out_c,
                                  int patch) {
  check(static_cast<int64_t>(weights.size()) ==
            static_cast<int64_t>(out_c) * patch,
        "weight tensor size mismatch");
  PackedWeights p;
  p.patch = patch;
  p.out_c = out_c;
  p.pairs_per_chan = patch / 2;
  p.has_single = (patch % 2) != 0;
  p.pair_constants.resize(static_cast<size_t>(out_c) * p.pairs_per_chan);
  if (p.has_single) p.single_weights.resize(static_cast<size_t>(out_c));

  for (int oc = 0; oc < out_c; ++oc) {
    const int8_t* w = weights.data() + static_cast<size_t>(oc) * patch;
    for (int i = 0; i < p.pairs_per_chan; ++i) {
      // Even operand in the low lane, odd operand in the high lane; the
      // activation packer uses the same convention.
      p.pair_constants[static_cast<size_t>(oc) * p.pairs_per_chan + i] =
          pack_weight_pair(/*hi=*/w[2 * i + 1], /*lo=*/w[2 * i]);
    }
    if (p.has_single)
      p.single_weights[static_cast<size_t>(oc)] = w[patch - 1];
  }
  return p;
}

namespace {

// Dual-MAC dot product over one q15 column; identical accumulation order
// to the reference kernel (int32 addition is exact, so order is moot).
int32_t packed_dot(const PackedWeights& packed, int oc, const int16_t* col,
                   int32_t acc) {
  const uint32_t* wp = packed.pair_constants.data() +
                       static_cast<size_t>(oc) * packed.pairs_per_chan;
  for (int i = 0; i < packed.pairs_per_chan; ++i) {
    const uint32_t apair = pack_q15_pair(col[2 * i + 1], col[2 * i]);
    acc = smlad(wp[i], apair, acc);
  }
  if (packed.has_single) {
    const uint32_t wlast = pack_q15_pair(
        0, packed.single_weights[static_cast<size_t>(oc)]);
    const uint32_t alast = pack_q15_pair(0, col[packed.patch - 1]);
    acc = smlabb(wlast, alast, acc);
  }
  return acc;
}

}  // namespace

void packed_conv2d(const QConv2D& layer, const PackedWeights& packed,
                   std::span<const int8_t> in, std::span<int8_t> out) {
  const ConvGeom& g = layer.geom;
  check(packed.patch == g.patch_size() && packed.out_c == g.out_c,
        "packed weights do not match layer");
  const int oh = g.out_h(), ow = g.out_w();
  std::vector<int16_t> col(static_cast<size_t>(g.patch_size()));

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      im2col_patch_q15(layer, in, oy, ox, col.data());
      int8_t* orow =
          out.data() + (static_cast<size_t>(oy) * ow + ox) * g.out_c;
      for (int oc = 0; oc < g.out_c; ++oc) {
        const int32_t acc = packed_dot(
            packed, oc, col.data(), layer.bias[static_cast<size_t>(oc)]);
        const int32_t scaled =
            multiply_by_quantized_multiplier(
                acc, layer.requant[static_cast<size_t>(oc)]) +
            layer.out.zero_point;
        orow[oc] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void packed_depthwise_conv2d(const QDepthwiseConv2D& layer,
                             std::span<const int8_t> in,
                             std::span<int8_t> out) {
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * layer.channels,
        "depthwise input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(layer.positions()) * layer.channels,
        "depthwise output size mismatch");
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  const int patch = layer.patch_size();
  const int32_t zp = layer.in.zero_point;

  // One q15 expansion of the receptive field per position, shared by all
  // channels: col[tap * c + ch], matching the [k][k][c] weight order.
  std::vector<int16_t> col(static_cast<size_t>(patch) * c);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int p = 0;
      for (int ky = 0; ky < layer.kernel; ++ky) {
        const int iy = oy * layer.stride - layer.pad + ky;
        for (int kx = 0; kx < layer.kernel; ++kx, ++p) {
          const int ix = ox * layer.stride - layer.pad + kx;
          const bool inside =
              iy >= 0 && iy < layer.in_h && ix >= 0 && ix < layer.in_w;
          const int8_t* src =
              inside ? in.data() +
                           (static_cast<size_t>(iy) * layer.in_w + ix) * c
                     : nullptr;
          int16_t* dst = col.data() + static_cast<size_t>(p) * c;
          for (int ch = 0; ch < c; ++ch)
            dst[ch] = static_cast<int16_t>((inside ? src[ch] : zp) - zp);
        }
      }

      int8_t* orow = out.data() + (static_cast<size_t>(oy) * ow + ox) * c;
      for (int ch = 0; ch < c; ++ch) {
        int32_t acc = layer.bias[static_cast<size_t>(ch)];
        for (int t = 0; t < patch; ++t) {
          acc += static_cast<int32_t>(col[static_cast<size_t>(t) * c + ch]) *
                 static_cast<int32_t>(
                     layer.weights[static_cast<size_t>(t) * c + ch]);
        }
        const int32_t scaled =
            multiply_by_quantized_multiplier(
                acc, layer.requant[static_cast<size_t>(ch)]) +
            layer.out.zero_point;
        orow[ch] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void packed_dense(const QDense& layer, const PackedWeights& packed,
                  std::span<const int8_t> in, std::span<int8_t> out) {
  check(packed.patch == layer.in_dim && packed.out_c == layer.out_dim,
        "packed weights do not match layer");
  // Expand the input once to zero-point-corrected q15 (CMSIS expands the
  // activation vector for its q7 FC kernels the same way).
  std::vector<int16_t> col(static_cast<size_t>(layer.in_dim));
  for (int i = 0; i < layer.in_dim; ++i) {
    col[static_cast<size_t>(i)] = static_cast<int16_t>(
        static_cast<int32_t>(in[static_cast<size_t>(i)]) -
        layer.in.zero_point);
  }
  for (int oc = 0; oc < layer.out_dim; ++oc) {
    const int32_t acc =
        packed_dot(packed, oc, col.data(), layer.bias[static_cast<size_t>(oc)]);
    const int32_t scaled =
        multiply_by_quantized_multiplier(acc, layer.requant) +
        layer.out.zero_point;
    out[static_cast<size_t>(oc)] = static_cast<int8_t>(
        std::clamp(scaled, layer.act_min, layer.act_max));
  }
}

namespace {

// Dual-MAC dot product over a lane-block of q15 columns: every weight
// pair constant is loaded once and multiplied into all kBatchLanes
// accumulators before the next pair streams in. The lane loops have
// constant trip counts (stale/padding lanes compute garbage that the
// caller never stores — SMLAD wraparound is defined), which is what lets
// the compiler keep the four accumulators in one vector register.
void packed_dot_lanes(const PackedWeights& packed, int oc,
                      const int16_t* cols, int32_t bias,
                      int32_t acc[kBatchLanes]) {
  for (int j = 0; j < kBatchLanes; ++j) acc[j] = bias;
  const uint32_t* wp = packed.pair_constants.data() +
                       static_cast<size_t>(oc) * packed.pairs_per_chan;
  const size_t patch = static_cast<size_t>(packed.patch);
  for (int i = 0; i < packed.pairs_per_chan; ++i) {
    const uint32_t w = wp[i];
    for (int j = 0; j < kBatchLanes; ++j) {
      const int16_t* col = cols + static_cast<size_t>(j) * patch;
      acc[j] = smlad(w, pack_q15_pair(col[2 * i + 1], col[2 * i]), acc[j]);
    }
  }
  if (packed.has_single) {
    const uint32_t wlast = pack_q15_pair(
        0, packed.single_weights[static_cast<size_t>(oc)]);
    for (int j = 0; j < kBatchLanes; ++j) {
      const int16_t* col = cols + static_cast<size_t>(j) * patch;
      acc[j] = smlabb(wlast, pack_q15_pair(0, col[packed.patch - 1]), acc[j]);
    }
  }
}

int32_t requant_clamp(int32_t acc, const QuantizedMultiplier& requant,
                      int32_t out_zp, int32_t act_min, int32_t act_max) {
  const int32_t scaled =
      multiply_by_quantized_multiplier(acc, requant) + out_zp;
  return std::clamp(scaled, act_min, act_max);
}

}  // namespace

void packed_conv2d_batch(const QConv2D& layer, const PackedWeights& packed,
                         std::span<const int8_t> in, std::span<int8_t> out,
                         int batch) {
  const ConvGeom& g = layer.geom;
  check(packed.patch == g.patch_size() && packed.out_c == g.out_c,
        "packed weights do not match layer");
  check(batch >= 1, "packed_conv2d_batch: batch must be >= 1");
  const size_t in_elems =
      static_cast<size_t>(g.in_h) * g.in_w * g.in_c;
  const int oh = g.out_h(), ow = g.out_w();
  const size_t out_elems = static_cast<size_t>(oh) * ow * g.out_c;
  check(in.size() == in_elems * static_cast<size_t>(batch),
        "batched conv input size mismatch");
  check(out.size() == out_elems * static_cast<size_t>(batch),
        "batched conv output size mismatch");
  const size_t patch = static_cast<size_t>(g.patch_size());

  std::vector<int16_t> cols(static_cast<size_t>(kBatchLanes) * patch);
  for (int b0 = 0; b0 < batch; b0 += kBatchLanes) {
    const int bn = std::min(kBatchLanes, batch - b0);
    // Padding lanes of a ragged tail keep whatever the zero-fill leaves;
    // they are computed but never stored.
    if (bn < kBatchLanes) std::fill(cols.begin(), cols.end(), int16_t{0});
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int j = 0; j < bn; ++j) {
          im2col_patch_q15(
              layer,
              in.subspan(static_cast<size_t>(b0 + j) * in_elems, in_elems),
              oy, ox, cols.data() + static_cast<size_t>(j) * patch);
        }
        const size_t orow_off =
            (static_cast<size_t>(oy) * ow + ox) * g.out_c;
        for (int oc = 0; oc < g.out_c; ++oc) {
          int32_t acc[kBatchLanes];
          packed_dot_lanes(packed, oc, cols.data(),
                           layer.bias[static_cast<size_t>(oc)], acc);
          for (int j = 0; j < bn; ++j) {
            out[static_cast<size_t>(b0 + j) * out_elems + orow_off + oc] =
                static_cast<int8_t>(requant_clamp(
                    acc[j], layer.requant[static_cast<size_t>(oc)],
                    layer.out.zero_point, layer.act_min, layer.act_max));
          }
        }
      }
    }
  }
}

void packed_depthwise_conv2d_batch(const QDepthwiseConv2D& layer,
                                   std::span<const int8_t> in,
                                   std::span<int8_t> out, int batch) {
  check(batch >= 1, "packed_depthwise_conv2d_batch: batch must be >= 1");
  const size_t in_elems =
      static_cast<size_t>(layer.in_h) * layer.in_w * layer.channels;
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  const size_t out_elems =
      static_cast<size_t>(layer.positions()) * layer.channels;
  check(in.size() == in_elems * static_cast<size_t>(batch),
        "batched depthwise input size mismatch");
  check(out.size() == out_elems * static_cast<size_t>(batch),
        "batched depthwise output size mismatch");
  const int patch = layer.patch_size();
  const int32_t zp = layer.in.zero_point;
  const size_t lane_stride = static_cast<size_t>(patch) * c;

  // Lane-major blocks of the shared per-position q15 expansion:
  // cols[j * patch * c + tap * c + ch] for image b0 + j. Each filter
  // weight is then loaded once per tap and multiplied into all lanes.
  std::vector<int16_t> cols(static_cast<size_t>(kBatchLanes) * lane_stride);
  for (int b0 = 0; b0 < batch; b0 += kBatchLanes) {
    const int bn = std::min(kBatchLanes, batch - b0);
    if (bn < kBatchLanes) std::fill(cols.begin(), cols.end(), int16_t{0});
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        for (int j = 0; j < bn; ++j) {
          const int8_t* img =
              in.data() + static_cast<size_t>(b0 + j) * in_elems;
          int16_t* lane = cols.data() + static_cast<size_t>(j) * lane_stride;
          int p = 0;
          for (int ky = 0; ky < layer.kernel; ++ky) {
            const int iy = oy * layer.stride - layer.pad + ky;
            for (int kx = 0; kx < layer.kernel; ++kx, ++p) {
              const int ix = ox * layer.stride - layer.pad + kx;
              const bool inside =
                  iy >= 0 && iy < layer.in_h && ix >= 0 && ix < layer.in_w;
              const int8_t* src =
                  inside
                      ? img + (static_cast<size_t>(iy) * layer.in_w + ix) * c
                      : nullptr;
              int16_t* dst = lane + static_cast<size_t>(p) * c;
              for (int ch = 0; ch < c; ++ch)
                dst[ch] = static_cast<int16_t>((inside ? src[ch] : zp) - zp);
            }
          }
        }
        const size_t orow_off = (static_cast<size_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch) {
          int32_t acc[kBatchLanes];
          for (int j = 0; j < kBatchLanes; ++j)
            acc[j] = layer.bias[static_cast<size_t>(ch)];
          for (int t = 0; t < patch; ++t) {
            const int32_t w = layer.weights[static_cast<size_t>(t) * c + ch];
            const size_t tap_off = static_cast<size_t>(t) * c + ch;
            for (int j = 0; j < kBatchLanes; ++j) {
              acc[j] += static_cast<int32_t>(
                            cols[static_cast<size_t>(j) * lane_stride +
                                 tap_off]) *
                        w;
            }
          }
          for (int j = 0; j < bn; ++j) {
            out[static_cast<size_t>(b0 + j) * out_elems + orow_off + ch] =
                static_cast<int8_t>(requant_clamp(
                    acc[j], layer.requant[static_cast<size_t>(ch)],
                    layer.out.zero_point, layer.act_min, layer.act_max));
          }
        }
      }
    }
  }
}

void packed_dense_batch(const QDense& layer, const PackedWeights& packed,
                        std::span<const int8_t> in, std::span<int8_t> out,
                        int batch) {
  check(packed.patch == layer.in_dim && packed.out_c == layer.out_dim,
        "packed weights do not match layer");
  check(batch >= 1, "packed_dense_batch: batch must be >= 1");
  const size_t in_elems = static_cast<size_t>(layer.in_dim);
  const size_t out_elems = static_cast<size_t>(layer.out_dim);
  check(in.size() == in_elems * static_cast<size_t>(batch),
        "batched dense input size mismatch");
  check(out.size() == out_elems * static_cast<size_t>(batch),
        "batched dense output size mismatch");

  std::vector<int16_t> cols(static_cast<size_t>(kBatchLanes) * in_elems);
  for (int b0 = 0; b0 < batch; b0 += kBatchLanes) {
    const int bn = std::min(kBatchLanes, batch - b0);
    if (bn < kBatchLanes) std::fill(cols.begin(), cols.end(), int16_t{0});
    for (int j = 0; j < bn; ++j) {
      const int8_t* img = in.data() + static_cast<size_t>(b0 + j) * in_elems;
      int16_t* lane = cols.data() + static_cast<size_t>(j) * in_elems;
      for (size_t i = 0; i < in_elems; ++i) {
        lane[i] = static_cast<int16_t>(static_cast<int32_t>(img[i]) -
                                       layer.in.zero_point);
      }
    }
    for (int oc = 0; oc < layer.out_dim; ++oc) {
      int32_t acc[kBatchLanes];
      packed_dot_lanes(packed, oc, cols.data(),
                       layer.bias[static_cast<size_t>(oc)], acc);
      for (int j = 0; j < bn; ++j) {
        out[static_cast<size_t>(b0 + j) * out_elems + oc] =
            static_cast<int8_t>(requant_clamp(acc[j], layer.requant,
                                              layer.out.zero_point,
                                              layer.act_min, layer.act_max));
      }
    }
  }
}

}  // namespace ataman
