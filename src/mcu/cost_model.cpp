#include "src/mcu/cost_model.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/mcu/stream_plan.hpp"

namespace ataman {

bool packed_conv_uses_fast_path(const QConv2D& layer) {
  return layer.geom.in_c % 4 == 0 && layer.geom.out_c % 2 == 0;
}

int64_t packed_conv_cycles(const QConv2D& layer, const CortexM33CostTable& t) {
  const ConvGeom& g = layer.geom;
  const int64_t positions = g.positions();
  const int64_t patch = g.patch_size();
  const int64_t macs = g.macs();

  double cycles = 0.0;
  // im2col fills one q15 patch per output position.
  cycles += t.im2col_per_elem * static_cast<double>(positions * patch);
  if (packed_conv_uses_fast_path(layer)) {
    const int64_t pairs_per_chan = patch / 2;
    const int64_t singles_per_chan = patch % 2;
    cycles += t.packed_fast_per_pair *
              static_cast<double>(positions * g.out_c * pairs_per_chan);
    // Odd leftover per channel costs about one scalar MAC.
    cycles += t.packed_basic_per_mac *
              static_cast<double>(positions * g.out_c * singles_per_chan);
  } else {
    cycles += t.packed_basic_per_mac * static_cast<double>(macs);
  }
  cycles += t.packed_chan_epilogue *
            static_cast<double>(positions * g.out_c);
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t unpacked_conv_cycles(const QConv2D& layer, int64_t static_pairs,
                             int64_t static_singles,
                             const CortexM33CostTable& t) {
  check(static_pairs >= 0 && static_singles >= 0,
        "negative retained op counts");
  const int64_t positions = layer.geom.positions();
  double cycles = t.unpacked_layer_setup;
  cycles += t.unpacked_per_pair * static_cast<double>(static_pairs * positions);
  cycles +=
      t.unpacked_per_single * static_cast<double>(static_singles * positions);
  cycles += t.unpacked_chan_epilogue *
            static_cast<double>(positions * layer.geom.out_c);
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t packed_depthwise_cycles(const QDepthwiseConv2D& layer,
                                const CortexM33CostTable& t) {
  double cycles =
      t.packed_depthwise_per_mac * static_cast<double>(layer.macs());
  cycles += t.packed_chan_epilogue *
            static_cast<double>(layer.positions()) * layer.channels;
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t unpacked_depthwise_cycles(const QDepthwiseConv2D& layer,
                                  int64_t static_pairs,
                                  int64_t static_singles,
                                  const CortexM33CostTable& t) {
  check(static_pairs >= 0 && static_singles >= 0,
        "negative retained op counts");
  const int64_t positions = layer.positions();
  double cycles = t.unpacked_layer_setup;
  cycles += t.unpacked_per_pair * static_cast<double>(static_pairs * positions);
  cycles +=
      t.unpacked_per_single * static_cast<double>(static_singles * positions);
  cycles += t.unpacked_chan_epilogue *
            static_cast<double>(positions * layer.channels);
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t dense_cycles(const QDense& layer, const CortexM33CostTable& t) {
  double cycles = 0.0;
  cycles += t.fc_per_pair *
            static_cast<double>(layer.out_dim) * (layer.in_dim / 2);
  cycles += t.fc_per_pair * 2.0 *
            static_cast<double>(layer.out_dim) * (layer.in_dim % 2);
  cycles += t.fc_out_epilogue * static_cast<double>(layer.out_dim);
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t pool_cycles(const QMaxPool& layer, const CortexM33CostTable& t) {
  const int64_t outputs =
      static_cast<int64_t>(layer.out_h()) * layer.out_w() * layer.channels;
  const int64_t taps = static_cast<int64_t>(layer.kernel) * layer.kernel;
  return static_cast<int64_t>(
      std::llround(t.pool_per_output_elem_per_tap *
                   static_cast<double>(outputs * taps)));
}

int64_t avgpool_cycles(const QAvgPool& layer, const CortexM33CostTable& t) {
  const int64_t outputs =
      static_cast<int64_t>(layer.out_h()) * layer.out_w() * layer.channels;
  const int64_t taps = static_cast<int64_t>(layer.kernel) * layer.kernel;
  return static_cast<int64_t>(
      std::llround(t.pool_per_output_elem_per_tap *
                       static_cast<double>(outputs * taps) +
                   t.avgpool_div_per_output * static_cast<double>(outputs)));
}

int64_t qadd_cycles(const QAdd& layer, const CortexM33CostTable& t) {
  return static_cast<int64_t>(
      std::llround(t.qadd_per_elem * static_cast<double>(layer.elems())));
}

int64_t packed_model_cycles(const QModel& model, const CortexM33CostTable& t) {
  double total = 0.0;
  int out_dim = 0;
  for (const QLayer& layer : model.layers) {
    total += t.layer_dispatch;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      total += static_cast<double>(packed_conv_cycles(*conv, t));
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      total += static_cast<double>(packed_depthwise_cycles(*dw, t));
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      total += static_cast<double>(pool_cycles(*pool, t));
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      total += static_cast<double>(avgpool_cycles(*pool, t));
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      total += static_cast<double>(dense_cycles(*fc, t));
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      total += static_cast<double>(qadd_cycles(*add, t));
    }
  }
  total += t.softmax_per_logit * out_dim;
  return static_cast<int64_t>(std::llround(total));
}

BatchedCycleRow batched_packed_model_cycles(const QModel& model, int batch,
                                            const CortexM33CostTable& t) {
  check(batch >= 1, "batched_packed_model_cycles: batch must be >= 1");
  const int64_t single = packed_model_cycles(model, t);
  const int64_t dispatch_per_image = static_cast<int64_t>(std::llround(
      t.layer_dispatch * static_cast<double>(model.layers.size())));
  // Kernel work scales linearly with the batch; dispatch is paid once per
  // (layer, batch) instead of once per (layer, image).
  BatchedCycleRow row;
  row.batch = batch;
  row.amortized_dispatch =
      dispatch_per_image * static_cast<int64_t>(batch - 1);
  row.total_cycles =
      single * static_cast<int64_t>(batch) - row.amortized_dispatch;
  row.per_image_cycles = static_cast<double>(row.total_cycles) /
                         static_cast<double>(batch);
  return row;
}

StreamingCostRow steady_state_stream_cost(const QModel& model, int stride_cols,
                                          const CortexM33CostTable& t) {
  const StreamPlan plan = plan_stream_steady(model, stride_cols);
  StreamingCostRow row;
  row.stride_cols = stride_cols;
  row.full_cycles = packed_model_cycles(model, t);
  row.macs_per_frame = plan.frame_macs;
  row.full_macs = plan.full_macs;
  row.spliced_elems = plan.spliced_elems;
  row.reuse_ratio = plan.reuse_ratio();

  double total = 0.0;
  int out_dim = 0;
  for (size_t l = 0; l < model.layers.size(); ++l) {
    const QLayer& layer = model.layers[l];
    const StreamLayerPlan& lp = plan.layers[l];
    total += t.layer_dispatch;
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      // Every packed-conv term (im2col, MACs, epilogue) is proportional
      // to output positions, so the streamed layer scales by the
      // recomputed fraction of the plan.
      total += static_cast<double>(packed_conv_cycles(*conv, t)) *
               static_cast<double>(lp.recomputed_positions) /
               static_cast<double>(lp.total_positions);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      total += static_cast<double>(packed_depthwise_cycles(*dw, t)) *
               static_cast<double>(lp.recomputed_positions) /
               static_cast<double>(lp.total_positions);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      total += static_cast<double>(pool_cycles(*pool, t));
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      total += static_cast<double>(avgpool_cycles(*pool, t));
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      total += static_cast<double>(dense_cycles(*fc, t));
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      total += static_cast<double>(qadd_cycles(*add, t));
    }
    if (lp.spliced) {
      total += t.stream_splice_per_elem *
               static_cast<double>(lp.splice_hi - lp.splice_lo) *
               static_cast<double>(lp.out_rows) * lp.out_ch;
    }
  }
  total += t.softmax_per_logit * out_dim;
  row.cycles_per_frame = static_cast<int64_t>(std::llround(total));
  return row;
}

int64_t unpacked_conv_stream_cycles(const QConv2D& layer, int64_t static_pairs,
                                    int64_t static_singles,
                                    int64_t recomputed_positions,
                                    const CortexM33CostTable& t) {
  check(static_pairs >= 0 && static_singles >= 0,
        "negative retained op counts");
  check(recomputed_positions >= 0 &&
            recomputed_positions <= layer.geom.positions(),
        "recomputed positions out of range");
  double cycles = t.unpacked_layer_setup;
  cycles += t.unpacked_per_pair *
            static_cast<double>(static_pairs * recomputed_positions);
  cycles += t.unpacked_per_single *
            static_cast<double>(static_singles * recomputed_positions);
  cycles += t.unpacked_chan_epilogue *
            static_cast<double>(recomputed_positions * layer.geom.out_c);
  return static_cast<int64_t>(std::llround(cycles));
}

int64_t unpacked_depthwise_stream_cycles(const QDepthwiseConv2D& layer,
                                         int64_t static_pairs,
                                         int64_t static_singles,
                                         int64_t recomputed_positions,
                                         const CortexM33CostTable& t) {
  check(static_pairs >= 0 && static_singles >= 0,
        "negative retained op counts");
  check(recomputed_positions >= 0 &&
            recomputed_positions <= layer.positions(),
        "recomputed positions out of range");
  double cycles = t.unpacked_layer_setup;
  cycles += t.unpacked_per_pair *
            static_cast<double>(static_pairs * recomputed_positions);
  cycles += t.unpacked_per_single *
            static_cast<double>(static_singles * recomputed_positions);
  cycles += t.unpacked_chan_epilogue *
            static_cast<double>(recomputed_positions * layer.channels);
  return static_cast<int64_t>(std::llround(cycles));
}

void attach_streaming_row(DeployReport& report, const QModel& model,
                          int stride_cols, const BoardSpec& board,
                          const CortexM33CostTable& t) {
  const StreamingCostRow row =
      steady_state_stream_cost(model, stride_cols, t);
  report.stream_stride_cols = stride_cols;
  report.steady_state_cycles_per_frame = row.cycles_per_frame;
  report.stream_reuse_ratio = row.reuse_ratio;
  report.steady_state_latency_ms_per_frame =
      board.cycles_to_ms(row.cycles_per_frame);
  report.steady_state_energy_mj_per_frame =
      board.energy_mj(row.cycles_per_frame);
}

}  // namespace ataman
