#!/usr/bin/env bash
# Fail when any intra-repo Markdown link points at a missing file.
#
# Scans every tracked-ish *.md (build/artifact trees excluded) for inline
# links/images `[text](target)`, ignores external schemes and pure
# anchors, strips `#fragment`s, resolves the rest against the linking
# file's directory (and, as a fallback, the repo root), and reports every
# target that does not exist. CI runs this so docs cannot rot silently.
#
# Usage: scripts/check_doc_links.sh [root-dir]
set -u

root="${1:-.}"
fail=0

while IFS= read -r -d '' md; do
  dir=$(dirname "$md")
  # Inline link targets. Reference-style definitions `[x]: path` are not
  # used in this repo; nested parentheses in URLs are out of scope.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*|'') continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "dangling link: $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done < <(find "$root" \( -name build -o -name 'build-*' -o -name artifacts \
                         -o -name bench_results -o -name .git \) -prune \
              -o -name '*.md' -print0)

if [ "$fail" -ne 0 ]; then
  echo "check_doc_links: dangling intra-repo Markdown links found" >&2
  exit 1
fi
echo "check_doc_links: all intra-repo Markdown links resolve"
