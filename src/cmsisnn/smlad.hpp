// Simulated ARMv8-M DSP-extension semantics used by the packed kernels.
//
// The paper's kernels revolve around SMLAD ("signed multiply accumulate
// dual"): two 16-bit lane products accumulated into a 32-bit register in
// one cycle. Offline weight packing concatenates two sign-extended int8
// weights into one 32-bit constant — the paper's own example: w1=64 and
// w2=20 pack to 64*2^16 + 20 = 4194324 (§II-B item 3). These helpers
// reproduce the instruction semantics exactly so host tests can assert
// bit-exactness of every packed/unpacked kernel.
#pragma once

#include <cstdint>

namespace ataman {

// Two int8 values sign-extended to int16 and packed, `hi` in bits 31:16.
// pack_weight_pair(64, 20) == 4194324, matching the paper.
constexpr uint32_t pack_weight_pair(int8_t hi, int8_t lo) {
  const uint16_t hi16 = static_cast<uint16_t>(static_cast<int16_t>(hi));
  const uint16_t lo16 = static_cast<uint16_t>(static_cast<int16_t>(lo));
  return (static_cast<uint32_t>(hi16) << 16) | lo16;
}

constexpr int16_t lane_lo(uint32_t packed) {
  return static_cast<int16_t>(packed & 0xFFFFu);
}

constexpr int16_t lane_hi(uint32_t packed) {
  return static_cast<int16_t>(packed >> 16);
}

// Pack two int16 lanes (e.g. zero-point-corrected activations).
constexpr uint32_t pack_q15_pair(int16_t hi, int16_t lo) {
  return (static_cast<uint32_t>(static_cast<uint16_t>(hi)) << 16) |
         static_cast<uint16_t>(lo);
}

// __SMLAD: acc + lo(x)*lo(y) + hi(x)*hi(y). Wraparound on overflow like
// the hardware instruction (accumulations here are range-checked by
// construction: |acc| < 2^30 for every supported layer geometry).
constexpr int32_t smlad(uint32_t x, uint32_t y, int32_t acc) {
  return static_cast<int32_t>(
      static_cast<uint32_t>(acc) +
      static_cast<uint32_t>(static_cast<int32_t>(lane_lo(x)) * lane_lo(y)) +
      static_cast<uint32_t>(static_cast<int32_t>(lane_hi(x)) * lane_hi(y)));
}

// __SMLABB: acc + lo(x)*lo(y) — used for odd leftover operands.
constexpr int32_t smlabb(uint32_t x, uint32_t y, int32_t acc) {
  return static_cast<int32_t>(
      static_cast<uint32_t>(acc) +
      static_cast<uint32_t>(static_cast<int32_t>(lane_lo(x)) * lane_lo(y)));
}

// __SXTB16: sign-extend bytes 0 and 2 of a word into two int16 lanes
// (how CMSIS expands q7 weight words on the fly).
constexpr uint32_t sxtb16(uint32_t x) {
  const int16_t lo = static_cast<int8_t>(x & 0xFFu);
  const int16_t hi = static_cast<int8_t>((x >> 16) & 0xFFu);
  return pack_q15_pair(hi, lo);
}

}  // namespace ataman
