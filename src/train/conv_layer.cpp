#include <cmath>
#include <cstring>

#include "src/common/parallel.hpp"
#include "src/train/gemm.hpp"
#include "src/train/layers.hpp"

namespace ataman {

Conv2DLayer::Conv2DLayer(ConvGeom geom, Rng& rng) : geom_(geom) {
  check(geom_.kernel >= 1 && geom_.stride >= 1 && geom_.pad >= 0,
        "invalid conv geometry");
  check(geom_.out_h() > 0 && geom_.out_w() > 0, "conv output collapses");
  const size_t wn = static_cast<size_t>(geom_.weight_count());
  weights_.resize(wn);
  dweights_.assign(wn, 0.0f);
  bias_.assign(static_cast<size_t>(geom_.out_c), 0.0f);
  dbias_.assign(bias_.size(), 0.0f);
  // He initialization: fan_in = patch_size.
  const float stddev = std::sqrt(2.0f / static_cast<float>(geom_.patch_size()));
  for (auto& w : weights_) w = rng.next_normal(0.0f, stddev);
}

FTensor Conv2DLayer::forward(const FTensor& x, bool train) {
  check(x.rank() == 4, "conv input must be [B,H,W,C]");
  check(x.dim(1) == geom_.in_h && x.dim(2) == geom_.in_w &&
            x.dim(3) == geom_.in_c,
        "conv input shape mismatch: got " + x.shape_str());
  const int batch = x.dim(0);
  const int m = geom_.positions();
  const int n = geom_.out_c;
  const int k = geom_.patch_size();

  FTensor y({batch, geom_.out_h(), geom_.out_w(), n});
  if (train) cached_input_ = x;

  parallel_for(0, batch, [&](int64_t b) {
    std::vector<float> col(static_cast<size_t>(m) * k);
    im2col_f32(geom_, x.item(static_cast<int>(b)), col.data());
    float* out = y.item(static_cast<int>(b));
    gemm_nt(m, n, k, col.data(), weights_.data(), out, /*accumulate=*/false);
    for (int pos = 0; pos < m; ++pos) {
      float* row = out + static_cast<size_t>(pos) * n;
      for (int oc = 0; oc < n; ++oc) row[oc] += bias_[static_cast<size_t>(oc)];
    }
  });
  return y;
}

FTensor Conv2DLayer::backward(const FTensor& dy) {
  const FTensor& x = cached_input_;
  check(x.size() > 0, "conv backward before forward(train=true)");
  const int batch = x.dim(0);
  const int m = geom_.positions();
  const int n = geom_.out_c;
  const int k = geom_.patch_size();

  FTensor dx({batch, geom_.in_h, geom_.in_w, geom_.in_c});

  // Per-worker gradient buffers; static image->worker mapping keeps the
  // reduction order (and therefore the result) deterministic.
  const int max_workers = num_threads();
  std::vector<std::vector<float>> dw_local(
      static_cast<size_t>(max_workers),
      std::vector<float>(weights_.size(), 0.0f));
  std::vector<std::vector<float>> db_local(
      static_cast<size_t>(max_workers), std::vector<float>(bias_.size(), 0.0f));

  const int workers = parallel_for_indexed(0, batch, [&](int w, int64_t b) {
    std::vector<float> col(static_cast<size_t>(m) * k);
    std::vector<float> dcol(static_cast<size_t>(m) * k);
    im2col_f32(geom_, x.item(static_cast<int>(b)), col.data());
    const float* dyb = dy.item(static_cast<int>(b));

    // dW[N,K] += dY[M,N]^T * col[M,K]
    gemm_tn(n, k, m, dyb, col.data(), dw_local[static_cast<size_t>(w)].data(),
            /*accumulate=*/true);
    // db[oc] += sum over positions
    auto& dbw = db_local[static_cast<size_t>(w)];
    for (int pos = 0; pos < m; ++pos) {
      const float* row = dyb + static_cast<size_t>(pos) * n;
      for (int oc = 0; oc < n; ++oc) dbw[static_cast<size_t>(oc)] += row[oc];
    }
    // dcol[M,K] = dY[M,N] * W[N,K]
    gemm_nn(m, k, n, dyb, weights_.data(), dcol.data(), /*accumulate=*/false);
    col2im_f32(geom_, dcol.data(), dx.item(static_cast<int>(b)));
  });

  for (int w = 0; w < workers; ++w) {
    const auto& dwl = dw_local[static_cast<size_t>(w)];
    for (size_t i = 0; i < dweights_.size(); ++i) dweights_[i] += dwl[i];
    const auto& dbl = db_local[static_cast<size_t>(w)];
    for (size_t i = 0; i < dbias_.size(); ++i) dbias_[i] += dbl[i];
  }
  return dx;
}

void Conv2DLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &dweights_});
  out.push_back({&bias_, &dbias_});
}

}  // namespace ataman
