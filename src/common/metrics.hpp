// Shared scalar metrics. Header-only so both the float training substrate
// (MSE autoencoder test metric) and the quantized evaluator (scored-head
// reporting) use the exact same AUC definition.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "src/common/error.hpp"

namespace ataman {

// Rank-based ROC AUC: the probability that a positive (label 1) scores
// higher than a negative (label 0), with ties credited 0.5 (average-rank
// Mann-Whitney U). Degenerate inputs — empty, or only one class present —
// return 0.5, the chance level. Deterministic for any input order.
inline double rank_auc(std::span<const double> scores,
                       std::span<const int> labels) {
  check(scores.size() == labels.size(), "rank_auc: size mismatch");
  const size_t n = scores.size();
  size_t positives = 0;
  for (int l : labels) {
    check(l == 0 || l == 1, "rank_auc: labels must be binary");
    positives += static_cast<size_t>(l);
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Sum of (average, 1-based) ranks over the positives. The tie group
  // starts at i + 1 so the scan always advances — with j starting at i,
  // a NaN score (NaN == NaN is false) would pin j == i and loop forever.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));  // ranks i+1..j
    for (size_t k = i; k < j; ++k)
      if (labels[order[k]] == 1) positive_rank_sum += avg_rank;
    i = j;
  }
  const double p = static_cast<double>(positives);
  const double q = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * q);
}

}  // namespace ataman
