#include "src/sig/skip_plan.hpp"

#include <sstream>

#include "src/common/error.hpp"

namespace ataman {

bool ApproxConfig::approximates_anything() const {
  for (const double t : tau)
    if (t >= 0.0) return true;
  return false;
}

std::string ApproxConfig::to_string() const {
  std::ostringstream os;
  os << "tau=[";
  for (size_t i = 0; i < tau.size(); ++i) {
    if (i) os << ",";
    if (tau[i] < 0.0) {
      os << "exact";
    } else {
      os << tau[i];
    }
  }
  os << "]";
  return os.str();
}

Json ApproxConfig::to_json() const {
  JsonArray arr;
  arr.reserve(tau.size());
  for (const double t : tau) arr.emplace_back(t);
  JsonObject obj;
  obj.emplace("tau", std::move(arr));
  return Json(std::move(obj));
}

ApproxConfig ApproxConfig::from_json(const Json& j) {
  ApproxConfig c;
  for (const Json& v : j.at("tau").as_array()) c.tau.push_back(v.as_number());
  return c;
}

ApproxConfig ApproxConfig::exact(int approx_count) {
  ApproxConfig c;
  c.tau.assign(static_cast<size_t>(approx_count), -1.0);
  return c;
}

ApproxConfig ApproxConfig::uniform(int approx_count, double tau) {
  ApproxConfig c;
  c.tau.assign(static_cast<size_t>(approx_count), tau);
  return c;
}

SkipMask make_skip_mask(const QModel& model,
                        const std::vector<LayerSignificance>& significance,
                        const ApproxConfig& config) {
  const int approx_count = model.approx_layer_count();
  check(static_cast<int>(significance.size()) == approx_count,
        "significance/approximable-layer count mismatch");
  check(static_cast<int>(config.tau.size()) == approx_count,
        "config/approximable-layer count mismatch");

  SkipMask mask = SkipMask::none(model);
  for (int ordinal = 0; ordinal < approx_count; ++ordinal) {
    const double tau = config.tau[static_cast<size_t>(ordinal)];
    if (tau < 0.0) continue;
    const LayerSignificance& sig =
        significance[static_cast<size_t>(ordinal)];
    auto& m = mask.masks[static_cast<size_t>(ordinal)];
    ATAMAN_ASSERT(m.size() ==
                  static_cast<size_t>(sig.out_c) * sig.patch);
    for (size_t i = 0; i < m.size(); ++i) {
      // kAlwaysRetain (+inf) never satisfies <= tau: zero-sum channels
      // keep everything.
      m[i] = sig.S[i] <= static_cast<float>(tau) ? 1 : 0;
    }
  }
  return mask;
}

}  // namespace ataman
