#include "src/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/common/error.hpp"

namespace ataman {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "table needs at least one column");
}

void ConsoleTable::row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(), "table row arity mismatch");
  lines_.push_back({false, std::move(cells)});
}

void ConsoleTable::separator() { lines_.push_back({true, {}}); }

std::string ConsoleTable::render(const std::string& title) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& line : lines_) {
    if (line.is_separator) continue;
    for (size_t c = 0; c < line.cells.size(); ++c)
      width[c] = std::max(width[c], line.cells[c].size());
  }

  std::ostringstream os;
  const auto hline = [&] {
    os << '+';
    for (const size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  hline();
  print_row(header_);
  hline();
  for (const auto& line : lines_) {
    if (line.is_separator) {
      hline();
    } else {
      print_row(line.cells);
    }
  }
  hline();
  return os.str();
}

std::string ConsoleTable::fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace ataman
