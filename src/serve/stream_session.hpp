// Long-lived streaming inference session (docs/SERVING.md "Streaming
// sessions").
//
// A session pins one (engine, mask) configuration for its whole life
// and receives overlapping input windows as *column pushes*: the first
// frame is a full window, every later frame only the s newest [h][s][c]
// time columns. Frames ride the ordinary RequestQueue next to one-shot
// jobs, but the queue executes at most one frame of a session at a time
// and always in push order, so the engine-side StreamState (the ring of
// past activations that temporal splicing reads) needs no locking of
// its own — memory visibility between the workers that take turns on a
// session is the queue mutex handoff.
//
// Execution path per frame:
//   * engine supports_run_incremental() (the reference backend) —
//     InferenceEngine::run_incremental splices the activation columns
//     that src/mcu/stream_plan.hpp proves bitwise-equal to a retained
//     past frame and recomputes the rest;
//   * otherwise — the session maintains a rolling u8 window and falls
//     back to full run(), same logits, no reuse.
// Either way each frame's logits are bitwise identical to running the
// full assembled window through the engine from scratch (the parity
// contract, pinned by tests/test_streaming.cpp).
//
// A frame that throws poisons the session: the frame was never applied,
// so later pushes would silently mean a different window — they fail
// fast with the original error instead.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/serve/request.hpp"

namespace ataman::serve {

struct StreamSessionOptions {
  std::string engine = "ref";      // EngineRegistry backend name
  const SkipMask* mask = nullptr;  // fixed approximate config; nullptr =
                                   // exact. Must outlive the session.
};

// Counter snapshot; all values monotone over the session's life.
struct StreamSessionStats {
  int64_t frames = 0;              // frames executed (ok)
  int64_t incremental_frames = 0;  // via run_incremental
  int64_t fallback_frames = 0;     // via full run() (engine declined)
  int64_t recomputed_macs = 0;     // executed MACs across all frames
  int64_t full_macs = 0;           // what reuse-off would have executed
  int64_t spliced_elems = 0;       // int8 elements copied, not computed
  double reuse_ratio() const {
    return recomputed_macs > 0 ? static_cast<double>(full_macs) /
                                     static_cast<double>(recomputed_macs)
                               : 1.0;
  }
};

class StreamSession {
 public:
  uint64_t id() const { return id_; }
  const StreamSessionOptions& options() const { return options_; }
  const QModel& model() const { return *model_; }
  StreamSessionStats stats() const;

 private:
  friend class InferenceServer;

  // Built by InferenceServer::open_session. Scored heads are rejected:
  // their reduction reads the whole input window per frame, which
  // defeats column reuse and has no streaming semantics here.
  StreamSession(uint64_t id, const QModel* model,
                StreamSessionOptions options);

  // Caller-side admission check for the next push (column bytes must be
  // whole columns, at most a window, and the first push a full window).
  // Counts the push; throws without counting on a bad frame.
  void validate_push(size_t column_bytes);

  // Worker-side frame execution; exclusive by the queue's
  // one-in-flight-frame-per-session guarantee. Throws on engine errors
  // (and poisons the session so later frames fail fast).
  InferResult execute_frame(InferenceEngine& engine,
                            std::span<const uint8_t> columns);

  const uint64_t id_;
  const QModel* model_;
  const StreamSessionOptions options_;

  std::mutex push_mutex_;  // guards pushed_ (callers may race pushes)
  int64_t pushed_ = 0;

  // Worker-side state (see class comment for why it is lock-free).
  StreamState state_;
  std::vector<uint8_t> window_;  // rolling u8 window, fallback path only
  bool poisoned_ = false;
  std::string poison_error_;

  mutable std::mutex stats_mutex_;
  StreamSessionStats stats_;
};

}  // namespace ataman::serve
