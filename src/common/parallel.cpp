#include "src/common/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <atomic>
#include <exception>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

namespace {
std::atomic<int> g_thread_override{0};

// Depth of parallel_for* bodies on the calling thread; > 0 means any
// further parallel_for* must run serially (see the header's nesting rule).
thread_local int t_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++t_region_depth; }
  ~RegionGuard() { --t_region_depth; }
};

int default_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;  // toolchain without OpenMP: serial fallback
#endif
}

int effective_threads() {
  if (t_region_depth > 0) return 1;  // nested: never spawn a second team
  const int o = g_thread_override.load(std::memory_order_relaxed);
  return o > 0 ? o : default_threads();
}
}  // namespace

int num_threads() { return effective_threads(); }

bool in_parallel_region() { return t_region_depth > 0; }

SerialRegionScope::SerialRegionScope() { ++t_region_depth; }
SerialRegionScope::~SerialRegionScope() { --t_region_depth; }

void set_num_threads(int n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t)>& body) {
  if (begin >= end) return;
  if (effective_threads() <= 1) {
    // Serial path: single thread requested, or we are nested inside an
    // enclosing parallel_for body. Exceptions propagate directly.
    const RegionGuard guard;
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::exception_ptr first_error = nullptr;
  std::atomic<bool> has_error{false};
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) num_threads(effective_threads())
#endif
  for (int64_t i = begin; i < end; ++i) {
    if (has_error.load(std::memory_order_relaxed)) continue;
    const RegionGuard guard;
    try {
      body(i);
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical(ataman_parallel_for_error)
#endif
      {
        if (!first_error) first_error = std::current_exception();
        has_error.store(true, std::memory_order_relaxed);
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

int parallel_for_indexed(int64_t begin, int64_t end,
                         const std::function<void(int, int64_t)>& body) {
  if (begin >= end) return 0;
  const int64_t n = end - begin;
  const int workers =
      static_cast<int>(std::min<int64_t>(effective_threads(), n));
  const int64_t chunk = ceil_div(n, workers);
  parallel_for(0, workers, [&](int64_t w) {
    const int64_t lo = begin + w * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    for (int64_t i = lo; i < hi; ++i) body(static_cast<int>(w), i);
  });
  return workers;
}

void parallel_for_chunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int64_t workers = std::min<int64_t>(effective_threads(), n);
  const int64_t chunk = ceil_div(n, workers);
  parallel_for(0, workers, [&](int64_t w) {
    const int64_t lo = begin + w * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace ataman
