#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

RefEngine::RefEngine(const QModel* model) : InferenceEngine(model, "ref") {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  if (mask != nullptr) mask->validate(model());
  std::vector<int8_t> cur = quantize_input(image);
  std::vector<int8_t> next;

  int conv_ordinal = 0;
  for (const QLayer& layer : model().layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      if (tap) tap(conv_ordinal, *conv, cur);
      const uint8_t* skip = nullptr;
      if (mask != nullptr &&
          conv_ordinal < static_cast<int>(mask->conv_masks.size()) &&
          !mask->conv_masks[static_cast<size_t>(conv_ordinal)].empty()) {
        skip = mask->conv_masks[static_cast<size_t>(conv_ordinal)].data();
      }
      next.assign(static_cast<size_t>(conv->geom.positions()) *
                      conv->geom.out_c,
                  0);
      conv2d_ref(*conv, cur, next, skip);
      ++conv_ordinal;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      next.assign(static_cast<size_t>(pool->out_h()) * pool->out_w() *
                      pool->channels,
                  0);
      maxpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      next.assign(static_cast<size_t>(fc->out_dim), 0);
      dense_ref(*fc, cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  const RefEngine engine(&model);
  return evaluate_batch(
             [&](std::span<const uint8_t> image) {
               return engine.classify(image, mask);
             },
             ds, limit)
      .top1;
}

}  // namespace ataman
