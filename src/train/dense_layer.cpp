#include <cmath>

#include "src/train/gemm.hpp"
#include "src/train/layers.hpp"

namespace ataman {

DenseLayer::DenseLayer(int in_dim, int out_dim, Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  check(in_dim > 0 && out_dim > 0, "dense dimensions must be positive");
  weights_.resize(static_cast<size_t>(in_dim) * out_dim);
  dweights_.assign(weights_.size(), 0.0f);
  bias_.assign(static_cast<size_t>(out_dim), 0.0f);
  dbias_.assign(bias_.size(), 0.0f);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_dim));
  for (auto& w : weights_) w = rng.next_normal(0.0f, stddev);
}

FTensor DenseLayer::forward(const FTensor& x, bool train) {
  const int batch = x.dim(0);
  check(x.item_size() == in_dim_,
        "dense input size mismatch: got " + x.shape_str());
  if (train) cached_input_ = x;

  FTensor y({batch, out_dim_});
  // Y[B,N] = X[B,K] * W[N,K]^T
  gemm_nt(batch, out_dim_, in_dim_, x.data(), weights_.data(), y.data(),
          /*accumulate=*/false);
  for (int b = 0; b < batch; ++b) {
    float* row = y.item(b);
    for (int j = 0; j < out_dim_; ++j) row[j] += bias_[static_cast<size_t>(j)];
  }
  return y;
}

FTensor DenseLayer::backward(const FTensor& dy) {
  const FTensor& x = cached_input_;
  check(x.size() > 0, "dense backward before forward(train=true)");
  const int batch = x.dim(0);

  // dW[N,K] += dY[B,N]^T * X[B,K]
  gemm_tn(out_dim_, in_dim_, batch, dy.data(), x.data(), dweights_.data(),
          /*accumulate=*/true);
  for (int b = 0; b < batch; ++b) {
    const float* row = dy.item(b);
    for (int j = 0; j < out_dim_; ++j) dbias_[static_cast<size_t>(j)] += row[j];
  }
  // dX[B,K] = dY[B,N] * W[N,K]
  FTensor dx{std::vector<int>(x.shape())};
  gemm_nn(batch, in_dim_, out_dim_, dy.data(), weights_.data(), dx.data(),
          /*accumulate=*/false);
  return dx;
}

void DenseLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &dweights_});
  out.push_back({&bias_, &dbias_});
}

}  // namespace ataman
