// Extension bench: flash-constrained hybrid deployment.
//
// The paper always unpacks every conv layer (§II-B; its models fit the
// 2MB part). This harness evaluates the generalized policy from
// src/unpack/layer_selection.hpp — per-layer packed/unpacked choice under
// a flash budget — and shows (a) hybrid never loses to all-unpack, (b) on
// wide fast-path models it wins outright, and (c) how latency degrades
// gracefully as the flash budget shrinks below the full-unpack footprint.
#include "bench/bench_common.hpp"
#include "src/unpack/layer_selection.hpp"
#include "src/unpack/unpacked_engine.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

void run_network(const BenchModel& m, Scale scale, ConsoleTable& table,
                 CsvWriter& csv) {
  const BoardSpec board = stm32u575_board();
  PipelineOptions opts;
  opts.dse = dse_options_for(m.name, scale);
  AtamanPipeline pipe(&m.qmodel, &m.data.train, &m.data.test, opts);
  const DseOutcome outcome = pipe.explore();
  const int idx = pipe.select(outcome, 0.0);
  check(idx >= 0, "no 0% design");
  const SkipMask mask =
      pipe.mask_for(outcome.results[static_cast<size_t>(idx)].config);
  const int eval_limit = scale == Scale::kQuick ? 300 : 800;

  // All-unpack (the paper's policy) vs hybrid at several budgets.
  const UnpackedEngine all_unpack(&m.qmodel, &mask);
  const DeployReport base =
      all_unpack.deploy(m.data.test, board, eval_limit, "all-unpack");
  table.row({m.name, "all-unpack (paper policy)",
             std::to_string(m.qmodel.conv_layer_count()),
             fmt(base.latency_ms, 1),
             fmt(static_cast<double>(base.flash_bytes) / 1024.0, 0),
             fmt(100 * base.top1_accuracy, 1)});
  csv.row({m.name, "all-unpack", CsvWriter::num(base.latency_ms),
           CsvWriter::num(static_cast<double>(base.flash_bytes)),
           CsvWriter::num(base.top1_accuracy)});

  for (const int64_t budget_kb : {2000, 800, 400, 250}) {
    const HybridPlan plan =
        select_layers_to_unpack(m.qmodel, mask, budget_kb * 1024);
    const std::vector<uint8_t> selection = plan.unpack_selection();
    const UnpackedEngine hybrid(&m.qmodel, &mask, {}, {}, &selection);
    const DeployReport r = hybrid.deploy(
        m.data.test, board, eval_limit,
        "hybrid@" + std::to_string(budget_kb) + "KB");
    table.row({m.name, r.design, std::to_string(plan.unpacked_count()),
               fmt(r.latency_ms, 1),
               fmt(static_cast<double>(r.flash_bytes) / 1024.0, 0),
               fmt(100 * r.top1_accuracy, 1)});
    csv.row({m.name, r.design, CsvWriter::num(r.latency_ms),
             CsvWriter::num(static_cast<double>(r.flash_bytes)),
             CsvWriter::num(r.top1_accuracy)});
  }
  table.separator();
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header("Extension: flash-constrained hybrid (packed|unpacked) "
               "deployment",
               scale);

  ConsoleTable table({"Network", "Policy", "Unpacked convs", "Latency(ms)",
                      "Flash(KB)", "Top-1(%)"});
  CsvWriter csv(results_dir() + "/ablation_hybrid.csv",
                {"network", "policy", "latency_ms", "flash_bytes",
                 "accuracy"});

  const BenchModel lenet = load_lenet();
  run_network(lenet, scale, table, csv);
  const BenchModel alexnet = load_alexnet();
  run_network(alexnet, scale, table, csv);

  std::printf("%s\n", table.render("Hybrid deployment").c_str());
  std::printf("Reading: hybrid keeps wide fast-path layers packed unless\n"
              "skipping tips the balance, so it never loses to all-unpack\n"
              "and degrades gracefully when flash is scarce.\n");
  std::printf("CSV: %s/ablation_hybrid.csv\n", results_dir().c_str());
  return 0;
}
