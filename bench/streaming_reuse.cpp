// Streaming temporal-reuse harness: overlapping-window inference with
// incremental column recomputation (run_incremental) vs from-scratch
// per-frame execution (run) on the dscnn keyword-spotting model.
//
// Workload: a deterministic FrameStream slides a 32x32x3 window over a
// drifting signal, advancing `stride` columns per frame — the input
// shape of always-on audio/vision pipelines, where consecutive frames
// share all but a few input columns. Two execution modes:
//
//   reuse-off  every frame runs the full window from scratch through
//              InferenceEngine::run — the pre-streaming baseline, and
//              the path every non-session request still takes
//   reuse-on   frames feed InferenceEngine::run_incremental, which
//              recomputes only the columns the new input can reach
//              (plus kernel halo) and splices the rest from the
//              previous frames' activations (src/mcu/stream_plan.hpp)
//
// Every reuse-on frame's logits are cross-checked bitwise against the
// reuse-off run of the same window (exit 2 on any mismatch) — temporal
// reuse is an exactness optimization, not an approximation. The
// engine's measured steady-state recomputed-MAC counter is also checked
// against the static splice plan (plan_stream_steady), pinning the cost
// model to the executed reality. The verdict (ISSUE 10) requires the
// steady-state per-frame MAC reduction to reach >= 2x; --strict turns a
// missed target into exit 1 for CI use.
//
//   ./build/bench/streaming_reuse [--quick] [--strict]
//                                 [--frames N] [--stride S]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/metrics.hpp"
#include "src/data/frame_stream.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/stream_plan.hpp"

namespace {

using namespace ataman;

struct Args {
  bool quick = false;
  bool strict = false;
  int frames = 0;  // 0 -> per-scale default
  int stride = 2;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (arg == "--frames" && i + 1 < argc) {
      a.frames = std::stoi(argv[++i]);
    } else if (arg == "--stride" && i + 1 < argc) {
      a.stride = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(64);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const int frames = args.frames > 0 ? args.frames : args.quick ? 24 : 96;
  std::printf("==============================================================\n");
  std::printf("Streaming reuse: incremental columns vs from-scratch frames\n");
  std::printf("  model=dscnn  frames=%d  stride=%d cols/frame  flags:%s%s\n",
              frames, args.stride, args.quick ? " --quick" : "",
              args.strict ? " --strict" : "");
  std::printf("==============================================================\n");

  const QModel model = get_or_build_qmodel(dscnn_spec());
  FrameStreamSpec stream_spec;
  stream_spec.frames = frames;
  stream_spec.stride_cols = args.stride;
  const FrameStream stream(stream_spec);

  EngineConfig cfg;
  cfg.model = &model;
  const auto engine = EngineRegistry::instance().create("ref", cfg);
  check(engine->supports_run_incremental(),
        "streaming bench needs the incremental reference engine");
  const int64_t full_macs = engine->mac_ops();

  // --- reuse-off: every frame from scratch --------------------------------
  std::vector<std::vector<int8_t>> expected(static_cast<size_t>(frames));
  std::vector<double> off_ms;
  off_ms.reserve(static_cast<size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    const auto window = stream.frame(i);
    Stopwatch sw;
    expected[static_cast<size_t>(i)] = engine->run(window);
    off_ms.push_back(sw.millis());
  }

  // --- reuse-on: incremental columns through a streaming state ------------
  StreamState state;
  std::vector<double> on_ms;
  on_ms.reserve(static_cast<size_t>(frames));
  int64_t steady_macs = 0;
  int mismatches = 0;
  for (int i = 0; i < frames; ++i) {
    const auto columns = stream.new_columns(i);
    Stopwatch sw;
    const auto logits = engine->run_incremental(state, columns);
    on_ms.push_back(sw.millis());
    steady_macs = state.last_recomputed_macs;  // last frame = steady state
    if (logits != expected[static_cast<size_t>(i)]) ++mismatches;
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: reuse-on diverged from from-scratch on %d frames — "
                 "bitwise parity contract broken\n",
                 mismatches);
    return 2;
  }
  std::printf("[parity] all %d reuse-on frames bitwise == from-scratch\n",
              frames);

  // --- engine counter vs static splice plan -------------------------------
  const StreamPlan plan = plan_stream_steady(model, args.stride);
  if (steady_macs != plan.frame_macs) {
    std::fprintf(stderr,
                 "FATAL: engine recomputed %lld MACs at steady state but the "
                 "splice plan predicts %lld — cost model unpinned\n",
                 static_cast<long long>(steady_macs),
                 static_cast<long long>(plan.frame_macs));
    return 2;
  }
  std::printf("[plan] steady-state recomputed MACs %lld == splice plan\n",
              static_cast<long long>(steady_macs));

  // --- paper-board steady-state cost row ----------------------------------
  const StreamingCostRow cost = steady_state_stream_cost(model, args.stride);
  const BoardSpec board;
  std::printf(
      "[board] %s: %.2f ms/frame, %.3f mJ/frame at steady state "
      "(full frame: %.2f ms, %.3f mJ)\n",
      board.name.c_str(), board.cycles_to_ms(cost.cycles_per_frame),
      board.energy_mj(cost.cycles_per_frame),
      board.cycles_to_ms(cost.full_cycles), board.energy_mj(cost.full_cycles));

  // --- report -------------------------------------------------------------
  const double ratio = static_cast<double>(full_macs) /
                       static_cast<double>(steady_macs);
  ConsoleTable table(
      {"mode", "p50 ms", "p95 ms", "steady MACs/frame", "MAC ratio"});
  CsvWriter csv(bench::results_dir() + "/streaming_reuse.csv",
                {"mode", "frames", "stride_cols", "p50_ms", "p95_ms",
                 "steady_macs_per_frame", "mac_ratio", "cycles_per_frame",
                 "energy_mj_per_frame"});
  struct Row {
    const char* mode;
    const std::vector<double>* ms;
    int64_t macs;
    int64_t cycles;
  };
  const Row rows[] = {
      {"reuse-off", &off_ms, full_macs, cost.full_cycles},
      {"reuse-on", &on_ms, steady_macs, cost.cycles_per_frame},
  };
  for (const Row& r : rows) {
    const double r_ratio =
        static_cast<double>(full_macs) / static_cast<double>(r.macs);
    table.row({r.mode, bench::fmt(percentile(*r.ms, 50.0), 3),
               bench::fmt(percentile(*r.ms, 95.0), 3),
               std::to_string(r.macs), bench::fmt(r_ratio, 2)});
    csv.row({r.mode, std::to_string(frames), std::to_string(args.stride),
             CsvWriter::num(percentile(*r.ms, 50.0)),
             CsvWriter::num(percentile(*r.ms, 95.0)), std::to_string(r.macs),
             CsvWriter::num(r_ratio), std::to_string(r.cycles),
             CsvWriter::num(board.energy_mj(r.cycles))});
  }
  std::printf("%s", table.render("per-frame latency and steady-state MACs")
                        .c_str());
  std::printf("[csv] %s\n", csv.path().c_str());

  // --- verdict ------------------------------------------------------------
  const bool pass = ratio >= 2.0;
  std::printf(
      "[verdict] %s: steady-state MAC reduction %.2fx (target >=2x), "
      "bitwise parity held on all %d frames\n",
      pass ? "PASS" : "FAIL", ratio, frames);
  return pass || !args.strict ? 0 : 1;
}
