// ATAMAN pipeline facade — the five steps of the paper's Fig. 1:
//
//   (1) layer-based code unpacking          -> unpack/ + mcu/ models
//   (2) input-distribution capture          -> analyze()
//   (3) significance S[] calculation        -> analyze()
//   (4) design-space exploration + configs  -> explore(), select()
//   (5) approximate CNN deployment          -> deploy(), generate_code()
//
// plus convenience plumbing to obtain a trained + quantized model from
// the zoo with on-disk caching.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/codegen/c_emitter.hpp"
#include "src/data/synth_cifar.hpp"
#include "src/dse/dse_runner.hpp"
#include "src/mcu/board.hpp"
#include "src/quant/quantizer.hpp"
#include "src/train/model_zoo.hpp"
#include "src/xcube/xcube_engine.hpp"

namespace ataman {

struct PipelineOptions {
  int calibration_images = 256;   // for activation statistics (step 2)
  DseOptions dse;                 // step 4
  BoardSpec board = stm32u575_board();
  CortexM33CostTable costs;
  MemoryCostTable memory;
  XCubeCostTable xcube;
};

class AtamanPipeline {
 public:
  // `model`, `calib` and `eval` must outlive the pipeline.
  AtamanPipeline(const QModel* model, const Dataset* calib,
                 const Dataset* eval, PipelineOptions options = {});

  // Steps 2+3: capture E[a_i] on the calibration subset and compute the
  // per-channel significance of every conv product. Idempotent.
  void analyze();
  bool analyzed() const { return analyzed_; }
  const std::vector<LayerSignificance>& significance() const;
  const std::vector<ConvInputStats>& activation_stats() const;

  // Step 4: sweep the configured design space (or an explicit list).
  DseOutcome explore(const DseProgress& progress = nullptr);
  DseOutcome explore(const std::vector<ApproxConfig>& configs,
                     const DseProgress& progress = nullptr);

  // Step 5: pick the latency-optimal design within `max_accuracy_loss`
  // (absolute Top-1 fraction, e.g. 0.05) that fits the board's flash.
  int select(const DseOutcome& outcome, double max_accuracy_loss) const;

  SkipMask mask_for(const ApproxConfig& config) const;

  // Deploy the approximate design on the MCU substrate and measure the
  // full Table II row. `eval_limit` < 0 evaluates the whole eval set.
  DeployReport deploy(const ApproxConfig& config, const std::string& name,
                      int eval_limit = -1) const;

  // Deploy any EngineRegistry backend ("ref", "cmsis", "unpacked",
  // "xcube", or anything registered at startup) on the eval set. When
  // `config` is given, its skip mask is bound for mask-aware engines
  // (exact engines ignore it). This is the one deployment path — the
  // named comparators below are thin wrappers.
  DeployReport deploy_engine(const std::string& engine_name,
                             int eval_limit = -1,
                             const ApproxConfig* config = nullptr,
                             const std::string& design_name = "") const;
  // Comparators.
  DeployReport deploy_cmsis_baseline(int eval_limit = -1) const;
  DeployReport deploy_xcube(int eval_limit = -1) const;

  // Generated C for the approximate model (framework output 4 in Fig. 1).
  std::string generate_code(const ApproxConfig& config,
                            const CodegenOptions& options = {}) const;

  const QModel& model() const { return *model_; }
  const PipelineOptions& options() const { return options_; }

 private:
  const QModel* model_;
  const Dataset* calib_;
  const Dataset* eval_;
  PipelineOptions options_;
  std::vector<ConvInputStats> stats_;
  std::vector<LayerSignificance> significance_;
  // Explicit flag: a model with zero approximable layers (e.g. the dense
  // autoencoder) analyzes to legitimately empty stats/significance.
  bool analyzed_ = false;
};

// Calibrate the anomaly threshold of a scored model: mean + 2*stddev of
// the reference-engine reconstruction scores over up to `limit` images of
// `normals` (the all-normal training split). Deterministic.
float calibrate_score_threshold(const QModel& model, const Dataset& normals,
                                int limit = 256);

// Train (or load from cache) the float model for `spec`, quantize it with
// PTQ (calibrated on the training split) and cache the result. The
// returned QModel is self-contained.
QModel get_or_build_qmodel(const ZooSpec& spec,
                           const std::string& cache_dir = artifact_cache_dir());

}  // namespace ataman
