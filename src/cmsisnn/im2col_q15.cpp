#include "src/cmsisnn/im2col_q15.hpp"

namespace ataman {

void im2col_patch_q15(const QConv2D& layer, std::span<const int8_t> in,
                      int oy, int ox, int16_t* col) {
  const ConvGeom& g = layer.geom;
  const int32_t zp = layer.in.zero_point;
  int idx = 0;
  for (int ky = 0; ky < g.kernel; ++ky) {
    const int iy = oy * g.stride - g.pad + ky;
    for (int kx = 0; kx < g.kernel; ++kx) {
      const int ix = ox * g.stride - g.pad + kx;
      const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
      const int8_t* src =
          inside ? in.data() + (static_cast<size_t>(iy) * g.in_w + ix) * g.in_c
                 : nullptr;
      for (int c = 0; c < g.in_c; ++c, ++idx) {
        const int32_t x = inside ? src[c] : zp;
        col[idx] = static_cast<int16_t>(x - zp);
      }
    }
  }
}

}  // namespace ataman
