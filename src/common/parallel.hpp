// Thin OpenMP wrappers.
//
// All data-parallel loops in the library (batch evaluation, activation
// statistics capture, DSE sweeps, GEMM) go through these helpers so thread
// control lives in one place. Results must not depend on the thread count:
// callers either write to disjoint slots or reduce with order-insensitive
// (integer) arithmetic.
//
// Nested-parallelism rule: a parallel_for* call issued from inside the
// body of another parallel_for* runs serially on the calling worker —
// nested OpenMP teams are never created. This is what keeps the DSE sane:
// the sweep parallelizes over configs while each config's accuracy
// evaluation loops over images; without the rule that would oversubscribe
// threads² workers. Inner loops therefore need no "am I nested?" plumbing
// of their own — they just call parallel_for and get a serial loop when
// appropriate. `in_parallel_region()` exposes the detection, and
// `num_threads()` reports 1 inside a region.
#pragma once

#include <cstdint>
#include <functional>

namespace ataman {

// Number of worker threads the wrappers will use (OpenMP default unless
// overridden via set_num_threads or the OMP_NUM_THREADS environment).
// Returns 1 from inside a parallel_for* body (see the nesting rule above).
int num_threads();

// True while the calling thread is executing a parallel_for* body; any
// parallel_for* issued in that state runs serially on the caller.
bool in_parallel_region();

// RAII: marks the calling thread as inside a parallel region for the
// scope's lifetime, so every parallel_for* it issues runs serially on
// this thread (and num_threads() reports 1). This is how non-OpenMP
// thread pools compose with the library's data-parallel loops: each of
// the serve runtime's std::thread workers (src/serve) holds one for its
// whole life — a worker is already one lane of an outer parallel
// execution, and without the scope an inner parallel_for would spawn an
// OpenMP team per worker (threads x threads), the same oversubscription
// the nesting rule exists to prevent.
class SerialRegionScope {
 public:
  SerialRegionScope();
  ~SerialRegionScope();
  SerialRegionScope(const SerialRegionScope&) = delete;
  SerialRegionScope& operator=(const SerialRegionScope&) = delete;
};

// Override the worker count for subsequent parallel_for calls; n <= 0
// restores the OpenMP default.
void set_num_threads(int n);

// Parallel loop over [begin, end). `body(i)` must be safe to call
// concurrently for distinct i. Exceptions thrown by `body` are captured
// and rethrown (first one wins) after the loop completes.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t)>& body);

// As parallel_for, but hands each worker its contiguous chunk
// [chunk_begin, chunk_end) — useful when per-iteration work is tiny.
void parallel_for_chunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body);

// Parallel loop where `body(worker, i)` also receives a stable worker id in
// [0, workers). The i -> worker mapping is static (contiguous chunks), so
// per-worker partial results — and any sequential reduction over them —
// are bitwise deterministic for a fixed worker count. Returns the number
// of workers used.
int parallel_for_indexed(int64_t begin, int64_t end,
                         const std::function<void(int, int64_t)>& body);

}  // namespace ataman
