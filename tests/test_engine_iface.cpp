// The InferenceEngine seam: registry round-trip, cross-engine parity
// (logits and classifications, including crafted tied-logit inputs), and
// the shared batched evaluator's limit clamping.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/common/parallel.hpp"
#include "src/core/engine_iface.hpp"
#include "src/core/eval.hpp"
#include "src/nn/engine.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "src/xcube/xcube_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_image;
using testing::make_tiny_qmodel;

const char* const kBuiltins[] = {"ref", "cmsis", "unpacked", "xcube"};

Dataset make_eval_set(int images, uint64_t seed) {
  Dataset ds(ImageShape{12, 12, 3}, 10);
  Rng rng(seed);
  for (int i = 0; i < images; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    ds.add(img, rng.next_int(0, 9));
  }
  return ds;
}

// Single-dense model whose logits are fully determined by the biases:
// zero weights make the accumulator equal the bias, so tied biases yield
// bit-identical tied logits on any input — the argmax-parity worst case.
QModel make_bias_logit_model(const std::vector<int32_t>& biases) {
  QModel m;
  m.name = "tied-logits";
  m.topology = "fc";
  m.in_h = 2;
  m.in_w = 2;
  m.in_c = 1;
  m.input = {1.0f / 255.0f, -128};

  QDense fc;
  fc.in_dim = 4;
  fc.out_dim = static_cast<int>(biases.size());
  fc.in = m.input;
  fc.out = {1e-4f, 0};
  fc.w_scale = 0.01f;
  fc.weights.assign(static_cast<size_t>(fc.in_dim) * fc.out_dim, 0);
  fc.bias = biases;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);
  m.layers.emplace_back(std::move(fc));
  return m;
}

TEST(EngineRegistry, BuiltinsRoundTrip) {
  const QModel m = make_tiny_qmodel(400);
  EngineRegistry& reg = EngineRegistry::instance();
  EngineConfig cfg;
  cfg.model = &m;
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(reg.contains(name)) << name;
    const auto engine = reg.create(name, cfg);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(&engine->model(), &m) << name;
    EXPECT_FALSE(engine->design_name().empty()) << name;
  }
  const std::vector<std::string> names = reg.names();
  for (const char* name : kBuiltins)
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
}

TEST(EngineRegistry, UnknownNameThrows) {
  const QModel m = make_tiny_qmodel(401);
  EngineConfig cfg;
  cfg.model = &m;
  EXPECT_THROW(EngineRegistry::instance().create("no-such-engine", cfg),
               Error);
  EXPECT_THROW(EngineRegistry::instance().create("ref", EngineConfig{}),
               Error);  // null model
}

TEST(EngineRegistry, DesignNameOverrideAndCustomRegistration) {
  const QModel m = make_tiny_qmodel(402);
  EngineRegistry& reg = EngineRegistry::instance();
  EngineConfig cfg;
  cfg.model = &m;
  cfg.design_name = "my-label";
  EXPECT_EQ(reg.create("cmsis", cfg)->design_name(), "my-label");

  // Out-of-tree backends are a single registration.
  reg.register_engine("test-custom", [](const EngineConfig& c) {
    return std::make_unique<RefEngine>(c.model);
  });
  EXPECT_TRUE(reg.contains("test-custom"));
  const auto custom = reg.create("test-custom", cfg);
  EXPECT_EQ(custom->design_name(), "my-label");
  EXPECT_EQ(custom->classify(make_random_image(12 * 12 * 3, 7)),
            RefEngine(&m).classify(make_random_image(12 * 12 * 3, 7)));
}

TEST(EngineParity, IdenticalLogitsAndClassOnExactConfigs) {
  const QModel m = make_tiny_qmodel(410);
  EngineConfig cfg;
  cfg.model = &m;
  const RefEngine ref(&m);
  for (const char* name : kBuiltins) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (int i = 0; i < 25; ++i) {
      const auto img = make_random_image(12 * 12 * 3, 4100 + i);
      EXPECT_EQ(engine->run(img), ref.run(img)) << name << " image " << i;
      EXPECT_EQ(engine->classify(img), ref.classify(img))
          << name << " image " << i;
    }
  }
}

TEST(EngineParity, BatchAccuracyAgreesAcrossEngines) {
  const QModel m = make_tiny_qmodel(411);
  const Dataset eval = make_eval_set(60, 412);
  EngineConfig cfg;
  cfg.model = &m;
  const BatchAccuracy ref =
      evaluate_batch(*EngineRegistry::instance().create("ref", cfg), eval);
  EXPECT_EQ(ref.images, 60);
  for (const char* name : kBuiltins) {
    const BatchAccuracy acc =
        evaluate_batch(*EngineRegistry::instance().create(name, cfg), eval);
    EXPECT_EQ(acc.correct, ref.correct) << name;
    EXPECT_DOUBLE_EQ(acc.top1, ref.top1) << name;
  }
}

TEST(EngineParity, MaskedRefMatchesUnpackedThroughRegistry) {
  const QModel m = make_tiny_qmodel(413);
  SkipMask mask = SkipMask::none(m);
  Rng rng(414);
  for (auto& layer_mask : mask.masks)
    for (auto& s : layer_mask) s = rng.next_bool(0.3) ? 1 : 0;

  EngineConfig cfg;
  cfg.model = &m;
  cfg.mask = &mask;
  const auto masked_ref = EngineRegistry::instance().create("ref", cfg);
  const auto unpacked = EngineRegistry::instance().create("unpacked", cfg);
  for (int i = 0; i < 15; ++i) {
    const auto img = make_random_image(12 * 12 * 3, 4300 + i);
    EXPECT_EQ(masked_ref->run(img), unpacked->run(img)) << "image " << i;
  }
  // Both report *executed* MACs for the same approximate design.
  EXPECT_EQ(masked_ref->mac_ops(), unpacked->mac_ops());
  EXPECT_LT(masked_ref->mac_ops(), m.mac_count());
}

TEST(ArgmaxParity, LowestIndexWinsOnTies) {
  const std::vector<int8_t> all_equal(10, 42);
  EXPECT_EQ(argmax_lowest_index(all_equal), 0);
  EXPECT_EQ(argmax_lowest_index(std::vector<int8_t>{-5, 7, 7, -5}), 1);
  EXPECT_EQ(argmax_lowest_index(std::vector<int8_t>{3, -1, 3}), 0);
  EXPECT_EQ(argmax_lowest_index(std::vector<int8_t>{-128, -128}), 0);
  EXPECT_EQ(argmax_lowest_index(std::vector<int8_t>{1, 2, 127, 127}), 2);
  EXPECT_THROW(argmax_lowest_index(std::vector<int8_t>{}), Error);
}

TEST(ArgmaxParity, EnginesBreakTiedLogitsIdentically) {
  // Bias-only logits: {118, 118, -128, -128} ties at 0/1 -> class 0,
  // {-128, 118, 118, -128} ties at 1/2 -> class 1 (a last-max argmax
  // would answer 1 and 2 — the parity bug this test pins down).
  const struct {
    std::vector<int32_t> biases;
    int expected;
  } cases[] = {
      {{300, 300, -500, -500}, 0},
      {{-500, 300, 300, -500}, 1},
      {{-500, -500, 300, 300}, 2},
      {{0, 0, 0, 0}, 0},
  };
  for (const auto& c : cases) {
    const QModel m = make_bias_logit_model(c.biases);
    EngineConfig cfg;
    cfg.model = &m;
    for (const char* name : kBuiltins) {
      const auto engine = EngineRegistry::instance().create(name, cfg);
      const auto img = make_random_image(2 * 2 * 1, 77);
      const std::vector<int8_t> logits = engine->run(img);
      ASSERT_EQ(logits.size(), c.biases.size()) << name;
      EXPECT_EQ(logits[0] == logits[1] || logits[1] == logits[2] ||
                    logits[2] == logits[3],
                true)
          << name << ": crafted tie collapsed";
      EXPECT_EQ(engine->classify(img), c.expected) << name;
    }
  }
}

TEST(BatchEvaluator, LimitClampIsShared) {
  EXPECT_EQ(clamp_eval_limit(-1, 10), 10);
  EXPECT_EQ(clamp_eval_limit(5, 10), 5);
  EXPECT_EQ(clamp_eval_limit(10, 10), 10);
  EXPECT_EQ(clamp_eval_limit(999, 10), 10);   // over-ask: whole dataset
  EXPECT_THROW(clamp_eval_limit(0, 10), Error);
  EXPECT_THROW(clamp_eval_limit(-1, 0), Error);

  const QModel m = make_tiny_qmodel(420);
  const Dataset eval = make_eval_set(20, 421);
  EngineConfig cfg;
  cfg.model = &m;
  const auto engine = EngineRegistry::instance().create("ref", cfg);
  const BatchAccuracy all = evaluate_batch(*engine, eval, -1);
  const BatchAccuracy over = evaluate_batch(*engine, eval, 1000);
  EXPECT_EQ(all.images, 20);
  EXPECT_EQ(over.images, 20);
  EXPECT_EQ(over.correct, all.correct);
  EXPECT_EQ(evaluate_batch(*engine, eval, 7).images, 7);
  EXPECT_THROW(evaluate_batch(*engine, eval, 0), Error);
  // The legacy entry point shares the same clamp.
  EXPECT_THROW(evaluate_quantized_accuracy(m, eval, nullptr, 0), Error);
  EXPECT_DOUBLE_EQ(evaluate_quantized_accuracy(m, eval, nullptr, 1000),
                   all.top1);
}

TEST(BatchEvaluator, DeterministicAcrossThreadCounts) {
  const QModel m = make_tiny_qmodel(430);
  const Dataset eval = make_eval_set(33, 431);
  EngineConfig cfg;
  cfg.model = &m;
  const auto engine = EngineRegistry::instance().create("cmsis", cfg);
  set_num_threads(1);
  const BatchAccuracy serial = evaluate_batch(*engine, eval);
  set_num_threads(4);
  const BatchAccuracy parallel = evaluate_batch(*engine, eval);
  set_num_threads(0);  // restore default
  EXPECT_EQ(serial.correct, parallel.correct);
  EXPECT_DOUBLE_EQ(serial.top1, parallel.top1);
}

TEST(DeployReport, SharedAssemblyFillsEveryColumn) {
  const QModel m = make_tiny_qmodel(440);
  const Dataset eval = make_eval_set(15, 441);
  EngineConfig cfg;
  cfg.model = &m;
  const BoardSpec board;
  for (const char* name : {"cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    const DeployReport r = engine->deploy(eval, board);
    EXPECT_EQ(r.design, engine->design_name()) << name;
    EXPECT_EQ(r.network, m.name) << name;
    EXPECT_GT(r.cycles, 0) << name;
    EXPECT_GT(r.latency_ms, 0.0) << name;
    EXPECT_GT(r.flash_bytes, 0) << name;
    EXPECT_GT(r.ram_bytes, 0) << name;
    EXPECT_GT(r.mac_ops, 0) << name;
  }
  // The reference oracle deploys too, with "not modeled" (zero) costs.
  const DeployReport ref =
      EngineRegistry::instance().create("ref", cfg)->deploy(eval, board);
  EXPECT_EQ(ref.cycles, 0);
  EXPECT_EQ(ref.flash_bytes, 0);
  EXPECT_GE(ref.top1_accuracy, 0.0);
}

}  // namespace
}  // namespace ataman
