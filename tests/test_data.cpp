// SynthCIFAR data substrate: determinism, balance, shape, difficulty
// knobs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/data/patterns.hpp"
#include "src/data/synth_cifar.hpp"

namespace ataman {
namespace {

SynthCifarSpec small_spec() {
  SynthCifarSpec spec;
  spec.train_images = 200;
  spec.test_images = 100;
  return spec;
}

TEST(Dataset, AddAndAccess) {
  Dataset ds(ImageShape{4, 4, 3}, 10);
  std::vector<uint8_t> img(4 * 4 * 3, 7);
  ds.add(img, 3);
  EXPECT_EQ(ds.size(), 1);
  EXPECT_EQ(ds.label(0), 3);
  EXPECT_EQ(ds.image(0)[0], 7);
  EXPECT_THROW(ds.label(1), Error);
  EXPECT_THROW(ds.add(std::vector<uint8_t>(5, 0), 1), Error);
  EXPECT_THROW(ds.add(img, 10), Error);
}

TEST(Dataset, ShuffleKeepsImageLabelPairs) {
  Dataset ds(ImageShape{2, 2, 1}, 4);
  for (int i = 0; i < 4; ++i) {
    std::vector<uint8_t> img(4, static_cast<uint8_t>(i * 10));
    ds.add(img, i);
  }
  Rng rng(1);
  ds.shuffle(rng);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(ds.image(i)[0], static_cast<uint8_t>(ds.label(i) * 10));
}

TEST(Dataset, HeadSubset) {
  Dataset ds(ImageShape{2, 2, 1}, 2);
  for (int i = 0; i < 6; ++i)
    ds.add(std::vector<uint8_t>(4, static_cast<uint8_t>(i)), i % 2);
  Dataset h = ds.head(3);
  EXPECT_EQ(h.size(), 3);
  EXPECT_EQ(h.image(2)[0], 2);
}

TEST(SynthCifar, Deterministic) {
  const Dataset a = make_synth_cifar_split(small_spec(), 50, 1);
  const Dataset b = make_synth_cifar_split(small_spec(), 50, 1);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    const auto ia = a.image(i), ib = b.image(i);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
  }
}

TEST(SynthCifar, DeterministicAcrossThreadCounts) {
  set_num_threads(1);
  const Dataset a = make_synth_cifar_split(small_spec(), 40, 1);
  set_num_threads(8);
  const Dataset b = make_synth_cifar_split(small_spec(), 40, 1);
  set_num_threads(0);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    const auto ia = a.image(i), ib = b.image(i);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
  }
}

TEST(SynthCifar, SplitsDiffer) {
  const Dataset train = make_synth_cifar_split(small_spec(), 50, 1);
  const Dataset test = make_synth_cifar_split(small_spec(), 50, 2);
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    const auto a = train.image(i), b = test.image(i);
    if (std::equal(a.begin(), a.end(), b.begin())) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(SynthCifar, RoughlyBalancedClasses) {
  SynthCifarSpec spec = small_spec();
  spec.label_noise = 0.0f;
  const Dataset ds = make_synth_cifar_split(spec, 500, 1);
  const std::vector<int> hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 10u);
  for (const int h : hist) EXPECT_NEAR(h, 50, 1);
}

TEST(SynthCifar, LabelNoiseMovesLabels) {
  SynthCifarSpec clean = small_spec();
  clean.label_noise = 0.0f;
  SynthCifarSpec noisy = clean;
  noisy.label_noise = 0.5f;
  const Dataset a = make_synth_cifar_split(clean, 400, 1);
  const Dataset b = make_synth_cifar_split(noisy, 400, 1);
  // With 50% label noise about 45% of labels differ from the clean run
  // (noise reassigns uniformly, sometimes to the same class).
  int diff = 0;
  for (int i = 0; i < a.size(); ++i)
    if (a.label(i) != b.label(i)) ++diff;
  EXPECT_GT(diff, 100);
}

TEST(SynthCifar, NoiseKnobIncreasesPixelSpread) {
  SynthCifarSpec lo = small_spec();
  lo.noise_sigma = 5.0f;
  SynthCifarSpec hi = small_spec();
  hi.noise_sigma = 130.0f;
  const Dataset a = make_synth_cifar_split(lo, 100, 1);
  const Dataset b = make_synth_cifar_split(hi, 100, 1);
  EXPECT_LT(a.pixel_stddev() + 15.0, b.pixel_stddev());
}

TEST(SynthCifar, ClassNames) {
  for (int i = 0; i < 10; ++i)
    EXPECT_NE(std::string(synth_cifar_class_name(i)), "");
  EXPECT_THROW(synth_cifar_class_name(10), Error);
}

TEST(Patterns, ValuesInUnitRange) {
  Rng rng(3);
  for (int f = 0; f < kNumPatternFamilies; ++f) {
    const PatternParams p = sample_pattern_params(rng);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        const float v = pattern_value(static_cast<PatternFamily>(f),
                                      (x + 0.5f) / 8, (y + 0.5f) / 8, p);
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
      }
    }
  }
}

TEST(Patterns, FamiliesProduceDistinctTextures) {
  // Mean absolute difference between two families' images should be
  // clearly positive (they are different generative processes).
  Rng rng(4);
  const PatternParams p = sample_pattern_params(rng);
  double diff = 0.0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const float u = (x + 0.5f) / 16, v = (y + 0.5f) / 16;
      diff += std::abs(
          pattern_value(PatternFamily::kHorizontalStripes, u, v, p) -
          pattern_value(PatternFamily::kGaussianBlob, u, v, p));
    }
  }
  EXPECT_GT(diff / 256.0, 0.05);
}

}  // namespace
}  // namespace ataman
