// Code generator: structural properties of the emitted C and an
// end-to-end host-compile equivalence check against the unpacked engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/codegen/c_emitter.hpp"
#include "src/common/error.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_tiny_qmodel;

TEST(Codegen, EmitsHardwiredConstantsAndNoConvWeightArrays) {
  const QModel m = make_tiny_qmodel(80);
  const std::string code = emit_model_c(m);
  // Straight-line SMLAD calls with hex weight constants.
  EXPECT_NE(code.find("_smlad(0x"), std::string::npos);
  // Conv layers have no weight arrays (FC does).
  EXPECT_EQ(code.find("conv0_w"), std::string::npos);
  EXPECT_NE(code.find("fc0_w"), std::string::npos);
  // Runner and class count exported.
  EXPECT_NE(code.find("ataman_run"), std::string::npos);
  EXPECT_NE(code.find("ataman_num_classes = 10"), std::string::npos);
  // Host shim present and ARM intrinsic path guarded.
  EXPECT_NE(code.find("__ARM_FEATURE_DSP"), std::string::npos);
}

TEST(Codegen, SkippedOperandsDisappearFromCode) {
  const QModel m = make_tiny_qmodel(81);
  SkipMask mask = SkipMask::none(m);
  for (auto& v : mask.masks[0]) v = 1;  // skip all of conv0
  const std::string exact = emit_model_c(m);
  const std::string approx = emit_model_c(m, &mask);
  EXPECT_LT(approx.size(), exact.size());
  // conv0 in the approximate build degenerates to bias-only channels:
  // its section should contain no smlad between "conv0" and "conv1".
  const size_t c0 = approx.find("_conv0");
  const size_t c1 = approx.find("_conv1");
  ASSERT_NE(c0, std::string::npos);
  ASSERT_NE(c1, std::string::npos);
  EXPECT_EQ(approx.substr(c0, c1 - c0).find("_smlad(0x"), std::string::npos);
}

TEST(Codegen, CustomPrefix) {
  const QModel m = make_tiny_qmodel(82);
  CodegenOptions opt;
  opt.symbol_prefix = "mynet";
  const std::string code = emit_model_c(m, nullptr, opt);
  EXPECT_NE(code.find("void mynet_run"), std::string::npos);
  EXPECT_EQ(code.find("void ataman_run"), std::string::npos);
}

TEST(Codegen, WriteTextFileCreatesDirectories) {
  const std::string dir = "/tmp/ataman_codegen_test_dir";
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/nested/file.c", "int x;\n");
  std::ifstream in(dir + "/nested/file.c");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "int x;");
  std::filesystem::remove_all(dir);
}

// Single-conv models over varied geometries, for the parameterized
// compile test: kernel 5, stride 2, odd channels, no padding all hit
// different emitter paths.
QModel single_conv_model(int in_c, int out_c, int kernel, int stride,
                         int pad, uint64_t seed) {
  QModel m;
  m.name = "gen-test";
  m.in_h = 11;
  m.in_w = 11;
  m.in_c = in_c;
  m.input = {1.0f / 255.0f, -128};
  ConvGeom g;
  g.in_h = 11; g.in_w = 11; g.in_c = in_c;
  g.out_c = out_c; g.kernel = kernel; g.stride = stride; g.pad = pad;
  QConv2D conv = ataman::testing::make_random_qconv(g, seed);
  conv.in = m.input;
  refresh_requant(conv);
  m.layers.emplace_back(std::move(conv));
  return m;
}

// Compiles the generated C with the host compiler and compares logits
// against the unpacked engine on random images. Skipped when no host
// compiler is available.
class CodegenCompile : public ::testing::Test {
 protected:
  static bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }
};

TEST_F(CodegenCompile, GeneratedModelMatchesEngineBitExact) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  const QModel m = make_tiny_qmodel(83);
  SkipMask mask = SkipMask::none(m);
  Rng rng(84);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.3) ? 1 : 0;

  const std::string dir = "/tmp/ataman_codegen_compile";
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/model.c", emit_model_c(m, &mask));

  // Driver: read image bytes on stdin, print logits.
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[12*12*3];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
)";
  write_text_file(dir + "/main.c", driver);
  const std::string compile = "cc -std=c99 -O2 " + dir + "/model.c " + dir +
                              "/main.c -o " + dir + "/runner 2> " + dir +
                              "/cc.log";
  ASSERT_EQ(std::system(compile.c_str()), 0) << "generated C failed to compile";

  const UnpackedEngine engine(&m, &mask);
  for (int trial = 0; trial < 5; ++trial) {
    const auto img = testing::make_random_image(12 * 12 * 3, 900 + trial);
    const std::string img_path = dir + "/img.bin";
    {
      std::ofstream out(img_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size()));
    }
    const std::string run =
        dir + "/runner < " + img_path + " > " + dir + "/out.txt";
    ASSERT_EQ(std::system(run.c_str()), 0);

    std::ifstream in(dir + "/out.txt");
    std::vector<int8_t> got;
    int v = 0;
    while (in >> v) got.push_back(static_cast<int8_t>(v));
    EXPECT_EQ(got, engine.run(img)) << "trial " << trial;
  }
  std::filesystem::remove_all(dir);
}

// Per-channel requant: spread every conv channel's weight scale apart so
// the emitted programs carry genuinely distinct requant constants, then
// compile the generated C on the host and compare bitwise against the
// unpacked engine (which bakes the same per-channel constants).
TEST_F(CodegenCompile, PerChannelRequantMatchesEngineBitExact) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  QModel m = make_tiny_qmodel(85);
  testing::spread_model_wscales(m, 86);

  const std::string dir = "/tmp/ataman_codegen_perchannel";
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/model.c", emit_model_c(m));
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[12*12*3];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  int8_t logits[64];
  ataman_run(img, logits);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)logits[i]);
  return 0;
}
)";
  write_text_file(dir + "/main.c", driver);
  const std::string compile = "cc -std=c99 -O2 " + dir + "/model.c " + dir +
                              "/main.c -o " + dir + "/runner 2> " + dir +
                              "/cc.log";
  ASSERT_EQ(std::system(compile.c_str()), 0) << "generated C failed to compile";

  const UnpackedEngine engine(&m);
  for (int trial = 0; trial < 5; ++trial) {
    const auto img = testing::make_random_image(12 * 12 * 3, 950 + trial);
    {
      std::ofstream out(dir + "/img.bin", std::ios::binary);
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size()));
    }
    ASSERT_EQ(std::system((dir + "/runner < " + dir + "/img.bin > " + dir +
                           "/out.txt")
                              .c_str()),
              0);
    std::ifstream in(dir + "/out.txt");
    std::vector<int8_t> got;
    int v = 0;
    while (in >> v) got.push_back(static_cast<int8_t>(v));
    EXPECT_EQ(got, engine.run(img)) << "trial " << trial;
  }
  std::filesystem::remove_all(dir);
}

// Geometry sweep: each case exercises a different emitter path (k=5,
// stride 2, no padding, odd channels/patches, 1x1 conv).
struct GenCase {
  int in_c, out_c, kernel, stride, pad;
};

class CodegenGeometry : public ::testing::TestWithParam<GenCase> {
 protected:
  static bool have_cc() {
    return std::system("cc --version > /dev/null 2>&1") == 0;
  }
};

TEST_P(CodegenGeometry, CompilesAndMatchesEngine) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  const GenCase& c = GetParam();
  const QModel m = single_conv_model(c.in_c, c.out_c, c.kernel, c.stride,
                                     c.pad,
                                     1000 + c.kernel * 13 + c.out_c);
  const auto* conv = std::get_if<QConv2D>(&m.layers[0]);
  ASSERT_NE(conv, nullptr);
  const int64_t out_size =
      static_cast<int64_t>(conv->geom.positions()) * conv->geom.out_c;
  ASSERT_LE(out_size, 2048);

  // Unique directory per case: ctest runs parameterized cases as
  // separate parallel processes.
  const std::string dir = "/tmp/ataman_codegen_geom_" +
                          std::to_string(c.in_c) + "_" +
                          std::to_string(c.out_c) + "_" +
                          std::to_string(c.kernel) + "_" +
                          std::to_string(c.stride) + "_" +
                          std::to_string(c.pad);
  std::filesystem::remove_all(dir);
  write_text_file(dir + "/model.c", emit_model_c(m));
  const std::string driver = R"(
#include <stdint.h>
#include <stdio.h>
extern void ataman_run(const uint8_t* image, int8_t* logits);
extern const int ataman_num_classes;
int main(void) {
  uint8_t img[11*11*)" + std::to_string(c.in_c) + R"(];
  if (fread(img, 1, sizeof img, stdin) != sizeof img) return 1;
  static int8_t out[2048];
  ataman_run(img, out);
  for (int i = 0; i < ataman_num_classes; ++i) printf("%d\n", (int)out[i]);
  return 0;
}
)";
  write_text_file(dir + "/main.c", driver);
  ASSERT_EQ(std::system(("cc -std=c99 -O1 " + dir + "/model.c " + dir +
                         "/main.c -o " + dir + "/runner 2> " + dir +
                         "/cc.log")
                            .c_str()),
            0);

  const UnpackedEngine engine(&m);
  const auto img =
      testing::make_random_image(11 * 11 * c.in_c, 2000 + c.out_c);
  {
    std::ofstream out(dir + "/img.bin", std::ios::binary);
    out.write(reinterpret_cast<const char*>(img.data()),
              static_cast<std::streamsize>(img.size()));
  }
  ASSERT_EQ(std::system((dir + "/runner < " + dir + "/img.bin > " + dir +
                         "/out.txt")
                            .c_str()),
            0);
  std::ifstream in(dir + "/out.txt");
  std::vector<int8_t> got;
  int v = 0;
  while (in >> v) got.push_back(static_cast<int8_t>(v));
  EXPECT_EQ(got, engine.run(img));
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CodegenGeometry,
    ::testing::Values(GenCase{3, 4, 3, 1, 1},    // RGB stem
                      GenCase{2, 3, 5, 1, 2},    // k=5
                      GenCase{5, 4, 3, 2, 0},    // stride 2, no pad
                      GenCase{1, 8, 1, 1, 0},    // 1x1 conv
                      GenCase{4, 6, 5, 2, 2}));  // k=5 stride 2

}  // namespace
}  // namespace ataman
