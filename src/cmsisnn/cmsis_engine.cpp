#include "src/cmsisnn/cmsis_engine.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

CmsisEngine::CmsisEngine(const QModel* model, CortexM33CostTable costs,
                         MemoryCostTable memory)
    : InferenceEngine(model, "cmsis-nn"), costs_(costs), memory_(memory) {
  int out_dim = 0;
  double cycles = 0.0;
  for (const QLayer& layer : this->model().layers) {
    cycles += costs_.layer_dispatch;
    profile_.push_back({"dispatch",
                        static_cast<int64_t>(costs_.layer_dispatch), 0});
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_.push_back(PackedWeights::pack(conv->weights, conv->geom.out_c,
                                            conv->geom.patch_size()));
      const int64_t c = packed_conv_cycles(*conv, costs_);
      profile_.push_back({"conv", c, conv->geom.macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      // Depthwise runs the scalar loop kernel; no packed weight stream
      // (see packed_depthwise_conv2d).
      const int64_t c = packed_depthwise_cycles(*dw, costs_);
      profile_.push_back({"depthwise", c, dw->macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      const int64_t c = pool_cycles(*pool, costs_);
      profile_.push_back({"pool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      const int64_t c = avgpool_cycles(*pool, costs_);
      profile_.push_back({"avgpool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_.push_back(
          PackedWeights::pack(fc->weights, fc->out_dim, fc->in_dim));
      const int64_t c = dense_cycles(*fc, costs_);
      profile_.push_back({"fc", c, fc->macs()});
      cycles += static_cast<double>(c);
      out_dim = fc->out_dim;
    }
  }
  const auto softmax_c =
      static_cast<int64_t>(costs_.softmax_per_logit * out_dim);
  profile_.push_back({"softmax", softmax_c, 0});
  cycles += static_cast<double>(softmax_c);
  total_cycles_ = static_cast<int64_t>(cycles);
}

std::vector<int8_t> CmsisEngine::run(std::span<const uint8_t> image) const {
  std::vector<int8_t> cur = quantize_input(image);
  std::vector<int8_t> next;
  size_t packed_idx = 0;
  for (const QLayer& layer : model().layers) {
    next.assign(static_cast<size_t>(describe_layer(layer).out_elems), 0);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_conv2d(*conv, packed_[packed_idx++], cur, next);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      packed_depthwise_conv2d(*dw, cur, next);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      maxpool_ref(*pool, cur, next);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      avgpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense(*fc, packed_[packed_idx++], cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

void CmsisEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const int batch = static_cast<int>(images.size());

  // Contiguous batched activations: image b at cur + b * in_elems. The
  // batched kernels fold the batch into the GEMM N dimension; pools have
  // no weight traffic to amortize and run per image on subspans.
  size_t cur_elems = static_cast<size_t>(
      static_cast<int64_t>(model().in_h) * model().in_w * model().in_c);
  std::vector<int8_t> cur(cur_elems * static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    const std::vector<int8_t> q = quantize_input(images[static_cast<size_t>(b)]);
    std::copy(q.begin(), q.end(),
              cur.begin() + static_cast<size_t>(b) * cur_elems);
  }

  std::vector<int8_t> next;
  size_t packed_idx = 0;
  for (const QLayer& layer : model().layers) {
    const size_t out_elems =
        static_cast<size_t>(describe_layer(layer).out_elems);
    next.assign(out_elems * static_cast<size_t>(batch), 0);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_conv2d_batch(*conv, packed_[packed_idx++], cur, next, batch);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      packed_depthwise_conv2d_batch(*dw, cur, next, batch);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        maxpool_ref(*pool,
                    std::span<const int8_t>(cur).subspan(
                        static_cast<size_t>(b) * cur_elems, cur_elems),
                    std::span<int8_t>(next).subspan(
                        static_cast<size_t>(b) * out_elems, out_elems));
      }
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        avgpool_ref(*pool,
                    std::span<const int8_t>(cur).subspan(
                        static_cast<size_t>(b) * cur_elems, cur_elems),
                    std::span<int8_t>(next).subspan(
                        static_cast<size_t>(b) * out_elems, out_elems));
      }
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense_batch(*fc, packed_[packed_idx++], cur, next, batch);
    }
    cur.swap(next);
    cur_elems = out_elems;
  }

  logits_out.assign(static_cast<size_t>(batch), {});
  for (int b = 0; b < batch; ++b) {
    const auto* base = cur.data() + static_cast<size_t>(b) * cur_elems;
    logits_out[static_cast<size_t>(b)].assign(base, base + cur_elems);
  }
}

int64_t CmsisEngine::flash_bytes() const {
  return packed_flash(model(), memory_).total_bytes;
}

int64_t CmsisEngine::ram_bytes() const {
  return model_ram_bytes(model(), /*packed_engine=*/true, memory_);
}

}  // namespace ataman
