// Simulated X-CUBE-AI comparator [8].
//
// X-CUBE-AI is STMicroelectronics' closed-source deployment tool; the
// paper compares against it in Table II. Since neither its source nor its
// kernels are available, this engine models it as what it externally is:
// an *exact* int8 inference library (identical accuracy to CMSIS-NN in
// Table II) with its own cost profile — better-fused kernels (lower
// per-pair and epilogue costs, cheaper im2col) and a more compact flash
// layout (weight compression). The cost constants below were calibrated
// once against the paper's published LeNet/AlexNet rows (63.5 ms /
// 150.7 ms; 154 KB / 178 KB) and are otherwise never tuned per
// experiment; see docs/DESIGN.md for the substitution rationale.
#pragma once

#include <span>

#include "src/core/engine_iface.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/engine.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct XCubeCostTable {
  double basic_per_mac = 4.2;   // non-SIMD fallback path
  double fast_per_pair = 2.6;   // fused dual-MAC path
  double im2col_per_elem = 2.0;
  double chan_epilogue = 20.0;
  double fc_per_pair = 2.6;
  double fc_out_epilogue = 20.0;
  double pool_per_output_elem_per_tap = 1.6;
  double qadd_per_elem = 7.5;   // fused requantize-and-add, per element
  double layer_dispatch = 300.0;
  double softmax_per_logit = 25.0;

  // Flash: compact runtime plus weight compression.
  int64_t runtime_code = 40 * 1024;
  double weight_compression = 0.65;  // stored bytes per weight byte

  int64_t ram_runtime_reserve = 150 * 1024;
};

class XCubeEngine : public InferenceEngine {
 public:
  explicit XCubeEngine(const QModel* model, XCubeCostTable costs = {});

  // Exact numerics: bit-identical to the reference engine (X-CUBE-AI is
  // an exact int8 library; only its cost profile differs).
  std::vector<int8_t> run(std::span<const uint8_t> image) const override;

  // Clone/concurrency contract (audited for the serve runtime, and pinned
  // by tests/test_serve.cpp XCubeCloneAndWorkerIsolation): the embedded
  // `ref_` delegate is stateless after construction — run() uses only
  // call-local buffers, `ref_` never has a mask bound, and the cost
  // tallies are written once in the constructor. Copying the engine is
  // therefore a shallow, cheap duplicate (model pointer + cost table),
  // and even a *shared* instance is safe to run() from concurrent serve
  // workers. Pools still keep one instance per worker (the blanket rule
  // for all backends), so a future stateful delegate cannot regress
  // concurrent serving.
  std::unique_ptr<InferenceEngine> clone() const override {
    return std::make_unique<XCubeEngine>(*this);
  }

  int64_t total_cycles() const override { return total_cycles_; }
  int64_t flash_bytes() const override;
  int64_t ram_bytes() const override;

 private:
  RefEngine ref_;  // delegate for the exact numerics
  XCubeCostTable costs_;
  int64_t total_cycles_ = 0;
};

}  // namespace ataman
