#include "src/common/csv.hpp"

#include <sstream>

#include "src/common/error.hpp"

namespace ataman {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  check(out_.good(), "cannot open CSV file for writing: " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  check(cells.size() == arity_, "CSV row arity mismatch for " + path_);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  check(out_.good(), "CSV write failed: " + path_);
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace ataman
