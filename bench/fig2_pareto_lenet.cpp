// Fig. 2(b) — Pareto space between accuracy and normalized MAC reduction
// for LeNet, all conv layers approximated (tau in [0, 0.1], paper step
// 0.001).
#include "bench/fig2_common.hpp"

int main(int argc, char** argv) {
  const auto scale = ataman::bench::parse_scale(argc, argv);
  return ataman::bench::run_fig2(ataman::bench::load_lenet(), scale);
}
