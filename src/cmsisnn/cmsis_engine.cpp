#include "src/cmsisnn/cmsis_engine.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

CmsisEngine::CmsisEngine(const QModel* model, CortexM33CostTable costs,
                         MemoryCostTable memory)
    : InferenceEngine(model, "cmsis-nn"),
      costs_(costs),
      memory_(memory),
      plan_(plan_activations(*model)) {
  int out_dim = 0;
  double cycles = 0.0;
  for (const QLayer& layer : this->model().layers) {
    cycles += costs_.layer_dispatch;
    profile_.push_back({"dispatch",
                        static_cast<int64_t>(costs_.layer_dispatch), 0});
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_.push_back(PackedWeights::pack(conv->weights, conv->geom.out_c,
                                            conv->geom.patch_size()));
      const int64_t c = packed_conv_cycles(*conv, costs_);
      profile_.push_back({"conv", c, conv->geom.macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      // Depthwise runs the scalar loop kernel; no packed weight stream
      // (see packed_depthwise_conv2d).
      const int64_t c = packed_depthwise_cycles(*dw, costs_);
      profile_.push_back({"depthwise", c, dw->macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      const int64_t c = pool_cycles(*pool, costs_);
      profile_.push_back({"pool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      const int64_t c = avgpool_cycles(*pool, costs_);
      profile_.push_back({"avgpool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_.push_back(
          PackedWeights::pack(fc->weights, fc->out_dim, fc->in_dim));
      const int64_t c = dense_cycles(*fc, costs_);
      profile_.push_back({"fc", c, fc->macs()});
      cycles += static_cast<double>(c);
      out_dim = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      const int64_t c = qadd_cycles(*add, costs_);
      profile_.push_back({"add", c, 0});
      cycles += static_cast<double>(c);
    }
  }
  const auto softmax_c =
      static_cast<int64_t>(costs_.softmax_per_logit * out_dim);
  profile_.push_back({"softmax", softmax_c, 0});
  cycles += static_cast<double>(softmax_c);
  total_cycles_ = static_cast<int64_t>(cycles);
}

std::vector<int8_t> CmsisEngine::run(std::span<const uint8_t> image) const {
  // Slot buffers from the shared liveness plan (ping-pong on chains).
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  {
    const std::vector<int8_t> in = quantize_input(image);
    const std::span<int8_t> entry = tensor_span(0);
    std::copy(in.begin(), in.end(), entry.begin());
  }

  const int layer_count = static_cast<int>(model().layers.size());
  size_t packed_idx = 0;
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const std::span<const int8_t> cur = tensor_span(ins[0]);
    const std::span<int8_t> next = tensor_span(l + 1);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_conv2d(*conv, packed_[packed_idx++], cur, next);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      packed_depthwise_conv2d(*dw, cur, next);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      maxpool_ref(*pool, cur, next);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      avgpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense(*fc, packed_[packed_idx++], cur, next);
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      qadd_ref(*add, cur, tensor_span(ins[1]), next);
    }
  }
  const std::span<const int8_t> out = tensor_span(layer_count);
  return std::vector<int8_t>(out.begin(), out.end());
}

void CmsisEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const int batch = static_cast<int>(images.size());

  // Contiguous batched activations per tensor: image b of tensor t lives
  // at slot_base + b * elems(t). Slots come from the shared liveness
  // plan (sized slot_elems * batch); the batched kernels fold the batch
  // into the GEMM N dimension, pools and adds run per image on subspans.
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_batch_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(
          static_cast<size_t>(plan_.slot_elems[static_cast<size_t>(
              info.slot)]) *
          static_cast<size_t>(batch));
    return std::span<int8_t>(
        slot.data(),
        static_cast<size_t>(info.elems) * static_cast<size_t>(batch));
  };
  const size_t in_elems = static_cast<size_t>(
      static_cast<int64_t>(model().in_h) * model().in_w * model().in_c);
  {
    const std::span<int8_t> entry = tensor_batch_span(0);
    for (int b = 0; b < batch; ++b) {
      const std::vector<int8_t> q =
          quantize_input(images[static_cast<size_t>(b)]);
      std::copy(q.begin(), q.end(),
                entry.begin() +
                    static_cast<std::ptrdiff_t>(static_cast<size_t>(b) *
                                                in_elems));
    }
  }

  const int layer_count = static_cast<int>(model().layers.size());
  size_t packed_idx = 0;
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const size_t cur_elems =
        static_cast<size_t>(model().tensor_elems(ins[0]));
    const size_t out_elems =
        static_cast<size_t>(describe_layer(layer).out_elems);
    const std::span<const int8_t> cur = tensor_batch_span(ins[0]);
    const std::span<int8_t> next = tensor_batch_span(l + 1);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_conv2d_batch(*conv, packed_[packed_idx++], cur, next, batch);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      packed_depthwise_conv2d_batch(*dw, cur, next, batch);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        maxpool_ref(*pool,
                    cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                    next.subspan(static_cast<size_t>(b) * out_elems,
                                 out_elems));
      }
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      for (int b = 0; b < batch; ++b) {
        avgpool_ref(*pool,
                    cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                    next.subspan(static_cast<size_t>(b) * out_elems,
                                 out_elems));
      }
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense_batch(*fc, packed_[packed_idx++], cur, next, batch);
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      const std::span<const int8_t> second = tensor_batch_span(ins[1]);
      for (int b = 0; b < batch; ++b) {
        qadd_ref(*add,
                 cur.subspan(static_cast<size_t>(b) * cur_elems, cur_elems),
                 second.subspan(static_cast<size_t>(b) * cur_elems,
                                cur_elems),
                 next.subspan(static_cast<size_t>(b) * out_elems, out_elems));
      }
    }
  }

  const std::span<const int8_t> out = tensor_batch_span(layer_count);
  const size_t final_elems =
      static_cast<size_t>(model().tensor_elems(layer_count));
  logits_out.assign(static_cast<size_t>(batch), {});
  for (int b = 0; b < batch; ++b) {
    const auto sub = out.subspan(static_cast<size_t>(b) * final_elems,
                                 final_elems);
    logits_out[static_cast<size_t>(b)].assign(sub.begin(), sub.end());
  }
}

int64_t CmsisEngine::flash_bytes() const {
  return packed_flash(model(), memory_).total_bytes;
}

int64_t CmsisEngine::ram_bytes() const {
  return model_ram_bytes(model(), /*packed_engine=*/true, memory_);
}

}  // namespace ataman
