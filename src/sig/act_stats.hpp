// Activation statistics capture (§II-C, framework step 2).
//
// The significance of a product a_i * w_i depends on the *expected* value
// of its input operand: E[a_i] is estimated per approximable layer (conv
// and depthwise conv) by averaging the zero-point-corrected quantized
// activations over every output position of every image in a small
// calibration subset — "capturing the input values' distribution from a
// small portion of the dataset".
//
//   * plain conv:     mean_corrected[(ky,kx,in_c)-flattened patch index].
//     E[a_i] is shared by all output channels (they read the same
//     receptive field); per-channel significance differs only through w_i.
//   * depthwise conv: mean_corrected[(ky*kx)*channels + ch] — the same
//     (ky, kx, channel) iteration, which is exactly the [k][k][c] weight
//     layout, so stats index == weight index (dw_weight_index).
#pragma once

#include <vector>

#include "src/data/dataset.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct ConvInputStats {
  // mean_corrected[i] = E[(x_q - zero_point)] at patch operand i.
  std::vector<double> mean_corrected;
  int64_t samples = 0;  // positions x images averaged over
};

// Stats vector length for one approximable layer: conv patch size, or
// k*k*channels for depthwise (see header comment).
int64_t stats_len(const QLayer& layer);

// One entry per approximable layer (ordinal order). Uses up to `limit`
// images of `calib` (all if < 0). Parallel over images; deterministic
// reduction.
std::vector<ConvInputStats> capture_activation_stats(const QModel& model,
                                                     const Dataset& calib,
                                                     int limit = 256);

}  // namespace ataman
