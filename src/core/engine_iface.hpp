// The one inference-engine seam of the repo.
//
// Every backend — the golden reference kernels (`src/nn`), the packed
// CMSIS-NN-style baseline (`src/cmsisnn`), the paper's unpacked
// approximate engine (`src/unpack`) and the X-CUBE-AI comparator
// (`src/xcube`) — implements `InferenceEngine` and registers a factory
// with `EngineRegistry`. Evaluation loops (the DSE, the Table II bench,
// the CLI) only ever talk to this interface, so adding a backend is a
// single registration, not a new wiring job per call site.
//
// Cost semantics: `total_cycles`/`flash_bytes`/`ram_bytes` describe the
// *modeled MCU deployment* of the engine's instruction stream. An engine
// with no deployment substrate (the reference oracle) reports zero for
// all three; report consumers treat zeros as "not modeled".
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/data/dataset.hpp"
#include "src/mcu/board.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/deploy_report.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct SkipMask;
struct XCubeCostTable;

// Lowest-index-wins argmax over int8 logits. Ties between logits are
// common at int8 precision; every `classify` implementation (and any
// generated code) must break them identically — towards the lowest class
// index — for "bit-exact with the reference engine" to hold on ties.
inline int argmax_lowest_index(std::span<const int8_t> logits) {
  check(!logits.empty(), "argmax over empty logits");
  int best = 0;
  for (int i = 1; i < static_cast<int>(logits.size()); ++i) {
    if (logits[i] > logits[best]) best = i;  // strict '>': ties keep lowest
  }
  return best;
}

// Scored-head (TaskHead::kScore) reduction: mean squared error between
// the dequantized int8 reconstruction (the model's final QDense output)
// and the dequantized int8 input tensor, accumulated in double. The
// int8 tensors are bit-exact across backends, and IEEE double addition
// over a fixed order is deterministic, so the *score* is bit-exact
// across backends too — the scored analogue of the logits-parity
// contract. The model's final layer must be a QDense whose out_dim
// equals the input element count.
double reconstruction_score(const QModel& model,
                            std::span<const int8_t> q_input,
                            std::span<const int8_t> reconstruction);

// Class decision of a scored head: strictly above threshold = anomalous
// (class 1). Every consumer — engines, evaluator, prefix cache, serve
// workers, generated C — must use this one comparison for "bit-exact
// classification parity" to hold at the decision boundary.
inline int scored_class(const QModel& model, double score) {
  return score > model.score_threshold ? 1 : 0;
}

// Cross-frame state of one streaming session (docs/SERVING.md
// "Streaming sessions"). Engine-independent data: a short ring of the
// previous frames' full per-tensor int8 activations — past[d-1][t] is
// tensor t of frame n-d (tensor 0 = the quantized input, tensor l+1 =
// the output of layer l) — plus the column stride each retained frame
// was pushed with and the reuse counters. Owned by the caller
// (serve::StreamSession or a bench loop); engines only read and advance
// it inside run_incremental. Not thread-safe on its own: the serve
// queue guarantees at most one in-flight frame per session.
struct StreamState {
  std::deque<std::vector<std::vector<int8_t>>> past;  // newest first
  std::vector<int> past_strides;  // columns pushed, aligned with `past`
  int frames = 0;                 // frames executed so far
  // Mask identity of the session's first frame: a streaming session is
  // one fixed configuration — splicing activations produced under a
  // different mask would splice different arithmetic. Engines reject a
  // mid-session mask change.
  const SkipMask* bound_mask = nullptr;

  // Reuse accounting, maintained by run_incremental.
  int64_t last_recomputed_macs = 0;  // most recent frame
  int64_t last_spliced_elems = 0;
  int64_t total_recomputed_macs = 0;
  int64_t total_full_macs = 0;  // what reuse-off run() would have executed

  bool started() const { return frames > 0; }
};

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  const QModel& model() const { return *model_; }

  // Report label for DeployReport::design (e.g. "cmsis-nn", "ataman").
  const std::string& design_name() const { return design_name_; }
  void set_design_name(std::string name) { design_name_ = std::move(name); }

  // Quantize a u8 image into the model's int8 input tensor. Identical for
  // every backend (q = pixel - 128 for the standard [0,1] input scale).
  std::vector<int8_t> quantize_input(std::span<const uint8_t> image) const;

  // Full inference; returns the final layer's int8 logits.
  virtual std::vector<int8_t> run(std::span<const uint8_t> image) const = 0;

  // Whether run_batch has a real batch-amortized implementation (weights /
  // unpacked programs streamed once per batch, wide accumulators) rather
  // than the default per-image fallback loop. Either way run_batch is
  // callable on every backend; this flag only reports whether batching
  // buys throughput.
  virtual bool supports_run_batch() const { return false; }

  // Batched inference: one logits vector per input image, bitwise
  // identical to calling run() on each image in isolation — batch size,
  // batch composition (including duplicate images) and ragged final
  // batches can never change a single logit. `logits_out` is resized to
  // images.size(); previous contents are discarded. An empty batch is a
  // hard error.
  //
  // The default implementation loops run() per image, so out-of-tree
  // backends keep working unchanged. NOTE for subclassers of in-tree
  // engines: a batch-amortized override executes kernels directly and
  // does NOT call run() per image — an engine that intercepts execution
  // by overriding run() must override run_batch too (tests/test_serve.cpp
  // GateEngine is the in-tree example).
  virtual void run_batch(std::span<const std::span<const uint8_t>> images,
                         std::vector<std::vector<int8_t>>& logits_out) const;

  // Whether this backend can resume inference at a layer boundary via
  // run_from. Engines that model per-layer deployment state (packed
  // pipelines, code-generated streams) generally cannot; the reference
  // oracle can, which is what the DSE's layer-prefix activation cache
  // (src/dse/prefix_cache) builds on.
  virtual bool supports_run_from() const { return false; }

  // Resume inference at a layer boundary: `activations` is tensor
  // `layer_begin` (the int8 output of layer layer_begin-1; the network
  // input for 0), and the call runs layers [layer_begin, layers.size())
  // to the final logits. `layer_begin == 0` is equivalent to run() minus
  // input quantization; `layer_begin == layers.size()` returns
  // `activations` unchanged. On DAG models `layer_begin` must be a
  // *linear boundary* (QModel::linear_boundary — no skip edge crosses
  // it), since a single tensor must carry the whole activation frontier;
  // every boundary of a chain qualifies. Throws unless
  // supports_run_from().
  virtual std::vector<int8_t> run_from(
      int layer_begin, std::span<const int8_t> activations) const;

  // Whether this backend executes streaming frames incrementally via
  // run_incremental. Only the reference engine does today: column
  // splicing needs per-column access to fully materialized activation
  // tensors, which the packed/unpacked deployment pipelines do not
  // expose. Non-incremental backends serve streaming sessions through
  // full run() fallback (serve::StreamSession arranges that).
  virtual bool supports_run_incremental() const { return false; }

  // Streaming-frame inference with temporal activation reuse.
  // `new_columns` holds the `s` newest input columns in [h][s][c] u8
  // layout (s = new_columns.size() / (in_h * in_c)); the first frame of
  // a session must push a full window (s == in_w). Returns the final
  // int8 logits, bitwise identical to run() on the full assembled
  // window — src/mcu/stream_plan.hpp derives why splicing is exact.
  // Advances `state` (ring of past activations, strides, reuse
  // counters). Throws unless supports_run_incremental(), and on a
  // mid-session mask rebind (state.bound_mask is pinned by frame 0).
  virtual std::vector<int8_t> run_incremental(
      StreamState& state, std::span<const uint8_t> new_columns) const;

  // Top-1 class; ties broken lowest-index-wins (argmax_lowest_index).
  // On scored models (TaskHead::kScore) the decision is instead
  // scored_class(reconstruction_score(...)): 1 = anomalous.
  virtual int classify(std::span<const uint8_t> image) const;

  // Scalar anomaly score of a scored model: run() + reconstruction_score.
  // Bit-exact across backends (see reconstruction_score). Throws on
  // TaskHead::kClassify models, whose head has no scalar reduction.
  virtual double score(std::span<const uint8_t> image) const;

  // Cheap duplicate for per-worker engine pools (src/serve): copies the
  // engine's derived state (packed weight streams, unpacked channel
  // programs, precomputed cost tallies) without re-running the expensive
  // constructor analysis, and shares the immutable QModel / bound
  // SkipMask through the same non-owning pointers. Returns nullptr when
  // the backend is not clonable; callers (EnginePool) then fall back to
  // building a fresh instance through the registry factory. All four
  // in-tree backends clone.
  virtual std::unique_ptr<InferenceEngine> clone() const { return nullptr; }

  // Mask rebinding: a backend that applies the skip mask at *run* time
  // (the reference oracle) can swap masks between inferences on one
  // instance, so a pool keeps one engine per worker for any number of
  // approximate configs. Backends that bake the mask into constructed
  // state (unpacked instruction streams) cannot rebind — pools key those
  // per mask instead. `mask` must outlive the engine; nullptr unbinds.
  // Throws unless supports_mask_rebind().
  virtual bool supports_mask_rebind() const { return false; }
  virtual void rebind_mask(const SkipMask* mask);

  // Modeled deployment cost of one inference (0 = not modeled).
  virtual int64_t total_cycles() const = 0;

  // Per-layer cycle/MAC breakdown (empty when the engine does not profile).
  virtual const std::vector<LayerProfile>& layer_profile() const;

  // Executed (non-skipped) conv/depthwise + fc MACs per inference.
  virtual int64_t mac_ops() const { return model().mac_count(); }

  // Modeled deployment footprint (0 = not modeled).
  virtual int64_t flash_bytes() const { return 0; }
  virtual int64_t ram_bytes() const { return 0; }

  // Full Table II row: accuracy measured on `eval` (up to `limit` images,
  // all if < 0) through the shared batched evaluator in src/core/eval,
  // cost columns from the virtual accessors above.
  virtual DeployReport deploy(const Dataset& eval, const BoardSpec& board,
                              int limit = -1) const;

 protected:
  InferenceEngine(const QModel* model, std::string design_name)
      : model_(model), design_name_(std::move(design_name)) {
    check(model != nullptr, "engine needs a model");
    check(!model->layers.empty(), "model has no layers");
  }

  // Uniform refusal for the optional capabilities (run_from,
  // run_incremental, rebind_mask): every decline throws the same
  // message shape, naming the engine, the declined API and the
  // capability gate the caller should have checked. Pinned by the
  // contract test in tests/test_streaming.cpp.
  [[noreturn]] void decline_capability(const char* api,
                                       const char* gate) const;

  // Shared run_batch entry validation: empty batches are a hard error
  // everywhere (a silent zero-output success would hide scheduler bugs).
  void check_batch_nonempty(
      std::span<const std::span<const uint8_t>> images) const {
    check(!images.empty(), "run_batch on engine '" + design_name_ +
                               "': batch must contain at least one image");
  }

 private:
  const QModel* model_;
  std::string design_name_;
};

// Everything a factory may need to build any registered backend. Fields a
// backend does not understand are ignored (e.g. `mask` by the exact packed
// engines); `model` is mandatory.
struct EngineConfig {
  const QModel* model = nullptr;
  // Skip mask for mask-aware engines (ref, unpacked). Must outlive the
  // engine.
  const SkipMask* mask = nullptr;
  // Per-approximable-layer-ordinal hybrid selection (unpacked only; see
  // src/unpack/layer_selection.hpp). Must outlive the engine.
  const std::vector<uint8_t>* unpack_selection = nullptr;
  CortexM33CostTable costs{};
  MemoryCostTable memory{};
  const XCubeCostTable* xcube = nullptr;  // nullptr -> default table
  std::string design_name;                // empty -> engine default
};

// String-keyed engine factory. The four in-tree backends self-register as
// "ref", "cmsis", "unpacked" and "xcube"; out-of-tree backends register at
// startup with register_engine. Thread-safe: create() may be called from
// inside parallel regions (the DSE does).
class EngineRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<InferenceEngine>(const EngineConfig&)>;

  static EngineRegistry& instance();

  // Registers (or replaces) a factory under `name`.
  void register_engine(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  // sorted

  // Builds `name` from `config`; throws on unknown names or a null model.
  std::unique_ptr<InferenceEngine> create(const std::string& name,
                                          const EngineConfig& config) const;

 private:
  EngineRegistry();  // pre-registers the four in-tree backends

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace ataman
