// Scenario: bring your own architecture.
//
// Everything in the library is architecture-agnostic: this example
// defines a custom CNN (not from the model zoo), trains it briefly,
// quantizes it, and pushes it through the full approximation pipeline —
// the workflow for adapting the framework to a new TinyML workload. It
// also demonstrates per-layer threshold configs built by hand instead of
// taking a DSE result.
#include <cstdio>

#include "src/core/ataman.hpp"

int main() {
  using namespace ataman;

  // --- custom architecture: 3 conv (mixed kernel sizes), 1 pool, 1 FC.
  ModelArch arch;
  arch.name = "custom-mixed";
  arch.topology = "3-1-1";
  arch.layers = {
      LayerSpec::conv(12, 5, 1, 2), LayerSpec::relu(), LayerSpec::pool(2, 2),
      LayerSpec::conv(16, 3, 1, 1), LayerSpec::relu(),
      LayerSpec::conv(16, 3, 1, 1), LayerSpec::relu(),
      LayerSpec::dense(10),
  };

  ZooSpec spec;
  spec.arch = arch;
  spec.data.train_images = 3000;
  spec.data.test_images = 800;
  spec.train.epochs = 6;
  spec.train.lr_decay_at = {4};
  spec.train.sgd.learning_rate = 0.02f;

  std::printf("training custom model '%s' (%s)...\n", arch.name.c_str(),
              arch.topology.c_str());
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);
  std::printf("quantized: %.2fM MACs, %d conv layers\n",
              static_cast<double>(model.mac_count()) / 1e6,
              model.conv_layer_count());

  PipelineOptions options;
  options.dse.eval_images = 400;
  AtamanPipeline pipeline(&model, &data.train, &data.test, options);
  pipeline.analyze();

  // --- hand-built configs: protect the fragile first layer, push the
  // deeper layers harder (a pattern the DSE often discovers by itself).
  std::printf("\n%-34s %-10s %-12s %s\n", "config", "accuracy",
              "MAC-reduction", "latency(ms)");
  const BoardSpec board = pipeline.options().board;
  const ConfigEvaluator evaluator(&model, &pipeline.significance(),
                                  &data.test, 400);
  for (ApproxConfig cfg : {
           ApproxConfig::exact(3),
           ApproxConfig::uniform(3, 0.01),
           ApproxConfig{{-1.0, 0.02, 0.02}},   // first layer exact
           ApproxConfig{{0.005, 0.03, 0.05}},  // increasing aggressiveness
       }) {
    const DseResult r = evaluator.evaluate(cfg);
    std::printf("%-34s %-10.3f %-12.3f %.1f\n", cfg.to_string().c_str(),
                r.accuracy, r.conv_mac_reduction,
                board.cycles_to_ms(r.cycles));
  }

  // --- and the automated path for comparison.
  const DseOutcome outcome = pipeline.explore();
  const int idx = pipeline.select(outcome, 0.05);
  check(idx >= 0, "no design met the 5% budget");
  const DseResult& best = outcome.results[static_cast<size_t>(idx)];
  std::printf("\nDSE pick @5%% budget: %s -> accuracy %.3f, %.1f ms\n",
              best.config.to_string().c_str(), best.accuracy,
              board.cycles_to_ms(best.cycles));
  std::printf("done.\n");
  return 0;
}
