#include "src/core/ataman.hpp"

#include <cmath>
#include <functional>
#include <optional>
#include <sstream>

#include "src/common/serialize.hpp"
#include "src/core/engine_iface.hpp"
#include "src/core/eval.hpp"
#include "src/nn/engine.hpp"

namespace ataman {

AtamanPipeline::AtamanPipeline(const QModel* model, const Dataset* calib,
                               const Dataset* eval, PipelineOptions options)
    : model_(model), calib_(calib), eval_(eval), options_(options) {
  check(model != nullptr && calib != nullptr && eval != nullptr,
        "pipeline needs model, calibration and eval datasets");
  // Models with zero approximable layers (e.g. the dense autoencoder) are
  // allowed: the DSE degenerates to evaluating the single exact config,
  // and every deploy/serve/codegen path works unchanged.
}

void AtamanPipeline::analyze() {
  if (analyzed()) return;
  stats_ = capture_activation_stats(*model_, *calib_,
                                    options_.calibration_images);
  significance_ = compute_model_significance(*model_, stats_);
  analyzed_ = true;
}

const std::vector<LayerSignificance>& AtamanPipeline::significance() const {
  check(analyzed(), "call analyze() first");
  return significance_;
}

const std::vector<ConvInputStats>& AtamanPipeline::activation_stats() const {
  check(analyzed(), "call analyze() first");
  return stats_;
}

DseOutcome AtamanPipeline::explore(const DseProgress& progress) {
  analyze();
  return explore(
      generate_configs(model_->approx_layer_count(), options_.dse), progress);
}

DseOutcome AtamanPipeline::explore(const std::vector<ApproxConfig>& configs,
                                   const DseProgress& progress) {
  analyze();
  const ConfigEvaluator evaluator(model_, &significance_, eval_,
                                  options_.dse.eval_images, options_.costs,
                                  options_.memory);
  return run_dse(evaluator, configs, options_.dse, progress);
}

int AtamanPipeline::select(const DseOutcome& outcome,
                           double max_accuracy_loss) const {
  return select_design(outcome, max_accuracy_loss,
                       options_.board.flash_bytes);
}

SkipMask AtamanPipeline::mask_for(const ApproxConfig& config) const {
  check(analyzed(), "call analyze() first");
  return make_skip_mask(*model_, significance_, config);
}

DeployReport AtamanPipeline::deploy(const ApproxConfig& config,
                                    const std::string& name,
                                    int eval_limit) const {
  return deploy_engine("unpacked", eval_limit, &config, name);
}

DeployReport AtamanPipeline::deploy_engine(const std::string& engine_name,
                                           int eval_limit,
                                           const ApproxConfig* config,
                                           const std::string& design_name) const {
  std::optional<SkipMask> mask;
  EngineConfig cfg;
  cfg.model = model_;
  cfg.costs = options_.costs;
  cfg.memory = options_.memory;
  cfg.xcube = &options_.xcube;
  cfg.design_name = design_name;
  if (config != nullptr) {
    mask.emplace(mask_for(*config));
    cfg.mask = &*mask;
  }
  const auto engine = EngineRegistry::instance().create(engine_name, cfg);
  return engine->deploy(*eval_, options_.board, eval_limit);
}

DeployReport AtamanPipeline::deploy_cmsis_baseline(int eval_limit) const {
  return deploy_engine("cmsis", eval_limit);
}

DeployReport AtamanPipeline::deploy_xcube(int eval_limit) const {
  return deploy_engine("xcube", eval_limit);
}

std::string AtamanPipeline::generate_code(const ApproxConfig& config,
                                          const CodegenOptions& options) const {
  const SkipMask mask = mask_for(config);
  return emit_model_c(*model_, &mask, options);
}

QModel get_or_build_qmodel(const ZooSpec& spec, const std::string& cache_dir) {
  ensure_directory(cache_dir);
  // Key the quantized artifact off the same fingerprint space as the
  // float model by hashing the architecture name + dataset + training
  // configuration through the float cache path machinery: simplest is to
  // derive it from the float model file itself.
  // "q8pc" = int8 with per-channel conv/depthwise weight scales; the
  // scheme tag keys the artifact so pre-per-channel caches (q8) are not
  // picked up — those requantize from the cached float model instead.
  std::ostringstream key;
  key << spec.arch.name << "_q8pc_" << spec.data.seed << "_"
      << spec.data.train_images << "_" << spec.train.epochs << "_"
      << static_cast<int>(spec.data.task) << "_"
      << static_cast<int>(spec.train.loss) << "_"
      << std::hash<std::string>{}(spec.arch.topology);
  const std::string path = cache_dir + "/" + key.str() + ".qm";
  if (file_exists(path)) return load_qmodel(path);

  TrainedModel trained = get_or_train(spec, cache_dir);
  const SynthCifar data = make_synth_cifar(spec.data);
  QModel qm = quantize_model(trained.net, data.train);
  if (spec.train.loss == TrainLoss::kMseReconstruction) {
    // Reconstruction-trained models quantize to a scored head; the
    // anomaly threshold is part of the artifact, calibrated once against
    // the all-normal training split.
    qm.head = TaskHead::kScore;
    qm.score_threshold = calibrate_score_threshold(qm, data.train);
  }
  save_qmodel(qm, path);
  return qm;
}

float calibrate_score_threshold(const QModel& model, const Dataset& normals,
                                int limit) {
  check(model.head == TaskHead::kScore,
        "threshold calibration needs a scored head");
  const int n = clamp_eval_limit(limit, normals.size());
  const RefEngine engine(&model);
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double s = engine.score(normals.image(i));
    sum += s;
    sum_sq += s * s;
  }
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  // mean + 2 sigma of the normal-score distribution: ~2.3% false-positive
  // rate under a Gaussian fit, far below the corrupted-score band.
  return static_cast<float>(mean + 2.0 * std::sqrt(var));
}

}  // namespace ataman
