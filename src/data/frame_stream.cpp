#include "src/data/frame_stream.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ataman {

FrameStream::FrameStream(const FrameStreamSpec& spec) : spec_(spec) {
  check(spec_.shape.height >= 1 && spec_.shape.width >= 1 &&
            spec_.shape.channels >= 1,
        "frame stream needs a non-empty window shape");
  check(spec_.frames >= 1, "frame stream needs at least one frame");
  check(spec_.stride_cols >= 1 && spec_.stride_cols <= spec_.shape.width,
        "frame stream stride must be in [1, window width]");

  const int h = spec_.shape.height;
  const int c = spec_.shape.channels;
  const int cols = total_cols();
  signal_.resize(static_cast<size_t>(h) * cols * c);

  // Structured signal: per-channel drifting waves keep neighbouring
  // columns correlated (like a spectrogram), the Rng adds per-pixel
  // noise so no column is trivially constant. Column-major generation
  // order is part of the contract — it makes the signal independent of
  // how many frames view it (a longer stream extends the signal, it
  // does not reshuffle it).
  Rng rng(spec_.seed);
  std::vector<float> freq(static_cast<size_t>(c)), phase(freq.size());
  for (int ch = 0; ch < c; ++ch) {
    freq[static_cast<size_t>(ch)] =
        0.05f + 0.30f * static_cast<float>(rng.next_double());
    phase[static_cast<size_t>(ch)] =
        6.2831853f * static_cast<float>(rng.next_double());
  }
  for (int x = 0; x < cols; ++x) {
    for (int y = 0; y < h; ++y) {
      for (int ch = 0; ch < c; ++ch) {
        const float wave =
            std::sin(freq[static_cast<size_t>(ch)] * static_cast<float>(x) +
                     0.21f * static_cast<float>(y) +
                     phase[static_cast<size_t>(ch)]);
        const float noise = static_cast<float>(rng.next_double()) - 0.5f;
        const float v = 127.5f + 90.0f * wave + 60.0f * noise;
        const float clamped = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
        signal_[(static_cast<size_t>(y) * cols + x) * c + ch] =
            static_cast<uint8_t>(clamped + 0.5f);
      }
    }
  }
}

int FrameStream::total_cols() const {
  return spec_.shape.width + (spec_.frames - 1) * spec_.stride_cols;
}

std::vector<uint8_t> FrameStream::columns(int col_lo, int cols) const {
  const int h = spec_.shape.height;
  const int c = spec_.shape.channels;
  const int total = total_cols();
  std::vector<uint8_t> out(static_cast<size_t>(h) * cols * c);
  for (int y = 0; y < h; ++y) {
    const uint8_t* src =
        signal_.data() + (static_cast<size_t>(y) * total + col_lo) * c;
    uint8_t* dst = out.data() + static_cast<size_t>(y) * cols * c;
    std::copy_n(src, static_cast<size_t>(cols) * c, dst);
  }
  return out;
}

std::vector<uint8_t> FrameStream::frame(int index) const {
  check(index >= 0 && index < spec_.frames, "frame index out of range");
  return columns(index * spec_.stride_cols, spec_.shape.width);
}

std::vector<uint8_t> FrameStream::new_columns(int index) const {
  check(index >= 0 && index < spec_.frames, "frame index out of range");
  if (index == 0) return frame(0);
  // The last stride_cols columns of window `index` are the ones window
  // `index - 1` could not see.
  const int window_end = index * spec_.stride_cols + spec_.shape.width;
  return columns(window_end - spec_.stride_cols, spec_.stride_cols);
}

}  // namespace ataman
