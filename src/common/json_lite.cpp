#include "src/common/json_lite.hpp"

#include <cctype>
#include <cmath>
#include <cstring>
#include <cstdlib>
#include <sstream>

#include "src/common/error.hpp"

namespace ataman {

bool Json::as_bool() const {
  check(is_bool(), "JSON value is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  check(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

int64_t Json::as_int() const {
  const double d = as_number();
  check(std::nearbyint(d) == d, "JSON number is not integral");
  return static_cast<int64_t>(d);
}

const std::string& Json::as_string() const {
  check(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  check(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  check(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  check(is_array(), "JSON value is not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  check(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  check(it != obj.end(), "JSON object missing key: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(std::ostream& os, double d) {
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    os << static_cast<int64_t>(d);
  } else {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << d;
    os << tmp.str();
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    check(get() == c, std::string("expected '") + c + "' in JSON input");
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't': literal("true"); return Json(true);
      case 'f': literal("false"); return Json(false);
      case 'n': literal("null"); return Json(nullptr);
      default: return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p) expect(*p);
  }

  Json object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), value());
      skip_ws();
      const char c = get();
      if (c == '}') return Json(std::move(obj));
      check(c == ',', "expected ',' or '}' in JSON object");
    }
  }

  Json array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(value());
      skip_ws();
      const char c = get();
      if (c == ']') return Json(std::move(arr));
      check(c == ',', "expected ',' or ']' in JSON array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = get();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Only BMP escapes the library itself emits (control chars).
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              code = code * 16 +
                     (h <= '9' ? h - '0' : (std::tolower(h) - 'a' + 10));
            }
            check(code < 0x80, "non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("bad escape in JSON string");
        }
      } else {
        out += c;
      }
    }
  }

  Json number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            strchr("+-.eE", text_[pos_]) != nullptr))
      ++pos_;
    check(pos_ > start, "invalid JSON number");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    check(end == tok.c_str() + tok.size(), "invalid JSON number: " + tok);
    return Json(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void dump_impl(const Json& v, std::ostream& os, int indent, int depth);

void dump_children(const Json& v, std::ostream& os, int indent, int depth) {
  const std::string pad(indent > 0 ? (depth + 1) * indent : 0, ' ');
  const std::string close_pad(indent > 0 ? depth * indent : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  if (v.is_array()) {
    const auto& arr = v.as_array();
    os << '[' << nl;
    for (size_t i = 0; i < arr.size(); ++i) {
      os << pad;
      dump_impl(arr[i], os, indent, depth + 1);
      if (i + 1 < arr.size()) os << ',';
      os << nl;
    }
    os << close_pad << ']';
  } else {
    const auto& obj = v.as_object();
    os << '{' << nl;
    size_t i = 0;
    for (const auto& [key, val] : obj) {
      os << pad;
      dump_string(os, key);
      os << (indent > 0 ? ": " : ":");
      dump_impl(val, os, indent, depth + 1);
      if (++i < obj.size()) os << ',';
      os << nl;
    }
    os << close_pad << '}';
  }
}

void dump_impl(const Json& v, std::ostream& os, int indent, int depth) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    dump_number(os, v.as_number());
  } else if (v.is_string()) {
    dump_string(os, v.as_string());
  } else {
    dump_children(v, os, indent, depth);
  }
}

}  // namespace

std::string Json::dump() const {
  std::ostringstream os;
  dump_impl(*this, os, 0, 0);
  return os.str();
}

std::string Json::dump_pretty() const {
  std::ostringstream os;
  dump_impl(*this, os, 2, 0);
  return os.str();
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ataman
