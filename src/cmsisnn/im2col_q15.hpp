// q15 im2col: expands one receptive field of int8 activations to
// zero-point-corrected int16 — the "time-consuming pre-processing" the
// paper's unpacked kernels avoid (§II-B item 3).
#pragma once

#include <cstdint>
#include <span>

#include "src/quant/qtypes.hpp"

namespace ataman {

// Fill `col` (patch_size int16 values, (ky,kx,in_c) order) for output
// position (oy, ox). Padding taps become 0 (== zero-point corrected).
void im2col_patch_q15(const QConv2D& layer, std::span<const int8_t> in,
                      int oy, int ox, int16_t* col);

}  // namespace ataman
