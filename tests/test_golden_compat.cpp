// Backward compatibility against a checked-in pre-per-channel artifact.
//
// tests/golden/micronet_pertensor_pr8.qm was serialized by the per-tensor
// quantizer (before the per-channel weight-quantization change): it has
// no per-channel trailer, only the inline scalar w_scale/requant slots.
// The loader must broadcast those scalars into per-channel vectors and
// reproduce the recorded logits bitwise on every backend — old deployed
// artifacts keep working, bit for bit.
//
// The golden logits were recorded with the pre-change library on four
// deterministic formula images (no RNG involved, so the inputs are
// regenerable forever): img[k][i] = uint8((i*31 + k*97 + 13) & 0xFF).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/quant/quantizer.hpp"

#ifndef ATAMAN_TEST_DATA_DIR
#error "ATAMAN_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace ataman {
namespace {

const std::string kGoldenDir = std::string(ATAMAN_TEST_DATA_DIR) + "/golden";

std::vector<uint8_t> formula_image(int k, int64_t elems) {
  std::vector<uint8_t> img(static_cast<size_t>(elems));
  for (int64_t i = 0; i < elems; ++i) {
    img[static_cast<size_t>(i)] = static_cast<uint8_t>(
        (static_cast<uint32_t>(i) * 31u + static_cast<uint32_t>(k) * 97u +
         13u) &
        0xFF);
  }
  return img;
}

struct GoldenLogits {
  int images = 0;
  int classes = 0;
  std::vector<std::vector<int8_t>> logits;
};

GoldenLogits load_golden_logits(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  GoldenLogits g;
  std::string key;
  char eq = 0;
  // Header line: "images=N logits=M".
  in >> key;
  EXPECT_EQ(key.substr(0, 7), "images=");
  g.images = std::stoi(key.substr(7));
  in >> key;
  EXPECT_EQ(key.substr(0, 7), "logits=");
  g.classes = std::stoi(key.substr(7));
  (void)eq;
  for (int k = 0; k < g.images; ++k) {
    std::vector<int8_t> row;
    for (int c = 0; c < g.classes; ++c) {
      int v = 0;
      in >> v;
      row.push_back(static_cast<int8_t>(v));
    }
    g.logits.push_back(std::move(row));
  }
  return g;
}

TEST(GoldenCompat, PerTensorArtifactLoadsAsBroadcastVectors) {
  const QModel m = load_qmodel(kGoldenDir + "/micronet_pertensor_pr8.qm");
  int conv_layers = 0;
  for (const QLayer& layer : m.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      ++conv_layers;
      ASSERT_EQ(static_cast<int>(conv->w_scales.size()), conv->geom.out_c);
      ASSERT_EQ(conv->w_scales.size(), conv->requant.size());
      // Pre-per-channel artifact: one scalar broadcast to every channel.
      for (size_t c = 1; c < conv->w_scales.size(); ++c) {
        EXPECT_EQ(conv->w_scales[c], conv->w_scales[0]) << "channel " << c;
        EXPECT_EQ(conv->requant[c].mult, conv->requant[0].mult)
            << "channel " << c;
        EXPECT_EQ(conv->requant[c].shift, conv->requant[0].shift)
            << "channel " << c;
      }
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      ASSERT_EQ(static_cast<int>(dw->w_scales.size()), dw->channels);
      ASSERT_EQ(dw->w_scales.size(), dw->requant.size());
      for (size_t c = 1; c < dw->w_scales.size(); ++c) {
        EXPECT_EQ(dw->w_scales[c], dw->w_scales[0]) << "channel " << c;
      }
    }
  }
  EXPECT_GT(conv_layers, 0);
}

TEST(GoldenCompat, PerTensorArtifactReproducesGoldenLogitsOnAllEngines) {
  const QModel m = load_qmodel(kGoldenDir + "/micronet_pertensor_pr8.qm");
  const GoldenLogits golden =
      load_golden_logits(kGoldenDir + "/micronet_pertensor_pr8_logits.txt");
  ASSERT_EQ(golden.images, 4);
  const int64_t elems = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;

  EngineConfig cfg;
  cfg.model = &m;
  for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    for (int k = 0; k < golden.images; ++k) {
      const auto img = formula_image(k, elems);
      EXPECT_EQ(engine->run(img), golden.logits[static_cast<size_t>(k)])
          << name << " image " << k;
    }
  }
}

TEST(GoldenCompat, ReserializedArtifactStaysBitCompatible) {
  // Loading the legacy artifact and saving it back appends the (all-
  // broadcast) per-channel trailer; reloading that must reproduce the
  // golden logits too — save/load is idempotent across the format bump.
  const QModel m = load_qmodel(kGoldenDir + "/micronet_pertensor_pr8.qm");
  const std::string tmp = "/tmp/ataman_golden_resave.qm";
  save_qmodel(m, tmp);
  const QModel reloaded = load_qmodel(tmp);
  std::remove(tmp.c_str());

  const GoldenLogits golden =
      load_golden_logits(kGoldenDir + "/micronet_pertensor_pr8_logits.txt");
  const int64_t elems = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
  EngineConfig cfg;
  cfg.model = &reloaded;
  const auto engine = EngineRegistry::instance().create("ref", cfg);
  for (int k = 0; k < golden.images; ++k) {
    EXPECT_EQ(engine->run(formula_image(k, elems)),
              golden.logits[static_cast<size_t>(k)])
        << "image " << k;
  }
}

}  // namespace
}  // namespace ataman
