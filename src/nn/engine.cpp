#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

RefEngine::RefEngine(const QModel* model) : InferenceEngine(model, "ref") {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  return run_layers(0, quantize_input(image), mask, tap);
}

std::vector<int8_t> RefEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  return run_from(layer_begin, activations, default_mask_);
}

std::vector<int8_t> RefEngine::run_from(int layer_begin,
                                        std::span<const int8_t> activations,
                                        const SkipMask* mask,
                                        const ConvTap& tap) const {
  return run_layers(layer_begin,
                    std::vector<int8_t>(activations.begin(), activations.end()),
                    mask, tap);
}

std::vector<int8_t> RefEngine::run_layers(int layer_begin,
                                          std::vector<int8_t> act,
                                          const SkipMask* mask,
                                          const ConvTap& tap) const {
  const int layer_count = static_cast<int>(model().layers.size());
  check(layer_begin >= 0 && layer_begin <= layer_count,
        "run_from layer index out of range");
  if (mask != nullptr) mask->validate(model());
  if (layer_begin < layer_count) {
    const QLayer& entry = model().layers[static_cast<size_t>(layer_begin)];
    check(static_cast<int64_t>(act.size()) ==
              describe_layer(entry).in_elems,
          "run_from activation size mismatch at layer " +
              std::to_string(layer_begin));
  }
  std::vector<int8_t> cur = std::move(act);
  std::vector<int8_t> next;

  int approx_ordinal = 0;
  for (int l = 0; l < layer_begin; ++l) {
    if (describe_layer(model().layers[static_cast<size_t>(l)]).skippable)
      ++approx_ordinal;
  }
  for (int l = layer_begin; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (tap) tap(approx_ordinal, layer, cur);
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    run_layer_ref(layer, cur, next, skip);
    cur.swap(next);
  }
  return cur;
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  const RefEngine engine(&model);
  return evaluate_batch(
             [&](std::span<const uint8_t> image) {
               return engine.classify(image, mask);
             },
             ds, limit)
      .top1;
}

}  // namespace ataman
