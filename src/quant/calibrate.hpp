// Activation-range calibration for post-training quantization.
//
// A RangeObserver accumulates min/max (with optional percentile clipping
// over a histogram) of float activations seen on a calibration subset;
// the quantizer turns the observed range into per-tensor affine params.
#pragma once

#include <cstdint>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

class RangeObserver {
 public:
  // `clip_quantile` in [0, 0.5): fraction of probability mass clipped at
  // each tail when deriving the final range (robustness against outliers).
  explicit RangeObserver(double clip_quantile = 0.0);

  void observe(const float* data, int64_t n);
  void observe_one(float v);

  // Merge another observer (used for parallel calibration).
  void merge(const RangeObserver& other);

  bool empty() const { return count_ == 0; }
  float min() const;
  float max() const;
  // Range after percentile clipping (falls back to raw min/max when the
  // histogram is too sparse).
  std::pair<float, float> clipped_range() const;

  // Affine int8 params covering the clipped range (zero always exactly
  // representable, as TFLite requires).
  QuantParams to_affine_params() const;
  // Symmetric params (zero_point == 0) for weight tensors.
  QuantParams to_symmetric_params() const;

 private:
  void rebuild_histogram(float lo, float hi);

  double clip_quantile_;
  float min_ = 0.0f, max_ = 0.0f;
  int64_t count_ = 0;
  // Fixed-width histogram over [hist_lo_, hist_hi_], rebuilt on range growth.
  static constexpr int kBins = 512;
  std::vector<int64_t> hist_;
  float hist_lo_ = 0.0f, hist_hi_ = 0.0f;
};

}  // namespace ataman
