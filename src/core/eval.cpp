#include "src/core/eval.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/metrics.hpp"
#include "src/common/parallel.hpp"

namespace ataman {

int clamp_eval_limit(int limit, int dataset_size) {
  const int n = limit < 0 ? dataset_size : std::min(limit, dataset_size);
  check(n > 0, "no images to evaluate (limit=" + std::to_string(limit) +
                   ", dataset=" + std::to_string(dataset_size) + ")");
  return n;
}

BatchAccuracy evaluate_batch(const ClassifyFn& classify, const Dataset& ds,
                             int limit) {
  const int n = clamp_eval_limit(limit, ds.size());
  // Disjoint per-image slots + a serial index-order sum: the reduction is
  // bitwise identical for any worker count (and for the serial fallback
  // taken inside an enclosing parallel region).
  std::vector<uint8_t> hit(static_cast<size_t>(n), 0);
  parallel_for_chunked(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int idx = static_cast<int>(i);
      hit[static_cast<size_t>(i)] =
          classify(ds.image(idx)) == ds.label(idx) ? 1 : 0;
    }
  });
  BatchAccuracy acc;
  acc.images = n;
  for (const uint8_t h : hit) acc.correct += h;
  acc.top1 = static_cast<double>(acc.correct) / static_cast<double>(n);
  return acc;
}

BatchAccuracy evaluate_batch(const InferenceEngine& engine, const Dataset& ds,
                             int limit) {
  const int n = clamp_eval_limit(limit, ds.size());
  // Each worker chunk runs the engine's batched path in sub-batches: one
  // run_batch call amortizes weight/program streaming across kEvalBatch
  // images. run_batch is bitwise identical to per-image run() by
  // contract, and the reduction below is the same index-order sum as the
  // ClassifyFn path, so accuracy stays bitwise reproducible for any
  // worker count and any sub-batch boundary.
  constexpr int kEvalBatch = 16;
  std::vector<uint8_t> hit(static_cast<size_t>(n), 0);
  parallel_for_chunked(0, n, [&](int64_t lo, int64_t hi) {
    std::vector<std::span<const uint8_t>> images;
    std::vector<std::vector<int8_t>> logits;
    for (int64_t b0 = lo; b0 < hi; b0 += kEvalBatch) {
      const int64_t b1 = std::min<int64_t>(b0 + kEvalBatch, hi);
      images.clear();
      for (int64_t i = b0; i < b1; ++i)
        images.push_back(ds.image(static_cast<int>(i)));
      engine.run_batch(images, logits);
      for (int64_t i = b0; i < b1; ++i) {
        const int idx = static_cast<int>(i);
        const std::vector<int8_t>& out = logits[static_cast<size_t>(i - b0)];
        // Scored heads reduce the reconstruction to a thresholded binary
        // decision instead of argmax; both paths fill the same per-image
        // hit slot, so the deterministic reduction below is shared.
        const int pred =
            engine.model().head == TaskHead::kScore
                ? scored_class(engine.model(),
                               reconstruction_score(
                                   engine.model(),
                                   engine.quantize_input(ds.image(idx)), out))
                : argmax_lowest_index(out);
        hit[static_cast<size_t>(i)] = pred == ds.label(idx) ? 1 : 0;
      }
    }
  });
  BatchAccuracy acc;
  acc.images = n;
  for (const uint8_t h : hit) acc.correct += h;
  acc.top1 = static_cast<double>(acc.correct) / static_cast<double>(n);
  return acc;
}

ScoredAccuracy evaluate_scored(const InferenceEngine& engine,
                               const Dataset& ds, int limit) {
  check(engine.model().head == TaskHead::kScore,
        "evaluate_scored on argmax-head model '" + engine.model().name + "'");
  const int n = clamp_eval_limit(limit, ds.size());
  // Disjoint per-image score slots, same determinism argument as the hit
  // vectors above; rank_auc itself is order-independent.
  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  std::vector<int> labels(static_cast<size_t>(n), 0);
  parallel_for_chunked(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int idx = static_cast<int>(i);
      scores[static_cast<size_t>(i)] = engine.score(ds.image(idx));
      labels[static_cast<size_t>(i)] = ds.label(idx);
    }
  });
  ScoredAccuracy acc;
  acc.images = n;
  for (int i = 0; i < n; ++i) {
    if (scored_class(engine.model(), scores[static_cast<size_t>(i)]) ==
        labels[static_cast<size_t>(i)])
      ++acc.correct;
  }
  acc.top1 = static_cast<double>(acc.correct) / static_cast<double>(n);
  acc.auc = rank_auc(scores, labels);
  return acc;
}

DeployReport assemble_deploy_report(const InferenceEngine& engine,
                                    const Dataset& eval,
                                    const BoardSpec& board, int limit) {
  const BatchAccuracy acc = evaluate_batch(engine, eval, limit);
  DeployReport r;
  r.design = engine.design_name();
  r.network = engine.model().name;
  r.topology = engine.model().topology;
  r.top1_accuracy = acc.top1;
  r.cycles = engine.total_cycles();
  r.mac_ops = engine.mac_ops();
  r.flash_bytes = engine.flash_bytes();
  r.ram_bytes = engine.ram_bytes();
  r.per_layer = engine.layer_profile();
  r.finalize(board);
  return r;
}

}  // namespace ataman
