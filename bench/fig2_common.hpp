// Shared driver for the Fig. 2 Pareto-space harnesses.
#pragma once

#include "bench/bench_common.hpp"

namespace ataman::bench {

inline int run_fig2(const BenchModel& m, Scale scale) {
  print_header("Fig. 2: accuracy vs normalized conv-MAC reduction (" +
                   m.name + ")",
               scale);

  PipelineOptions opts;
  opts.dse = dse_options_for(m.name, scale);
  AtamanPipeline pipe(&m.qmodel, &m.data.train, &m.data.test, opts);

  Stopwatch watch;
  const DseOutcome outcome = pipe.explore([](int done, int total) {
    std::printf("\r  DSE %d/%d configs", done, total);
    std::fflush(stdout);
  });
  std::printf("\n  swept %zu configs in %.1fs on %d threads "
              "(paper: >10,000 configs, <2h on 6 threads)\n",
              outcome.results.size(), outcome.wall_seconds,
              outcome.threads_used);
  std::printf("  prefix cache: %lld segment reuses; early exit: %d configs "
              "pruned, %lld image evals run (see docs/DSE.md)\n",
              static_cast<long long>(outcome.cache_hits),
              outcome.early_exits,
              static_cast<long long>(outcome.images_evaluated));

  // Scatter (all designs) + Pareto front, both axes of the figure.
  CsvWriter scatter(results_dir() + "/fig2_" + m.name + "_scatter.csv",
                    {"mac_reduction", "latency_reduction", "accuracy",
                     "is_pareto", "config"});
  std::vector<bool> on_front(outcome.results.size(), false);
  for (const int idx : outcome.pareto)
    on_front[static_cast<size_t>(idx)] = true;
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    const DseResult& r = outcome.results[i];
    scatter.row({CsvWriter::num(r.conv_mac_reduction),
                 CsvWriter::num(r.latency_reduction),
                 CsvWriter::num(r.accuracy), on_front[i] ? "1" : "0",
                 r.config.to_string()});
  }

  // Console rendering of the front (the figure's green triangles).
  std::printf("\n  exact design ('x' in the figure): accuracy %.4f\n",
              outcome.exact_accuracy);
  std::printf("  Pareto front (%zu points):\n", outcome.pareto.size());
  std::printf("    %-14s %-14s %-10s %s\n", "MAC-reduction",
              "latency-red.", "accuracy", "config");
  for (const int idx : outcome.pareto) {
    const DseResult& r = outcome.results[static_cast<size_t>(idx)];
    std::printf("    %-14.3f %-14.3f %-10.4f %s\n", r.conv_mac_reduction,
                r.latency_reduction, r.accuracy, r.config.to_string().c_str());
  }

  // §III headline statistics for this model.
  double best_iso = 0.0, best_5 = 0.0;
  for (const DseResult& r : outcome.results) {
    if (r.accuracy >= outcome.exact_accuracy - 1e-12)
      best_iso = std::max(best_iso, r.conv_mac_reduction);
    if (r.accuracy >= outcome.exact_accuracy - 0.05)
      best_5 = std::max(best_5, r.conv_mac_reduction);
  }
  std::printf("\n  max conv-MAC reduction @ iso-accuracy : %.1f%%"
              "  (paper avg across models: 44%%)\n",
              100 * best_iso);
  std::printf("  max conv-MAC reduction @ 5%% loss      : %.1f%%"
              "  (paper avg across models: 57%%)\n",
              100 * best_5);
  std::printf("  CSV: %s/fig2_%s_scatter.csv\n", results_dir().c_str(),
              m.name.c_str());
  (void)watch;
  return 0;
}

}  // namespace ataman::bench
