// Model zoo: the two CNNs evaluated in the paper (Table I) plus small test
// architectures, with a disk cache so training happens once per machine.
//
//   LeNet   — topology 3-2-2,  ≈4.5 M MAC ops  (paper: 4.5 M)
//   AlexNet — topology 5-2-2, ≈16.2 M MAC ops  (paper: 16.1 M)
//
// The paper's models are CIFAR-10-scale derivatives of the classic nets
// (Table I pins topology class and MAC count, not exact channel widths);
// channel widths here were chosen to match the published MAC counts within
// ~2% and to keep parameter counts plausible for the published flash use.
#pragma once

#include <string>

#include "src/data/synth_cifar.hpp"
#include "src/train/network.hpp"
#include "src/train/trainer.hpp"

namespace ataman {

ModelArch lenet_arch();
ModelArch alexnet_arch();
// Small 2-conv net used by tests and the quickstart example (fast).
ModelArch micronet_arch();
// Depthwise-separable CNN in the MLPerf-Tiny keyword-spotting shape
// (conv stem -> 4x [3x3 depthwise + 1x1 pointwise] -> global avgpool ->
// fc), scaled to the synthetic 32x32x3 dataset.
ModelArch dscnn_arch();
// MobileNetV2-style inverted-residual net (conv stem -> 3 inverted
// bottlenecks, two of them with residual add skip edges -> 1x1 head conv
// -> global avgpool -> fc), scaled to the synthetic 32x32x3 dataset. The
// zoo's DAG workload: exercises QAdd and the liveness buffer planner.
ModelArch mobilenetv2_arch();
// Visual-wakeword (person/no-person) model: dscnn-style depthwise
// backbone with a 2-logit head, trained on the binary SynthTask::kVww
// relabeling of the synthetic substrate (MLPerf-Tiny VWW shape).
ModelArch vww_arch();
// Dense bottleneck autoencoder for anomaly detection (MLPerf-Tiny
// ToyADMOS lineage): 3072 -> 64 -> 3072, linear (see the .cpp for why
// it is ReLU-free), trained with MSE reconstruction loss on all-normal
// data. Quantizes to the zoo's first scored (non-argmax) head — see
// TaskHead::kScore.
ModelArch ae_anomaly_arch();

struct ZooSpec {
  ModelArch arch;
  SynthCifarSpec data;
  TrainConfig train;
  uint64_t init_seed = 1234;
};

// Default zoo specs matching the paper setup (dscnn extends it to the
// depthwise-separable workload class).
ZooSpec lenet_spec();
ZooSpec alexnet_spec();
ZooSpec micronet_spec();
ZooSpec dscnn_spec();
ZooSpec mobilenetv2_spec();
ZooSpec vww_spec();
ZooSpec ae_anomaly_spec();

struct TrainedModel {
  ModelArch arch;
  Network net;
  // Float test metric: Top-1 on the test split, except for MSE-trained
  // autoencoders where it is the reconstruction-error rank AUC.
  double test_accuracy = 0.0;
  double train_accuracy = 0.0;
};

// Directory for cached artifacts: $ATAMAN_CACHE_DIR or ./artifacts.
std::string artifact_cache_dir();

// Loads the trained float model from cache, training (and caching) it if
// missing. Cache key covers architecture, dataset spec and train config.
TrainedModel get_or_train(const ZooSpec& spec,
                          const std::string& cache_dir = artifact_cache_dir());

// Force retrain without touching the cache (tests).
TrainedModel train_from_scratch(const ZooSpec& spec, bool verbose = true);

// Serialization (float weights + metadata).
void save_trained_model(const TrainedModel& model, const std::string& path);
TrainedModel load_trained_model(const ZooSpec& spec, const std::string& path);

}  // namespace ataman
