// Edge-case and robustness tests across kernels and engines: degenerate
// geometries, extreme-value accumulations (int32 overflow headroom), and
// worst-case quantization parameters.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/cmsisnn/smlad.hpp"
#include "src/common/error.hpp"
#include "src/common/math_util.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "src/unpack/unpacked_layer.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_input;
using testing::make_random_qconv;

TEST(EdgeCases, ConvOutputCollapsesToSinglePixel) {
  ConvGeom g;
  g.in_h = 3; g.in_w = 3; g.in_c = 2;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 0;
  ASSERT_EQ(g.out_h(), 1);
  ASSERT_EQ(g.out_w(), 1);
  const QConv2D conv = make_random_qconv(g, 1);
  const auto in = make_random_input(3 * 3 * 2, 2);
  std::vector<int8_t> a(4), b(4);
  conv2d_ref(conv, in, a);
  UnpackedConv::build(conv).run(in, b);
  EXPECT_EQ(a, b);
}

TEST(EdgeCases, StrideLargerThanKernel) {
  ConvGeom g;
  g.in_h = 9; g.in_w = 9; g.in_c = 3;
  g.out_c = 2; g.kernel = 2; g.stride = 3; g.pad = 0;
  const QConv2D conv = make_random_qconv(g, 3);
  const auto in = make_random_input(9 * 9 * 3, 4);
  std::vector<int8_t> a(static_cast<size_t>(g.positions()) * 2);
  std::vector<int8_t> b(a.size());
  conv2d_ref(conv, in, a);
  const PackedWeights packed =
      PackedWeights::pack(conv.weights, g.out_c, g.patch_size());
  packed_conv2d(conv, packed, in, b);
  EXPECT_EQ(a, b);
}

TEST(EdgeCases, PaddingLargerThanKernelReach) {
  // pad == kernel-1 on a small input: most taps are padding.
  ConvGeom g;
  g.in_h = 2; g.in_w = 2; g.in_c = 2;
  g.out_c = 3; g.kernel = 3; g.stride = 1; g.pad = 2;
  const QConv2D conv = make_random_qconv(g, 5);
  const auto in = make_random_input(2 * 2 * 2, 6);
  std::vector<int8_t> a(static_cast<size_t>(g.positions()) * 3);
  std::vector<int8_t> b(a.size());
  conv2d_ref(conv, in, a);
  UnpackedConv::build(conv).run(in, b);
  EXPECT_EQ(a, b);
}

TEST(EdgeCases, WorstCaseAccumulatorStaysInInt32) {
  // Largest supported layer geometry at extreme values: the accumulation
  // must match an int64 model exactly (no int32 overflow). AlexNet's
  // widest patch is 864 (96ch x 3x3); test 1024 with the most extreme
  // operand values.
  const int patch = 1024;
  QDense fc;
  fc.in_dim = patch;
  fc.out_dim = 1;
  fc.in = {0.05f, -128};  // zero point at the extreme
  fc.w_scale = 0.01f;
  fc.weights.assign(static_cast<size_t>(patch), -127);
  fc.bias = {1 << 20};
  fc.out = {0.5f, 0};
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  std::vector<int8_t> in(static_cast<size_t>(patch), 127);
  // int64 ground truth of the accumulation.
  int64_t acc64 = fc.bias[0];
  for (int i = 0; i < patch; ++i)
    acc64 += (127 - (-128)) * static_cast<int64_t>(-127);
  ASSERT_LT(std::abs(acc64), (int64_t{1} << 31))
      << "geometry must fit int32 by design";

  std::vector<int8_t> out(1);
  dense_ref(fc, in, out);
  const int32_t scaled = multiply_by_quantized_multiplier(
                             static_cast<int32_t>(acc64), fc.requant) +
                         fc.out.zero_point;
  EXPECT_EQ(out[0], saturate_int8(scaled));
}

TEST(EdgeCases, SmladExtremesMatchScalarInt64) {
  // Most negative weights/activations through the packed path.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int8_t w1 = trial % 2 ? -128 : 127;
    const int8_t w2 = trial % 3 ? -128 : 127;
    const auto a1 = static_cast<int16_t>(rng.next_int(-255, 255));
    const auto a2 = static_cast<int16_t>(rng.next_int(-255, 255));
    const int32_t acc = rng.next_int(-(1 << 28), 1 << 28);
    const int64_t want64 = static_cast<int64_t>(acc) +
                           static_cast<int64_t>(w1) * a1 +
                           static_cast<int64_t>(w2) * a2;
    ASSERT_LT(std::abs(want64), (int64_t{1} << 31));
    EXPECT_EQ(smlad(pack_weight_pair(w2, w1), pack_q15_pair(a2, a1), acc),
              static_cast<int32_t>(want64));
  }
}

TEST(EdgeCases, RequantSaturationClampsToActRange) {
  // Enormous accumulator -> saturated, clamped output.
  ConvGeom g;
  g.in_h = 3; g.in_w = 3; g.in_c = 1;
  g.out_c = 1; g.kernel = 1; g.stride = 1; g.pad = 0;
  QConv2D conv = make_random_qconv(g, 8);
  conv.weights = {127};
  conv.bias = {2'000'000'000};  // dominates everything
  conv.requant = {quantize_multiplier(0.9)};
  conv.act_min = -100;
  conv.act_max = 100;
  const auto in = make_random_input(9, 9);
  std::vector<int8_t> out(9);
  conv2d_ref(conv, in, out);
  for (const int8_t v : out) EXPECT_EQ(v, 100);  // act_max clamp
}

TEST(EdgeCases, SingleChannelSingleOperandLayer) {
  // 1x1 conv, 1 input channel: patch of exactly one operand (no pairs,
  // one single) — the smallest possible unpacked program.
  ConvGeom g;
  g.in_h = 4; g.in_w = 4; g.in_c = 1;
  g.out_c = 1; g.kernel = 1; g.stride = 1; g.pad = 0;
  const QConv2D conv = make_random_qconv(g, 10);
  const UnpackedConv u = UnpackedConv::build(conv);
  EXPECT_EQ(u.static_pairs(), 0);
  EXPECT_EQ(u.static_singles(), 1);
  const auto in = make_random_input(16, 11);
  std::vector<int8_t> a(16), b(16);
  conv2d_ref(conv, in, a);
  u.run(in, b);
  EXPECT_EQ(a, b);
}

TEST(EdgeCases, MaskAllOperandsOfOneChannelOnly) {
  ConvGeom g;
  g.in_h = 5; g.in_w = 5; g.in_c = 2;
  g.out_c = 3; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 12);
  std::vector<uint8_t> skip(static_cast<size_t>(g.weight_count()), 0);
  // Kill channel 1 entirely.
  for (int i = 0; i < g.patch_size(); ++i)
    skip[static_cast<size_t>(g.patch_size() + i)] = 1;
  const auto in = make_random_input(5 * 5 * 2, 13);
  std::vector<int8_t> a(static_cast<size_t>(g.positions()) * 3);
  std::vector<int8_t> b(a.size());
  conv2d_ref(conv, in, a, skip.data());
  UnpackedConv::build(conv, skip.data()).run(in, b);
  EXPECT_EQ(a, b);
  // Channels 0 and 2 must be unaffected vs the fully exact run.
  std::vector<int8_t> exact(a.size());
  conv2d_ref(conv, in, exact);
  for (int pos = 0; pos < g.positions(); ++pos) {
    EXPECT_EQ(a[static_cast<size_t>(pos) * 3 + 0],
              exact[static_cast<size_t>(pos) * 3 + 0]);
    EXPECT_EQ(a[static_cast<size_t>(pos) * 3 + 2],
              exact[static_cast<size_t>(pos) * 3 + 2]);
  }
}

}  // namespace
}  // namespace ataman
