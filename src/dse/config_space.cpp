#include "src/dse/config_space.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace ataman {

namespace {

std::vector<double> tau_grid(const DseOptions& o) {
  check(o.tau_step > 0.0 && o.tau_max >= o.tau_min && o.tau_min >= 0.0,
        "invalid tau grid");
  std::vector<double> grid;
  for (double t = o.tau_min; t <= o.tau_max + 1e-12; t += o.tau_step)
    grid.push_back(t);
  return grid;
}

std::vector<ApproxConfig> uniform_by_subset(int approx_count,
                                            const DseOptions& o) {
  const std::vector<double> grid = tau_grid(o);
  std::vector<ApproxConfig> configs;
  configs.push_back(ApproxConfig::exact(approx_count));
  const uint32_t subsets = 1u << approx_count;
  for (uint32_t mask = 1; mask < subsets; ++mask) {
    for (const double tau : grid) {
      ApproxConfig c = ApproxConfig::exact(approx_count);
      for (int l = 0; l < approx_count; ++l)
        if (mask & (1u << l)) c.tau[static_cast<size_t>(l)] = tau;
      configs.push_back(std::move(c));
    }
  }
  return configs;
}

std::vector<ApproxConfig> per_layer_grid(int approx_count,
                                         const DseOptions& o) {
  // Per-layer levels: "exact" plus `per_layer_levels` log-spaced taus.
  check(o.per_layer_levels >= 1, "need at least one tau level");
  std::vector<double> levels;
  levels.push_back(-1.0);  // exact
  const double lo = std::max(o.tau_min, o.tau_step / 4.0);
  const double hi = std::max(o.tau_max, lo * (1.0 + 1e-9));
  for (int i = 0; i < o.per_layer_levels; ++i) {
    const double f = o.per_layer_levels == 1
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(o.per_layer_levels - 1);
    levels.push_back(lo * std::pow(hi / lo, f));
  }

  const size_t n_levels = levels.size();
  size_t total = 1;
  for (int l = 0; l < approx_count; ++l) total *= n_levels;

  std::vector<ApproxConfig> configs;
  configs.reserve(total);
  for (size_t code = 0; code < total; ++code) {
    ApproxConfig c;
    c.tau.resize(static_cast<size_t>(approx_count));
    size_t rest = code;
    for (int l = 0; l < approx_count; ++l) {
      c.tau[static_cast<size_t>(l)] = levels[rest % n_levels];
      rest /= n_levels;
    }
    configs.push_back(std::move(c));
  }
  return configs;  // code 0 is the all-exact config
}

}  // namespace

std::vector<ApproxConfig> generate_configs(int approx_count,
                                           const DseOptions& options) {
  check(approx_count >= 0, "negative approximable-layer count");
  check(approx_count <= 24, "subset enumeration limited to 24 approximable layers");
  // Zero approximable layers: the design space is the single exact
  // config (an empty tau vector), so the DSE degenerates to one
  // baseline evaluation instead of failing.
  if (approx_count == 0) return {ApproxConfig::exact(0)};
  std::vector<ApproxConfig> configs =
      options.mode == DseMode::kUniformTauBySubset
          ? uniform_by_subset(approx_count, options)
          : per_layer_grid(approx_count, options);

  if (options.max_configs > 0 &&
      static_cast<int>(configs.size()) > options.max_configs) {
    // Deterministic subsample; always keep the exact config at slot 0.
    Rng rng(0xD5Eu);
    std::vector<ApproxConfig> sampled;
    sampled.push_back(configs.front());
    std::vector<int> order(configs.size() - 1);
    for (size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<int>(i + 1);
    rng.shuffle(order);
    for (int i = 0; i + 1 < options.max_configs; ++i)
      sampled.push_back(configs[static_cast<size_t>(order[static_cast<size_t>(i)])]);
    configs = std::move(sampled);
  }
  return configs;
}

}  // namespace ataman
