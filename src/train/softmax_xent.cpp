#include "src/train/softmax_xent.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace ataman {

LossResult softmax_cross_entropy(const FTensor& logits,
                                 std::span<const int> labels) {
  check(logits.rank() == 2, "logits must be [B, classes]");
  const int batch = logits.dim(0);
  const int classes = logits.dim(1);
  check(static_cast<int>(labels.size()) == batch, "labels/batch mismatch");

  LossResult result;
  result.dlogits = FTensor({batch, classes});
  const float inv_batch = 1.0f / static_cast<float>(batch);

  for (int b = 0; b < batch; ++b) {
    const float* row = logits.item(b);
    float* drow = result.dlogits.item(b);
    const int label = labels[static_cast<size_t>(b)];
    check(label >= 0 && label < classes, "label out of range");

    const float maxv = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (int j = 0; j < classes; ++j) denom += std::exp(row[j] - maxv);
    const double log_denom = std::log(denom);

    result.loss += -(row[label] - maxv - log_denom) * inv_batch;
    int argmax = 0;
    for (int j = 1; j < classes; ++j)
      if (row[j] > row[argmax]) argmax = j;
    if (argmax == label) ++result.correct;

    for (int j = 0; j < classes; ++j) {
      const float p =
          static_cast<float>(std::exp(row[j] - maxv - log_denom));
      drow[j] = (p - (j == label ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  return result;
}

std::vector<float> softmax(std::span<const float> logits) {
  check(!logits.empty(), "softmax of empty vector");
  const float maxv = *std::max_element(logits.begin(), logits.end());
  std::vector<float> out(logits.size());
  double denom = 0.0;
  for (size_t j = 0; j < logits.size(); ++j) {
    out[j] = std::exp(logits[j] - maxv);
    denom += out[j];
  }
  for (auto& v : out) v = static_cast<float>(v / denom);
  return out;
}

}  // namespace ataman
