// Adaptive early-exit accuracy evaluation for the DSE sweep.
//
// The sweep's accuracy axis only matters near the Pareto front: a config
// whose accuracy provably falls below every config with at least as much
// MAC reduction can never be a front member, so finishing its full image
// budget is wasted work. The adaptive sweep evaluates images in
// deterministic blocks and, at each block boundary, abandons configs
// whose Wilson-projected best-case final accuracy sits below the
// Wilson-projected worst-case accuracy of some config with >= reduction
// (minus a safety margin). Abandoned configs keep their partial-sample
// accuracy.
//
// Two hard guarantees (tests/test_dse_fast.cpp pins both):
//  * config 0 — the all-exact baseline — is never abandoned;
//  * every Pareto-front member of the returned accuracies is fully
//    evaluated: after the block loop, any front member with a partial
//    sample is completed and the front recomputed until it is stable.
//
// With exact_sweep = true the block loop degenerates to one full pass
// and the result is bitwise identical to the legacy per-config sweep.
// See docs/DSE.md for when fast-mode results can differ from it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dse/prefix_cache.hpp"

namespace ataman {

// Wilson score interval for a binomial proportion with `hits` successes
// in `n` trials at z-score `z`; n == 0 yields the vacuous [0, 1].
double wilson_lower(int64_t hits, int64_t n, double z);
double wilson_upper(int64_t hits, int64_t n, double z);

// Mirrors the fast-sweep fields of DseOptions (src/dse/config_space.hpp
// is the user-facing source of truth for the defaults and their
// documentation; run_dse copies them over).
struct AdaptiveSweepOptions {
  bool exact_sweep = false;  // evaluate every config on every image
  int block_images = 16;     // images per block (exit decisions between)
  double z = 1.96;           // Wilson z-score (~95% interval)
  double margin = 0.01;      // extra accuracy slack before abandoning
};

struct AdaptiveSweepResult {
  std::vector<double> accuracy;       // per config; partial for early exits
  std::vector<int> images_evaluated;  // per config
  int64_t cache_hits = 0;             // prefix segments reused
  int64_t total_images = 0;           // sum of images_evaluated
  int early_exits = 0;                // configs left with a partial sample
};

using SweepProgress = std::function<void(int done, int total)>;

// Per-config static metrics the exit test needs (from the static
// evaluator). A config is only abandoned in favour of a dominator with
// >= MAC reduction AND <= cycles (and provably higher accuracy), so an
// abandoned config is irrelevant to the Fig. 2 front and to
// select_design at any accuracy-loss budget: whenever it would
// qualify, its dominator qualifies with <= cycles. The one deliberate
// exception is a *binding* flash capacity — a pruned config could have
// been a smaller-flash fallback; select_design never returns partial
// results (so no budget is ever violated), and flash-constrained
// selection should use DseOptions::exact_sweep.
struct SweepStatics {
  std::vector<double> mac_reduction;  // Fig. 2 x-axis, maximize
  std::vector<int64_t> cycles;        // selection objective, minimize
};

// Blockwise accuracy sweep over `cache`'s config space; config 0 must
// be the all-exact baseline. Deterministic for any thread count.
AdaptiveSweepResult adaptive_accuracy_sweep(
    const PrefixCache& cache, const SweepStatics& statics,
    const AdaptiveSweepOptions& options,
    const SweepProgress& progress = nullptr);

}  // namespace ataman
