// Fixed-point requantization: correctness against double-precision
// arithmetic and the documented edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/fixed_point.hpp"
#include "src/common/rng.hpp"

namespace ataman {
namespace {

TEST(QuantizeMultiplier, ZeroEncodesAsZero) {
  const auto qm = quantize_multiplier(0.0);
  EXPECT_EQ(qm.mult, 0);
  EXPECT_EQ(multiply_by_quantized_multiplier(12345, qm), 0);
}

TEST(QuantizeMultiplier, SignificandInRange) {
  for (const double m : {1e-6, 0.001, 0.3, 0.5, 0.99, 1.0, 7.5, 1000.0}) {
    const auto qm = quantize_multiplier(m);
    EXPECT_GE(qm.mult, 1 << 30) << "m=" << m;
    EXPECT_LE(static_cast<int64_t>(qm.mult), (1LL << 31) - 1) << "m=" << m;
  }
}

TEST(QuantizeMultiplier, RoundingCarryAtPowerOfTwoBoundary) {
  // 0.5 - eps rounds up to exactly 2^31 internally and must renormalize.
  const auto qm = quantize_multiplier(std::nextafter(0.5, 0.0));
  EXPECT_GE(qm.mult, 1 << 30);
}

TEST(QuantizeMultiplier, NegativeRejected) {
  EXPECT_THROW(quantize_multiplier(-0.5), Error);
}

TEST(RoundingDivideByPot, RoundsToNearestHalfAwayFromZero) {
  // gemmlowp semantics: ties round away from zero.
  EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(rounding_divide_by_pot(4, 2), 1);
  EXPECT_EQ(rounding_divide_by_pot(6, 2), 2);    // 1.5 -> 2
  EXPECT_EQ(rounding_divide_by_pot(-6, 2), -2);  // -1.5 -> -2
  EXPECT_EQ(rounding_divide_by_pot(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(rounding_divide_by_pot(-7, 2), -2);  // -1.75 -> -2
  EXPECT_EQ(rounding_divide_by_pot(100, 0), 100);
}

TEST(SaturatingRoundingDoublingHighMul, OverflowCase) {
  const int32_t min32 = std::numeric_limits<int32_t>::min();
  EXPECT_EQ(saturating_rounding_doubling_high_mul(min32, min32),
            std::numeric_limits<int32_t>::max());
}

TEST(SaturatingRoundingDoublingHighMul, Identity) {
  // Multiplying by 2^30 == multiplier 0.5 in Q31 doubling form.
  EXPECT_EQ(saturating_rounding_doubling_high_mul(1000, 1 << 30), 500);
}

// Property: integer requantization matches round(x * m) within 1 ULP for
// a wide range of multipliers and accumulator values.
class RequantProperty : public ::testing::TestWithParam<double> {};

TEST_P(RequantProperty, MatchesDoubleArithmetic) {
  const double m = GetParam();
  const auto qm = quantize_multiplier(m);
  Rng rng(static_cast<uint64_t>(m * 1e9) + 17);
  for (int trial = 0; trial < 2000; ++trial) {
    const int32_t x = rng.next_int(-2'000'000, 2'000'000);
    const int32_t got = multiply_by_quantized_multiplier(x, qm);
    const double want = std::nearbyint(static_cast<double>(x) * m);
    EXPECT_NEAR(static_cast<double>(got), want, 1.0)
        << "x=" << x << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, RequantProperty,
                         ::testing::Values(1e-5, 3.1e-4, 0.00371, 0.0127,
                                           0.0625, 0.1, 0.24999, 0.5, 0.75,
                                           0.999999));

// Multipliers above 1 (positive shift) arise from QAdd requant ratios —
// a residual add whose output scale is much smaller than an input scale.
// For accumulators whose pre-shift fits int32 the result must still match
// double arithmetic.
TEST(Requant, LargeRatioPositiveShiftMatchesDoubleInRange) {
  for (const double m : {1.5, 12.5, 300.0, 1.0e6}) {
    const auto qm = quantize_multiplier(m);
    ASSERT_GT(qm.shift, 0) << "m=" << m;
    const auto bound =
        static_cast<int32_t>(std::numeric_limits<int32_t>::max() >> qm.shift);
    Rng rng(static_cast<uint64_t>(m) + 99);
    for (int trial = 0; trial < 2000; ++trial) {
      const int32_t x = rng.next_int(-bound, bound);
      const int32_t got = multiply_by_quantized_multiplier(x, qm);
      const double want = std::nearbyint(static_cast<double>(x) * m);
      EXPECT_NEAR(static_cast<double>(got), want, 2.0)
          << "x=" << x << " m=" << m;
    }
  }
}

// Regression for the int32 pre-shift UB: with shift == 30 (admitted by
// quantize_multiplier, reachable via extreme QAdd scale ratios) the old
// `x * (1 << left_shift)` was signed-overflow UB for any |x| > 1 — this
// test trips it under the ASan/UBSan CI job. The fix pre-shifts in int64
// and saturates to int32, so overflowing accumulators now requantize to
// the saturated value deterministically.
TEST(Requant, MaxShiftPreShiftSaturatesInsteadOfOverflowing) {
  const auto qm = quantize_multiplier(static_cast<double>(1 << 29));
  ASSERT_EQ(qm.shift, 30);
  const int32_t max32 = std::numeric_limits<int32_t>::max();
  const int32_t min32 = std::numeric_limits<int32_t>::min();
  // Overflowing pre-shifts saturate (old path: UB).
  EXPECT_EQ(multiply_by_quantized_multiplier(1 << 20, qm),
            saturating_rounding_doubling_high_mul(max32, qm.mult));
  EXPECT_EQ(multiply_by_quantized_multiplier(-(1 << 20), qm),
            saturating_rounding_doubling_high_mul(min32, qm.mult));
  // In-range pre-shifts stay exact.
  EXPECT_EQ(multiply_by_quantized_multiplier(0, qm), 0);
  EXPECT_EQ(multiply_by_quantized_multiplier(1, qm), 1 << 29);
  EXPECT_EQ(multiply_by_quantized_multiplier(-1, qm), -(1 << 29));
}

TEST(Requant, TypicalConvMultiplierExactSpotChecks) {
  // in_scale * w_scale / out_scale of a real layer.
  const auto qm = quantize_multiplier((1.0 / 255.0) * 0.01 / 0.05);
  EXPECT_EQ(multiply_by_quantized_multiplier(0, qm), 0);
  EXPECT_EQ(multiply_by_quantized_multiplier(12750, qm), 10);
  EXPECT_EQ(multiply_by_quantized_multiplier(-12750, qm), -10);
}

}  // namespace
}  // namespace ataman
