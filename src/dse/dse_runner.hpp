// DSE driver: sweeps the configuration space in parallel (the paper ran
// its exhaustive exploration offline on 6 host threads), extracts the
// accuracy/MAC-reduction Pareto front (Fig. 2), and selects deployment
// configs for user accuracy-loss thresholds (Table II's 0%/5%/10%).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/dse/config_space.hpp"
#include "src/dse/evaluator.hpp"
#include "src/dse/pareto.hpp"

namespace ataman {

struct DseOutcome {
  std::vector<DseResult> results;  // results[0] is the all-exact config
  std::vector<int> pareto;         // indices into results (ascending x)
  double exact_accuracy = 0.0;     // accuracy of results[0]
  int64_t baseline_cycles = 0;     // packed exact engine cycles
  double wall_seconds = 0.0;
  int threads_used = 0;

  // Fast-sweep statistics (see docs/DSE.md). `cache_hits` counts
  // layer-segment executions served from the prefix cache instead of
  // being recomputed; `images_evaluated` is the total number of
  // per-config image inferences actually run (the exhaustive cost would
  // be results.size() x the eval budget); `early_exits` counts configs
  // whose reported accuracy is a partial sample because the Wilson test
  // abandoned them (always 0 with DseOptions::exact_sweep, and never
  // includes results[0] or a Pareto member — those are completed before
  // the outcome is returned). All three are serialized by dse_io
  // (format version 2; absent fields load as 0 from version-1 files).
  int64_t cache_hits = 0;
  int64_t images_evaluated = 0;
  int early_exits = 0;
};

using DseProgress = std::function<void(int done, int total)>;

// Sweep an explicit config list. The sweep runs through the layer-prefix
// activation cache with adaptive early exit by default when the
// evaluator's accuracy backend is the resumable reference engine;
// options.exact_sweep = true keeps the cache but evaluates every config
// on the full image budget (bitwise identical to per-config
// ConfigEvaluator::evaluate). Non-resumable accuracy backends fall back
// to the legacy per-config sweep.
DseOutcome run_dse(const ConfigEvaluator& evaluator,
                   const std::vector<ApproxConfig>& configs,
                   const DseOptions& options,
                   const DseProgress& progress = nullptr);

// As above with default DseOptions (fast adaptive sweep).
DseOutcome run_dse(const ConfigEvaluator& evaluator,
                   const std::vector<ApproxConfig>& configs,
                   const DseProgress& progress = nullptr);

// Convenience: generate + sweep in one call.
DseOutcome run_dse(const ConfigEvaluator& evaluator, int conv_count,
                   const DseOptions& options,
                   const DseProgress& progress = nullptr);

// Latency-optimized design meeting `accuracy >= exact - max_loss`
// and fitting `flash_capacity` (bytes; <=0 disables the check).
// Early-exited results (DseResult::partial_eval) are never selected —
// their accuracies are partial samples. `max_stream_energy_mj` (<= 0
// disables) additionally caps the steady-state streaming
// energy-per-frame row; when active it rejects results without one
// (stream_energy_mj_per_frame <= 0 means the sweep did not model
// streaming — an unmodeled row must not pass an energy budget).
// Returns results index, or -1 when nothing qualifies.
int select_design(const DseOutcome& outcome, double max_accuracy_loss,
                  int64_t flash_capacity = 0,
                  double max_stream_energy_mj = 0.0);

}  // namespace ataman
