#include "src/mcu/stream_plan.hpp"

#include <algorithm>
#include <array>

#include "src/common/error.hpp"

namespace ataman {

namespace {

// Ceiling division for non-negative a, positive b.
inline int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Propagate one input band through a windowed layer (conv / depthwise /
// pool). Returns the invalid band when the shift misaligns with the
// layer stride or the surviving window range is empty. See the header
// for the derivation of the lo/hi formulas.
ColumnBand propagate_window(const ColumnBand& in, int kernel, int stride,
                            int pad, int out_w) {
  ColumnBand out;
  if (!in.valid() || in.shift % stride != 0) return out;
  // When in.hi + pad < kernel no window fits inside the band at all
  // (also keeps the floor division below on non-negative ground).
  if (in.hi + pad < kernel) return out;
  const int out_shift = in.shift / stride;
  int lo = ceil_div(in.lo + pad, stride);
  int hi = (in.hi + pad - kernel) / stride + 1;
  lo = std::max(lo, 0);
  hi = std::min(hi, out_w - out_shift);  // splice source must exist
  if (hi <= lo) return out;
  out.lo = lo;
  out.hi = hi;
  out.shift = out_shift;
  return out;
}

}  // namespace

StreamPlan plan_stream(const QModel& model,
                       std::span<const int> recent_strides,
                       int available_lookback) {
  check(model.in_w >= 1, "plan_stream: model has no width axis");
  const int depth = std::min<int>(
      {static_cast<int>(recent_strides.size()), available_lookback,
       kMaxStreamLookback});
  for (int i = 0; i < depth; ++i) {
    check(recent_strides[static_cast<size_t>(i)] >= 1 &&
              recent_strides[static_cast<size_t>(i)] <= model.in_w,
          "plan_stream: frame stride out of [1, in_w]");
  }

  StreamPlan plan;
  plan.recent_strides.assign(recent_strides.begin(),
                             recent_strides.begin() + depth);
  plan.full_macs = model.mac_count();
  plan.layers.resize(model.layers.size());

  // Per-tensor bands, indexed [tensor][d - 1] for lookback d in
  // [1, depth]. Tensor 0 is the network input.
  const size_t tensor_count = model.layers.size() + 1;
  std::vector<std::array<ColumnBand, kMaxStreamLookback>> bands(tensor_count);
  {
    int shift = 0;
    for (int d = 1; d <= depth; ++d) {
      shift += recent_strides[static_cast<size_t>(d - 1)];
      if (shift < model.in_w) {
        bands[0][static_cast<size_t>(d - 1)] = {0, model.in_w - shift, shift};
      }
    }
  }

  for (size_t l = 0; l < model.layers.size(); ++l) {
    const QLayer& layer = model.layers[l];
    StreamLayerPlan& lp = plan.layers[l];
    const std::vector<int> ins = model.inputs_of(static_cast<int>(l));
    const auto& in_bands = bands[static_cast<size_t>(ins[0])];
    auto& out_bands = bands[l + 1];

    // Window geometry per kind; dense/QAdd leave `windowed` false and
    // their output bands invalid (default-constructed).
    int kernel = 0, stride = 1, pad = 0, out_w = 0;
    bool windowed = false;
    bool spliceable = false;  // conv/depthwise only; pools recompute
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      kernel = conv->geom.kernel;
      stride = conv->geom.stride;
      pad = conv->geom.pad;
      out_w = conv->geom.out_w();
      lp.out_rows = conv->geom.out_h();
      lp.out_ch = conv->geom.out_c;
      windowed = spliceable = true;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      kernel = dw->kernel;
      stride = dw->stride;
      pad = dw->pad;
      out_w = dw->out_w();
      lp.out_rows = dw->out_h();
      lp.out_ch = dw->channels;
      windowed = spliceable = true;
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      kernel = pool->kernel;
      stride = pool->stride;
      out_w = pool->out_w();
      lp.out_rows = pool->out_h();
      lp.out_ch = pool->channels;
      windowed = true;
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      kernel = pool->kernel;
      stride = pool->stride;
      out_w = pool->out_w();
      lp.out_rows = pool->out_h();
      lp.out_ch = pool->channels;
      windowed = true;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      lp.out_ch = fc->out_dim;
    } else if (const auto* add = std::get_if<QAdd>(&layer)) {
      lp.out_rows = add->h;
      lp.out_ch = add->channels;
      lp.out_cols = add->w;
    }

    if (windowed) {
      lp.out_cols = out_w;
      for (int d = 1; d <= depth; ++d) {
        out_bands[static_cast<size_t>(d - 1)] = propagate_window(
            in_bands[static_cast<size_t>(d - 1)], kernel, stride, pad, out_w);
      }
    }

    lp.total_positions =
        static_cast<int64_t>(lp.out_rows) * std::max(lp.out_cols, 1);
    lp.recomputed_cols = std::max(lp.out_cols, 1);
    if (spliceable) {
      // Smallest valid lookback has suffered the least halo erosion and
      // therefore splices the widest band.
      for (int d = 1; d <= depth; ++d) {
        const ColumnBand& b = out_bands[static_cast<size_t>(d - 1)];
        if (!b.valid()) continue;
        lp.spliced = true;
        lp.lookback = d;
        lp.splice_lo = b.lo;
        lp.splice_hi = b.hi;
        lp.splice_shift = b.shift;
        lp.recomputed_cols = lp.out_cols - (b.hi - b.lo);
        break;
      }
    }
    lp.recomputed_positions =
        static_cast<int64_t>(lp.recomputed_cols) * lp.out_rows;

    const OpDescriptor op = describe_layer(layer);
    if (op.macs > 0) {
      // conv/depthwise/dense MACs scale with positions; pools and QAdd
      // carry none. (Dense: total_positions == 1, full recompute.)
      lp.recomputed_macs = op.macs / lp.total_positions *
                           lp.recomputed_positions;
    }
    plan.frame_macs += lp.recomputed_macs;
    if (lp.spliced) {
      plan.spliced_elems += static_cast<int64_t>(lp.splice_hi - lp.splice_lo) *
                            lp.out_rows * lp.out_ch;
    }
  }
  return plan;
}

StreamPlan plan_stream_steady(const QModel& model, int stride_cols) {
  const std::array<int, kMaxStreamLookback> strides = {
      stride_cols, stride_cols, stride_cols, stride_cols};
  return plan_stream(model, strides, kMaxStreamLookback);
}

}  // namespace ataman
