#include "src/nn/engine.hpp"

#include <algorithm>

#include "src/core/eval.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

namespace {

// Span-out dispatch of one layer through its reference kernel. `in_b` is
// the second QAdd operand (unused for every other kind).
void run_layer_into(const QLayer& layer, std::span<const int8_t> in_a,
                    std::span<const int8_t> in_b, std::span<int8_t> out,
                    const uint8_t* skip) {
  if (const auto* conv = std::get_if<QConv2D>(&layer)) {
    conv2d_ref(*conv, in_a, out, skip);
  } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
    depthwise_conv2d_ref(*dw, in_a, out, skip);
  } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
    maxpool_ref(*pool, in_a, out);
  } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
    avgpool_ref(*pool, in_a, out);
  } else if (const auto* fc = std::get_if<QDense>(&layer)) {
    dense_ref(*fc, in_a, out);
  } else if (const auto* add = std::get_if<QAdd>(&layer)) {
    qadd_ref(*add, in_a, in_b, out);
  }
}

}  // namespace

RefEngine::RefEngine(const QModel* model)
    : InferenceEngine(model, "ref"), plan_(plan_activations(*model)) {}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image) const {
  return run(image, default_mask_);
}

int RefEngine::classify(std::span<const uint8_t> image) const {
  return classify(image, default_mask_);
}

std::vector<int8_t> RefEngine::run(std::span<const uint8_t> image,
                                   const SkipMask* mask,
                                   const ConvTap& tap) const {
  return run_layers(0, quantize_input(image), mask, tap);
}

std::vector<int8_t> RefEngine::run_from(
    int layer_begin, std::span<const int8_t> activations) const {
  return run_from(layer_begin, activations, default_mask_);
}

std::vector<int8_t> RefEngine::run_from(int layer_begin,
                                        std::span<const int8_t> activations,
                                        const SkipMask* mask,
                                        const ConvTap& tap) const {
  return run_layers(layer_begin,
                    std::vector<int8_t>(activations.begin(), activations.end()),
                    mask, tap);
}

std::vector<int8_t> RefEngine::run_layers(int layer_begin,
                                          std::vector<int8_t> act,
                                          const SkipMask* mask,
                                          const ConvTap& tap) const {
  const int layer_count = static_cast<int>(model().layers.size());
  check(layer_begin >= 0 && layer_begin <= layer_count,
        "run_from layer index out of range");
  check(model().linear_boundary(layer_begin),
        "run_from must resume at a linear boundary of the DAG (layer " +
            std::to_string(layer_begin) + " is crossed by a skip edge)");
  if (mask != nullptr) mask->validate(model());
  check(static_cast<int64_t>(act.size()) ==
            model().tensor_elems(layer_begin),
        "run_from activation size mismatch at layer " +
            std::to_string(layer_begin));

  // Slot-backed tensor storage from the shared liveness plan: tensor t
  // occupies its assigned slot during [def, last_use], and the plan
  // guarantees a step's output slot never aliases a live input. On a
  // chain this is exactly the historical two-buffer ping-pong.
  std::vector<std::vector<int8_t>> slots(plan_.slot_elems.size());
  auto tensor_span = [&](int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  {
    const std::span<int8_t> entry = tensor_span(layer_begin);
    std::copy(act.begin(), act.end(), entry.begin());
  }

  int approx_ordinal = 0;
  for (int l = 0; l < layer_begin; ++l) {
    if (describe_layer(model().layers[static_cast<size_t>(l)]).skippable)
      ++approx_ordinal;
  }
  for (int l = layer_begin; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const std::span<const int8_t> in_a = tensor_span(ins[0]);
    const std::span<const int8_t> in_b =
        ins.size() > 1 ? std::span<const int8_t>(tensor_span(ins[1]))
                       : std::span<const int8_t>();
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (tap) tap(approx_ordinal, layer, in_a);
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    run_layer_into(layer, in_a, in_b, tensor_span(l + 1), skip);
  }
  const std::span<const int8_t> out = tensor_span(layer_count);
  return std::vector<int8_t>(out.begin(), out.end());
}

void RefEngine::run_batch(
    std::span<const std::span<const uint8_t>> images,
    std::vector<std::vector<int8_t>>& logits_out) const {
  check_batch_nonempty(images);
  const SkipMask* mask = default_mask_;
  if (mask != nullptr) mask->validate(model());
  const size_t batch = images.size();

  // Per-image activation buffers, advanced layer-major: layer l runs over
  // every image before layer l+1 starts. Each image's arithmetic is the
  // untouched per-image reference kernel, so batched logits are bitwise
  // identical to run() by construction; the batch only changes the order
  // in which (layer, image) pairs execute, keeping each layer's weights
  // hot across the whole batch.
  // Per-image slot sets from the shared liveness plan (layer-major, so
  // every image's DAG state advances in lock step).
  const size_t slot_count = plan_.slot_elems.size();
  std::vector<std::vector<std::vector<int8_t>>> slots(batch);
  auto tensor_span = [&](size_t b, int t) -> std::span<int8_t> {
    const ActivationPlan::Tensor& info =
        plan_.tensors[static_cast<size_t>(t)];
    std::vector<int8_t>& slot = slots[b][static_cast<size_t>(info.slot)];
    if (slot.empty())
      slot.resize(static_cast<size_t>(
          plan_.slot_elems[static_cast<size_t>(info.slot)]));
    return std::span<int8_t>(slot.data(), static_cast<size_t>(info.elems));
  };
  for (size_t b = 0; b < batch; ++b) {
    slots[b].resize(slot_count);
    const std::vector<int8_t> in = quantize_input(images[b]);
    const std::span<int8_t> entry = tensor_span(b, 0);
    std::copy(in.begin(), in.end(), entry.begin());
  }

  int approx_ordinal = 0;
  const int layer_count = static_cast<int>(model().layers.size());
  for (int l = 0; l < layer_count; ++l) {
    const QLayer& layer = model().layers[static_cast<size_t>(l)];
    const std::vector<int> ins = model().inputs_of(l);
    const uint8_t* skip = nullptr;
    if (describe_layer(layer).skippable) {
      if (mask != nullptr &&
          approx_ordinal < static_cast<int>(mask->masks.size()) &&
          !mask->masks[static_cast<size_t>(approx_ordinal)].empty()) {
        skip = mask->masks[static_cast<size_t>(approx_ordinal)].data();
      }
      ++approx_ordinal;
    }
    for (size_t b = 0; b < batch; ++b) {
      const std::span<const int8_t> in_a = tensor_span(b, ins[0]);
      const std::span<const int8_t> in_b =
          ins.size() > 1 ? std::span<const int8_t>(tensor_span(b, ins[1]))
                         : std::span<const int8_t>();
      run_layer_into(layer, in_a, in_b, tensor_span(b, l + 1), skip);
    }
  }
  logits_out.assign(batch, {});
  for (size_t b = 0; b < batch; ++b) {
    const std::span<const int8_t> out = tensor_span(b, layer_count);
    logits_out[b].assign(out.begin(), out.end());
  }
}

int RefEngine::classify(std::span<const uint8_t> image,
                        const SkipMask* mask) const {
  if (model().head == TaskHead::kScore) {
    return scored_class(model(),
                        reconstruction_score(model(), quantize_input(image),
                                             run(image, mask)));
  }
  return argmax_lowest_index(run(image, mask));
}

int64_t RefEngine::mac_ops() const {
  const int64_t total = model().mac_count();
  return default_mask_ != nullptr ? total - default_mask_->skipped_macs(model())
                                  : total;
}

double evaluate_quantized_accuracy(const QModel& model, const Dataset& ds,
                                   const SkipMask* mask, int limit) {
  RefEngine engine(&model);
  engine.bind_mask(mask);
  // Engine overload: evaluation proceeds through run_batch, so each
  // layer's weights stream once per sub-batch instead of once per image.
  return evaluate_batch(engine, ds, limit).top1;
}

}  // namespace ataman
