// Per-worker engine instances for the serve runtime.
//
// Rule: an engine instance is only ever executed by the worker that owns
// it. Engine run() paths are const, but the pool does not bet
// correctness on every present and future backend staying internally
// stateless (see the clone/concurrency note on XCubeEngine) — isolation
// per worker makes a data race impossible by construction.
//
// Construction is two-tier so warmup stays cheap:
//   * The first request for a (backend, mask) key builds a shared
//     *prototype* through EngineRegistry — the expensive path (weight
//     packing, program unpacking, cycle pricing).
//   * Each worker then takes InferenceEngine::clone() of the prototype —
//     a flat copy of the derived state. Backends that decline to clone
//     (clone() == nullptr) fall back to a per-worker factory build.
//   * Mask-rebindable backends ("ref") collapse the mask dimension: one
//     instance per worker total, mask rebound per micro-batch through
//     the bind_mask seam — a thousand approximate configs never mean a
//     thousand RefEngines.
//
// Whether a backend rebinds is resolved from its first prototype and
// cached per backend name (rebindability is a property of the backend
// class, not of one configuration — which also means a factory must not
// return rebindable engines for some configs and non-rebindable ones
// for others). Each worker keeps its own copy of the flag, so the
// steady state — engine already cloned — touches no shared lock at all;
// the global mutex is only taken to build something new.
//
// Exact backends that ignore masks (cmsis, xcube) should be addressed
// with mask == nullptr; a non-null mask is keyed literally and would
// duplicate an identical engine per mask pointer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/xcube/xcube_engine.hpp"  // XCubeCostTable (by value in the pool)

namespace ataman::serve {

struct EnginePoolStats {
  int64_t prototypes_built = 0;  // registry builds shared across workers
  int64_t engines_cloned = 0;    // cheap per-worker clones
  int64_t factory_builds = 0;    // per-worker fallback registry builds
};

class EnginePool {
 public:
  // `model` must outlive the pool; cost tables are copied. `workers` is
  // the number of distinct owner ids engine_for will be called with.
  EnginePool(const QModel* model, int workers, CortexM33CostTable costs = {},
             MemoryCostTable memory = {}, XCubeCostTable xcube = {});

  // The engine owned by `worker` for (backend, mask), built lazily, with
  // `mask` bound (rebound in place for rebindable backends, baked in at
  // construction otherwise). Thread contract: any number of workers may
  // call concurrently, but each worker id must have at most one caller —
  // the returned reference is only safe to use on that worker's thread,
  // and it stays valid until the pool dies.
  InferenceEngine& engine_for(int worker, const std::string& backend,
                              const SkipMask* mask);

  EnginePoolStats stats() const;

 private:
  // Resolved cache key: the mask slot is nullptr for rebindable
  // backends (one instance covers every mask).
  using Key = std::pair<std::string, const SkipMask*>;

  struct WorkerState {
    std::map<std::string, bool> rebindable;  // per-backend flag copy
    std::map<Key, std::unique_ptr<InferenceEngine>> engines;
  };

  std::unique_ptr<InferenceEngine> build_from_registry(const Key& key) const;

  // Slow path: resolve the backend's rebindability, build/find the
  // prototype and produce this worker's instance. Takes proto_mutex_.
  std::unique_ptr<InferenceEngine> make_instance(const std::string& backend,
                                                 const SkipMask* mask,
                                                 bool& rebindable_out);

  const QModel* model_;
  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  XCubeCostTable xcube_;

  mutable std::mutex proto_mutex_;  // guards the three members below
  std::map<Key, std::unique_ptr<InferenceEngine>> prototypes_;
  std::map<std::string, bool> rebindable_;
  EnginePoolStats stats_;

  // per_worker_[w] is touched only by worker w (no lock needed).
  std::vector<WorkerState> per_worker_;
};

}  // namespace ataman::serve
