#include "src/train/network.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace ataman {

LayerSpec LayerSpec::conv(int out_c, int kernel, int stride, int pad) {
  LayerSpec s;
  s.kind = Kind::kConv;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::pool(int kernel, int stride) {
  LayerSpec s;
  s.kind = Kind::kPool;
  s.kernel = kernel;
  s.stride = stride;
  return s;
}

LayerSpec LayerSpec::relu() {
  LayerSpec s;
  s.kind = Kind::kRelu;
  return s;
}

LayerSpec LayerSpec::dense(int units) {
  LayerSpec s;
  s.kind = Kind::kDense;
  s.units = units;
  return s;
}

LayerSpec LayerSpec::depthwise(int kernel, int stride, int pad) {
  LayerSpec s;
  s.kind = Kind::kDepthwise;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  return s;
}

LayerSpec LayerSpec::avgpool(int kernel, int stride) {
  LayerSpec s;
  s.kind = Kind::kAvgPool;
  s.kernel = kernel;
  s.stride = stride;
  return s;
}

LayerSpec LayerSpec::add(int from) {
  LayerSpec s;
  s.kind = Kind::kAdd;
  s.from = from;
  return s;
}

int ModelArch::conv_count() const {
  return static_cast<int>(std::count_if(
      layers.begin(), layers.end(),
      [](const LayerSpec& s) { return s.kind == LayerSpec::Kind::kConv; }));
}

int ModelArch::pool_count() const {
  return static_cast<int>(std::count_if(
      layers.begin(), layers.end(),
      [](const LayerSpec& s) { return s.kind == LayerSpec::Kind::kPool; }));
}

int ModelArch::dense_count() const {
  return static_cast<int>(std::count_if(
      layers.begin(), layers.end(),
      [](const LayerSpec& s) { return s.kind == LayerSpec::Kind::kDense; }));
}

Network::Network(const ModelArch& arch, ImageShape input, Rng& rng)
    : arch_(arch), input_(input) {
  int h = input.height, w = input.width, c = input.channels;
  bool spatial = true;  // false once a dense layer flattened the activations
  int features = 0;
  // Per-spec output shape, for validating residual skip edges.
  std::vector<std::array<int, 3>> shapes;
  tapped_.assign(arch.layers.size(), 0);

  for (size_t i = 0; i < arch.layers.size(); ++i) {
    const LayerSpec& spec = arch.layers[i];
    switch (spec.kind) {
      case LayerSpec::Kind::kConv: {
        check(spatial, "conv after dense is unsupported");
        ConvGeom g;
        g.in_h = h;
        g.in_w = w;
        g.in_c = c;
        g.out_c = spec.out_c;
        g.kernel = spec.kernel;
        g.stride = spec.stride;
        g.pad = spec.pad;
        layers_.push_back(std::make_unique<Conv2DLayer>(g, rng));
        h = g.out_h();
        w = g.out_w();
        c = g.out_c;
        break;
      }
      case LayerSpec::Kind::kDepthwise: {
        check(spatial, "depthwise after dense is unsupported");
        DepthwiseConv2DLayer::Geom g;
        g.in_h = h;
        g.in_w = w;
        g.channels = c;
        g.kernel = spec.kernel;
        g.stride = spec.stride;
        g.pad = spec.pad;
        layers_.push_back(std::make_unique<DepthwiseConv2DLayer>(g, rng));
        h = g.out_h();
        w = g.out_w();
        break;
      }
      case LayerSpec::Kind::kPool:
      case LayerSpec::Kind::kAvgPool: {
        check(spatial, "pool after dense is unsupported");
        validate_pool_geometry(h, w, spec.kernel, spec.stride,
                               "architecture pool layer");
        if (spec.kind == LayerSpec::Kind::kPool) {
          layers_.push_back(
              std::make_unique<MaxPool2DLayer>(spec.kernel, spec.stride));
        } else {
          layers_.push_back(
              std::make_unique<AvgPool2DLayer>(spec.kernel, spec.stride));
        }
        h = conv_out_extent(h, spec.kernel, spec.stride, 0);
        w = conv_out_extent(w, spec.kernel, spec.stride, 0);
        check(h > 0 && w > 0, "pool collapsed the activation map");
        break;
      }
      case LayerSpec::Kind::kRelu:
        layers_.push_back(std::make_unique<ReluLayer>());
        break;
      case LayerSpec::Kind::kDense: {
        const int in_dim = spatial ? h * w * c : features;
        layers_.push_back(std::make_unique<DenseLayer>(in_dim, spec.units, rng));
        spatial = false;
        features = spec.units;
        break;
      }
      case LayerSpec::Kind::kAdd: {
        check(spatial, "add after dense is unsupported");
        check(spec.from >= -1 && spec.from < static_cast<int>(i),
              "add skip edge must reference an earlier layer (or -1)");
        const std::array<int, 3> operand =
            spec.from < 0
                ? std::array<int, 3>{input.height, input.width, input.channels}
                : shapes[static_cast<size_t>(spec.from)];
        check(operand == std::array<int, 3>{h, w, c},
              "add operand shapes differ (skip edge vs chain predecessor)");
        if (spec.from >= 0) tapped_[static_cast<size_t>(spec.from)] = 1;
        layers_.push_back(std::make_unique<AddLayer>());
        break;
      }
    }
    shapes.push_back({h, w, c});
  }
  check(!layers_.empty(), "architecture has no layers");
}

FTensor Network::forward(const FTensor& x, bool train) {
  FTensor cur = x;
  // Outputs read by residual skip edges, cached per producing layer
  // (tapped_); everything else flows through `cur` as a pure chain.
  std::vector<FTensor> taps(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    Layer* layer = layers_[i].get();
    if (auto* add = dynamic_cast<AddLayer*>(layer)) {
      const int from = arch_.layers[i].from;
      cur = add->forward2(cur,
                          from < 0 ? x : taps[static_cast<size_t>(from)]);
    } else {
      // Dense layers accept the flattened view of NHWC activations.
      if (dynamic_cast<DenseLayer*>(layer) != nullptr && cur.rank() != 2) {
        FTensor flat({cur.dim(0), static_cast<int>(cur.item_size())});
        std::copy(cur.data(), cur.data() + cur.size(), flat.data());
        cur = std::move(flat);
      }
      cur = layer->forward(cur, train);
    }
    if (i < tapped_.size() && tapped_[i]) taps[i] = cur;
  }
  return cur;
}

void Network::backward(const FTensor& dloss) {
  FTensor cur = dloss;
  // pending[i]: extra gradient w.r.t. the output of layer i contributed
  // by residual skip edges (an add passes its output gradient to both
  // inputs unchanged). Gradients into the network input are discarded.
  std::vector<FTensor> pending(layers_.size());
  for (int i = static_cast<int>(layers_.size()) - 1; i >= 0; --i) {
    FTensor& extra = pending[static_cast<size_t>(i)];
    if (extra.size() > 0) {
      check(extra.size() == cur.size(),
            "skip-edge gradient shape mismatch in backward");
      float* c = cur.data();
      const float* e = extra.data();
      for (int64_t k = 0; k < cur.size(); ++k) c[k] += e[k];
      extra = FTensor();
    }
    if (dynamic_cast<AddLayer*>(layers_[static_cast<size_t>(i)].get()) !=
        nullptr) {
      const int from = arch_.layers[static_cast<size_t>(i)].from;
      if (from >= 0) {
        FTensor& slot = pending[static_cast<size_t>(from)];
        if (slot.size() == 0) {
          slot = cur;
        } else {
          float* s = slot.data();
          const float* c = cur.data();
          for (int64_t k = 0; k < slot.size(); ++k) s[k] += c[k];
        }
      }
    }
    cur = layers_[static_cast<size_t>(i)]->backward(cur);
  }
}

void Network::zero_grad() {
  for (const ParamRef& p : params())
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

int64_t Network::param_count() {
  int64_t total = 0;
  for (const ParamRef& p : params())
    total += static_cast<int64_t>(p.value->size());
  return total;
}

int64_t Network::mac_count() const {
  int64_t total = 0;
  for (const auto& layer : layers_) {
    if (const auto* conv = dynamic_cast<const Conv2DLayer*>(layer.get())) {
      total += conv->geom().macs();
    } else if (const auto* dw =
                   dynamic_cast<const DepthwiseConv2DLayer*>(layer.get())) {
      total += dw->geom().macs();
    } else if (const auto* fc = dynamic_cast<const DenseLayer*>(layer.get())) {
      total += static_cast<int64_t>(fc->in_dim()) * fc->out_dim();
    }
  }
  return total;
}

std::vector<int> Network::predict(const FTensor& x) {
  FTensor logits = forward(x, /*train=*/false);
  check(logits.rank() == 2, "network must end in a dense head");
  std::vector<int> out(static_cast<size_t>(logits.dim(0)));
  for (int b = 0; b < logits.dim(0); ++b) {
    const float* row = logits.item(b);
    out[static_cast<size_t>(b)] = static_cast<int>(
        std::max_element(row, row + logits.dim(1)) - row);
  }
  return out;
}

FTensor to_float_batch(const Dataset& ds, const std::vector<int>& indices,
                       size_t lo, size_t hi) {
  check(lo < hi && hi <= indices.size(), "bad batch bounds");
  const ImageShape s = ds.shape();
  FTensor x({static_cast<int>(hi - lo), s.height, s.width, s.channels});
  for (size_t i = lo; i < hi; ++i) {
    const auto img = ds.image(indices[i]);
    float* dst = x.item(static_cast<int>(i - lo));
    for (size_t p = 0; p < img.size(); ++p)
      dst[p] = static_cast<float>(img[p]) / 255.0f;
  }
  return x;
}

double evaluate_accuracy(Network& net, const Dataset& ds, int batch_size) {
  check(ds.size() > 0, "cannot evaluate empty dataset");
  std::vector<int> indices(static_cast<size_t>(ds.size()));
  std::iota(indices.begin(), indices.end(), 0);

  int correct = 0;
  for (size_t lo = 0; lo < indices.size();
       lo += static_cast<size_t>(batch_size)) {
    const size_t hi =
        std::min(indices.size(), lo + static_cast<size_t>(batch_size));
    FTensor x = to_float_batch(ds, indices, lo, hi);
    const std::vector<int> pred = net.predict(x);
    for (size_t i = lo; i < hi; ++i)
      if (pred[i - lo] == ds.label(indices[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace ataman
