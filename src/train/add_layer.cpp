#include "src/common/error.hpp"
#include "src/train/layers.hpp"

namespace ataman {

FTensor AddLayer::forward(const FTensor& x, bool /*train*/) {
  (void)x;
  check(false, "AddLayer reads two tensors — Network dispatches forward2");
  return FTensor();
}

FTensor AddLayer::forward2(const FTensor& a, const FTensor& b) {
  check(a.rank() == b.rank(), "add operand ranks differ");
  for (int d = 0; d < a.rank(); ++d)
    check(a.dim(d) == b.dim(d), "add operand shapes differ");
  FTensor out = a;
  float* o = out.data();
  const float* bp = b.data();
  for (int64_t i = 0; i < out.size(); ++i) o[i] += bp[i];
  return out;
}

FTensor AddLayer::backward(const FTensor& dy) {
  // d(a + b)/da = I; the Network accumulates the same dy into the skip
  // edge's producer (see Network::backward).
  return dy;
}

}  // namespace ataman
