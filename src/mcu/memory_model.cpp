#include "src/mcu/memory_model.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ataman {

FlashReport packed_flash(const QModel& model, const MemoryCostTable& t) {
  FlashReport r;
  r.code_bytes = t.generic_runtime_code + t.const_tables +
                 t.per_layer_descriptor *
                     static_cast<int64_t>(model.layers.size());
  r.weight_bytes = model.weight_bytes();
  r.total_bytes = r.code_bytes + r.weight_bytes;
  return r;
}

FlashReport unpacked_flash(const QModel& model,
                           const std::vector<int64_t>& static_pairs,
                           const std::vector<int64_t>& static_singles,
                           const MemoryCostTable& t) {
  check(static_pairs.size() == static_singles.size(),
        "pair/single vectors must align");
  FlashReport r;
  r.code_bytes = t.custom_runtime_code + t.const_tables;

  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (d.skippable) {
      // Conv or depthwise: per-channel programs, weights either burned
      // into code (unpacked) or kept as data (packed fallback).
      const int64_t weight_data = d.skippable_operand_count();
      const int64_t bias_data = static_cast<int64_t>(d.channels) * 4;
      const bool unpacked =
          ordinal < static_cast<int>(static_pairs.size()) &&
          static_pairs[static_cast<size_t>(ordinal)] >= 0;
      if (unpacked) {
        const int64_t pairs = static_pairs[static_cast<size_t>(ordinal)];
        const int64_t singles = static_singles[static_cast<size_t>(ordinal)];
        r.unpacked_code_bytes += t.unpacked_bytes_per_layer +
                                 t.unpacked_bytes_per_channel * d.channels +
                                 t.unpacked_bytes_per_pair * pairs +
                                 t.unpacked_bytes_per_single * singles;
        // Biases remain data (loaded by the per-channel prologue).
        r.weight_bytes += bias_data;
      } else {
        r.weight_bytes += weight_data + bias_data;
        r.code_bytes += t.per_layer_descriptor;
      }
      ++ordinal;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      r.weight_bytes += static_cast<int64_t>(fc->weights.size()) +
                        static_cast<int64_t>(fc->bias.size()) * 4;
      r.code_bytes += t.per_layer_descriptor;
    } else {
      r.code_bytes += t.per_layer_descriptor;
    }
  }
  r.total_bytes = r.code_bytes + r.weight_bytes + r.unpacked_code_bytes;
  return r;
}

int64_t ActivationPlan::total_tensor_elems() const {
  int64_t total = 0;
  for (const Tensor& t : tensors) total += t.elems;
  return total;
}

ActivationPlan plan_activations(const QModel& model) {
  model.validate_dag();
  const int num_layers = static_cast<int>(model.layers.size());
  ActivationPlan plan;
  plan.tensors.resize(static_cast<size_t>(num_layers) + 1);

  // Define intervals. def(t) is fixed by tensor numbering; last_use is
  // the deepest reader (the network output is read "after" the last
  // step, so it stays live through the whole run).
  for (int t = 0; t <= num_layers; ++t) {
    ActivationPlan::Tensor& tensor = plan.tensors[static_cast<size_t>(t)];
    tensor.elems = model.tensor_elems(t);
    tensor.def = t - 1;
    tensor.last_use = t - 1;
  }
  for (int l = 0; l < num_layers; ++l) {
    for (int t : model.inputs_of(l)) {
      ActivationPlan::Tensor& in = plan.tensors[static_cast<size_t>(t)];
      in.last_use = std::max(in.last_use, l);
    }
  }
  plan.tensors.back().last_use = num_layers;

  // True peak: at step l the output (def == l) and every not-yet-dead
  // input tensor are live simultaneously.
  for (int l = 0; l < num_layers; ++l) {
    int64_t live = 0;
    for (const ActivationPlan::Tensor& t : plan.tensors)
      if (t.def <= l && t.last_use >= l) live += t.elems;
    plan.peak_elems = std::max(plan.peak_elems, live);
  }
  if (num_layers == 0) plan.peak_elems = plan.tensors[0].elems;

  // First-fit interval coloring in def order: a slot is reusable for
  // tensor t when its current occupant died before t is defined. On a
  // chain this produces exactly two alternating slots (ping-pong).
  std::vector<int> slot_free_after;  // last_use of the current occupant
  for (int t = 0; t <= num_layers; ++t) {
    ActivationPlan::Tensor& tensor = plan.tensors[static_cast<size_t>(t)];
    int chosen = -1;
    for (int s = 0; s < static_cast<int>(slot_free_after.size()); ++s) {
      if (slot_free_after[static_cast<size_t>(s)] < tensor.def) {
        chosen = s;
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(slot_free_after.size());
      slot_free_after.push_back(0);
      plan.slot_elems.push_back(0);
    }
    tensor.slot = chosen;
    slot_free_after[static_cast<size_t>(chosen)] = tensor.last_use;
    plan.slot_elems[static_cast<size_t>(chosen)] =
        std::max(plan.slot_elems[static_cast<size_t>(chosen)], tensor.elems);
  }
  return plan;
}

int64_t model_ram_bytes(const QModel& model, bool packed_engine,
                        const MemoryCostTable& t) {
  // Liveness-planned arena (see header): ping-pong max(cur + next) on
  // chains, true DAG peak on residual models.
  const int64_t arena = plan_activations(model).peak_elems;
  int64_t im2col = 0;
  if (packed_engine) {
    for (const QLayer& layer : model.layers) {
      if (const auto* conv = std::get_if<QConv2D>(&layer)) {
        // Two q15 columns of one receptive field each (CMSIS 2-column
        // mat_mult scratch). Depthwise kernels read activations directly
        // (no column scratch).
        im2col = std::max<int64_t>(im2col, 2LL * conv->geom.patch_size() * 2);
      }
    }
  }
  return arena + im2col + t.runtime_reserve;
}

}  // namespace ataman
