// Quantized model representation.
//
// Scheme (TFLite-Micro / CMSIS-NN int8 convention):
//   * activations: asymmetric per-tensor  real = scale * (q - zero_point)
//   * weights:     symmetric, per-output-channel for conv/depthwise
//     (real = w_scales[c] * q), per-tensor for dense (real = w_scale * q)
//   * bias:        int32 at scale in_scale * w_scale(s)[c], zero_point 0
//   * accumulators: int32; rescaled to the output tensor with a
//     fixed-point multiplier per output channel (see common/fixed_point.hpp)
//   * ReLU is folded into the conv/fc output clamp (act_min/act_max)
//
// Layer weight layout is [out_c][kernel][kernel][in_c] for conv,
// [kernel][kernel][channels] (channel innermost, the TFLite-Micro
// depthwise convention) for depthwise conv, and [out][in] for
// fully-connected — identical to the float substrate and to the operand
// indexing used by the significance analysis and codegen.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/fixed_point.hpp"
#include "src/train/im2col.hpp"

namespace ataman {

// Per-tensor affine quantization parameters.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;

  int8_t quantize(float real) const;
  float dequantize(int8_t q) const;
};

struct QConv2D {
  ConvGeom geom;
  std::vector<int8_t> weights;  // [out_c][k][k][in_c]
  std::vector<int32_t> bias;    // [out_c], scale = in.scale * w_scales[c]
  QuantParams in, out;
  // Per-output-channel symmetric weight scales and the matching requant
  // multipliers (size out_c each). Per-tensor quantization is the
  // degenerate all-equal case — see set_pertensor_wscale().
  std::vector<float> w_scales;
  std::vector<QuantizedMultiplier> requant;
  int32_t act_min = -128;  // output clamp (ReLU folding raises act_min)
  int32_t act_max = 127;
};

struct QDense {
  int in_dim = 0, out_dim = 0;
  std::vector<int8_t> weights;  // [out][in]
  std::vector<int32_t> bias;
  QuantParams in, out;
  float w_scale = 1.0f;
  QuantizedMultiplier requant;
  int32_t act_min = -128;
  int32_t act_max = 127;

  int64_t macs() const {
    return static_cast<int64_t>(in_dim) * out_dim;
  }
};

struct QMaxPool {
  int in_h = 0, in_w = 0, channels = 0;
  int kernel = 2, stride = 2;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, 0); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, 0); }
};

// Depthwise convolution: channel c of the output reads only channel c of
// the input — the TinyML efficiency primitive (MobileNet/DS-CNN blocks).
// Weights are [kernel][kernel][channels] with the channel innermost
// (TFLite-Micro layout); the *skip-mask operand index* for channel c is
// the (ky*kernel + kx)-flattened tap position p in [0, kernel²), so a
// skipped static operand is the (layer, channel, p) triple and
// dw_weight_index() maps it into the weight tensor.
struct QDepthwiseConv2D {
  int in_h = 0, in_w = 0, channels = 0;
  int kernel = 1, stride = 1, pad = 0;
  std::vector<int8_t> weights;  // [k][k][channels], channel innermost
  std::vector<int32_t> bias;    // [channels], scale = in.scale * w_scales[c]
  QuantParams in, out;
  // Per-channel weight scales + requant multipliers (size `channels`).
  std::vector<float> w_scales;
  std::vector<QuantizedMultiplier> requant;
  int32_t act_min = -128;
  int32_t act_max = 127;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, pad); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, pad); }
  int patch_size() const { return kernel * kernel; }  // taps per channel
  int positions() const { return out_h() * out_w(); }
  int64_t macs() const {
    return static_cast<int64_t>(positions()) * channels * patch_size();
  }
  int64_t weight_count() const {
    return static_cast<int64_t>(channels) * patch_size();
  }
};

// Weight-tensor index of (channel, tap) under the [k][k][c] layout. The
// skip mask, significance S[] and channel programs all index operands as
// channel * patch_size + tap; this is the one conversion point.
inline size_t dw_weight_index(int channel, int tap, int channels) {
  return static_cast<size_t>(tap) * channels + channel;
}

// Per-channel requant maintenance. refresh_requant() recomputes
// requant[c] = in.scale * w_scales[c] / out.scale for every channel (call
// after changing in/out activation params or the scale vector);
// set_pertensor_wscale() broadcasts one shared scale to all channels and
// refreshes — the per-tensor special case used by legacy artifact loads,
// test fixtures and the per-channel-off ablation mode. Broadcast vectors
// are bitwise-identical in effect to the historical scalar scheme.
void refresh_requant(QConv2D& conv);
void refresh_requant(QDepthwiseConv2D& dw);
void set_pertensor_wscale(QConv2D& conv, float w_scale);
void set_pertensor_wscale(QDepthwiseConv2D& dw, float w_scale);

// Int8 average pool: sum over the window, round-half-away-from-zero
// divide (the TFLite-Micro AVERAGE_POOL_2D reference op). Input and
// output share quantization parameters, so no requant state is needed.
struct QAvgPool {
  int in_h = 0, in_w = 0, channels = 0;
  int kernel = 2, stride = 2;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, 0); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, 0); }
};

// Two-input residual add (the MobileNetV2 / MicroNets block join).
// Both inputs have identical shape; each is requantized to the output
// scale independently before the integer add:
//   out = clamp(mbqm(qa - za, requant_a) + mbqm(qb - zb, requant_b) + zo)
// where requant_x encodes in_x.scale / out.scale (quantize_multiplier
// handles ratios above 1). No weights, no MACs — a pure activation op,
// and the first operator whose layer reads a tensor other than its
// chain predecessor (see QModel::layer_inputs).
struct QAdd {
  int h = 0, w = 0, channels = 0;
  QuantParams in_a, in_b, out;
  QuantizedMultiplier requant_a, requant_b;
  int32_t act_min = -128;
  int32_t act_max = 127;

  int64_t elems() const { return static_cast<int64_t>(h) * w * channels; }
};

using QLayer = std::variant<QConv2D, QMaxPool, QDense, QDepthwiseConv2D,
                            QAvgPool, QAdd>;

// ---------------------------------------------------------------------------
// Per-operator descriptor — the one contract every layer-generic consumer
// (significance, skip masks, DSE, codegen, cost/memory models) reads
// instead of re-implementing per-variant switches. A new operator is one
// `describe_layer` case + kernels, not ten parallel edits; see
// docs/ARCHITECTURE.md "Operator contract".
// ---------------------------------------------------------------------------

enum class OpKind { kConv, kMaxPool, kDense, kDepthwise, kAvgPool, kAdd };

struct OpDescriptor {
  OpKind kind = OpKind::kConv;
  int64_t in_elems = 0;   // activation tensor sizes (int8 elements)
  int64_t out_elems = 0;
  int64_t macs = 0;       // multiply-accumulates per inference
  // Approximable (skippable) operators only — conv and depthwise:
  bool skippable = false;
  int channels = 0;       // per-channel programs (conv: out_c)
  int patch = 0;          // skippable operands per channel
  int64_t positions = 0;  // output spatial positions (1 for dense)
  int out_dim = 0;        // dense head width (0 otherwise)

  // Skip-mask length for this layer (0 when not skippable).
  int64_t skippable_operand_count() const {
    return skippable ? static_cast<int64_t>(channels) * patch : 0;
  }
};

OpDescriptor describe_layer(const QLayer& layer);
const char* op_kind_name(OpKind kind);

// What the model's output head means. kClassify heads pick
// argmax(logits) (ties -> lowest index); kScore heads reconstruct the
// input (autoencoder) and reduce to a scalar anomaly score — the mean
// squared error between the dequantized reconstruction and the
// dequantized quantized input — compared against `score_threshold`
// (score > threshold => anomalous, class 1). Engines, the evaluator,
// the serve runtime and the C emitter all branch on this one enum; see
// docs/ARCHITECTURE.md "Scored heads".
enum class TaskHead { kClassify = 0, kScore = 1 };

struct QModel {
  std::string name;      // architecture name ("lenet", ...)
  // Block notation: chains keep the paper form ("3-2-2"); residual
  // bodies are bracketed ("3-[r2]-2" = two inverted-residual blocks
  // between the stem and the head). Printed by DeployReport, benches
  // and ataman_cli.
  std::string topology;
  int in_h = 0, in_w = 0, in_c = 0;
  QuantParams input;     // quantization of the u8/255 input
  std::vector<QLayer> layers;

  // Output-head contract (serialized as an append-only trailer; older
  // artifacts load as kClassify). The threshold is calibrated against
  // reconstruction scores of normal training images at quantization
  // time for kScore models and is meaningless for kClassify.
  TaskHead head = TaskHead::kClassify;
  float score_threshold = 0.0f;

  // DAG edges. Tensor ids: tensor 0 is the network input, tensor l+1 is
  // the output of layer l. layer_inputs[l] lists the tensor ids layer l
  // reads, in operand order (QAdd: {a, b}; everything else: one entry).
  // Empty (the pre-DAG serialized default) means the pure chain — every
  // layer l reads {l}. Layers are stored in topological order, so every
  // input id of layer l is <= l.
  std::vector<std::vector<int>> layer_inputs;

  // Input tensor ids of layer l (resolves the empty-chain default).
  std::vector<int> inputs_of(int layer) const;
  // True when every layer reads exactly its chain predecessor.
  bool is_chain() const;
  // True iff the cut before layer l is *linear*: every layer j >= l
  // reads only tensors with id >= l, so tensor l alone carries the
  // whole frontier and run_from(l, ...) is well defined. Boundary 0 is
  // always linear.
  bool linear_boundary(int layer) const;
  // Deepest linear boundary <= layer — the *dominating* boundary the
  // DSE prefix cache resumes from (docs/DSE.md).
  int dominating_boundary(int layer) const;
  // Structural validation of layer_inputs (arity, topological order,
  // shape agreement); fails on malformed DAGs. Called by engines and
  // the loader.
  void validate_dag() const;

  int64_t mac_count() const;          // conv + depthwise + dense MACs
  // MACs of the approximable (conv + depthwise) layers — the Fig. 2
  // MAC-reduction normalization. Equals the historical conv-only count
  // on models without depthwise layers.
  int64_t approx_mac_count() const;
  int conv_layer_count() const;       // plain conv layers only
  // Approximable layers (conv + depthwise) — the ordinal space skip
  // masks, significance vectors and ApproxConfig::tau are indexed by.
  int approx_layer_count() const;
  // Index of the n-th approximable layer inside `layers`.
  int approx_layer_index(int n) const;
  int64_t weight_bytes() const;       // int8 weights + int32 biases

  // Size in int8 elements of tensor id t (0 = network input, t > 0 =
  // output of layer t-1).
  int64_t tensor_elems(int tensor) const;

  // Largest activation tensor sizes, for the RAM model: returns the two
  // biggest inter-layer buffers (bytes) in descending order.
  std::pair<int64_t, int64_t> two_largest_activations() const;
};

}  // namespace ataman
