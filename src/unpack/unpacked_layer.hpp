// Layer-based code unpacking (§II-B): the paper's core kernel form.
//
// Each convolution layer becomes straight-line "programs", one per output
// channel: a sequence of dual-MAC operations whose weights are hardwired
// constants (two sign-extended int8 weights packed into one 32-bit SMLAD
// operand, e.g. 64*2^16 + 20). Unpacking differs from loop unrolling in
// that the weight *values* are burned into the instruction stream — there
// are no weight loads, no im2col pre-expansion and no loop/branch
// overhead; the program is replayed once per output spatial position.
//
// Significance skipping composes naturally: building a program with a
// skip mask simply drops the skipped operands and *re-pairs* the
// survivors offline, so every skipped product removes real instructions
// (and flash bytes), not just work inside an unchanged loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

// One SMLAD step: two patch operand indices + the packed weight constant.
struct MacPairOp {
  uint32_t weight_const = 0;  // pack_weight_pair(w_b, w_a): a in low lane
  uint32_t operand_a = 0;     // (ky,kx,in_c)-flattened patch index
  uint32_t operand_b = 0;
};

// Odd leftover: one SMLABB step.
struct MacSingleOp {
  int16_t weight = 0;
  uint32_t operand = 0;
};

struct ChannelProgram {
  int32_t bias = 0;
  // Baked per-channel requant constant (per-output-channel weight
  // quantization: each program rescales with its own multiplier, exactly
  // like its bias is its own constant).
  QuantizedMultiplier requant;
  std::vector<MacPairOp> pairs;
  bool has_single = false;
  MacSingleOp single;

  int64_t retained_ops() const {
    return static_cast<int64_t>(pairs.size()) * 2 + (has_single ? 1 : 0);
  }
};

struct UnpackedConv {
  ConvGeom geom;
  QuantParams in_q, out_q;
  int32_t act_min = -128, act_max = 127;
  std::vector<ChannelProgram> channels;

  // Static instruction counts (summed over channels; the cost and flash
  // models multiply by positions / bytes-per-op respectively).
  int64_t static_pairs() const;
  int64_t static_singles() const;
  int64_t retained_macs() const;  // dynamic: retained static ops x positions

  // Build from a quantized layer; `skip` is nullptr (exact unpacking) or
  // an [out_c * patch] mask with 1 = omit the operand.
  static UnpackedConv build(const QConv2D& layer,
                            const uint8_t* skip = nullptr);

  // Execute for one input feature map. Bit-exact with conv2d_ref under
  // the same skip mask (tests assert this).
  void run(std::span<const int8_t> in, std::span<int8_t> out) const;

  // Batched execution: `in`/`out` are contiguous batches (image b at
  // b * in_elems / b * out_elems). Each channel program is streamed once
  // per lane-block of kBatchLanes images (its hardwired weight constants
  // multiply into one accumulator per lane) instead of once per image.
  // Bitwise identical to per-image run().
  void run_batch(std::span<const int8_t> in, std::span<int8_t> out,
                 int batch) const;
};

// Unpacked depthwise convolution: one straight-line program per channel
// over its k*k taps (operand index = (ky*k + kx) tap position — the
// depthwise SkipMask order). Pairing works exactly as for conv: two
// retained taps of the *same channel* feed one SMLAD whose weight
// constant is hardwired; skipping drops taps and re-pairs survivors
// offline.
struct UnpackedDepthwise {
  int in_h = 0, in_w = 0, channel_count = 0;
  int kernel = 1, stride = 1, pad = 0;
  QuantParams in_q, out_q;
  int32_t act_min = -128, act_max = 127;
  std::vector<ChannelProgram> channels;

  int out_h() const { return conv_out_extent(in_h, kernel, stride, pad); }
  int out_w() const { return conv_out_extent(in_w, kernel, stride, pad); }
  int64_t positions() const {
    return static_cast<int64_t>(out_h()) * out_w();
  }

  int64_t static_pairs() const;
  int64_t static_singles() const;
  int64_t retained_macs() const;

  // `skip` is nullptr or [channels * k*k] in SkipMask depthwise order.
  static UnpackedDepthwise build(const QDepthwiseConv2D& layer,
                                 const uint8_t* skip = nullptr);

  // Bit-exact with depthwise_conv2d_ref under the same skip mask.
  void run(std::span<const int8_t> in, std::span<int8_t> out) const;

  // Batched execution over contiguous batches; see UnpackedConv::run_batch.
  void run_batch(std::span<const int8_t> in, std::span<int8_t> out,
                 int batch) const;
};

}  // namespace ataman
