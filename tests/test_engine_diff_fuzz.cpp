// Seeded-RNG differential fuzz across the four InferenceEngine backends.
//
// PR 2's parity suite checks crafted cases; this one generates them:
// random small conv/depthwise/pool/avgpool/dense models (random geometry, random quantized
// weights, chained activation params) — optionally with residual QAdd
// skip edges that nest or overlap at random (DAG models) — and
// significance-derived tau skip masks, asserting for every generated
// case that
//   * all four engines match the reference logits/classifications
//     bit-exactly on exact configs,
//   * the masked reference oracle and the unpacked approximate engine
//     match bit-exactly for every tau (masking == instruction removal),
//   * as tau grows, skip sets nest, executed MACs are non-increasing and
//     the unpacked cycle model is strictly cheaper whenever MACs drop,
//   * exact engines' cycle models ignore the mask entirely.
//
// Deterministic by construction: the base seed is fixed (override with
// ATAMAN_FUZZ_SEED to replay a corpus), and every failure message names
// the per-model seed so a single case can be replayed in isolation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/engine_iface.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/sig/act_stats.hpp"
#include "src/sig/significance.hpp"
#include "src/sig/skip_plan.hpp"
#include "src/unpack/unpacked_engine.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_image;
using testing::make_random_qconv;
using testing::make_random_qdense;
using testing::make_random_qdw;

constexpr uint64_t kDefaultBaseSeed = 20260730;
constexpr int kModels = 6;
constexpr int kParityImages = 6;

uint64_t base_seed() {
  if (const char* env = std::getenv("ATAMAN_FUZZ_SEED")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return kDefaultBaseSeed;
}

// Random structurally-valid model: 1-2 conv layers (kernel 1 or 3,
// stride 1, same-padding, so any geometry chains), each optionally
// followed by a 3x3 same-padded depthwise conv, an optional 2x2 pool
// (max or average, randomly), then 0-2 residual blocks (shape-preserving
// conv [+ depthwise] closed by a QAdd whose skip edge targets a random
// earlier same-shape tensor — successive blocks can nest inside or
// overlap each other's edges), final dense head. Channel counts are
// randomized to hit both the even (dual-MAC fast path) and odd
// (leftover single) patch parities; depthwise layers always have an odd
// 9-tap patch, exercising the re-paired single path.
QModel make_random_model(uint64_t seed) {
  Rng rng(seed);
  QModel m;
  m.name = "fuzz-" + std::to_string(seed);
  m.in_h = m.in_w = 2 * rng.next_int(3, 6);  // 6..12, even for pooling
  m.in_c = rng.next_int(1, 4);
  m.input = {1.0f / 255.0f, -128};

  int h = m.in_h, w = m.in_w, c = m.in_c;
  QuantParams upstream = m.input;
  // Per-layer input rows (tensor ids), installed only if an add appears.
  std::vector<std::vector<int>> rows;
  const auto push = [&](QLayer layer) {
    rows.push_back({static_cast<int>(m.layers.size())});
    m.layers.emplace_back(std::move(layer));
  };
  const int conv_count = rng.next_int(1, 2);
  const bool with_pool = rng.next_bool(0.5);
  const bool avg_pool = rng.next_bool(0.5);
  for (int i = 0; i < conv_count; ++i) {
    ConvGeom g;
    g.in_h = h;
    g.in_w = w;
    g.in_c = c;
    g.out_c = rng.next_int(2, 8);
    g.kernel = rng.next_bool(0.5) ? 3 : 1;
    g.stride = 1;
    g.pad = g.kernel / 2;
    QConv2D conv = make_random_qconv(g, rng.next_u64(), /*folded_relu=*/true);
    conv.in = upstream;
    refresh_requant(conv);
    conv.act_min = conv.out.zero_point;
    upstream = conv.out;
    c = g.out_c;
    push(std::move(conv));
    if (rng.next_bool(0.5)) {
      QDepthwiseConv2D dw = make_random_qdw(h, w, c, /*kernel=*/3,
                                            /*stride=*/1, /*pad=*/1,
                                            rng.next_u64(),
                                            /*folded_relu=*/true);
      dw.in = upstream;
      refresh_requant(dw);
      dw.act_min = dw.out.zero_point;
      upstream = dw.out;
      push(std::move(dw));
    }
    if (i == 0 && with_pool) {
      if (avg_pool) {
        QAvgPool pool;
        pool.in_h = h;
        pool.in_w = w;
        pool.channels = c;
        pool.kernel = 2;
        pool.stride = 2;
        push(pool);
      } else {
        QMaxPool pool;
        pool.in_h = h;
        pool.in_w = w;
        pool.channels = c;
        pool.kernel = 2;
        pool.stride = 2;
        push(pool);
      }
      h /= 2;
      w /= 2;
    }
  }

  // Residual tail: shape-preserving blocks closed by QAdd skip edges.
  // Anchors are earlier same-shape tensors; sampling them uniformly makes
  // successive edges nest or overlap at random.
  const int res_blocks = rng.next_int(0, 2);
  bool has_add = false;
  std::vector<std::pair<int, QuantParams>> anchors;
  anchors.emplace_back(static_cast<int>(m.layers.size()), upstream);
  for (int b = 0; b < res_blocks; ++b) {
    ConvGeom g;
    g.in_h = h;
    g.in_w = w;
    g.in_c = c;
    g.out_c = c;  // keep shape so the add operands line up
    g.kernel = rng.next_bool(0.5) ? 3 : 1;
    g.stride = 1;
    g.pad = g.kernel / 2;
    QConv2D conv = make_random_qconv(g, rng.next_u64(), /*folded_relu=*/true);
    conv.in = upstream;
    refresh_requant(conv);
    conv.act_min = conv.out.zero_point;
    upstream = conv.out;
    push(std::move(conv));
    if (rng.next_bool(0.5)) {
      QDepthwiseConv2D dw = make_random_qdw(h, w, c, /*kernel=*/3,
                                            /*stride=*/1, /*pad=*/1,
                                            rng.next_u64(),
                                            /*folded_relu=*/true);
      dw.in = upstream;
      refresh_requant(dw);
      dw.act_min = dw.out.zero_point;
      upstream = dw.out;
      push(std::move(dw));
    }
    const auto& anchor = anchors[static_cast<size_t>(
        rng.next_int(0, static_cast<int>(anchors.size()) - 1))];
    Rng arng(rng.next_u64());
    QAdd add = testing::make_qadd(h, w, c, upstream, anchor.second,
                                  testing::random_act_params(arng));
    const int top = static_cast<int>(m.layers.size());
    rows.push_back({top, anchor.first});
    m.layers.emplace_back(std::move(add));
    upstream = std::get<QAdd>(m.layers.back()).out;
    anchors.emplace_back(static_cast<int>(m.layers.size()), upstream);
    has_add = true;
  }
  m.topology =
      has_add ? "fuzz-[r" + std::to_string(res_blocks) + "]" : "fuzz";

  QDense fc = make_random_qdense(h * w * c, rng.next_int(2, 10),
                                 rng.next_u64());
  fc.in = upstream;
  fc.requant = quantize_multiplier(static_cast<double>(fc.in.scale) *
                                   fc.w_scale / fc.out.scale);
  push(std::move(fc));
  if (has_add) {
    m.layer_inputs = std::move(rows);
    m.validate_dag();
  }
  return m;
}

// Random autoencoder-shaped model: dense-only (no approximable layers),
// 1-3 hidden bottleneck layers of random width, final dense layer
// reconstructing the input (out_dim == pixels), scored head with a
// random threshold. Exercises the reconstruction_score path the
// ae_anomaly workload uses, across random geometries.
QModel make_random_scored_model(uint64_t seed) {
  Rng rng(seed);
  QModel m;
  m.name = "fuzz-scored-" + std::to_string(seed);
  m.topology = "fuzz-ae";
  m.in_h = rng.next_int(3, 6);
  m.in_w = rng.next_int(3, 6);
  m.in_c = rng.next_int(1, 3);
  m.input = {1.0f / 255.0f, -128};
  m.head = TaskHead::kScore;
  m.score_threshold = rng.next_uniform(0.001f, 0.1f);

  const int pixels = m.in_h * m.in_w * m.in_c;
  int dim = pixels;
  QuantParams upstream = m.input;
  const int hidden = rng.next_int(1, 3);
  for (int i = 0; i < hidden; ++i) {
    const int out_dim = rng.next_int(4, 24);
    QDense fc = make_random_qdense(dim, out_dim, rng.next_u64());
    fc.in = upstream;
    fc.requant = quantize_multiplier(static_cast<double>(fc.in.scale) *
                                     fc.w_scale / fc.out.scale);
    fc.act_min = fc.out.zero_point;  // folded relu
    upstream = fc.out;
    dim = out_dim;
    m.layers.emplace_back(std::move(fc));
  }
  QDense dec = make_random_qdense(dim, pixels, rng.next_u64());
  dec.in = upstream;
  dec.requant = quantize_multiplier(static_cast<double>(dec.in.scale) *
                                    dec.w_scale / dec.out.scale);
  m.layers.emplace_back(std::move(dec));
  return m;
}

Dataset make_calib_set(const QModel& m, int images, uint64_t seed) {
  Dataset ds(ImageShape{m.in_h, m.in_w, m.in_c}, 10);
  Rng rng(seed);
  for (int i = 0; i < images; ++i) {
    std::vector<uint8_t> img(static_cast<size_t>(m.in_h) * m.in_w * m.in_c);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    ds.add(img, rng.next_int(0, 9));
  }
  return ds;
}

// True when every operand skipped by `inner` is also skipped by `outer`.
bool mask_subset(const SkipMask& inner, const SkipMask& outer) {
  if (inner.masks.size() != outer.masks.size()) return false;
  for (size_t l = 0; l < inner.masks.size(); ++l) {
    if (inner.masks[l].size() != outer.masks[l].size()) return false;
    for (size_t i = 0; i < inner.masks[l].size(); ++i) {
      if (inner.masks[l][i] != 0 && outer.masks[l][i] == 0) {
        return false;
      }
    }
  }
  return true;
}

TEST(EngineDiffFuzz, ExactParityMaskedParityAndCostMonotonicity) {
  const uint64_t base = base_seed();
  const double taus[] = {0.0, 0.01, 0.03, 0.08, 0.2};

  for (int iter = 0; iter < kModels; ++iter) {
    const uint64_t model_seed = base + static_cast<uint64_t>(iter) * 1000;
    SCOPED_TRACE("model_seed=" + std::to_string(model_seed) +
                 " (replay: ATAMAN_FUZZ_SEED=" + std::to_string(base) + ")");
    const QModel m = make_random_model(model_seed);
    const int64_t pixels =
        static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
    const RefEngine oracle(&m);
    EngineConfig exact_cfg;
    exact_cfg.model = &m;

    // --- exact configs: four-way bitwise parity -------------------------
    for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
      const auto engine = EngineRegistry::instance().create(name, exact_cfg);
      for (int i = 0; i < kParityImages; ++i) {
        const auto img = make_random_image(pixels, model_seed + 77 + i);
        EXPECT_EQ(engine->run(img), oracle.run(img))
            << name << " image " << i;
        EXPECT_EQ(engine->classify(img), oracle.classify(img))
            << name << " image " << i;
      }
    }

    // Exact engines' cost models must not depend on the mask field.
    const int approx_count = m.approx_layer_count();
    const Dataset calib = make_calib_set(m, 12, model_seed + 5);
    const auto stats = capture_activation_stats(m, calib, -1);
    const auto significance = compute_model_significance(m, stats);
    SkipMask heavy = make_skip_mask(
        m, significance, ApproxConfig::uniform(approx_count, taus[4]));
    for (const char* name : {"cmsis", "xcube"}) {
      EngineConfig masked_cfg = exact_cfg;
      masked_cfg.mask = &heavy;
      const auto plain = EngineRegistry::instance().create(name, exact_cfg);
      const auto masked = EngineRegistry::instance().create(name, masked_cfg);
      EXPECT_EQ(plain->total_cycles(), masked->total_cycles()) << name;
      EXPECT_EQ(plain->mac_ops(), masked->mac_ops()) << name;
    }

    // --- tau ladder: nesting, masked parity, cost monotonicity ----------
    SkipMask prev_mask;
    int64_t prev_skipped = -1;
    int64_t prev_macs = -1;
    int64_t prev_cycles = -1;
    for (const double tau : taus) {
      SCOPED_TRACE("tau=" + std::to_string(tau));
      const SkipMask mask = make_skip_mask(
          m, significance, ApproxConfig::uniform(approx_count, tau));
      mask.validate(m);

      EngineConfig cfg = exact_cfg;
      cfg.mask = &mask;
      const auto masked_ref = EngineRegistry::instance().create("ref", cfg);
      const auto unpacked =
          EngineRegistry::instance().create("unpacked", cfg);
      for (int i = 0; i < kParityImages; ++i) {
        const auto img = make_random_image(pixels, model_seed + 177 + i);
        EXPECT_EQ(masked_ref->run(img), unpacked->run(img)) << "image " << i;
        EXPECT_EQ(masked_ref->classify(img), unpacked->classify(img))
            << "image " << i;
      }

      // Both mask-aware engines agree on executed work.
      const int64_t macs = unpacked->mac_ops();
      EXPECT_EQ(masked_ref->mac_ops(), macs);
      EXPECT_EQ(macs, m.mac_count() - mask.skipped_macs(m));
      const int64_t skipped = mask.skipped_static_operands();
      const int64_t cycles = unpacked->total_cycles();
      EXPECT_GT(cycles, 0);

      if (prev_skipped >= 0) {
        // Skip sets are nested in tau (the DSE's core assumption),
        // therefore every cost axis moves monotonically.
        EXPECT_TRUE(mask_subset(prev_mask, mask));
        EXPECT_GE(skipped, prev_skipped);
        EXPECT_LE(macs, prev_macs);
        EXPECT_LE(cycles, prev_cycles);
        if (macs < prev_macs) {
          EXPECT_LT(cycles, prev_cycles)
              << "fewer executed MACs must price strictly cheaper";
        }
      }
      prev_mask = mask;
      prev_skipped = skipped;
      prev_macs = macs;
      prev_cycles = cycles;
    }
  }
}

// Batch-parity dimension: for random models, random tau-derived skip
// masks and batch sizes {1, 2, 3, 7, 16}, run_batch logits must be
// bitwise equal to per-image run() on every backend — the engines with a
// real batch-amortized path (supports_run_batch()) and the fallback-loop
// engines alike. Batches draw from a small image pool, so they contain
// duplicate images, and the non-multiple-of-kBatchLanes sizes exercise
// ragged final lane-blocks.
TEST(EngineDiffFuzz, BatchParityAcrossEnginesAndBatchSizes) {
  const uint64_t base = base_seed();
  const int batch_sizes[] = {1, 2, 3, 7, 16};
  constexpr int kPoolImages = 5;  // < max batch -> guaranteed duplicates

  for (int iter = 0; iter < kModels; ++iter) {
    const uint64_t model_seed = base + static_cast<uint64_t>(iter) * 1000;
    SCOPED_TRACE("model_seed=" + std::to_string(model_seed) +
                 " (replay: ATAMAN_FUZZ_SEED=" + std::to_string(base) + ")");
    const QModel m = make_random_model(model_seed);
    const int64_t pixels = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;

    std::vector<std::vector<uint8_t>> pool;
    for (int i = 0; i < kPoolImages; ++i)
      pool.push_back(make_random_image(pixels, model_seed + 377 + i));

    const int approx_count = m.approx_layer_count();
    const Dataset calib = make_calib_set(m, 12, model_seed + 5);
    const auto stats = capture_activation_stats(m, calib, -1);
    const auto significance = compute_model_significance(m, stats);
    Rng tau_rng(model_seed + 9);
    const SkipMask mask = make_skip_mask(
        m, significance,
        ApproxConfig::uniform(approx_count,
                              tau_rng.next_uniform(0.0f, 0.15f)));

    struct Cfg {
      const char* engine;
      const SkipMask* mask;
    };
    const Cfg cfgs[] = {
        {"ref", nullptr},      {"cmsis", nullptr}, {"unpacked", nullptr},
        {"xcube", nullptr},    {"ref", &mask},     {"unpacked", &mask},
    };
    for (const Cfg& c : cfgs) {
      EngineConfig ec;
      ec.model = &m;
      ec.mask = c.mask;
      const auto engine = EngineRegistry::instance().create(c.engine, ec);
      SCOPED_TRACE(std::string(c.engine) +
                   (c.mask != nullptr ? " (masked)" : " (exact)"));

      // Empty batches are a hard error on every backend.
      std::vector<std::vector<int8_t>> logits;
      EXPECT_THROW(
          engine->run_batch(std::vector<std::span<const uint8_t>>{}, logits),
          std::exception);

      Rng pick(model_seed + 19);
      for (const int batch : batch_sizes) {
        SCOPED_TRACE("batch=" + std::to_string(batch));
        std::vector<std::span<const uint8_t>> images;
        for (int i = 0; i < batch; ++i)
          images.emplace_back(pool[static_cast<size_t>(
              pick.next_int(0, kPoolImages - 1))]);
        engine->run_batch(images, logits);
        ASSERT_EQ(logits.size(), images.size());
        for (int i = 0; i < batch; ++i) {
          EXPECT_EQ(logits[static_cast<size_t>(i)], engine->run(images[i]))
              << "image " << i;
        }
      }
    }
  }
}

// Per-channel requant dimension: the make_random_* builders produce
// uniform (per-tensor style) w_scales vectors, so the other fuzz tests
// never see channels with *different* requant constants. This test takes
// each random model through two rounds:
//   * a spread round — every conv/depthwise channel gets its own random
//     weight scale (requant rebaked per channel) and all four engines
//     plus the masked-unpacked path and run_batch must stay bit-exact
//     with the reference oracle;
//   * a degenerate round — all-equal per-channel vectors must carry
//     exactly the multiplier the per-tensor scheme would have computed,
//     i.e. the pre-per-channel behavior is reproduced bitwise.
TEST(EngineDiffFuzz, PerChannelRequantParityAcrossEngines) {
  const uint64_t base = base_seed();

  for (int iter = 0; iter < kModels; ++iter) {
    const uint64_t model_seed =
        base + 900 + static_cast<uint64_t>(iter) * 1000;
    SCOPED_TRACE("model_seed=" + std::to_string(model_seed) +
                 " (replay: ATAMAN_FUZZ_SEED=" + std::to_string(base) + ")");

    // --- degenerate round: uniform vectors == per-tensor bitwise --------
    const QModel uniform = make_random_model(model_seed);
    for (const QLayer& layer : uniform.layers) {
      if (const auto* conv = std::get_if<QConv2D>(&layer)) {
        const QuantizedMultiplier want = quantize_multiplier(
            static_cast<double>(conv->in.scale) * conv->w_scales[0] /
            conv->out.scale);
        for (size_t c = 0; c < conv->requant.size(); ++c) {
          EXPECT_EQ(conv->requant[c].mult, want.mult) << "channel " << c;
          EXPECT_EQ(conv->requant[c].shift, want.shift) << "channel " << c;
          EXPECT_EQ(conv->w_scales[c], conv->w_scales[0]) << "channel " << c;
        }
      } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
        const QuantizedMultiplier want = quantize_multiplier(
            static_cast<double>(dw->in.scale) * dw->w_scales[0] /
            dw->out.scale);
        for (size_t c = 0; c < dw->requant.size(); ++c) {
          EXPECT_EQ(dw->requant[c].mult, want.mult) << "channel " << c;
          EXPECT_EQ(dw->requant[c].shift, want.shift) << "channel " << c;
          EXPECT_EQ(dw->w_scales[c], dw->w_scales[0]) << "channel " << c;
        }
      }
    }

    // --- spread round: distinct per-channel constants, full parity ------
    QModel m = make_random_model(model_seed);
    testing::spread_model_wscales(m, model_seed + 41);
    const int64_t pixels = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
    const RefEngine oracle(&m);
    EngineConfig cfg;
    cfg.model = &m;

    for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
      const auto engine = EngineRegistry::instance().create(name, cfg);
      for (int i = 0; i < kParityImages; ++i) {
        const auto img = make_random_image(pixels, model_seed + 877 + i);
        EXPECT_EQ(engine->run(img), oracle.run(img))
            << name << " image " << i;
        EXPECT_EQ(engine->classify(img), oracle.classify(img))
            << name << " image " << i;
      }
    }

    // Masked parity: skipping operands composes with per-channel requant.
    const int approx_count = m.approx_layer_count();
    const Dataset calib = make_calib_set(m, 12, model_seed + 5);
    const auto stats = capture_activation_stats(m, calib, -1);
    const auto significance = compute_model_significance(m, stats);
    const SkipMask mask = make_skip_mask(
        m, significance, ApproxConfig::uniform(approx_count, 0.08));
    EngineConfig masked_cfg = cfg;
    masked_cfg.mask = &mask;
    const auto masked_ref = EngineRegistry::instance().create("ref", masked_cfg);
    const auto unpacked =
        EngineRegistry::instance().create("unpacked", masked_cfg);
    for (int i = 0; i < kParityImages; ++i) {
      const auto img = make_random_image(pixels, model_seed + 977 + i);
      EXPECT_EQ(masked_ref->run(img), unpacked->run(img)) << "image " << i;
    }

    // Batch parity: the lane-blocked paths index requant per channel too.
    std::vector<std::vector<uint8_t>> pool;
    for (int i = 0; i < 5; ++i)
      pool.push_back(make_random_image(pixels, model_seed + 777 + i));
    for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
      const auto engine = EngineRegistry::instance().create(name, cfg);
      Rng pick(model_seed + 23);
      for (const int batch : {3, 7}) {
        std::vector<std::span<const uint8_t>> images;
        for (int i = 0; i < batch; ++i)
          images.emplace_back(
              pool[static_cast<size_t>(pick.next_int(0, 4))]);
        std::vector<std::vector<int8_t>> logits;
        engine->run_batch(images, logits);
        ASSERT_EQ(logits.size(), images.size());
        for (int i = 0; i < batch; ++i) {
          EXPECT_EQ(logits[static_cast<size_t>(i)], engine->run(images[i]))
              << name << " batch " << batch << " image " << i;
        }
      }
    }
  }
}

// Scored-head dimension: random dense-only autoencoder models. All four
// backends must agree bitwise on the reconstruction tensor, exactly on
// the double-valued MSE score (identical int8 tensors, fixed summation
// order), and on the thresholded classification; run_batch must match
// per-image runs; and score() must track reconstruction_score on the
// engine's own outputs.
TEST(EngineDiffFuzz, ScoredDenseModelsParityAcrossEngines) {
  const uint64_t base = base_seed();
  const int batch_sizes[] = {1, 3, 7};

  for (int iter = 0; iter < kModels; ++iter) {
    const uint64_t model_seed =
        base + 500 + static_cast<uint64_t>(iter) * 1000;
    SCOPED_TRACE("model_seed=" + std::to_string(model_seed) +
                 " (replay: ATAMAN_FUZZ_SEED=" + std::to_string(base) + ")");
    const QModel m = make_random_scored_model(model_seed);
    ASSERT_EQ(m.approx_layer_count(), 0);
    const int64_t pixels = static_cast<int64_t>(m.in_h) * m.in_w * m.in_c;
    const RefEngine oracle(&m);
    EngineConfig cfg;
    cfg.model = &m;

    for (const char* name : {"ref", "cmsis", "unpacked", "xcube"}) {
      const auto engine = EngineRegistry::instance().create(name, cfg);
      SCOPED_TRACE(name);
      for (int i = 0; i < kParityImages; ++i) {
        const auto img = make_random_image(pixels, model_seed + 577 + i);
        const auto recon = engine->run(img);
        EXPECT_EQ(recon, oracle.run(img)) << "image " << i;
        const double s = engine->score(img);
        EXPECT_EQ(s, oracle.score(img)) << "image " << i;
        EXPECT_EQ(s, reconstruction_score(m, engine->quantize_input(img),
                                          recon))
            << "image " << i;
        EXPECT_EQ(engine->classify(img), scored_class(m, s))
            << "image " << i;
      }

      std::vector<std::vector<uint8_t>> pool;
      for (int i = 0; i < 4; ++i)
        pool.push_back(make_random_image(pixels, model_seed + 677 + i));
      Rng pick(model_seed + 29);
      for (const int batch : batch_sizes) {
        std::vector<std::span<const uint8_t>> images;
        for (int i = 0; i < batch; ++i)
          images.emplace_back(
              pool[static_cast<size_t>(pick.next_int(0, 3))]);
        std::vector<std::vector<int8_t>> logits;
        engine->run_batch(images, logits);
        ASSERT_EQ(logits.size(), images.size());
        for (int i = 0; i < batch; ++i) {
          EXPECT_EQ(logits[static_cast<size_t>(i)], engine->run(images[i]))
              << "batch " << batch << " image " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ataman
