#include "src/mcu/memory_model.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ataman {

FlashReport packed_flash(const QModel& model, const MemoryCostTable& t) {
  FlashReport r;
  r.code_bytes = t.generic_runtime_code + t.const_tables +
                 t.per_layer_descriptor *
                     static_cast<int64_t>(model.layers.size());
  r.weight_bytes = model.weight_bytes();
  r.total_bytes = r.code_bytes + r.weight_bytes;
  return r;
}

FlashReport unpacked_flash(const QModel& model,
                           const std::vector<int64_t>& static_pairs,
                           const std::vector<int64_t>& static_singles,
                           const MemoryCostTable& t) {
  check(static_pairs.size() == static_singles.size(),
        "pair/single vectors must align");
  FlashReport r;
  r.code_bytes = t.custom_runtime_code + t.const_tables;

  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    const OpDescriptor d = describe_layer(layer);
    if (d.skippable) {
      // Conv or depthwise: per-channel programs, weights either burned
      // into code (unpacked) or kept as data (packed fallback).
      const int64_t weight_data = d.skippable_operand_count();
      const int64_t bias_data = static_cast<int64_t>(d.channels) * 4;
      const bool unpacked =
          ordinal < static_cast<int>(static_pairs.size()) &&
          static_pairs[static_cast<size_t>(ordinal)] >= 0;
      if (unpacked) {
        const int64_t pairs = static_pairs[static_cast<size_t>(ordinal)];
        const int64_t singles = static_singles[static_cast<size_t>(ordinal)];
        r.unpacked_code_bytes += t.unpacked_bytes_per_layer +
                                 t.unpacked_bytes_per_channel * d.channels +
                                 t.unpacked_bytes_per_pair * pairs +
                                 t.unpacked_bytes_per_single * singles;
        // Biases remain data (loaded by the per-channel prologue).
        r.weight_bytes += bias_data;
      } else {
        r.weight_bytes += weight_data + bias_data;
        r.code_bytes += t.per_layer_descriptor;
      }
      ++ordinal;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      r.weight_bytes += static_cast<int64_t>(fc->weights.size()) +
                        static_cast<int64_t>(fc->bias.size()) * 4;
      r.code_bytes += t.per_layer_descriptor;
    } else {
      r.code_bytes += t.per_layer_descriptor;
    }
  }
  r.total_bytes = r.code_bytes + r.weight_bytes + r.unpacked_code_bytes;
  return r;
}

int64_t model_ram_bytes(const QModel& model, bool packed_engine,
                        const MemoryCostTable& t) {
  // Ping-pong arena: the largest (input, output) buffer pair that is live
  // at once across the layer sequence.
  int64_t cur = static_cast<int64_t>(model.in_h) * model.in_w * model.in_c;
  int64_t arena = cur;
  int64_t im2col = 0;
  for (const QLayer& layer : model.layers) {
    const int64_t next = describe_layer(layer).out_elems;
    if (packed_engine) {
      if (const auto* conv = std::get_if<QConv2D>(&layer)) {
        // Two q15 columns of one receptive field each (CMSIS 2-column
        // mat_mult scratch). Depthwise kernels read activations directly
        // (no column scratch).
        im2col = std::max<int64_t>(
            im2col, 2LL * conv->geom.patch_size() * 2);
      }
    }
    arena = std::max(arena, cur + next);
    cur = next;
  }
  return arena + im2col + t.runtime_reserve;
}

}  // namespace ataman
