#include "src/train/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/common/metrics.hpp"
#include "src/common/stopwatch.hpp"
#include "src/train/softmax_xent.hpp"

namespace ataman {

namespace {

// MSE reconstruction loss: the target is the network's own normalized
// input, flattened. loss = mean over the batch of the per-image mean
// squared error; dlogits = dL/dy = 2(y - x) / (batch * dims), matching
// the /batch convention of softmax_cross_entropy. `correct` is
// meaningless for a reconstruction objective and stays 0.
LossResult mse_reconstruction(const FTensor& logits, const FTensor& x) {
  const int batch = logits.dim(0);
  check(batch > 0 && x.dim(0) == batch, "mse: batch mismatch");
  const int64_t dims = logits.item_size();
  check(dims == x.item_size(), "mse: reconstruction width != input size");

  LossResult r;
  r.dlogits = FTensor(logits.shape());
  const float* y = logits.data();
  const float* t = x.data();
  float* dy = r.dlogits.data();
  const double inv = 1.0 / (static_cast<double>(batch) * dims);
  double loss = 0.0;
  for (int64_t i = 0; i < static_cast<int64_t>(batch) * dims; ++i) {
    const double diff = static_cast<double>(y[i]) - t[i];
    loss += diff * diff;
    dy[i] = static_cast<float>(2.0 * diff * inv);
  }
  r.loss = loss * inv;
  r.correct = 0;
  return r;
}

// Float-domain anomaly AUC: per-image reconstruction MSE as the score,
// ranked against the dataset's 0/1 labels.
double evaluate_reconstruction_auc(Network& net, const Dataset& ds,
                                   int batch_size = 64) {
  std::vector<int> indices(static_cast<size_t>(ds.size()));
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<double> scores(static_cast<size_t>(ds.size()));
  std::vector<int> labels(static_cast<size_t>(ds.size()));
  for (size_t lo = 0; lo < indices.size();
       lo += static_cast<size_t>(batch_size)) {
    const size_t hi =
        std::min(indices.size(), lo + static_cast<size_t>(batch_size));
    FTensor x = to_float_batch(ds, indices, lo, hi);
    const FTensor y = net.forward(x, /*train=*/false);
    const int64_t dims = y.item_size();
    for (size_t i = lo; i < hi; ++i) {
      const float* yi = y.item(static_cast<int>(i - lo));
      const float* xi = x.item(static_cast<int>(i - lo));
      double mse = 0.0;
      for (int64_t d = 0; d < dims; ++d) {
        const double diff = static_cast<double>(yi[d]) - xi[d];
        mse += diff * diff;
      }
      scores[i] = mse / static_cast<double>(dims);
      labels[i] = ds.label(indices[i]);
    }
  }
  return rank_auc(scores, labels);
}

}  // namespace

TrainResult train_network(Network& net, const Dataset& train,
                          const Dataset& test, const TrainConfig& config) {
  check(train.size() > 0, "empty training set");
  check(config.batch_size > 0 && config.epochs > 0, "bad training config");

  SgdOptimizer opt(config.sgd);
  Rng rng(config.seed);
  std::vector<int> order(static_cast<size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (std::find(config.lr_decay_at.begin(), config.lr_decay_at.end(),
                  epoch) != config.lr_decay_at.end()) {
      opt.set_learning_rate(opt.learning_rate() * config.lr_decay);
    }
    rng.shuffle(order);

    Stopwatch watch;
    double loss_sum = 0.0;
    int correct = 0;
    int seen = 0;
    for (size_t lo = 0; lo < order.size();
         lo += static_cast<size_t>(config.batch_size)) {
      const size_t hi = std::min(order.size(),
                                 lo + static_cast<size_t>(config.batch_size));
      FTensor x = to_float_batch(train, order, lo, hi);
      std::vector<int> labels(hi - lo);
      for (size_t i = lo; i < hi; ++i)
        labels[i - lo] = train.label(order[i]);

      FTensor logits = net.forward(x, /*train=*/true);
      LossResult loss = config.loss == TrainLoss::kMseReconstruction
                            ? mse_reconstruction(logits, x)
                            : softmax_cross_entropy(logits, labels);

      net.zero_grad();
      net.backward(loss.dlogits);
      opt.step(net.params());

      loss_sum += loss.loss * static_cast<double>(hi - lo);
      correct += loss.correct;
      seen += static_cast<int>(hi - lo);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / seen;
    stats.train_accuracy = static_cast<double>(correct) / seen;
    stats.seconds = watch.seconds();
    result.epochs.push_back(stats);
    if (config.verbose) {
      std::printf("  epoch %2d  loss %.4f  train-acc %.4f  (%.1fs, lr %.4f)\n",
                  epoch, stats.train_loss, stats.train_accuracy, stats.seconds,
                  static_cast<double>(opt.learning_rate()));
      std::fflush(stdout);
    }
  }

  result.final_train_accuracy = result.epochs.back().train_accuracy;
  if (test.size() == 0) {
    result.test_accuracy = 0.0;
  } else if (config.loss == TrainLoss::kMseReconstruction) {
    result.test_accuracy = evaluate_reconstruction_auc(net, test);
  } else {
    result.test_accuracy = evaluate_accuracy(net, test);
  }
  return result;
}

}  // namespace ataman
