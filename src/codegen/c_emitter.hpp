// C code generator — framework step 4 ("Approximate CNN deployment").
//
// Emits a self-contained C99 translation unit implementing the
// approximate model: every conv layer becomes straight-line per-channel
// MAC sequences with the packed weight constants hardwired into the
// instruction stream (no weight arrays, no im2col), FC layers stay
// packed-loop kernels over const weight tables, and the requantization
// helpers replicate the fixed-point pipeline bit-exactly. Residual QAdd
// layers emit a two-input requantize-and-add kernel, and the runner's
// static activation buffers come from the engines' shared liveness plan
// (plan_activations), one buffer per slot, so DAG models get the same
// peak RAM as the on-device memory model predicts.
//
// On a Cortex-M33 build (-D__ARM_FEATURE_DSP) the SMLAD/SMLABB shims
// compile to the native intrinsics; on any other host they compile to
// exact C models of the instructions, so the generated file can be
// compiled and validated on a laptop — tests/test_codegen.cpp does
// exactly that with the system compiler.
#pragma once

#include <string>

#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman {

struct CodegenOptions {
  bool comments = true;        // annotate channels/constants
  std::string symbol_prefix = "ataman";
};

// Emit the full model (mask == nullptr -> exact unpacked code).
// The unit exports:
//   void <prefix>_run(const uint8_t* image, int8_t* logits);
//   extern const int <prefix>_num_classes;
std::string emit_model_c(const QModel& model, const SkipMask* mask = nullptr,
                         const CodegenOptions& options = {});

// Write `text` to `path` (creating parent directories).
void write_text_file(const std::string& path, const std::string& text);

}  // namespace ataman
