// Procedural texture primitives for SynthCIFAR classes.
//
// Each primitive maps normalized coordinates (u, v) in [0, 1) plus a
// per-instance parameter bundle to a base intensity in [0, 1]. Classes are
// distinct pattern families; instances within a class vary in frequency,
// phase, orientation and palette, so a classifier must learn the family
// structure rather than memorize pixels.
#pragma once

#include "src/common/rng.hpp"

namespace ataman {

// Per-instance pattern parameters drawn once per image.
struct PatternParams {
  float freq = 4.0f;      // stripes per image
  float phase = 0.0f;     // radians
  float angle = 0.0f;     // radians, pattern orientation
  float cx = 0.5f;        // pattern center
  float cy = 0.5f;
  float aspect = 1.0f;    // anisotropy for blobs/rings
  float sharp = 1.0f;     // edge sharpness
};

PatternParams sample_pattern_params(Rng& rng);

enum class PatternFamily : int {
  kHorizontalStripes = 0,
  kVerticalStripes = 1,
  kDiagonalStripes = 2,
  kCheckerboard = 3,
  kRings = 4,
  kGaussianBlob = 5,
  kCross = 6,
  kQuadrants = 7,
  kDots = 8,
  kRadialSectors = 9,
};
constexpr int kNumPatternFamilies = 10;

// Base intensity of `family` at (u, v) under `p`; result in [0, 1].
float pattern_value(PatternFamily family, float u, float v,
                    const PatternParams& p);

}  // namespace ataman
