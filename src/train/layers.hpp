// Trainable layer interface and the concrete layers used by the model zoo.
//
// The set matches what the quantizer and inference substrates support:
// Conv2D, DepthwiseConv2D, MaxPool2D, AvgPool2D, ReLU, Dense; softmax
// cross-entropy lives in softmax_xent.hpp as the loss head.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/train/ftensor.hpp"
#include "src/train/im2col.hpp"

namespace ataman {

// A view of one learnable parameter tensor and its gradient.
struct ParamRef {
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` enables caching of whatever backward() needs.
  virtual FTensor forward(const FTensor& x, bool train) = 0;
  // Consumes the gradient w.r.t. this layer's output; returns gradient
  // w.r.t. its input. Parameter gradients are *accumulated* (caller zeroes
  // them at batch start via Network::zero_grad).
  virtual FTensor backward(const FTensor& dy) = 0;

  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }
  virtual std::string name() const = 0;
};

class Conv2DLayer : public Layer {
 public:
  // Weight layout: [out_c][kernel][kernel][in_c] (inference layout; the
  // GEMM treats it as B[N=out_c, K=patch] and multiplies transposed).
  Conv2DLayer(ConvGeom geom, Rng& rng);

  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "conv2d"; }

  const ConvGeom& geom() const { return geom_; }
  std::vector<float>& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  ConvGeom geom_;
  std::vector<float> weights_, bias_;
  std::vector<float> dweights_, dbias_;
  FTensor cached_input_;
};

// Per-channel (depthwise) convolution. Weight layout matches the
// quantized substrate: [kernel][kernel][channels], channel innermost
// (the TFLite-Micro convention).
class DepthwiseConv2DLayer : public Layer {
 public:
  struct Geom {
    int in_h = 0, in_w = 0, channels = 0;
    int kernel = 1, stride = 1, pad = 0;

    int out_h() const { return conv_out_extent(in_h, kernel, stride, pad); }
    int out_w() const { return conv_out_extent(in_w, kernel, stride, pad); }
    int64_t weight_count() const {
      return static_cast<int64_t>(kernel) * kernel * channels;
    }
    int64_t macs() const {
      return static_cast<int64_t>(out_h()) * out_w() * weight_count();
    }
  };

  DepthwiseConv2DLayer(Geom geom, Rng& rng);

  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "depthwise2d"; }

  const Geom& geom() const { return geom_; }
  std::vector<float>& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  Geom geom_;
  std::vector<float> weights_, bias_;
  std::vector<float> dweights_, dbias_;
  FTensor cached_input_;
};

class DenseLayer : public Layer {
 public:
  // Weight layout: [out_dim][in_dim] (inference layout).
  DenseLayer(int in_dim, int out_dim, Rng& rng);

  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  void collect_params(std::vector<ParamRef>& out) override;
  std::string name() const override { return "dense"; }

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  std::vector<float>& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  int in_dim_, out_dim_;
  std::vector<float> weights_, bias_;
  std::vector<float> dweights_, dbias_;
  FTensor cached_input_;
};

class MaxPool2DLayer : public Layer {
 public:
  MaxPool2DLayer(int kernel, int stride);

  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  std::string name() const override { return "maxpool2d"; }

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_, stride_;
  std::vector<int> in_shape_;
  std::vector<int32_t> argmax_;  // flat input index per output element
};

// Average pooling; requires covering geometry ((extent - kernel) evenly
// divisible by stride) like the quantized substrate.
class AvgPool2DLayer : public Layer {
 public:
  AvgPool2DLayer(int kernel, int stride);

  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  std::string name() const override { return "avgpool2d"; }

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_, stride_;
  std::vector<int> in_shape_;
};

// Two-input residual merge: out = a + b (elementwise, shapes must
// match). The Network dispatches it through forward2 with the chain
// predecessor as `a` and the skip-edge tensor as `b`; the single-input
// forward() entry point is unreachable by construction. backward()
// returns the gradient w.r.t. `a` (identity); the Network routes the
// identical gradient to `b`'s producer itself (an add passes its output
// gradient to both inputs unchanged).
class AddLayer : public Layer {
 public:
  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  FTensor forward2(const FTensor& a, const FTensor& b);
  std::string name() const override { return "add"; }
};

class ReluLayer : public Layer {
 public:
  FTensor forward(const FTensor& x, bool train) override;
  FTensor backward(const FTensor& dy) override;
  std::string name() const override { return "relu"; }

 private:
  std::vector<uint8_t> mask_;
};

}  // namespace ataman
