// The run_batch seam (engine_iface.hpp): contract tests for the batched
// execution path added across the engines.
//
//   * Seam contract: the default implementation is a per-image fallback
//     loop (non-supporting engines keep working, calling run() once per
//     image), an empty batch is a hard error on every backend, and
//     logits_out is resized to the batch regardless of prior contents.
//   * Serve-level determinism: workers execute coalesced batches through
//     one run_batch call; results must stay bitwise identical to serial
//     per-image execution (the PR 4 contract, now with batched kernels).
//   * Cost-model invariance: engine total_cycles() is per-image and must
//     not depend on batch size for exact engines; the batched-cycle
//     accounting row amortizes only per-layer dispatch.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/core/engine_iface.hpp"
#include "src/core/eval.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/serve/server.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using serve::InferenceServer;
using serve::InferFuture;
using serve::InferRequest;
using serve::ServeOptions;
using serve::ServeStats;
using testing::make_random_image;
using testing::make_tiny_qmodel;

constexpr int kImagePixels = 12 * 12 * 3;

std::vector<std::span<const uint8_t>> as_spans(
    const std::vector<std::vector<uint8_t>>& images) {
  std::vector<std::span<const uint8_t>> spans;
  spans.reserve(images.size());
  for (const auto& img : images) spans.emplace_back(img);
  return spans;
}

// Minimal out-of-tree-style backend: delegates run() to a reference
// engine and counts the calls. It does not override run_batch, so it
// exercises the base-class fallback loop exactly as an out-of-tree
// engine written before the seam existed would.
class CountingEngine : public InferenceEngine {
 public:
  explicit CountingEngine(const QModel* model)
      : InferenceEngine(model, "counting"), inner_(model) {}

  std::vector<int8_t> run(std::span<const uint8_t> image) const override {
    ++runs_;
    return inner_.run(image);
  }
  int64_t total_cycles() const override { return 0; }

  int runs() const { return runs_; }

 private:
  RefEngine inner_;
  mutable int runs_ = 0;
};

TEST(RunBatchContract, DefaultFallbackLoopsRunPerImage) {
  const QModel m = make_tiny_qmodel(910);
  const CountingEngine engine(&m);
  EXPECT_FALSE(engine.supports_run_batch());

  std::vector<std::vector<uint8_t>> images;
  for (int i = 0; i < 5; ++i)
    images.push_back(make_random_image(kImagePixels, 911 + i));

  std::vector<std::vector<int8_t>> logits;
  engine.run_batch(as_spans(images), logits);
  EXPECT_EQ(engine.runs(), 5);  // fallback == one run() per image
  ASSERT_EQ(logits.size(), images.size());

  const RefEngine oracle(&m);
  for (size_t i = 0; i < images.size(); ++i)
    EXPECT_EQ(logits[i], oracle.run(images[i])) << "image " << i;
}

TEST(RunBatchContract, InTreeEnginesReportBatchSupport) {
  const QModel m = make_tiny_qmodel(920);
  EngineConfig cfg;
  cfg.model = &m;
  // ref, cmsis, unpacked carry real batch-amortized paths; xcube stays on
  // the fallback loop (its RefEngine delegate makes batching a wash), so
  // the serve layer keeps exercising both sides of the seam.
  for (const char* name : {"ref", "cmsis", "unpacked"}) {
    EXPECT_TRUE(EngineRegistry::instance()
                    .create(name, cfg)
                    ->supports_run_batch())
        << name;
  }
  EXPECT_FALSE(
      EngineRegistry::instance().create("xcube", cfg)->supports_run_batch());
}

TEST(RunBatchContract, EmptyBatchIsAHardErrorOnEveryBackend) {
  const QModel m = make_tiny_qmodel(930);
  EngineConfig cfg;
  cfg.model = &m;
  for (const std::string& name : EngineRegistry::instance().names()) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    std::vector<std::vector<int8_t>> logits;
    EXPECT_THROW(
        engine->run_batch(std::vector<std::span<const uint8_t>>{}, logits),
        std::exception)
        << name;
  }
}

TEST(RunBatchContract, OutputBufferIsResizedAndOverwritten) {
  const QModel m = make_tiny_qmodel(940);
  EngineConfig cfg;
  cfg.model = &m;
  std::vector<std::vector<uint8_t>> images;
  for (int i = 0; i < 3; ++i)
    images.push_back(make_random_image(kImagePixels, 941 + i));
  const RefEngine oracle(&m);

  for (const std::string& name : EngineRegistry::instance().names()) {
    // Stale garbage from a previous (larger) batch must be discarded.
    std::vector<std::vector<int8_t>> logits(7,
                                            std::vector<int8_t>(99, int8_t{3}));
    EngineRegistry::instance().create(name, cfg)->run_batch(as_spans(images),
                                                            logits);
    ASSERT_EQ(logits.size(), images.size()) << name;
    for (size_t i = 0; i < images.size(); ++i)
      EXPECT_EQ(logits[i], oracle.run(images[i])) << name << " image " << i;
  }
}

TEST(RunBatchContract, EvaluateBatchMatchesClassifyFnPath) {
  const QModel m = make_tiny_qmodel(950);
  Dataset ds(ImageShape{m.in_h, m.in_w, m.in_c}, 10);
  Rng rng(951);
  for (int i = 0; i < 37; ++i) {  // odd count -> ragged final sub-batch
    std::vector<uint8_t> img(static_cast<size_t>(kImagePixels));
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    ds.add(img, rng.next_int(0, 9));
  }
  EngineConfig cfg;
  cfg.model = &m;
  for (const std::string& name : EngineRegistry::instance().names()) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    const BatchAccuracy batched = evaluate_batch(*engine, ds, -1);
    const BatchAccuracy serial = evaluate_batch(
        [&](std::span<const uint8_t> image) { return engine->classify(image); },
        ds, -1);
    EXPECT_EQ(batched.correct, serial.correct) << name;
    EXPECT_EQ(batched.images, serial.images) << name;
  }
}

// ---------------------------------------------------------------------------
// Serve-level determinism with batched execution
// ---------------------------------------------------------------------------

TEST(RunBatchServe, BatchedWorkersStayBitwiseEqualToSerial) {
  const QModel m = make_tiny_qmodel(960);
  SkipMask mask = SkipMask::none(m);
  Rng rng(961);
  for (auto& layer : mask.masks)
    for (auto& s : layer) s = rng.next_bool(0.05) ? 1 : 0;

  // Mixed traffic over batch-supporting engines and the xcube fallback.
  struct Key {
    const char* engine;
    const SkipMask* mask;
  };
  const Key keys[] = {{"cmsis", nullptr},
                      {"unpacked", &mask},
                      {"ref", &mask},
                      {"xcube", nullptr}};
  constexpr int kRequests = 64;
  std::vector<InferRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    const Key& key = keys[static_cast<size_t>(i) % std::size(keys)];
    InferRequest r;
    r.engine = key.engine;
    r.mask = key.mask;
    const auto img = make_random_image(kImagePixels, 962 + i);
    r.image.assign(img.begin(), img.end());
    requests.push_back(std::move(r));
  }

  std::vector<std::vector<int8_t>> expected;
  for (const InferRequest& r : requests) {
    EngineConfig cfg;
    cfg.model = &m;
    cfg.mask = r.mask;
    expected.push_back(
        EngineRegistry::instance().create(r.engine, cfg)->run(r.image));
  }

  for (const int workers : {1, 3}) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch = 8;
    InferenceServer server(&m, options);
    std::vector<InferFuture> futures = server.submit_all(requests);
    server.drain();
    for (size_t i = 0; i < futures.size(); ++i) {
      const serve::InferResult r = futures[i].get();
      EXPECT_EQ(r.logits, expected[i]) << "workers=" << workers << " request "
                                       << i;
      EXPECT_GE(r.batch_size, 1);
      EXPECT_LE(r.batch_size, options.max_batch);
    }
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.completed, kRequests);
    EXPECT_GE(stats.batches, 1);
    server.stop();
  }
}

// ---------------------------------------------------------------------------
// Cost-model invariance
// ---------------------------------------------------------------------------

TEST(RunBatchCost, TotalCyclesPerImageIndependentOfBatchSize) {
  const QModel m = make_tiny_qmodel(970);
  EngineConfig cfg;
  cfg.model = &m;
  for (const char* name : {"cmsis", "unpacked", "xcube"}) {
    const auto engine = EngineRegistry::instance().create(name, cfg);
    const int64_t before = engine->total_cycles();
    std::vector<std::vector<int8_t>> logits;
    for (const int batch : {1, 3, 16}) {
      std::vector<std::vector<uint8_t>> images;
      for (int i = 0; i < batch; ++i)
        images.push_back(make_random_image(kImagePixels, 971 + i));
      engine->run_batch(as_spans(images), logits);
      // Modeled per-image deployment cost is a pure function of the layer
      // geometry: executing a batch must not change it.
      EXPECT_EQ(engine->total_cycles(), before)
          << name << " batch=" << batch;
    }
  }
}

TEST(RunBatchCost, BatchedAccountingAmortizesOnlyDispatch) {
  const QModel m = make_tiny_qmodel(980);
  const CortexM33CostTable t;
  const int64_t single = packed_model_cycles(m, t);

  const BatchedCycleRow one = batched_packed_model_cycles(m, 1, t);
  EXPECT_EQ(one.total_cycles, single);
  EXPECT_EQ(one.amortized_dispatch, 0);

  double prev_per_image = one.per_image_cycles;
  for (const int batch : {2, 4, 16}) {
    const BatchedCycleRow row = batched_packed_model_cycles(m, batch, t);
    // Kernel cycles scale linearly; only per-layer dispatch is saved.
    EXPECT_EQ(row.total_cycles,
              single * batch - row.amortized_dispatch);
    EXPECT_EQ(row.amortized_dispatch,
              static_cast<int64_t>(t.layer_dispatch *
                                   static_cast<double>(m.layers.size())) *
                  (batch - 1));
    EXPECT_LE(row.per_image_cycles, prev_per_image);
    prev_per_image = row.per_image_cycles;
  }
  EXPECT_THROW(batched_packed_model_cycles(m, 0, t), std::exception);
}

}  // namespace
}  // namespace ataman
