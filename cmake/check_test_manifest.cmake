# Smoke check run by ctest (label: smoke).
#
# Asserts that every tests/test_*.cpp in the source tree produced a linked
# test executable in the build tree, and that the set of registered test
# targets matches the set of sources — i.e. no orphan test source can sit
# in tests/ without being discovered, built, and linked against the
# `ataman` library by the top-level CMakeLists.txt.
#
# Invoked as:
#   cmake -DSOURCE_DIR=... -DBINARY_DIR=... -DEXPECTED_TARGETS=a;b;c
#         -P cmake/check_test_manifest.cmake

cmake_minimum_required(VERSION 3.16)

# EXPECTED_TARGETS arrives comma-joined (a raw CMake list would be split
# into separate argv entries by the ; separators).
string(REPLACE "," ";" EXPECTED_TARGETS "${EXPECTED_TARGETS}")

file(GLOB test_sources ${SOURCE_DIR}/tests/test_*.cpp)

set(missing "")
set(source_names "")
foreach(test_src IN LISTS test_sources)
  get_filename_component(test_name ${test_src} NAME_WE)
  list(APPEND source_names ${test_name})
  if(NOT EXISTS ${BINARY_DIR}/${test_name})
    list(APPEND missing ${test_name})
  endif()
endforeach()

list(LENGTH test_sources n_sources)
list(LENGTH EXPECTED_TARGETS n_targets)

if(missing)
  message(FATAL_ERROR
          "test executables missing from build tree (orphan sources?): "
          "${missing}")
endif()

# A source added after the last `cmake` configure would build nothing and
# silently drop coverage; CONFIGURE_DEPENDS should prevent this, but the
# manifest is the backstop.
foreach(name IN LISTS source_names)
  if(NOT name IN_LIST EXPECTED_TARGETS)
    message(FATAL_ERROR
            "tests/${name}.cpp exists but no ctest target was registered "
            "for it — re-run cmake configure")
  endif()
endforeach()

message(STATUS
        "test manifest OK: ${n_sources} test sources, ${n_targets} linked "
        "test executables")
