#include "src/quant/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

RangeObserver::RangeObserver(double clip_quantile)
    : clip_quantile_(clip_quantile) {
  check(clip_quantile >= 0.0 && clip_quantile < 0.5,
        "clip quantile must be in [0, 0.5)");
}

void RangeObserver::observe_one(float v) { observe(&v, 1); }

void RangeObserver::observe(const float* data, int64_t n) {
  if (n <= 0) return;
  float lo = min_, hi = max_;
  if (count_ == 0) {
    lo = hi = data[0];
  }
  for (int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  if (count_ == 0 || lo < hist_lo_ || hi > hist_hi_) {
    min_ = lo;
    max_ = hi;
    rebuild_histogram(lo, hi);
  } else {
    min_ = lo;
    max_ = hi;
  }
  const float width = hist_hi_ - hist_lo_;
  for (int64_t i = 0; i < n; ++i) {
    int bin = width > 0.0f
                  ? static_cast<int>((data[i] - hist_lo_) / width * (kBins - 1))
                  : 0;
    bin = std::clamp(bin, 0, kBins - 1);
    ++hist_[static_cast<size_t>(bin)];
  }
  count_ += n;
}

void RangeObserver::merge(const RangeObserver& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Re-bin the other histogram into a range covering both.
  const float lo = std::min(min_, other.min_);
  const float hi = std::max(max_, other.max_);
  RangeObserver merged(clip_quantile_);
  merged.min_ = lo;
  merged.max_ = hi;
  merged.rebuild_histogram(lo, hi);
  merged.count_ = count_ + other.count_;
  const auto rebin = [&](const RangeObserver& src) {
    const float width = src.hist_hi_ - src.hist_lo_;
    for (int b = 0; b < kBins; ++b) {
      if (src.hist_[static_cast<size_t>(b)] == 0) continue;
      const float center =
          src.hist_lo_ + (static_cast<float>(b) + 0.5f) / kBins * width;
      const float mwidth = merged.hist_hi_ - merged.hist_lo_;
      int bin = mwidth > 0.0f ? static_cast<int>((center - merged.hist_lo_) /
                                                 mwidth * (kBins - 1))
                              : 0;
      bin = std::clamp(bin, 0, kBins - 1);
      merged.hist_[static_cast<size_t>(bin)] +=
          src.hist_[static_cast<size_t>(b)];
    }
  };
  rebin(*this);
  rebin(other);
  *this = merged;
}

float RangeObserver::min() const {
  check(count_ > 0, "observer has seen no data");
  return min_;
}

float RangeObserver::max() const {
  check(count_ > 0, "observer has seen no data");
  return max_;
}

void RangeObserver::rebuild_histogram(float lo, float hi) {
  // Keep any previously accumulated mass by re-binning into the new range.
  std::vector<int64_t> old = hist_;
  const float old_lo = hist_lo_, old_hi = hist_hi_;
  hist_.assign(kBins, 0);
  hist_lo_ = lo;
  hist_hi_ = hi;
  if (old.empty()) return;
  const float old_width = old_hi - old_lo;
  const float width = hi - lo;
  for (int b = 0; b < kBins; ++b) {
    if (old[static_cast<size_t>(b)] == 0) continue;
    const float center =
        old_lo + (static_cast<float>(b) + 0.5f) / kBins * old_width;
    int bin = width > 0.0f
                  ? static_cast<int>((center - lo) / width * (kBins - 1))
                  : 0;
    bin = std::clamp(bin, 0, kBins - 1);
    hist_[static_cast<size_t>(bin)] += old[static_cast<size_t>(b)];
  }
}

std::pair<float, float> RangeObserver::clipped_range() const {
  check(count_ > 0, "observer has seen no data");
  if (clip_quantile_ <= 0.0) return {min_, max_};
  const auto target = static_cast<int64_t>(
      clip_quantile_ * static_cast<double>(count_));
  int64_t lo_mass = 0;
  int lo_bin = 0;
  while (lo_bin < kBins - 1 &&
         lo_mass + hist_[static_cast<size_t>(lo_bin)] <= target) {
    lo_mass += hist_[static_cast<size_t>(lo_bin)];
    ++lo_bin;
  }
  int64_t hi_mass = 0;
  int hi_bin = kBins - 1;
  while (hi_bin > lo_bin &&
         hi_mass + hist_[static_cast<size_t>(hi_bin)] <= target) {
    hi_mass += hist_[static_cast<size_t>(hi_bin)];
    --hi_bin;
  }
  const float width = hist_hi_ - hist_lo_;
  const float lo = hist_lo_ + static_cast<float>(lo_bin) / kBins * width;
  const float hi =
      hist_lo_ + (static_cast<float>(hi_bin) + 1.0f) / kBins * width;
  return {std::min(lo, 0.0f), std::max(hi, 0.0f)};
}

QuantParams RangeObserver::to_affine_params() const {
  auto [lo, hi] = clipped_range();
  // Zero must be exactly representable.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  if (hi - lo < 1e-8f) hi = lo + 1e-8f;
  QuantParams p;
  p.scale = (hi - lo) / 255.0f;
  p.zero_point = std::clamp(-128 - round_to_int32(lo / p.scale), -128, 127);
  return p;
}

QuantParams RangeObserver::to_symmetric_params() const {
  check(count_ > 0, "observer has seen no data");
  const float absmax = std::max(std::abs(min_), std::abs(max_));
  QuantParams p;
  p.scale = absmax > 0.0f ? absmax / 127.0f : 1e-8f;
  p.zero_point = 0;
  return p;
}

}  // namespace ataman
